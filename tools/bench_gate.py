"""Benchmark regression gate.

Compares freshly generated ``BENCH_*.json`` documents (written by the
``benchmarks/`` suite) against the committed baselines and fails when a
gated metric regressed by more than the threshold (default 25%).

Usage::

    python tools/bench_gate.py --baseline-dir baselines --fresh-dir .
    python tools/bench_gate.py --threshold 0.4   # looser, noisy runners

Only stdlib, so it runs anywhere CI can run Python.  Wall-clock metrics
on shared runners are inherently noisy — this gate is wired as a
non-blocking (``continue-on-error``) CI job: a red result is a prompt
to look, not a merge blocker.  Missing baselines (first run of a new
benchmark) are reported and tolerated; missing *fresh* files fail,
because that means the benchmark suite itself broke.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Gated metrics per benchmark document.  Paths are dot-separated; a "*"
# segment fans out over every key of a dict.  Direction "lower" means
# smaller is better (wall times), "higher" the opposite (speedups).
GATES: dict[str, dict[str, str]] = {
    "BENCH_backend.json": {
        "strategies.*.thread_wall_seconds": "lower",
    },
    "BENCH_process.json": {
        "strategies.*.process_wall_seconds": "lower",
        "best_speedup": "higher",
    },
    # Simulated (virtual) durations: deterministic given the seeds, so
    # the 25% threshold only trips on real model/protocol changes.
    "BENCH_topology.json": {
        "topologies.*.*": "lower",
    },
}


def resolve(doc: object, path: str) -> dict[str, float]:
    """Expand a dotted path (with "*" fan-out) to {concrete_path: value}."""
    out: dict[str, float] = {}

    def walk(node: object, segments: list[str], trail: list[str]) -> None:
        if not segments:
            if isinstance(node, (int, float)) and not isinstance(node, bool):
                out[".".join(trail)] = float(node)
            return
        head, rest = segments[0], segments[1:]
        if not isinstance(node, dict):
            return
        keys = sorted(node) if head == "*" else ([head] if head in node else [])
        for key in keys:
            walk(node[key], rest, trail + [key])

    walk(doc, path.split("."), [])
    return out


def compare(name: str, baseline: dict, fresh: dict, threshold: float) -> list[str]:
    """Return a list of regression descriptions for one document."""
    regressions: list[str] = []
    for path, direction in GATES[name].items():
        base_vals = resolve(baseline, path)
        fresh_vals = resolve(fresh, path)
        for key, base in sorted(base_vals.items()):
            if key not in fresh_vals:
                regressions.append(f"{name}:{key} vanished from fresh run")
                continue
            new = fresh_vals[key]
            if base <= 0:
                continue  # degenerate baseline; nothing to gate against
            ratio = new / base
            if direction == "lower" and ratio > 1 + threshold:
                regressions.append(
                    f"{name}:{key} regressed: {base:.4g} -> {new:.4g} "
                    f"(+{(ratio - 1) * 100:.0f}%, limit +{threshold * 100:.0f}%)"
                )
            elif direction == "higher" and ratio < 1 - threshold:
                regressions.append(
                    f"{name}:{key} regressed: {base:.4g} -> {new:.4g} "
                    f"(-{(1 - ratio) * 100:.0f}%, limit -{threshold * 100:.0f}%)"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("."),
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional regression tolerance (0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    regressions: list[str] = []
    checked = 0
    for name in sorted(GATES):
        fresh_path = args.fresh_dir / name
        base_path = args.baseline_dir / name
        if not fresh_path.exists():
            regressions.append(f"{name}: fresh results missing at {fresh_path}")
            continue
        if not base_path.exists():
            print(f"[bench-gate] {name}: no baseline at {base_path}; skipping")
            continue
        baseline = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        found = compare(name, baseline, fresh, args.threshold)
        checked += 1
        if found:
            regressions.extend(found)
        else:
            print(f"[bench-gate] {name}: ok (threshold {args.threshold:.0%})")

    for line in regressions:
        print(f"[bench-gate] REGRESSION: {line}", file=sys.stderr)
    if not regressions and checked == 0:
        print("[bench-gate] nothing compared (no baselines yet)")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
