"""Benchmark regression gate.

Compares freshly generated ``BENCH_*.json`` documents (written by the
``benchmarks/`` suite) against the committed baselines and fails when a
gated metric regressed by more than the threshold.

Every gated metric has a *kind*, and the ``--mode`` flag selects which
kinds a run enforces:

* ``deterministic`` — simulated (virtual) durations.  Given the seeds
  these are exact, so they get a tight default threshold and CI runs
  them as a **blocking** job: only a real model/protocol change moves
  them, and such a change must regenerate the baseline in the same PR.
* ``wall`` — wall-clock seconds on shared runners.  Inherently noisy;
  CI runs them ``continue-on-error`` as a prompt to look, never a
  merge blocker.  This mode also enforces the speedup metrics below.
* ``speedup`` — wall-clock ratios (thread vs process).  Noisy *and*
  cpu-bound: when the fresh runner has fewer cores than the baseline's
  ``cpu_count`` records, the comparison is physically meaningless, so
  the gate skips it loudly (a GitHub ``::warning::`` annotation)
  instead of failing — or, worse, silently passing a 1-core run.
* ``all`` (default) — everything above.

Usage::

    python tools/bench_gate.py --baseline-dir baselines --fresh-dir .
    python tools/bench_gate.py --mode deterministic      # blocking CI job
    python tools/bench_gate.py --mode wall --threshold 0.4

Only stdlib, so it runs anywhere CI can run Python.  Missing baselines
(first run of a new benchmark) are reported and tolerated; missing
*fresh* files fail, because that means the benchmark suite itself broke.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Gated metrics per benchmark document: {path: (direction, kind)}.
# Paths are dot-separated; a "*" segment fans out over every key of a
# dict.  Direction "lower" means smaller is better (wall times),
# "higher" the opposite (speedups).  Kind is "deterministic", "wall",
# or "speedup" (see the module docstring).
GATES: dict[str, dict[str, tuple[str, str]]] = {
    "BENCH_backend.json": {
        "strategies.*.sim_virtual_duration": ("lower", "deterministic"),
        "strategies.*.thread_wall_seconds": ("lower", "wall"),
    },
    "BENCH_process.json": {
        "strategies.*.process_wall_seconds": ("lower", "wall"),
        "best_speedup": ("higher", "speedup"),
    },
    "BENCH_topology.json": {
        "topologies.*.*": ("lower", "deterministic"),
    },
    "BENCH_scale.json": {
        "des.*.virtual_duration": ("lower", "deterministic"),
        "des.*.wall_seconds": ("lower", "wall"),
        "best_speedup_at_4": ("higher", "speedup"),
    },
    "BENCH_obs.json": {
        # Tracing must never move the simulated schedule: both virtual
        # durations are exact given the seed, and they must stay equal
        # to each other (asserted inside the benchmark itself).
        "des.virtual_duration_off": ("lower", "deterministic"),
        "des.virtual_duration_on": ("lower", "deterministic"),
        "des.wall_seconds_off": ("lower", "wall"),
        "des.wall_seconds_on": ("lower", "wall"),
        "thread.wall_seconds_off": ("lower", "wall"),
    },
}

#: Kinds each --mode enforces.
MODES = {
    "deterministic": {"deterministic"},
    "wall": {"wall", "speedup"},
    "all": {"deterministic", "wall", "speedup"},
}


def resolve(doc: object, path: str) -> dict[str, float]:
    """Expand a dotted path (with "*" fan-out) to {concrete_path: value}."""
    out: dict[str, float] = {}

    def walk(node: object, segments: list[str], trail: list[str]) -> None:
        if not segments:
            if isinstance(node, (int, float)) and not isinstance(node, bool):
                out[".".join(trail)] = float(node)
            return
        head, rest = segments[0], segments[1:]
        if not isinstance(node, dict):
            return
        keys = sorted(node) if head == "*" else ([head] if head in node else [])
        for key in keys:
            walk(node[key], rest, trail + [key])

    walk(doc, path.split("."), [])
    return out


def annotate(message: str) -> None:
    """Loud skip: a GitHub Actions warning annotation plus plain stdout."""
    print(f"::warning title=bench-gate::{message}")
    print(f"[bench-gate] SKIPPED: {message}")


def compare(name: str, baseline: dict, fresh: dict, *, kinds: set[str],
            threshold: float, det_threshold: float) -> list[str]:
    """Return a list of regression descriptions for one document."""
    regressions: list[str] = []
    base_cpus = baseline.get("cpu_count")
    fresh_cpus = fresh.get("cpu_count")
    for path, (direction, kind) in GATES[name].items():
        if kind not in kinds:
            continue
        if kind == "speedup" and base_cpus and fresh_cpus \
                and fresh_cpus < base_cpus:
            annotate(
                f"{name}:{path}: runner has {fresh_cpus} CPU(s) but the "
                f"baseline was recorded on {base_cpus}; speedup "
                "comparison skipped")
            continue
        limit = det_threshold if kind == "deterministic" else threshold
        base_vals = resolve(baseline, path)
        fresh_vals = resolve(fresh, path)
        for key, base in sorted(base_vals.items()):
            if key not in fresh_vals:
                regressions.append(f"{name}:{key} vanished from fresh run")
                continue
            new = fresh_vals[key]
            if base <= 0:
                continue  # degenerate baseline; nothing to gate against
            ratio = new / base
            if direction == "lower" and ratio > 1 + limit:
                regressions.append(
                    f"{name}:{key} regressed: {base:.4g} -> {new:.4g} "
                    f"(+{(ratio - 1) * 100:.1f}%, limit +{limit * 100:.1f}%)"
                )
            elif direction == "higher" and ratio < 1 - limit:
                regressions.append(
                    f"{name}:{key} regressed: {base:.4g} -> {new:.4g} "
                    f"(-{(1 - ratio) * 100:.1f}%, limit -{limit * 100:.1f}%)"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("."),
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional tolerance for wall/speedup metrics (0.25 = 25%%)",
    )
    parser.add_argument(
        "--det-threshold",
        type=float,
        default=0.001,
        help="fractional tolerance for deterministic (virtual-duration) "
             "metrics; these are exact given the seeds, so the default "
             "only absorbs float formatting (0.001 = 0.1%%)",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(MODES),
        default="all",
        help="which metric kinds to enforce (see module docstring)",
    )
    args = parser.parse_args(argv)
    kinds = MODES[args.mode]

    regressions: list[str] = []
    checked = 0
    for name in sorted(GATES):
        if not any(kind in kinds for _, kind in GATES[name].values()):
            continue  # no gated metric of the requested kinds
        fresh_path = args.fresh_dir / name
        base_path = args.baseline_dir / name
        if not fresh_path.exists():
            regressions.append(f"{name}: fresh results missing at {fresh_path}")
            continue
        if not base_path.exists():
            print(f"[bench-gate] {name}: no baseline at {base_path}; skipping")
            continue
        baseline = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        found = compare(name, baseline, fresh, kinds=kinds,
                        threshold=args.threshold,
                        det_threshold=args.det_threshold)
        checked += 1
        if found:
            regressions.extend(found)
        else:
            print(f"[bench-gate] {name}: ok (mode {args.mode})")

    for line in regressions:
        print(f"[bench-gate] REGRESSION: {line}", file=sys.stderr)
    if not regressions and checked == 0:
        print("[bench-gate] nothing compared (no baselines yet)")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
