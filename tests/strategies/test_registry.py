"""Tests for the strategy taxonomy and registry."""

import pytest

from repro.core.strategies import (
    ALL_DLB_STRATEGIES,
    CUSTOMIZED,
    GCDLB,
    GDDLB,
    LCDLB,
    LDDLB,
    NO_DLB,
    get_strategy,
)


def test_four_extreme_points():
    axes = {(s.centralized, s.global_scope) for s in ALL_DLB_STRATEGIES}
    assert axes == {(True, True), (False, True), (True, False),
                    (False, False)}


def test_codes_match_paper():
    assert GCDLB.code == "GC" and GCDLB.centralized and GCDLB.global_scope
    assert GDDLB.code == "GD" and GDDLB.distributed and GDDLB.global_scope
    assert LCDLB.code == "LC" and LCDLB.centralized and LCDLB.local
    assert LDDLB.code == "LD" and LDDLB.distributed and LDDLB.local


def test_lookup_by_code_and_name():
    assert get_strategy("gd") is GDDLB
    assert get_strategy("GDDLB") is GDDLB
    assert get_strategy("none") is NO_DLB
    assert get_strategy("custom") is CUSTOMIZED


def test_unknown_strategy_raises():
    with pytest.raises(KeyError):
        get_strategy("XYZ")


def test_no_dlb_is_not_dlb():
    assert not NO_DLB.is_dlb
    assert all(s.is_dlb for s in ALL_DLB_STRATEGIES)


def test_describe_mentions_axes():
    assert "global" in GDDLB.describe()
    assert "distributed" in GDDLB.describe()
    assert "local" in LCDLB.describe()
    assert "centralized" in LCDLB.describe()


def test_with_group_size():
    spec = LDDLB.with_group_size(4)
    assert spec.group_size == 4
    assert spec.code == "LD"
    assert LDDLB.group_size is None  # original untouched


def test_specs_frozen():
    with pytest.raises(Exception):
        GDDLB.code = "XX"  # type: ignore[misc]
