"""Unit and property tests for the redistribution planner (§3.3–§3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import DlbPolicy
from repro.core.redistribution import (
    SyncProfile,
    make_movement_cost_estimator,
    plan_redistribution,
)

POLICY = DlbPolicy()
MEAN_ITER = 0.01


def prof(node, work, rate, count=None):
    return SyncProfile(node=node, remaining_work=work,
                       remaining_count=count if count is not None
                       else max(int(work / MEAN_ITER), 0),
                       rate=rate)


def test_empty_profiles_rejected():
    with pytest.raises(ValueError):
        plan_redistribution([], POLICY, MEAN_ITER)


def test_duplicate_nodes_rejected():
    with pytest.raises(ValueError):
        plan_redistribution([prof(0, 1.0, 1.0), prof(0, 1.0, 1.0)],
                            POLICY, MEAN_ITER)


def test_all_done_terminates():
    plan = plan_redistribution([prof(0, 0.0, 1.0), prof(1, 0.0, 1.0)],
                               POLICY, MEAN_ITER)
    assert plan.done
    assert plan.retire == (0, 1)
    assert plan.active == ()


def test_balanced_system_does_not_move():
    plan = plan_redistribution([prof(0, 1.0, 1.0), prof(1, 1.0, 1.0)],
                               POLICY, MEAN_ITER)
    assert not plan.move
    assert plan.reason == "below-move-threshold"
    assert plan.active == (0, 1)


def test_imbalance_moves_from_slow_to_fast():
    plan = plan_redistribution(
        [prof(0, 2.0, 1.0), prof(1, 0.0, 1.0)], POLICY, MEAN_ITER)
    assert plan.move
    assert len(plan.transfers) == 1
    t = plan.transfers[0]
    assert t.src == 0 and t.dst == 1
    assert t.work == pytest.approx(1.0)


def test_shares_proportional_to_rates():
    plan = plan_redistribution(
        [prof(0, 3.0, 3.0), prof(1, 0.0, 1.0)], POLICY, MEAN_ITER)
    assert plan.move
    assert plan.shares[0] == pytest.approx(2.25)
    assert plan.shares[1] == pytest.approx(0.75)


def test_idle_finisher_stays_active_on_move():
    plan = plan_redistribution(
        [prof(0, 2.0, 1.0), prof(1, 0.0, 2.0)], POLICY, MEAN_ITER)
    assert plan.move
    assert 1 in plan.active


def test_idle_node_retires_on_no_move():
    # Tiny remainder: below the absolute move floor.
    plan = plan_redistribution(
        [prof(0, 0.004, 1.0), prof(1, 0.0, 1.0)], POLICY, MEAN_ITER)
    assert not plan.move
    assert 1 in plan.retire
    assert plan.active == (0,)


def test_sub_iteration_moves_blocked():
    """Moving less than one whole iteration must be refused."""
    plan = plan_redistribution(
        [prof(0, 0.012, 1.0), prof(1, 0.0, 1.0)], POLICY, MEAN_ITER)
    assert not plan.move
    assert plan.reason == "below-move-threshold"


def test_unprofitable_move_blocked():
    """Within 10% of balance already: not worth the disruption."""
    plan = plan_redistribution(
        [prof(0, 1.04, 1.0), prof(1, 0.96, 1.0)],
        DlbPolicy(min_move_fraction=0.0, min_move_iterations=0.0,
                  min_transfer_iterations=0.0),
        MEAN_ITER)
    assert not plan.move
    assert plan.reason == "unprofitable"


def test_profitability_uses_threshold():
    # 2:1 imbalance: balanced time 1.5 < 0.9 * 2.0 -> move.
    plan = plan_redistribution(
        [prof(0, 2.0, 1.0), prof(1, 1.0, 1.0)], POLICY, MEAN_ITER)
    assert plan.move
    assert plan.predicted_current == pytest.approx(2.0)
    assert plan.predicted_balanced == pytest.approx(1.5)


def test_movement_cost_inclusion_blocks_marginal_move():
    profiles = [prof(0, 2.0, 1.0), prof(1, 1.2, 1.0)]
    base = DlbPolicy(include_movement_cost=False)
    incl = DlbPolicy(include_movement_cost=True)
    costly = lambda transfers: 10.0  # noqa: E731 - huge movement cost
    assert plan_redistribution(profiles, base, MEAN_ITER, costly).move
    assert not plan_redistribution(profiles, incl, MEAN_ITER, costly).move


def test_movement_cost_estimator():
    est = make_movement_cost_estimator(latency=1e-3, bandwidth=1e6,
                                       dc_bytes=1000,
                                       mean_iteration_time=0.01)
    from repro.message.messages import TransferOrder
    cost = est([TransferOrder(0, 1, 0.1)])  # 10 iterations -> 10 kB
    assert cost == pytest.approx(1e-3 + 0.01)


def test_zero_rates_fall_back_to_equal():
    plan = plan_redistribution(
        [prof(0, 2.0, 0.0), prof(1, 0.0, 0.0)], POLICY, MEAN_ITER)
    assert plan.move
    assert plan.shares[0] == pytest.approx(1.0)


def test_rate_floor_prevents_starvation():
    """A stalled node still receives a share (floored rate)."""
    plan = plan_redistribution(
        [prof(0, 5.0, 10.0), prof(1, 5.0, 0.0)], POLICY, MEAN_ITER)
    assert plan.shares.get(1, 0.0) > 0.0 or 1 in plan.retire


def test_very_slow_node_retired_and_drained():
    """A node whose share rounds below one iteration ships everything."""
    policy = DlbPolicy(retire_fraction=0.5)
    plan = plan_redistribution(
        [prof(0, 0.02, 1000.0), prof(1, 0.02, 1e-4)],
        policy.but(min_move_fraction=0.0), MEAN_ITER)
    if plan.move:
        assert 1 in plan.retire
        # All of node 1's work is covered by its outgoing transfers.
        out = sum(t.work for t in plan.outgoing(1))
        assert out == pytest.approx(0.02, rel=1e-6)


def test_outgoing_incoming_views():
    plan = plan_redistribution(
        [prof(0, 3.0, 1.0), prof(1, 0.0, 1.0), prof(2, 0.0, 1.0)],
        POLICY, MEAN_ITER)
    assert plan.move
    assert {t.dst for t in plan.outgoing(0)} == {1, 2}
    assert len(plan.incoming(1)) == 1


def test_deterministic_for_replication():
    """Two calls with the same inputs yield identical plans (GDDLB
    replicas must agree without communication)."""
    profiles = [prof(0, 2.0, 1.3), prof(1, 0.7, 0.8), prof(2, 0.1, 2.0)]
    a = plan_redistribution(profiles, POLICY, MEAN_ITER)
    b = plan_redistribution(list(reversed(profiles)), POLICY, MEAN_ITER)
    assert a.transfers == b.transfers
    assert a.shares == b.shares
    assert a.active == b.active


@st.composite
def profile_sets(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    out = []
    for i in range(n):
        work = draw(st.floats(min_value=0.0, max_value=100.0))
        rate = draw(st.floats(min_value=0.0, max_value=10.0))
        out.append(prof(i, work, rate))
    return out


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_plan_conserves_work(profiles):
    """Work is neither created nor destroyed by a plan."""
    plan = plan_redistribution(profiles, POLICY, MEAN_ITER)
    total = sum(p.remaining_work for p in profiles)
    if plan.done:
        assert total == pytest.approx(0.0, abs=1e-9)
        return
    if plan.move:
        final = {p.node: p.remaining_work for p in profiles}
        for t in plan.transfers:
            final[t.src] -= t.work
            final[t.dst] += t.work
        assert sum(final.values()) == pytest.approx(total, rel=1e-9)
        assert all(v >= -1e-9 for v in final.values())


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_plan_transfers_have_positive_work(profiles):
    plan = plan_redistribution(profiles, POLICY, MEAN_ITER)
    for t in plan.transfers:
        assert t.work > 0
        assert t.src != t.dst


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_plan_partitions_nodes(profiles):
    """Every node is either active or retired, never both."""
    plan = plan_redistribution(profiles, POLICY, MEAN_ITER)
    nodes = {p.node for p in profiles}
    assert set(plan.active) | set(plan.retire) == nodes
    assert set(plan.active) & set(plan.retire) == set()


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_retired_senders_fully_drained(profiles):
    plan = plan_redistribution(profiles, POLICY, MEAN_ITER)
    if not plan.move:
        return
    work = {p.node: p.remaining_work for p in profiles}
    for node in plan.retire:
        outgoing = sum(t.work for t in plan.outgoing(node))
        incoming = sum(t.work for t in plan.incoming(node))
        assert incoming == 0.0
        assert outgoing == pytest.approx(work[node], rel=1e-6, abs=1e-9)


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_profitable_moves_improve_prediction(profiles):
    plan = plan_redistribution(profiles, POLICY, MEAN_ITER)
    if plan.move:
        assert plan.predicted_balanced <= \
            (1 - POLICY.improvement_threshold) * plan.predicted_current + 1e-12
