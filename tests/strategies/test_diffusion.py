"""Unit and property tests for the diffusion planner.

Includes the Demirel-bound convergence property: on a seeded random
graph, repeated diffusion sweeps must stop moving work within the
sweep count :func:`repro.machine.analytics.diffusion_sweep_bound`
derives from the diffusion matrix spectrum.
"""

import pytest

from repro.core.diffusion import (
    diffusion_alpha,
    make_diffusion_planner,
    plan_diffusion,
)
from repro.core.policy import DlbPolicy
from repro.core.redistribution import SyncProfile
from repro.machine.analytics import (
    diffusion_convergence_rate,
    diffusion_sweep_bound,
)
from repro.network.topology import Topology

MEAN_ITER = 0.01
POLICY = DlbPolicy()


def _profiles(work):
    return [SyncProfile(node=n, remaining_work=w,
                        remaining_count=int(w / MEAN_ITER), rate=1.0)
            for n, w in enumerate(work)]


def _plan(work, topology, policy=POLICY):
    return plan_diffusion(_profiles(work), topology, policy, MEAN_ITER)


# -- basic planning ------------------------------------------------------

def test_alpha_is_degree_bound():
    assert diffusion_alpha(Topology.ring(6)) == pytest.approx(1 / 3)
    assert diffusion_alpha(Topology.bus(5)) == pytest.approx(1 / 5)


def test_flows_only_along_edges():
    ring = Topology.ring(4)
    plan = _plan([4.0, 0.0, 0.0, 0.0], ring)
    assert plan.move
    for t in plan.transfers:
        assert t.dst in ring.neighbors(t.src)


def test_flow_magnitude_is_alpha_share_floored():
    # Ring of 4, alpha = 1/3: edge (0,1) carries alpha * 3.0 = 1.0,
    # an exact multiple of the mean iteration time.
    plan = _plan([3.0, 0.0, 0.0, 0.0], Topology.ring(4))
    flows = {(t.src, t.dst): t.work for t in plan.transfers}
    assert flows[(0, 1)] == pytest.approx(1.0)
    assert flows[(0, 3)] == pytest.approx(1.0)


def test_work_is_conserved():
    plan = _plan([5.0, 1.0, 0.25, 2.5], Topology.mesh(4))
    assert sum(plan.shares.values()) == pytest.approx(8.75)
    outgoing = sum(t.work for t in plan.transfers)
    assert plan.work_to_move == pytest.approx(outgoing)


def test_deterministic_in_profile_order():
    work = [5.0, 1.0, 0.25, 2.5]
    a = plan_diffusion(_profiles(work), Topology.torus(4), POLICY, MEAN_ITER)
    b = plan_diffusion(list(reversed(_profiles(work))), Topology.torus(4),
                       POLICY, MEAN_ITER)
    assert a.transfers == b.transfers
    assert a.shares == b.shares


def test_quantum_floors_small_flows():
    # Difference below one transfer quantum: nothing ships.
    policy = DlbPolicy(min_transfer_iterations=5)
    plan = _plan([0.21, 0.20, 0.20, 0.19], Topology.ring(4), policy)
    assert not plan.move
    assert plan.reason == "diffusion-converged"


def test_converged_plan_retires_idle_nodes():
    plan = _plan([0.01, 0.0, 0.01, 0.0], Topology.ring(4))
    assert not plan.move
    assert set(plan.retire) == {1, 3}
    assert set(plan.active) == {0, 2}


def test_all_done_reports_done():
    plan = _plan([0.0, 0.0, 0.0, 0.0], Topology.ring(4))
    assert plan.done
    assert set(plan.retire) == {0, 1, 2, 3}


def test_absent_nodes_drop_out_of_sweep():
    """Dead/retired nodes (missing profiles) carry no flow; survivors
    diffuse on the induced subgraph."""
    ring = Topology.ring(4)
    profiles = [p for p in _profiles([4.0, 0.0, 0.0, 0.0]) if p.node != 1]
    plan = plan_diffusion(profiles, ring, POLICY, MEAN_ITER)
    assert all(t.src != 1 and t.dst != 1 for t in plan.transfers)
    assert {(t.src, t.dst) for t in plan.transfers} == {(0, 3)}


def test_sender_cannot_overdraw():
    """A hub poorer than alpha * (sum of differences) ships only what it
    holds: edges later in the deterministic order get less."""
    star = Topology("star", 4, ((0, 1), (0, 2), (0, 3)))
    plan = _plan([0.05, 0.0, 0.0, 0.0], star,
                 DlbPolicy(min_transfer_iterations=1))
    shipped = sum(t.work for t in plan.transfers)
    assert shipped <= 0.05 + 1e-12
    assert plan.shares[0] >= 0.0


def test_movement_cost_fn_is_consulted():
    calls = []

    def cost(transfers):
        calls.append(tuple(transfers))
        return 42.0

    planner = make_diffusion_planner(Topology.ring(4), POLICY, MEAN_ITER,
                                     movement_cost_fn=cost)
    plan = planner(_profiles([4.0, 0.0, 0.0, 0.0]))
    assert plan.movement_cost == 42.0
    assert calls


def test_input_validation():
    with pytest.raises(ValueError, match="at least one profile"):
        plan_diffusion([], Topology.ring(4), POLICY, MEAN_ITER)
    with pytest.raises(ValueError, match="positive"):
        plan_diffusion(_profiles([1.0]), Topology.ring(1), POLICY, 0.0)
    dup = _profiles([1.0, 1.0])
    dup[1] = SyncProfile(node=0, remaining_work=1.0, remaining_count=1,
                         rate=1.0)
    with pytest.raises(ValueError, match="duplicate"):
        plan_diffusion(dup, Topology.ring(2), POLICY, MEAN_ITER)


# -- convergence property (Demirel bound) --------------------------------

def _sweep_until_converged(work, topology, policy, max_sweeps):
    """Apply diffusion plans repeatedly; return the sweep count at which
    the planner stops moving work."""
    work = list(work)
    total = sum(work)
    for sweep in range(max_sweeps + 1):
        profiles = [SyncProfile(node=n, remaining_work=w,
                                remaining_count=max(int(w / MEAN_ITER), 1),
                                rate=1.0)
                    for n, w in enumerate(work)]
        plan = plan_diffusion(profiles, topology, policy, MEAN_ITER)
        if not plan.move:
            return sweep
        for t in plan.transfers:
            work[t.src] -= t.work
            work[t.dst] += t.work
        assert sum(work) == pytest.approx(total)
    pytest.fail(f"no convergence within {max_sweeps} sweeps")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_diffusion_converges_within_demirel_bound(seed):
    """Property (c): on a seeded random graph, quantized FOS stops
    moving within the spectral sweep bound."""
    topology = Topology.random_graph(8, extra_edges=4, seed=seed)
    policy = DlbPolicy(min_transfer_iterations=1)
    import random
    rng = random.Random(seed)
    work = [rng.uniform(0.0, 4.0) for _ in range(8)]
    mean = sum(work) / len(work)
    imbalance = max(abs(w - mean) for w in work)
    quantum = max(policy.min_transfer_iterations, 1) * MEAN_ITER
    bound = diffusion_sweep_bound(topology, imbalance, quantum)
    sweeps = _sweep_until_converged(work, topology, policy,
                                    max_sweeps=bound)
    assert sweeps <= bound


def test_convergence_rate_in_unit_interval():
    for topo in (Topology.ring(6), Topology.mesh(6), Topology.torus(8),
                 Topology.random_graph(7, 3, seed=9)):
        gamma = diffusion_convergence_rate(topo)
        assert 0.0 < gamma < 1.0


def test_sweep_bound_zero_when_already_balanced():
    assert diffusion_sweep_bound(Topology.ring(4), 0.0, 0.01) == 0
    with pytest.raises(ValueError):
        diffusion_sweep_bound(Topology.ring(4), 1.0, 0.0)
