"""Tests for DLB policy validation."""

import pytest

from repro.core.policy import DlbPolicy


def test_defaults_match_paper():
    p = DlbPolicy()
    assert p.improvement_threshold == pytest.approx(0.10)
    assert p.include_movement_cost is False


def test_improvement_threshold_bounds():
    with pytest.raises(ValueError):
        DlbPolicy(improvement_threshold=1.0)
    with pytest.raises(ValueError):
        DlbPolicy(improvement_threshold=-0.1)


def test_min_move_fraction_bounds():
    with pytest.raises(ValueError):
        DlbPolicy(min_move_fraction=1.0)


def test_negative_costs_rejected():
    with pytest.raises(ValueError):
        DlbPolicy(delta_seconds=-1.0)
    with pytest.raises(ValueError):
        DlbPolicy(min_move_iterations=-1.0)


def test_rate_floor_bounds():
    with pytest.raises(ValueError):
        DlbPolicy(rate_floor_fraction=0.0)
    with pytest.raises(ValueError):
        DlbPolicy(rate_floor_fraction=2.0)


def test_but_returns_modified_copy():
    p = DlbPolicy()
    q = p.but(improvement_threshold=0.2, include_movement_cost=True)
    assert q.improvement_threshold == 0.2
    assert q.include_movement_cost is True
    assert p.improvement_threshold == 0.10


def test_policy_hashable():
    assert hash(DlbPolicy()) == hash(DlbPolicy())
