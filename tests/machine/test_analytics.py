"""Tests for the closed-form / numeric load analytics."""

import pytest

from repro.apps.workload import LoopSpec
from repro.machine.analytics import (
    expected_capacity_rate,
    expected_inverse_factor,
    expected_static_slowdown,
    ideal_balanced_time,
)
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


def test_expected_inverse_factor_known_values():
    assert expected_inverse_factor(0) == pytest.approx(1.0)
    assert expected_inverse_factor(1) == pytest.approx(0.75)
    # The paper's m_l = 5: H_6 / 6 = 2.45 / 6.
    assert expected_inverse_factor(5) == pytest.approx(2.45 / 6, rel=1e-9)


def test_expected_inverse_factor_validation():
    with pytest.raises(ValueError):
        expected_inverse_factor(-1)


def test_expected_capacity_rate():
    cluster = ClusterSpec.heterogeneous([1.0, 2.0], max_load=5)
    assert expected_capacity_rate(cluster) == pytest.approx(
        3.0 * 2.45 / 6)


def test_ideal_balanced_time_no_load():
    loop = LoopSpec(name="x", n_iterations=40, iteration_time=0.1,
                    dc_bytes=0)
    stations = ClusterSpec.homogeneous(4, max_load=0).build()
    assert ideal_balanced_time(loop, stations) == pytest.approx(1.0,
                                                                rel=1e-6)


def test_ideal_balanced_time_is_lower_bound(small_loop, cluster4, options):
    stations = cluster4.build()
    ideal = ideal_balanced_time(small_loop, stations)
    for scheme in ("NONE", "GDDLB", "LDDLB", "WS"):
        stats = run_loop(small_loop, cluster4, scheme, options=options)
        assert stats.duration >= ideal * (1 - 1e-9), scheme


def test_dlb_approaches_ideal_under_stable_load(options, small_loop):
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((3,), (1,), (0,), (2,)))
    stations = cluster.build()
    ideal = ideal_balanced_time(small_loop, stations)
    stats = run_loop(small_loop, cluster, "GDDLB", options=options)
    assert stats.duration <= ideal * 1.3


def test_expected_static_slowdown_increases_with_p():
    s4 = expected_static_slowdown(4, 5, seed=1)
    s16 = expected_static_slowdown(16, 5, seed=1)
    assert 1.5 < s4 < s16 < 3.5


def test_expected_static_slowdown_shrinks_with_windows():
    """Averaging over many load windows evens processors out."""
    one = expected_static_slowdown(4, 5, n_windows=1, seed=2)
    many = expected_static_slowdown(4, 5, n_windows=50, seed=2)
    assert many < one
    assert many < 1.3


def test_expected_static_slowdown_no_load():
    assert expected_static_slowdown(4, 0) == pytest.approx(1.0)


def test_expected_static_slowdown_validation():
    with pytest.raises(ValueError):
        expected_static_slowdown(0, 5)
