"""Unit and property tests for the external load functions (Figure 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.load import (
    ConstantLoad,
    DiscreteRandomLoad,
    TraceLoad,
)


def test_persistence_must_be_positive():
    with pytest.raises(ValueError):
        ConstantLoad(0, persistence=0.0)


def test_constant_load_level():
    load = ConstantLoad(3, persistence=1.0)
    assert load.level(0.0) == 3
    assert load.level(123.4) == 3


def test_constant_load_integral_linear():
    load = ConstantLoad(1, persistence=1.0)  # factor 1/(1+1) = 0.5
    assert load.integral(4.0) == pytest.approx(2.0)


def test_fractional_constant_load():
    load = ConstantLoad(1.5, persistence=1.0)
    assert load.level(0.0) == pytest.approx(1.5)
    assert load.integral(5.0) == pytest.approx(5.0 / 2.5)


def test_trace_load_replays_sequence():
    load = TraceLoad([0, 2, 5], persistence=1.0)
    assert load.level(0.5) == 0
    assert load.level(1.5) == 2
    assert load.level(2.5) == 5
    # Past the trace, the last level repeats.
    assert load.level(99.0) == 5


def test_trace_load_requires_levels():
    with pytest.raises(ValueError):
        TraceLoad([])


def test_negative_levels_rejected():
    with pytest.raises(ValueError):
        TraceLoad([1, -2])


def test_discrete_random_levels_within_range():
    load = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=1)
    levels = [load.window_level(k) for k in range(500)]
    assert min(levels) >= 0
    assert max(levels) <= 5
    assert len(set(levels)) > 1  # actually random


def test_discrete_random_reproducible():
    a = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=9)
    b = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=9)
    assert [a.window_level(k) for k in range(100)] == \
           [b.window_level(k) for k in range(100)]


def test_different_seeds_differ():
    a = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=1)
    b = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=2)
    assert [a.window_level(k) for k in range(50)] != \
           [b.window_level(k) for k in range(50)]


def test_level_negative_time_rejected():
    with pytest.raises(ValueError):
        ConstantLoad(0).level(-1.0)


def test_integral_zero_at_origin():
    assert DiscreteRandomLoad(seed=0).integral(0.0) == 0.0


def test_integral_piecewise_by_hand():
    load = TraceLoad([1, 3], persistence=2.0)
    # [0,2): factor 1/2 -> 1.0 ; [2,3): factor 1/4 -> 0.25
    assert load.integral(3.0) == pytest.approx(1.25)


def test_inverse_integral_round_trip():
    load = DiscreteRandomLoad(max_load=5, persistence=0.7, seed=3)
    for target in (0.0, 0.3, 1.7, 12.9):
        t = load.inverse_integral(target)
        assert load.integral(t) == pytest.approx(target, abs=1e-9)


def test_effective_load_constant():
    load = ConstantLoad(4, persistence=1.0)
    assert load.effective_load(0.0, 10.0) == pytest.approx(5.0)


def test_effective_load_windows_formula():
    load = TraceLoad([0, 1, 3], persistence=1.0)
    # (b-a+1) / sum 1/(l+1) over windows 0..2 = 3 / (1 + 1/2 + 1/4)
    assert load.effective_load_windows(0, 2) == pytest.approx(3 / 1.75)


def test_effective_load_point_interval():
    load = TraceLoad([2], persistence=1.0)
    assert load.effective_load(0.5, 0.5) == pytest.approx(3.0)


def test_mean_inverse_factor_between_extremes():
    load = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=4)
    load.window_level(999)
    m = load.mean_inverse_factor()
    assert 1 / 6 < m < 1.0


@given(st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=0.0, max_value=100.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_integral_monotone(t0, t1, seed):
    """F is non-decreasing: more elapsed time, at least as much capacity."""
    load = DiscreteRandomLoad(max_load=5, persistence=0.9, seed=seed)
    lo, hi = sorted((t0, t1))
    assert load.integral(hi) >= load.integral(lo) - 1e-12


@given(st.floats(min_value=0.001, max_value=50.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_inverse_integral_is_right_inverse(target, seed):
    load = DiscreteRandomLoad(max_load=4, persistence=1.3, seed=seed)
    t = load.inverse_integral(target)
    assert load.integral(t) == pytest.approx(target, rel=1e-9, abs=1e-9)


@given(st.floats(min_value=0.0, max_value=30.0),
       st.floats(min_value=0.01, max_value=30.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_effective_load_bounds(t0, dt, seed):
    """mu is always within [1, max_load + 1]."""
    load = DiscreteRandomLoad(max_load=5, persistence=0.8, seed=seed)
    mu = load.effective_load(t0, t0 + dt)
    assert 1.0 - 1e-9 <= mu <= 6.0 + 1e-9
