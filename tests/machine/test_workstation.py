"""Unit and property tests for workstation time math."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.load import ConstantLoad, DiscreteRandomLoad, TraceLoad
from repro.machine.workstation import Workstation


def test_speed_must_be_positive():
    with pytest.raises(ValueError):
        Workstation(0, speed=0.0)


def test_default_name():
    assert Workstation(3).name == "ws3"


def test_unloaded_capacity_equals_elapsed():
    ws = Workstation(0, speed=1.0, load=ConstantLoad(0))
    assert ws.capacity(0.0, 5.0) == pytest.approx(5.0)


def test_speed_scales_capacity():
    ws = Workstation(0, speed=2.0, load=ConstantLoad(0))
    assert ws.capacity(0.0, 5.0) == pytest.approx(10.0)


def test_load_divides_effective_speed():
    ws = Workstation(0, speed=1.0, load=ConstantLoad(4))
    assert ws.effective_speed(0.0) == pytest.approx(0.2)
    assert ws.capacity(0.0, 10.0) == pytest.approx(2.0)


def test_time_to_complete_unloaded():
    ws = Workstation(0, speed=2.0, load=ConstantLoad(0))
    assert ws.time_to_complete(1.0, 4.0) == pytest.approx(3.0)


def test_time_to_complete_zero_work():
    ws = Workstation(0)
    assert ws.time_to_complete(7.0, 0.0) == 7.0


def test_time_to_complete_negative_work_rejected():
    with pytest.raises(ValueError):
        Workstation(0).time_to_complete(0.0, -1.0)


def test_time_spans_load_windows():
    ws = Workstation(0, speed=1.0, load=TraceLoad([0, 1], persistence=1.0))
    # 1 unit of work in window 0 (rate 1), then rate 1/2.
    assert ws.time_to_complete(0.0, 2.0) == pytest.approx(3.0)


def test_capacity_inverse_of_time_to_complete():
    ws = Workstation(0, speed=1.5,
                     load=DiscreteRandomLoad(max_load=5, persistence=0.6,
                                             seed=11))
    t = ws.time_to_complete(2.0, 7.5)
    assert ws.capacity(2.0, t) == pytest.approx(7.5, abs=1e-9)


def test_effective_load_and_average_speed_consistent():
    ws = Workstation(0, speed=3.0,
                     load=DiscreteRandomLoad(max_load=4, persistence=0.5,
                                             seed=5))
    mu = ws.effective_load(0.0, 4.0)
    assert ws.average_effective_speed(0.0, 4.0) == pytest.approx(3.0 / mu)


def test_capacity_backwards_interval_rejected():
    with pytest.raises(ValueError):
        Workstation(0).capacity(2.0, 1.0)


@given(st.floats(min_value=0.0, max_value=50.0),
       st.floats(min_value=0.001, max_value=50.0),
       st.floats(min_value=0.1, max_value=8.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=80, deadline=None)
def test_round_trip_work_time(start, work, speed, seed):
    """time_to_complete and capacity are exact inverses."""
    ws = Workstation(0, speed=speed,
                     load=DiscreteRandomLoad(max_load=5, persistence=0.75,
                                             seed=seed))
    t = ws.time_to_complete(start, work)
    assert t >= start
    assert ws.capacity(start, t) == pytest.approx(work, rel=1e-9, abs=1e-9)


@given(st.floats(min_value=0.001, max_value=20.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_completion_time_bounded_by_load_extremes(work, seed):
    """Completion takes between work/S and work*(m+1)/S wall seconds."""
    ws = Workstation(0, speed=1.0,
                     load=DiscreteRandomLoad(max_load=5, persistence=1.1,
                                             seed=seed))
    t = ws.time_to_complete(0.0, work)
    assert work - 1e-9 <= t <= 6.0 * work + 1e-9


@given(st.floats(min_value=0.0, max_value=10.0),
       st.floats(min_value=0.0, max_value=10.0),
       st.floats(min_value=0.0, max_value=10.0),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_capacity_additive(a, b, c, seed):
    """capacity(t0,t2) == capacity(t0,t1) + capacity(t1,t2)."""
    t0, t1, t2 = sorted((a, b, c))
    ws = Workstation(0, speed=2.0,
                     load=DiscreteRandomLoad(max_load=3, persistence=0.4,
                                             seed=seed))
    total = ws.capacity(t0, t2)
    split = ws.capacity(t0, t1) + ws.capacity(t1, t2)
    assert total == pytest.approx(split, rel=1e-9, abs=1e-9)
