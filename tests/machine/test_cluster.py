"""Unit tests for cluster specs and group building."""

import pytest

from repro.machine.cluster import ClusterSpec, build_groups


def test_homogeneous_builds_n_stations():
    stations = ClusterSpec.homogeneous(5, seed=1).build()
    assert len(stations) == 5
    assert all(ws.speed == 1.0 for ws in stations)
    assert [ws.index for ws in stations] == list(range(5))


def test_heterogeneous_speeds_preserved():
    spec = ClusterSpec.heterogeneous([1.0, 2.0, 0.5])
    assert [ws.speed for ws in spec.build()] == [1.0, 2.0, 0.5]


def test_empty_cluster_rejected():
    with pytest.raises(ValueError):
        ClusterSpec(speeds=())


def test_nonpositive_speed_rejected():
    with pytest.raises(ValueError):
        ClusterSpec(speeds=(1.0, 0.0))


def test_build_reproducible():
    spec = ClusterSpec.homogeneous(3, max_load=5, seed=77)
    a = spec.build()
    b = spec.build()
    for wa, wb in zip(a, b):
        assert [wa.load.window_level(k) for k in range(50)] == \
               [wb.load.window_level(k) for k in range(50)]


def test_processors_have_independent_loads():
    stations = ClusterSpec.homogeneous(2, max_load=5, seed=3).build()
    a = [stations[0].load.window_level(k) for k in range(60)]
    b = [stations[1].load.window_level(k) for k in range(60)]
    assert a != b


def test_reseeded_changes_realization():
    spec = ClusterSpec.homogeneous(2, max_load=5, seed=1)
    other = spec.reseeded(2)
    a = spec.build()[0]
    b = other.build()[0]
    assert [a.load.window_level(k) for k in range(50)] != \
           [b.load.window_level(k) for k in range(50)]


def test_zero_max_load_means_dedicated():
    stations = ClusterSpec.homogeneous(2, max_load=0).build()
    assert stations[0].load.level(123.0) == 0


def test_load_traces_override_random():
    spec = ClusterSpec(speeds=(1.0, 1.0), load_traces=((1, 1), (3, 3)),
                       persistence=1.0)
    stations = spec.build()
    assert stations[0].load.level(0.0) == 1
    assert stations[1].load.level(0.0) == 3


def test_load_traces_must_match_processors():
    with pytest.raises(ValueError):
        ClusterSpec(speeds=(1.0, 1.0), load_traces=((1,),))


def test_build_groups_even_split():
    assert build_groups(8, 4) == [[0, 1, 2, 3], [4, 5, 6, 7]]


def test_build_groups_remainder_absorbed():
    # 7 into blocks of 3 -> [0-2], [3-5], [6] -> the singleton merges.
    assert build_groups(7, 3) == [[0, 1, 2], [3, 4, 5, 6]]


def test_build_groups_oversized_k_caps():
    assert build_groups(4, 10) == [[0, 1, 2, 3]]


def test_build_groups_k1():
    # K=1 keeps singleton groups except the trailing one, which merges
    # (a lone trailing processor could never rebalance).
    groups = build_groups(4, 1)
    assert [len(g) for g in groups] == [1, 1, 2]


def test_build_groups_bad_k():
    with pytest.raises(ValueError):
        build_groups(4, 0)
