"""End-to-end compiler tests: compile, generate, execute, compare."""

import numpy as np
import pytest

from repro.compiler.driver import compile_source
from repro.machine.cluster import ClusterSpec


MXM = """
/* dlb: array Z(R, C) distribute(BLOCK, WHOLE) */
/* dlb: array X(R, R2) distribute(BLOCK, WHOLE) */
/* dlb: array Y(R2, C) distribute(WHOLE, WHOLE) */
/* dlb: loadbalance */
/* dlb: name mxm */
for i = 0, R {
    for j = 0, C {
        for k = 0, R2 {
            Z[i][j] += X[i][k] * Y[k][j];
        }
    }
}
"""

TRIANGLE = """
/* dlb: array A(N, N) distribute(BLOCK, WHOLE) */
/* dlb: loadbalance */
/* dlb: bitonic */
/* dlb: name tri */
for i = 0, N {
    for j = 0, i { A[i][j] = A[i][j] + 1; }
}
"""

SIZES = dict(R=20, C=8, R2=6)


@pytest.fixture(scope="module")
def mxm():
    return compile_source(MXM)


@pytest.fixture(scope="module")
def tri():
    return compile_source(TRIANGLE)


def test_loop_registry(mxm):
    assert list(mxm.loops) == ["mxm"]
    assert mxm.loops["mxm"].uniform
    assert not mxm.loops["mxm"].bitonic


def test_loop_spec_instantiation(mxm):
    spec = mxm.loops["mxm"].loop_spec(SIZES, op_seconds=1e-6)
    assert spec.n_iterations == 20
    assert spec.iteration_time == pytest.approx(3 * 8 * 6 * 1e-6)
    assert spec.dc_bytes == 8 * 6
    assert spec.replicated_bytes == 8 * 6 * 8


def test_kernel_computes_matmul(mxm):
    arrays = mxm.allocate_arrays(SIZES, seed=1)
    kernel = mxm.loops["mxm"].make_kernel(SIZES, arrays)
    for i in range(SIZES["R"]):
        kernel(i)
    expected = arrays["X"] @ arrays["Y"]
    assert np.allclose(arrays["Z"], expected)


def test_sequential_equals_numpy(mxm):
    arrays = mxm.run_sequential(SIZES, seed=3)
    assert np.allclose(arrays["Z"], arrays["X"] @ arrays["Y"])


def test_parallel_matches_sequential_every_scheme(mxm):
    seq = mxm.run_sequential(SIZES, seed=7)
    for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        cluster = ClusterSpec.homogeneous(3, max_load=3, persistence=0.2,
                                          seed=11)
        stats, par = mxm.run_parallel(SIZES, cluster, scheme, seed=7)
        assert np.allclose(seq["Z"], par["Z"]), scheme
        assert stats[0].strategy != ""


def test_bitonic_spec_pairs_iterations(tri):
    spec = tri.loops["tri"].loop_spec({"N": 9})
    assert spec.n_iterations == 5  # ceil(9/2)
    assert not spec.uniform


def test_bitonic_parallel_matches_sequential(tri):
    sizes = {"N": 13}
    seq = tri.run_sequential(sizes, seed=2)
    cluster = ClusterSpec.homogeneous(3, max_load=2, persistence=0.2, seed=5)
    _stats, par = tri.run_parallel(sizes, cluster, "LDDLB", seed=2)
    assert np.allclose(seq["A"], par["A"])


def test_bitonic_costs_nearly_uniform(tri):
    spec = tri.loops["tri"].loop_spec({"N": 40})
    costs = np.asarray(spec.iteration_time)
    # Pairing j with N-1-j flattens the triangle: spread is small.
    assert costs[:-1].std() / costs[:-1].mean() < 0.05


def test_module_source_is_inspectable(mxm):
    src = mxm.module_source
    assert "def make_loop_spec_mxm" in src
    assert "def make_kernel_mxm" in src
    assert "Auto-generated" in src
    compile(src, "<check>", "exec")  # valid Python


def test_transformed_listing_has_dlb_calls(mxm):
    listing = mxm.transformed_source
    for call in ("DLB_init", "DLB_scatter_data", "DLB_master_sync",
                 "DLB_slave_sync", "DLB_send_interrupt",
                 "DLB_profile_send_move_work", "DLB_gather_data"):
        assert call in listing


def test_array_shapes(mxm):
    assert mxm.array_shape("Z", SIZES) == (20, 8)
    assert mxm.array_shape("Y", SIZES) == (6, 8)


def test_allocation_read_only_arrays_random(mxm):
    arrays = mxm.allocate_arrays(SIZES, seed=0)
    assert arrays["Y"].std() > 0   # input data
    assert np.all(arrays["Z"] == 0)  # output
