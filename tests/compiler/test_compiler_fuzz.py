"""Property-based fuzzing of the compiler pipeline.

Random annotated programs are generated structurally (so they are
always lexically valid), then pushed through parse → analyze →
codegen → exec, checking:

* the generated module is valid Python and registers every loop;
* symbolic trip counts and work functions evaluate consistently with
  brute-force interpretation of the AST;
* sequential kernel execution equals the parallel run under DLB.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler.driver import compile_source
from repro.machine.cluster import ClusterSpec


@st.composite
def annotated_programs(draw):
    """A random 1-or-2-deep loop nest over one or two arrays."""
    n_sym = "N"
    depth = draw(st.integers(min_value=0, max_value=2))
    arrays = ["A"] + (["B"] if draw(st.booleans()) else [])
    inner_vars = ["j", "k"][:depth]

    # Random (always valid) index expressions per dimension.
    def index(var_pool):
        v = draw(st.sampled_from(var_pool))
        return v

    body_var_pool = ["i"] + inner_vars
    # Statement: A[i][x] op= <expr over arrays/consts>
    op = draw(st.sampled_from(["=", "+=", "*="]))
    second = index(body_var_pool)
    rhs_terms = []
    for name in arrays:
        rhs_terms.append(f"{name}[i][{index(body_var_pool)}]")
    rhs = " + ".join(rhs_terms + [str(draw(st.integers(1, 5)))])
    stmt = f"A[i][{second}] {op} {rhs};"

    inner_open = ""
    inner_close = ""
    for v in inner_vars:
        # Inner bounds: constant or triangular (bounded by i needs i>0;
        # use 0, N or 0, i).
        upper = draw(st.sampled_from([n_sym, "i"]))
        inner_open += f"for {v} = 0, {upper} {{ "
        inner_close += " }"

    decls = "\n".join(
        f"/* dlb: array {name}(N, N) distribute(BLOCK, WHOLE) */"
        for name in arrays)
    bitonic = "/* dlb: bitonic */\n" if draw(st.booleans()) else ""
    source = f"""
    {decls}
    /* dlb: loadbalance */
    {bitonic}/* dlb: name fuzz */
    for i = 0, {n_sym} {{
        {inner_open}{stmt}{inner_close}
    }}
    """
    n_value = draw(st.integers(min_value=3, max_value=12))
    return source, n_value


@given(annotated_programs())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pipeline_round_trip(case):
    source, n_value = case
    program = compile_source(source)
    loop = program.loops["fuzz"]
    sizes = {"N": n_value}

    # Generated module must instantiate a coherent spec.
    spec = loop.loop_spec(sizes)
    analysis = loop.analysis
    expected_n = n_value
    if analysis.nest.bitonic and not analysis.uniform:
        expected_n = (n_value + 1) // 2
    assert spec.n_iterations == expected_n
    assert spec.total_work > 0

    # Sequential vs parallel numerical equality (doall programs only:
    # every write goes to row i, which belongs to one iteration).
    seq = program.run_sequential(sizes, seed=3)
    cluster = ClusterSpec.homogeneous(3, max_load=2, persistence=0.2,
                                      seed=9)
    _stats, par = program.run_parallel(sizes, cluster, "GDDLB", seed=3)
    for name in seq:
        assert np.allclose(seq[name], par[name]), name


@given(annotated_programs())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_work_polynomial_matches_bruteforce(case):
    """The symbolic work function equals counting ops by interpretation."""
    source, n_value = case
    program = compile_source(source)
    analysis = program.loops["fuzz"].analysis

    def trips(upper, env):
        return env[upper] if upper in env else int(upper)

    # Brute-force count for iteration i: walk the (single) nest shape.
    def brute(i):
        from repro.compiler.ast_nodes import Assign, ForLoop

        def count(stmts, env):
            total = 0
            for s in stmts:
                if isinstance(s, ForLoop):
                    upper = str(s.upper)
                    n_trips = env.get(upper, None)
                    if n_trips is None:
                        n_trips = int(float(upper)) if upper.isdigit() \
                            else env[upper]
                    inner_env = dict(env)
                    total_inner = 0
                    for v in range(int(n_trips)):
                        inner_env[s.var] = v
                        total_inner += count(s.body, inner_env)
                    total += total_inner
                elif isinstance(s, Assign):
                    total += 1 + (1 if s.op != "=" else 0) + sum(
                        1 for _ in _binops(s.expr))
            return total

        return count(analysis.nest.loop.body, {"N": n_value, "i": i})

    def _binops(expr):
        from repro.compiler.ast_nodes import BinOp, walk_expr
        return [n for n in walk_expr(expr) if isinstance(n, BinOp)]

    for i in (0, n_value // 2, n_value - 1):
        symbolic = analysis.work_per_iteration.eval(
            {"N": n_value, "i": i})
        assert symbolic == pytest.approx(brute(i))
