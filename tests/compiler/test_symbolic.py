"""Unit and property tests for symbolic polynomials."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.symbolic import const, sym


def test_symbol_and_constant():
    assert str(sym("n")) == "n"
    assert str(const(3)) == "3"
    assert str(const(0)) == "0"


def test_bad_symbol_rejected():
    with pytest.raises(ValueError):
        sym("2bad")


def test_addition_collects_terms():
    p = sym("x") + sym("x")
    assert p == 2 * sym("x")


def test_subtraction_cancels():
    assert sym("x") - sym("x") == 0
    assert (sym("x") - sym("x")).terms == {}


def test_multiplication_distributes():
    p = (sym("x") + 1) * (sym("x") - 1)
    assert p == sym("x") ** 2 - 1


def test_power():
    p = (sym("a") + sym("b")) ** 2
    assert p == sym("a") ** 2 + 2 * sym("a") * sym("b") + sym("b") ** 2


def test_negative_power_rejected():
    with pytest.raises(ValueError):
        sym("x") ** -1


def test_division_by_constant():
    p = (2 * sym("x")) / 2
    assert p == sym("x")


def test_division_by_poly_rejected():
    with pytest.raises(TypeError):
        sym("x") / sym("y")


def test_division_by_zero_rejected():
    with pytest.raises(ZeroDivisionError):
        sym("x") / 0


def test_eval_scalar():
    p = sym("n") ** 3 + 3 * sym("n") ** 2 + sym("n")
    assert p.eval({"n": 30}) == 30 ** 3 + 3 * 30 ** 2 + 30


def test_eval_vectorized():
    p = 2 * sym("i") + 1
    out = p.eval({"i": np.arange(4)})
    assert np.array_equal(out, [1, 3, 5, 7])


def test_eval_missing_symbol():
    with pytest.raises(KeyError):
        (sym("x") * sym("y")).eval({"x": 1})


def test_substitute_partial():
    p = sym("x") * sym("y")
    q = p.substitute({"x": const(3)})
    assert q == 3 * sym("y")


def test_substitute_with_poly():
    p = sym("x") ** 2
    q = p.substitute({"x": sym("a") + 1})
    assert q == sym("a") ** 2 + 2 * sym("a") + 1


def test_degree_and_variables():
    p = sym("x") ** 2 * sym("y") + sym("y")
    assert p.degree() == 3
    assert p.degree("x") == 2
    assert p.degree("y") == 1
    assert p.variables() == {"x", "y"}
    assert p.depends_on("x") and not p.depends_on("z")


def test_constant_detection():
    assert const(5).is_constant
    assert const(5).constant_value == 5
    assert not sym("x").is_constant
    with pytest.raises(ValueError):
        sym("x").constant_value


def test_str_readable():
    p = 3 * sym("C") * sym("R2") - 2
    text = str(p)
    assert "3*" in text and "- 2" in text


def test_hash_consistent_with_eq():
    a = sym("x") + 1
    b = 1 + sym("x")
    assert a == b and hash(a) == hash(b)


@st.composite
def polys(draw):
    vars_ = ["x", "y"]
    p = const(draw(st.integers(-5, 5)))
    for _ in range(draw(st.integers(0, 4))):
        term = const(draw(st.integers(-5, 5)))
        for v in vars_:
            term = term * sym(v) ** draw(st.integers(0, 3))
        p = p + term
    return p


@given(polys(), polys(), st.integers(-10, 10), st.integers(-10, 10))
@settings(max_examples=100, deadline=None)
def test_algebra_matches_evaluation(p, q, x, y):
    """Operations on polynomials commute with evaluation."""
    env = {"x": x, "y": y}
    assert (p + q).eval(env) == p.eval(env) + q.eval(env)
    assert (p - q).eval(env) == p.eval(env) - q.eval(env)
    assert (p * q).eval(env) == p.eval(env) * q.eval(env)


@given(polys(), st.integers(0, 3), st.integers(-5, 5), st.integers(-5, 5))
@settings(max_examples=80, deadline=None)
def test_power_matches_evaluation(p, e, x, y):
    env = {"x": x, "y": y}
    assert (p ** e).eval(env) == p.eval(env) ** e
