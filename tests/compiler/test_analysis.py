"""Tests for compile-time cost analysis."""

import pytest

from repro.compiler.analysis import AnalysisError, analyze_program
from repro.compiler.parser import parse_program
from repro.compiler.symbolic import sym


MXM = """
/* dlb: array Z(R, C) distribute(BLOCK, WHOLE) */
/* dlb: array X(R, R2) distribute(BLOCK, WHOLE) */
/* dlb: array Y(R2, C) distribute(WHOLE, WHOLE) */
/* dlb: loadbalance */
for i = 0, R {
    for j = 0, C {
        for k = 0, R2 {
            Z[i][j] += X[i][k] * Y[k][j];
        }
    }
}
"""


def analyze(src):
    return analyze_program(parse_program(src))


def test_mxm_trip_count():
    a = analyze(MXM)[0]
    assert a.trip_count == sym("R")
    assert a.var == "i"


def test_mxm_work_uniform_quadratic():
    a = analyze(MXM)[0]
    assert a.uniform
    # 3 basic ops (mul, +=, store) per innermost iteration.
    assert a.work_per_iteration == 3 * sym("C") * sym("R2")


def test_mxm_dc_is_migrating_input_row():
    a = analyze(MXM)[0]
    # Only X rows migrate (Z is written, Y replicated): 8*R2 bytes.
    assert a.dc_bytes == 8 * sym("R2")


def test_mxm_result_and_replicated():
    a = analyze(MXM)[0]
    assert a.result_bytes == 8 * sym("C")          # a Z row
    assert a.replicated_bytes == 8 * sym("R2") * sym("C")  # all of Y


def test_mxm_no_intrinsic_communication():
    a = analyze(MXM)[0]
    assert a.ic_bytes == 0


def test_triangular_work_non_uniform():
    src = """
    /* dlb: array A(N, N) distribute(BLOCK, WHOLE) */
    /* dlb: loadbalance */
    for i = 0, N {
        for j = 0, i { A[i][j] = A[i][j] + 1; }
    }
    """
    a = analyze(src)[0]
    assert not a.uniform
    assert a.work_per_iteration.depends_on("i")
    assert a.work_per_iteration == 2 * sym("i")


def test_undeclared_array_rejected():
    src = "/* dlb: loadbalance */ for i = 0, N { B[i] = 1; }"
    with pytest.raises(AnalysisError, match="not declared"):
        analyze(src)


def test_index_arity_mismatch_rejected():
    src = """
    /* dlb: array A(N, N) distribute(BLOCK, WHOLE) */
    /* dlb: loadbalance */
    for i = 0, N { A[i] = 1; }
    """
    with pytest.raises(AnalysisError, match="indices"):
        analyze(src)


def test_no_loadbalance_loop_rejected():
    src = "/* dlb: array A(N) distribute(BLOCK) */ for i = 0, N { A[i] = 1; }"
    with pytest.raises(AnalysisError, match="loadbalance"):
        analyze(src)


def test_intrinsic_communication_detected():
    """A BLOCK array read through a non-parallel index is remote."""
    src = """
    /* dlb: array A(N, N) distribute(BLOCK, WHOLE) */
    /* dlb: array B(N, N) distribute(BLOCK, WHOLE) */
    /* dlb: loadbalance */
    for i = 0, N {
        for k = 0, N { A[i][k] = B[k][i]; }
    }
    """
    a = analyze(src)[0]
    assert a.ic_bytes != 0


def test_division_in_bounds():
    src = """
    /* dlb: array A(M) distribute(BLOCK) */
    /* dlb: loadbalance */
    for i = 0, n * (n + 1) / 2 { A[i] = 1; }
    """
    a = analyze(src)[0]
    assert a.trip_count == (sym("n") * sym("n") + sym("n")) / 2


def test_describe_mentions_shape():
    text = analyze(MXM)[0].describe()
    assert "uniform" in text and "DC" in text


def test_size_symbols_exclude_loop_var():
    a = analyze(MXM)[0]
    assert a.size_symbols() == {"R", "C", "R2"}
