"""Unit tests for code generation helpers."""

import numpy as np

from repro.compiler.ast_nodes import ArrayRef, BinOp, Num, Var
from repro.compiler.codegen import expr_to_python, poly_to_python
from repro.compiler.driver import compile_source
from repro.compiler.symbolic import const, sym


def test_poly_to_python_constant():
    assert eval(poly_to_python(const(5))) == 5
    assert eval(poly_to_python(const(0))) == 0


def test_poly_to_python_round_trip():
    p = 3 * sym("C") * sym("R2") + sym("C") ** 2 - 7
    code = poly_to_python(p)
    env = {"C": 11, "R2": 4}
    assert eval(code, {}, env) == p.eval(env)


def test_poly_to_python_negative_coeff():
    p = sym("x") - 2 * sym("y")
    assert eval(poly_to_python(p), {}, {"x": 10, "y": 3}) == 4


def test_expr_to_python_number_kinds():
    assert expr_to_python(Num(3.0)) == "3"
    assert expr_to_python(Num(2.5)) == "2.5"


def test_expr_to_python_array_ref():
    expr = ArrayRef("Z", (Var("i"), Num(2.0)))
    assert expr_to_python(expr) == "Z[int(i), int(2)]"


def test_expr_to_python_nested():
    expr = BinOp("*", Var("a"), BinOp("+", Num(1.0), Var("b")))
    assert eval(expr_to_python(expr), {}, {"a": 3, "b": 4}) == 15


def test_generated_module_shape():
    src = """
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: loadbalance */ /* dlb: name one */
    for i = 0, N { A[i] = A[i] + 1; }
    /* dlb: loadbalance */ /* dlb: name two */
    for i = 0, N { A[i] = A[i] * 2; }
    """
    prog = compile_source(src)
    assert set(prog.loops) == {"one", "two"}
    assert "make_loop_spec_one" in prog.module_source
    assert "make_kernel_two" in prog.module_source
    assert prog.module_source.count("LOOPS = {") == 1


def test_generated_kernels_compose_in_order():
    src = """
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: loadbalance */ /* dlb: name add */
    for i = 0, N { A[i] = A[i] + 1; }
    /* dlb: loadbalance */ /* dlb: name dbl */
    for i = 0, N { A[i] = A[i] * 2; }
    """
    prog = compile_source(src)
    arrays = prog.run_sequential({"N": 5})
    # (0 + 1) * 2 = 2 everywhere.
    assert np.allclose(arrays["A"], 2.0)


def test_listing_contains_loop_bodies():
    src = """
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: loadbalance */
    for i = 0, N { A[i] = A[i] + 1; }
    """
    listing = compile_source(src).transformed_source
    assert "dlb.start" in listing and "dlb.end" in listing
    assert "A[i]" in listing


def test_shipped_example_sources_compile():
    import pathlib
    root = pathlib.Path(__file__).resolve().parents[2] / "examples_src"
    for path in sorted(root.glob("*.dlb")):
        prog = compile_source(path.read_text())
        assert prog.loops, path.name
