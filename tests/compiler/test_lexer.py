"""Tests for the tokenizer."""

import pytest

from repro.compiler.lexer import LexError, TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def test_empty_source_yields_eof():
    assert kinds("") == [TokenKind.EOF]


def test_for_keyword_vs_identifier():
    toks = tokenize("for fort")
    assert toks[0].kind is TokenKind.FOR
    assert toks[1].kind is TokenKind.IDENT
    assert toks[1].text == "fort"


def test_numbers():
    toks = tokenize("42 3.5")
    assert [t.text for t in toks[:2]] == ["42", "3.5"]
    assert all(t.kind is TokenKind.NUMBER for t in toks[:2])


def test_bad_number_rejected():
    with pytest.raises(LexError):
        tokenize("1.2.3")


def test_compound_operators():
    toks = tokenize("+= -= *= =")
    assert [t.kind for t in toks[:4]] == [
        TokenKind.PLUS_ASSIGN, TokenKind.MINUS_ASSIGN,
        TokenKind.TIMES_ASSIGN, TokenKind.ASSIGN]


def test_punctuation():
    src = "( ) [ ] { } , ;"
    expected = [TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACKET,
                TokenKind.RBRACKET, TokenKind.LBRACE, TokenKind.RBRACE,
                TokenKind.COMMA, TokenKind.SEMI, TokenKind.EOF]
    assert kinds(src) == expected


def test_dlb_comment_becomes_annotation():
    toks = tokenize("/* dlb: loadbalance */")
    assert toks[0].kind is TokenKind.ANNOTATION
    assert toks[0].text == "loadbalance"


def test_ordinary_comment_skipped():
    assert kinds("/* nothing to see */ x") == [TokenKind.IDENT,
                                               TokenKind.EOF]


def test_line_comment_skipped():
    assert kinds("x // trailing\n y") == [TokenKind.IDENT, TokenKind.IDENT,
                                          TokenKind.EOF]


def test_unterminated_comment_rejected():
    with pytest.raises(LexError):
        tokenize("/* oops")


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)
