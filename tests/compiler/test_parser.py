"""Tests for the recursive-descent parser and annotations."""

import pytest

from repro.compiler.annotations import AnnotationError, parse_annotation
from repro.compiler.ast_nodes import ArrayRef, Assign, BinOp, ForLoop, Num, Var
from repro.compiler.parser import ParseError, parse_program


MXM = """
/* dlb: array Z(R, C) distribute(BLOCK, WHOLE) */
/* dlb: array X(R, R2) distribute(BLOCK, WHOLE) */
/* dlb: array Y(R2, C) distribute(WHOLE, WHOLE) */
/* dlb: loadbalance */
for i = 0, R {
    for j = 0, C {
        for k = 0, R2 {
            Z[i][j] += X[i][k] * Y[k][j];
        }
    }
}
"""


def test_mxm_parses():
    prog = parse_program(MXM)
    assert set(prog.arrays) == {"Z", "X", "Y"}
    assert len(prog.nests) == 1
    nest = prog.nests[0]
    assert nest.load_balance
    loop = nest.loop
    assert loop.var == "i"
    assert isinstance(loop.upper, Var) and loop.upper.name == "R"


def test_nested_structure():
    prog = parse_program(MXM)
    outer = prog.nests[0].loop
    inner_j = outer.body[0]
    assert isinstance(inner_j, ForLoop) and inner_j.var == "j"
    inner_k = inner_j.body[0]
    assert isinstance(inner_k, ForLoop) and inner_k.var == "k"
    stmt = inner_k.body[0]
    assert isinstance(stmt, Assign) and stmt.op == "+="
    assert isinstance(stmt.target, ArrayRef) and stmt.target.name == "Z"


def test_expression_precedence():
    prog = parse_program("for i = 0, N { A[i] = 1 + 2 * 3; }"
                         "/* trailing */")
    stmt = prog.nests[0].loop.body[0]
    expr = stmt.expr
    assert isinstance(expr, BinOp) and expr.op == "+"
    assert isinstance(expr.right, BinOp) and expr.right.op == "*"


def test_parenthesized_expression():
    prog = parse_program("for i = 0, N { A[i] = (1 + 2) * 3; }")
    expr = prog.nests[0].loop.body[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_unary_minus():
    prog = parse_program("for i = 0, N { A[i] = -x; }")
    expr = prog.nests[0].loop.body[0].expr
    assert isinstance(expr, BinOp) and expr.op == "-"
    assert isinstance(expr.left, Num) and expr.left.value == 0


def test_triangular_bounds():
    prog = parse_program("for i = 0, N { for j = 0, i { A[i] = j; } }")
    inner = prog.nests[0].loop.body[0]
    assert isinstance(inner.upper, Var) and inner.upper.name == "i"


def test_multiple_loops_with_names():
    src = """
    /* dlb: loadbalance */ /* dlb: name first */
    for i = 0, N { A[i] = 1; }
    /* dlb: loadbalance */ /* dlb: name second */
    for i = 0, N { A[i] = 2; }
    """
    prog = parse_program("/* dlb: array A(N) distribute(BLOCK) */" + src)
    assert [n.name for n in prog.nests] == ["first", "second"]


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_program("for i = 0, N { A[i] = 1 }")


def test_missing_brace_rejected():
    with pytest.raises(ParseError):
        parse_program("for i = 0, N { A[i] = 1;")


def test_garbage_toplevel_rejected():
    with pytest.raises(ParseError):
        parse_program("banana;")


def test_annotation_parsing():
    assert parse_annotation("loadbalance").kind == "loadbalance"
    assert parse_annotation("bitonic").kind == "bitonic"
    assert parse_annotation("processors 8").payload == 8
    assert parse_annotation("name trfd-L1").payload == "trfd-L1"
    decl = parse_annotation("array A(N, 5) distribute(BLOCK, WHOLE)").payload
    assert decl.shape == ("N", "5")
    assert decl.distribution == ("BLOCK", "WHOLE")


def test_unknown_annotation_rejected():
    with pytest.raises(AnnotationError):
        parse_annotation("frobnicate everything")


def test_array_dimension_mismatch_rejected():
    with pytest.raises(ValueError):
        parse_annotation("array A(N, M) distribute(BLOCK)")


def test_bad_distribution_kind_rejected():
    with pytest.raises(ValueError):
        parse_annotation("array A(N) distribute(DIAGONAL)")


def test_duplicate_array_rejected():
    src = """
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: array A(N) distribute(BLOCK) */
    for i = 0, N { A[i] = 1; }
    """
    with pytest.raises(AnnotationError):
        parse_program(src)


def test_processors_annotation_sets_program():
    prog = parse_program(
        "/* dlb: processors 16 */ for i = 0, N { x = 1; }")
    assert prog.n_processors == 16


def test_cyclic_distribution_accepted():
    decl = parse_annotation("array A(N, M) distribute(CYCLIC, WHOLE)").payload
    assert decl.distribution[0] == "CYCLIC"
