"""Tests for the §4.3 hybrid decision process and customized runs."""

import pytest

from repro.apps.workload import LoopSpec
from repro.core.decision import forecast_stations
from repro.core.redistribution import SyncProfile
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


def test_forecast_stations_carry_measured_load():
    profiles = [SyncProfile(node=0, remaining_work=1.0, remaining_count=10,
                            rate=0.5),
                SyncProfile(node=1, remaining_work=1.0, remaining_count=10,
                            rate=1.0)]
    stations = forecast_stations(profiles, {0: 1.0, 1: 1.0},
                                 persistence=1.0)
    # rate 0.5 at speed 1 -> mu = 2 -> constant load level 1.
    assert stations[0].effective_speed(0.0) == pytest.approx(0.5)
    assert stations[1].effective_speed(0.0) == pytest.approx(1.0)


def test_forecast_handles_zero_rate():
    profiles = [SyncProfile(node=0, remaining_work=1.0, remaining_count=10,
                            rate=0.0)]
    stations = forecast_stations(profiles, {0: 2.0}, persistence=1.0)
    assert stations[0].effective_speed(0.0) == pytest.approx(2.0)


def test_forecast_clamps_superunity_rates():
    """Measured rate above the nominal speed must not give mu < 1."""
    profiles = [SyncProfile(node=0, remaining_work=1.0, remaining_count=10,
                            rate=5.0)]
    stations = forecast_stations(profiles, {0: 1.0}, persistence=1.0)
    assert stations[0].effective_speed(0.0) == pytest.approx(1.0)


def test_customized_run_selects_and_completes(small_loop, cluster4,
                                              options):
    stats = run_loop(small_loop, cluster4, "CUSTOM", options=options)
    assert stats.selected_scheme in ("GCDLB", "GDDLB", "LCDLB", "LDDLB")
    assert sum(stats.executed_count(i) for i in range(4)) == \
        small_loop.n_iterations
    report = stats.selection_report
    assert report is not None
    assert report.chosen == stats.selected_scheme
    assert len(report.predictions) == 4
    assert "selected" in report.summary()


def test_customized_all_cluster_sizes(options, small_loop):
    for p in (2, 4, 8):
        cluster = ClusterSpec.homogeneous(p, max_load=3, persistence=0.5,
                                          seed=p)
        stats = run_loop(small_loop, cluster, "CUSTOM", options=options)
        total = sum(stats.executed_count(i) for i in range(p))
        assert total == small_loop.n_iterations


def test_customized_close_to_best_fixed(cluster4, options):
    """The customized run should be near the best fixed scheme (it pays
    one selection overhead but avoids the worst choices).  The loop is
    long enough that the one-off model-evaluation cost is marginal."""
    loop = LoopSpec(name="longer", n_iterations=400, iteration_time=0.010,
                    dc_bytes=800)
    fixed = {s: run_loop(loop, cluster4, s, options=options).duration
             for s in ("GCDLB", "GDDLB", "LCDLB", "LDDLB")}
    custom = run_loop(loop, cluster4, "CUSTOM", options=options).duration
    assert custom <= max(fixed.values()) * 1.15
    assert custom >= min(fixed.values()) * 0.8


def test_customized_measures_effective_loads(small_loop, cluster4, options):
    stats = run_loop(small_loop, cluster4, "CUSTOM", options=options)
    mus = stats.selection_report.measured_effective_loads
    assert set(mus) == {0, 1, 2, 3}
    assert all(mu >= 1.0 for mu in mus.values())
