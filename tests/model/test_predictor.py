"""Tests for the §4.2 recurrence solver."""

import pytest

from repro.apps.workload import LoopSpec
from repro.core.model.predictor import (
    predict_no_dlb,
    predict_strategy,
    rank_strategies,
)
from repro.core.strategies import ALL_DLB_STRATEGIES, GCDLB, GDDLB, LDDLB, \
    NO_DLB
from repro.machine.cluster import ClusterSpec


LOOP = LoopSpec(name="model-loop", n_iterations=200, iteration_time=0.02,
                dc_bytes=1600)


def test_no_dlb_prediction_is_slowest_processor():
    cluster = ClusterSpec(speeds=(1.0, 1.0), persistence=1000.0,
                          load_traces=((0,), (4,)))
    pred = predict_no_dlb(LOOP, cluster)
    # 100 iterations x 0.02 s, slow node at 1/5 speed.
    assert pred.total_time == pytest.approx(10.0)
    assert pred.n_syncs == 0


def test_prediction_no_load_near_ideal():
    cluster = ClusterSpec.homogeneous(4, max_load=0)
    pred = predict_strategy(LOOP, cluster, GDDLB)
    ideal = LOOP.total_work / 4
    assert pred.total_time <= ideal * 1.2


def test_dlb_predicted_better_than_static_under_skewed_load():
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((5,), (0,), (0,), (0,)))
    static = predict_no_dlb(LOOP, cluster)
    dlb = predict_strategy(LOOP, cluster, GDDLB)
    assert dlb.total_time < 0.6 * static.total_time
    assert dlb.n_moves >= 1


def test_prediction_counts_syncs_and_moves():
    cluster = ClusterSpec.homogeneous(4, max_load=4, persistence=0.5,
                                      seed=3)
    pred = predict_strategy(LOOP, cluster, GCDLB)
    assert pred.n_syncs >= pred.n_moves >= 1
    assert pred.work_moved > 0


def test_local_strategy_tracks_groups():
    cluster = ClusterSpec.homogeneous(8, max_load=4, persistence=0.5,
                                      seed=5)
    pred = predict_strategy(LOOP, cluster, LDDLB, group_size=4)
    assert len(pred.group_finish_times) == 2
    assert pred.total_time == max(pred.group_finish_times)


def test_global_strategy_single_group():
    cluster = ClusterSpec.homogeneous(4, max_load=3, persistence=0.5, seed=1)
    pred = predict_strategy(LOOP, cluster, GDDLB)
    assert len(pred.group_finish_times) == 1


def test_rank_strategies_sorted():
    cluster = ClusterSpec.homogeneous(4, max_load=4, persistence=0.8, seed=2)
    ranked = rank_strategies(LOOP, cluster)
    assert len(ranked) == len(ALL_DLB_STRATEGIES)
    times = [p.total_time for p in ranked]
    assert times == sorted(times)


def test_none_code_dispatches_to_static():
    cluster = ClusterSpec.homogeneous(4, max_load=0)
    pred = predict_strategy(LOOP, cluster, NO_DLB)
    assert pred.code == "NONE"
    assert pred.n_syncs == 0


def test_prediction_deterministic():
    cluster = ClusterSpec.homogeneous(4, max_load=5, persistence=0.7, seed=9)
    a = predict_strategy(LOOP, cluster, GDDLB)
    b = predict_strategy(LOOP, cluster, GDDLB)
    assert a.total_time == b.total_time


def test_non_uniform_loop_prediction(nonuniform_loop):
    cluster = ClusterSpec.homogeneous(4, max_load=3, persistence=0.5, seed=4)
    pred = predict_strategy(nonuniform_loop, cluster, GDDLB)
    assert pred.total_time > 0


def test_prediction_close_to_simulation(small_loop, cluster4, options):
    """Model and event simulation should agree within a modest factor."""
    from repro.runtime.executor import run_loop
    sim = run_loop(small_loop, cluster4, "GDDLB", options=options)
    pred = predict_strategy(small_loop, cluster4, GDDLB)
    assert pred.total_time == pytest.approx(sim.duration, rel=0.5)


def test_movement_model_serial_costs_more():
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((5,), (0,), (0,), (0,)))
    heavy = LoopSpec(name="dc-heavy", n_iterations=200,
                     iteration_time=0.02, dc_bytes=100_000)
    overlap = predict_strategy(heavy, cluster, GDDLB,
                               movement_model="overlap")
    serial = predict_strategy(heavy, cluster, GDDLB,
                              movement_model="serial")
    assert serial.total_time >= overlap.total_time
