"""Tests for the model's per-sync cost terms."""

import pytest

from repro.core.model.costs import default_comm_model, strategy_sync_costs
from repro.core.policy import DlbPolicy
from repro.core.strategies import GCDLB, GDDLB, LCDLB, LDDLB


@pytest.fixture(scope="module")
def comm():
    return default_comm_model()


def test_default_model_cached(comm):
    assert default_comm_model() is comm


def test_distributed_sync_more_expensive_than_centralized(comm):
    policy = DlbPolicy()
    gc = strategy_sync_costs(GCDLB, comm, policy)
    gd = strategy_sync_costs(GDDLB, comm, policy)
    for k in (4, 8, 16):
        assert gd.synchronization(k) > gc.synchronization(k)


def test_sync_cost_grows_with_group(comm):
    gd = strategy_sync_costs(GDDLB, comm, DlbPolicy())
    assert gd.synchronization(16) > gd.synchronization(4) > 0


def test_single_member_group_syncs_free(comm):
    gc = strategy_sync_costs(GCDLB, comm, DlbPolicy())
    assert gc.synchronization(1) == 0.0


def test_centralized_pays_context_switches(comm):
    policy = DlbPolicy()
    gc = strategy_sync_costs(GCDLB, comm, policy)
    gd = strategy_sync_costs(GDDLB, comm, policy)
    assert gc.calculation() == pytest.approx(
        policy.delta_seconds + 2 * policy.context_switch_seconds)
    assert gd.calculation() == pytest.approx(policy.delta_seconds)


def test_instruction_cost_centralized_only(comm):
    policy = DlbPolicy()
    assert strategy_sync_costs(LCDLB, comm, policy).instructions(4) > 0
    assert strategy_sync_costs(LDDLB, comm, policy).instructions(4) == 0.0


def test_data_movement_eq5_serial(comm):
    costs = strategy_sync_costs(GCDLB, comm, DlbPolicy(),
                                movement_model="serial")
    # 2 transfers of 0.05 s work, mean iter 0.01 s, DC = 1000 bytes:
    # gamma*L + 10 iterations * 1000 B / B.
    t = costs.data_movement((0.05, 0.05), 1000, 0.01)
    expected = 2 * comm.latency + 10 * 1000 / comm.bandwidth
    assert t == pytest.approx(expected)


def test_data_movement_overlap_charges_largest(comm):
    costs = strategy_sync_costs(GCDLB, comm, DlbPolicy(),
                                movement_model="overlap")
    t = costs.data_movement((0.05, 0.01), 1000, 0.01)
    expected = 2 * comm.latency + 5 * 1000 / comm.bandwidth
    assert t == pytest.approx(expected)


def test_data_movement_empty_is_free(comm):
    costs = strategy_sync_costs(GCDLB, comm, DlbPolicy())
    assert costs.data_movement((), 1000, 0.01) == 0.0


def test_bad_movement_model_rejected(comm):
    with pytest.raises(ValueError):
        strategy_sync_costs(GCDLB, comm, DlbPolicy(),
                            movement_model="wrong")
