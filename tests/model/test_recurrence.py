"""Tests that the literal §4.2 equations hold and that the production
planner/solver agree with them."""

import numpy as np
import pytest

from repro.core.model.recurrence import (
    average_effective_speed,
    effective_load_discrete,
    iterations_left_nonuniform,
    iterations_left_uniform,
    new_distribution,
    total_remaining,
    work_moved,
)


def test_effective_load_constant_levels():
    assert effective_load_discrete([3, 3, 3]) == pytest.approx(4.0)


def test_effective_load_is_harmonic_not_arithmetic():
    # levels 0 and 4: arithmetic mean of (l+1) is 3; harmonic is
    # 2 / (1 + 1/5) = 5/3.
    assert effective_load_discrete([0, 4]) == pytest.approx(5 / 3)


def test_effective_load_validation():
    with pytest.raises(ValueError):
        effective_load_discrete([])
    with pytest.raises(ValueError):
        effective_load_discrete([-1])


def test_average_effective_speed():
    assert average_effective_speed(2.0, [1, 1]) == pytest.approx(1.0)


def test_eq1_finisher_has_zero_left():
    left = iterations_left_uniform([10, 10, 10], [1, 1, 1], [1, 2, 4],
                                   finisher=0)
    assert left[0] == 0.0
    # Processor 1 runs at half the finisher's speed: did 5, keeps 5.
    assert left[1] == pytest.approx(5.0)
    assert left[2] == pytest.approx(7.5)


def test_eq1_speed_and_load_interchangeable():
    """Half speed at no load == full speed at load level 1."""
    a = iterations_left_uniform([8, 8], [1.0, 0.5], [1.0, 1.0], 0)
    b = iterations_left_uniform([8, 8], [1.0, 1.0], [1.0, 2.0], 0)
    assert np.allclose(a, b)


def test_eq2_reduces_to_eq1_for_uniform_costs():
    costs = [[1.0] * 10, [1.0] * 10]
    left_nu = iterations_left_nonuniform(costs, [1, 1], [1, 2], 0)
    left_u = iterations_left_uniform([10, 10], [1, 1], [1, 2], 0)
    assert left_nu == [int(x) for x in np.round(left_u)]


def test_eq2_triangular_costs():
    # Finisher 0 takes 6 cost-units; processor 1 (same speed/load) gets
    # through the prefix of [3, 2, 1] summing <= 6: all of it.
    costs = [[1, 2, 3], [3, 2, 1]]
    left = iterations_left_nonuniform(costs, [1, 1], [1, 1], 0)
    assert left == [0, 0]
    # At double load it only finishes [3] (budget 3): 2 left.
    left = iterations_left_nonuniform(costs, [1, 1], [1, 2], 0)
    assert left == [0, 2]


def test_eq3_proportional_shares():
    alpha = new_distribution([6, 0], [1, 1], [1, 2])
    assert alpha.sum() == pytest.approx(6.0)
    assert alpha[0] == pytest.approx(4.0)
    assert alpha[1] == pytest.approx(2.0)


def test_phi_symmetric_halves():
    assert work_moved([4, 2], [2, 4]) == pytest.approx(2.0)
    assert work_moved([3, 3], [3, 3]) == 0.0


def test_gamma_termination():
    assert total_remaining([0, 0, 0]) == 0.0


def test_planner_matches_eq3():
    """The production planner's shares follow eq. 3 exactly when no
    thresholding interferes."""
    from repro.core.policy import DlbPolicy
    from repro.core.redistribution import SyncProfile, plan_redistribution
    beta = [6.0, 0.0]
    rates = [1.0, 0.5]   # S_i / mu_i
    plan = plan_redistribution(
        [SyncProfile(0, beta[0], 600, rates[0]),
         SyncProfile(1, beta[1], 0, rates[1])],
        DlbPolicy(min_move_fraction=0.0, improvement_threshold=0.0),
        mean_iteration_time=0.01)
    expected = new_distribution(beta, [1.0, 1.0], [1.0, 2.0])
    assert plan.move
    assert plan.shares[0] == pytest.approx(expected[0])
    assert plan.shares[1] == pytest.approx(expected[1])


def test_workstation_matches_discrete_effective_load():
    """The exact integral form equals the discrete form on whole
    windows (paper §4.2's averaging)."""
    from repro.machine.load import TraceLoad
    levels = [2, 0, 5, 1]
    load = TraceLoad(levels, persistence=1.0)
    assert load.effective_load(0.0, 4.0) == pytest.approx(
        effective_load_discrete(levels))
    assert load.effective_load_windows(0, 3) == pytest.approx(
        effective_load_discrete(levels))
