"""Unit tests for FIFO resources."""

import pytest

from repro.simulation import Environment, Resource, SimulationError


def test_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_immediate_grant_when_free(env):
    res = Resource(env)

    def worker():
        req = res.request()
        yield req
        assert res.in_use == 1
        res.release(req)
        return env.now

    assert env.run(env.process(worker())) == 0.0


def test_mutual_exclusion_serializes(env):
    res = Resource(env)
    log = []

    def worker(name):
        yield from res.use(1.0)
        log.append((env.now, name))

    env.process(worker("a"))
    env.process(worker("b"))
    env.process(worker("c"))
    env.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_capacity_two_overlaps(env):
    res = Resource(env, capacity=2)
    log = []

    def worker(name):
        yield from res.use(1.0)
        log.append((env.now, name))

    for n in "abcd":
        env.process(worker(n))
    env.run()
    assert log == [(1.0, "a"), (1.0, "b"), (2.0, "c"), (2.0, "d")]


def test_fifo_grant_order(env):
    res = Resource(env)
    order = []

    def worker(name, think):
        yield env.timeout(think)
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    env.process(worker("first", 0.0))
    env.process(worker("second", 0.1))
    env.process(worker("third", 0.2))
    env.run()
    assert order == ["first", "second", "third"]


def test_release_wakes_waiter(env):
    res = Resource(env)
    log = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def waiter():
        yield env.timeout(1.0)
        req = res.request()
        yield req
        log.append(env.now)
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert log == [5.0]


def test_release_unknown_request_raises(env):
    res = Resource(env)
    other = Environment()
    foreign = Resource(other).request()
    with pytest.raises(SimulationError):
        res.release(foreign)


def test_cancel_queued_request(env):
    res = Resource(env)

    def holder():
        yield from res.use(2.0)

    def canceller():
        yield env.timeout(0.5)
        req = res.request()
        res.release(req)  # cancel while queued
        assert res.queue_length == 0

    env.process(holder())
    env.process(canceller())
    env.run()


def test_wait_time_statistics(env):
    res = Resource(env)

    def worker():
        yield from res.use(1.0)

    env.process(worker())
    env.process(worker())
    env.run()
    assert res.total_requests == 2
    assert res.total_wait_time == pytest.approx(1.0)


def test_use_releases_on_completion(env):
    res = Resource(env)

    def worker():
        yield from res.use(1.0)

    env.run(env.process(worker()))
    assert res.in_use == 0
    assert res.queue_length == 0
