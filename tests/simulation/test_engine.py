"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    ScheduleInPastError,
    SimulationError,
)


def test_clock_starts_at_zero(env):
    assert env.now == 0.0


def test_clock_custom_start():
    assert Environment(5.0).now == 5.0


def test_timeout_advances_clock(env):
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_negative_timeout_rejected(env):
    with pytest.raises(ScheduleInPastError):
        env.timeout(-1.0)


def test_processes_interleave_in_time_order(env):
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("slow", 3.0))
    env.process(worker("fast", 1.0))
    env.process(worker("mid", 2.0))
    env.run()
    assert log == [(1.0, "fast"), (2.0, "mid"), (3.0, "slow")]


def test_simultaneous_events_fire_in_creation_order(env):
    log = []

    def worker(tag):
        yield env.timeout(1.0)
        log.append(tag)

    for tag in "abc":
        env.process(worker(tag))
    env.run()
    assert log == ["a", "b", "c"]


def test_process_return_value(env):
    def worker():
        yield env.timeout(1.0)
        return 42

    proc = env.process(worker())
    assert env.run(proc) == 42


def test_process_joining(env):
    def child():
        yield env.timeout(2.0)
        return "done"

    def parent():
        value = yield env.process(child())
        return (env.now, value)

    assert env.run(env.process(parent())) == (2.0, "done")


def test_run_until_time_stops_midway(env):
    hits = []

    def worker():
        for _ in range(5):
            yield env.timeout(1.0)
            hits.append(env.now)

    env.process(worker())
    env.run(until=2.5)
    assert hits == [1.0, 2.0]
    assert env.now == 2.5


def test_run_until_past_raises(env):
    env.run(until=3.0)
    with pytest.raises(ScheduleInPastError):
        env.run(until=1.0)


def test_event_succeed_delivers_value(env):
    ev = env.event()

    def waiter():
        value = yield ev
        return value

    def trigger():
        yield env.timeout(1.0)
        ev.succeed("payload")

    proc = env.process(waiter())
    env.process(trigger())
    assert env.run(proc) == "payload"


def test_event_fail_raises_in_waiter(env):
    ev = env.event()

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    def trigger():
        yield env.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    proc = env.process(waiter())
    env.process(trigger())
    assert env.run(proc) == "caught boom"


def test_event_double_trigger_rejected(env):
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception(env):
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_process_failure_propagates(env):
    def worker():
        yield env.timeout(1.0)
        raise ValueError("kaboom")

    env.process(worker())
    with pytest.raises(ValueError, match="kaboom"):
        env.run()


def test_yield_non_event_fails_process(env):
    def worker():
        yield 42

    proc = env.process(worker())
    with pytest.raises(SimulationError):
        env.run(proc)


def test_interrupt_during_timeout(env):
    def victim():
        try:
            yield env.timeout(10.0)
            return "finished"
        except Interrupt as it:
            return ("interrupted", env.now, it.cause)

    def attacker(proc):
        yield env.timeout(3.0)
        proc.interrupt("stop it")

    proc = env.process(victim())
    env.process(attacker(proc))
    assert env.run(proc) == ("interrupted", 3.0, "stop it")


def test_interrupt_dead_process_rejected(env):
    def worker():
        yield env.timeout(1.0)

    proc = env.process(worker())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_self_interrupt_rejected(env):
    def worker(holder):
        with pytest.raises(SimulationError):
            holder[0].interrupt()
        yield env.timeout(1.0)

    holder = []
    proc = env.process(worker(holder))
    holder.append(proc)
    env.run()


def test_interrupted_process_can_continue(env):
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(1.0)
        log.append(("resumed", env.now))

    def attacker(proc):
        yield env.timeout(2.0)
        proc.interrupt()

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    assert log == [("interrupted", 2.0), ("resumed", 3.0)]


def test_stop_terminates_without_error(env):
    log = []

    def worker():
        yield env.timeout(10.0)
        log.append("should not happen")

    proc = env.process(worker())

    def stopper():
        yield env.timeout(1.0)
        proc.stop()

    env.process(stopper())
    env.run()
    assert log == []
    assert not proc.is_alive


def test_all_of_waits_for_every_event(env):
    def worker():
        result = yield AllOf(env, [env.timeout(1.0, "a"), env.timeout(3.0, "b")])
        return (env.now, sorted(result.values()))

    proc = env.process(worker())
    assert env.run(proc) == (3.0, ["a", "b"])


def test_any_of_fires_on_first(env):
    def worker():
        result = yield AnyOf(env, [env.timeout(5.0, "slow"),
                                   env.timeout(1.0, "fast")])
        return (env.now, list(result.values()))

    proc = env.process(worker())
    assert env.run(proc) == (1.0, ["fast"])


def test_all_of_empty_fires_immediately(env):
    def worker():
        yield AllOf(env, [])
        return env.now

    proc = env.process(worker())
    assert env.run(proc) == 0.0


def test_peek_reports_next_event_time(env):
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_peek_empty_is_infinite(env):
    assert env.peek() == float("inf")


def test_step_on_empty_schedule_raises(env):
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_event_with_drained_schedule_raises(env):
    ev = env.event()
    with pytest.raises(SimulationError, match="drained"):
        env.run(ev)


def test_active_process_visible_inside(env):
    seen = []

    def worker():
        seen.append(env.active_process)
        yield env.timeout(1.0)

    proc = env.process(worker())
    env.run()
    assert seen == [proc]
    assert env.active_process is None


def test_yielding_processed_event_resumes_immediately(env):
    ev = env.event()
    ev.succeed("early")

    def worker():
        # The event is already processed by the time we wait on it.
        yield env.timeout(1.0)
        value = yield ev
        return (env.now, value)

    proc = env.process(worker())
    assert env.run(proc) == (1.0, "early")


def test_deterministic_replay(small_loop):
    """The same program produces an identical event trace twice."""
    def build():
        env = Environment()
        log = []

        def worker(n):
            for i in range(5):
                yield env.timeout(0.1 * (n + 1))
                log.append((round(env.now, 6), n, i))

        for n in range(4):
            env.process(worker(n))
        env.run()
        return log

    assert build() == build()
