"""Ordering semantics of the slotted/heap hybrid event queue.

The engine keeps zero-delay schedules in per-priority FIFO buckets and
everything else on the heap; these tests pin that the *observable*
order is exactly the one the plain heap produced — ``(time, priority,
schedule order)`` — across every mix of bucket and heap events.
"""

import pytest

from repro.simulation import Environment, Event
from repro.simulation.engine import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)


def _mark(log, label):
    def callback(event):
        log.append(label)
    return callback


def _schedule(env, log, label, priority, delay=0.0):
    ev = Event(env)
    ev.callbacks.append(_mark(log, label))
    env.schedule(ev, priority, delay)


def test_zero_delay_priorities_fire_urgent_first():
    env = Environment()
    log = []
    _schedule(env, log, "low", PRIORITY_LOW)
    _schedule(env, log, "normal", PRIORITY_NORMAL)
    _schedule(env, log, "urgent", PRIORITY_URGENT)
    env.run()
    assert log == ["urgent", "normal", "low"]


def test_same_priority_zero_delay_is_fifo():
    env = Environment()
    log = []
    for i in range(5):
        _schedule(env, log, i, PRIORITY_NORMAL)
    env.run()
    assert log == [0, 1, 2, 3, 4]


def test_bucket_beats_heap_at_same_time_by_schedule_order():
    env = Environment()
    log = []
    # A delayed event lands on the heap; once the clock reaches its
    # time, zero-delay events scheduled *before* it at that instant
    # must still fire first (schedule order breaks the time tie).
    def driver():
        yield env.timeout(1.0)
        _schedule(env, log, "bucket-after", PRIORITY_NORMAL)

    env.process(driver())
    _schedule(env, log, "heap", PRIORITY_NORMAL, delay=1.0)
    env.run()
    assert log == ["heap", "bucket-after"]


def test_urgent_bucket_preempts_normal_heap_tie():
    env = Environment()
    log = []

    # The first t=1.0 event's callback schedules a zero-delay URGENT
    # event; despite its later eid it must outrank the second t=1.0
    # NORMAL event still sitting on the heap.
    trigger = Event(env)
    trigger.callbacks.append(
        lambda _: _schedule(env, log, "urgent-late", PRIORITY_URGENT))
    env.schedule(trigger, PRIORITY_NORMAL, 1.0)
    _schedule(env, log, "normal-heap", PRIORITY_NORMAL, delay=1.0)
    env.run()
    assert log == ["urgent-late", "normal-heap"]


def test_future_priorities_go_through_the_heap():
    env = Environment()
    log = []
    _schedule(env, log, "later-urgent", PRIORITY_URGENT, delay=2.0)
    _schedule(env, log, "sooner-low", PRIORITY_LOW, delay=1.0)
    env.run()
    assert log == ["sooner-low", "later-urgent"]
    assert env.now == pytest.approx(2.0)


def test_negative_delay_rejected_for_every_priority():
    from repro.simulation.errors import ScheduleInPastError
    env = Environment()
    for priority in (PRIORITY_URGENT, PRIORITY_NORMAL, PRIORITY_LOW):
        with pytest.raises(ScheduleInPastError):
            env.schedule(Event(env), priority, -0.1)


def test_peek_sees_buckets_and_heap():
    env = Environment()
    assert env.peek() == float("inf")
    _schedule(env, [], "heap", PRIORITY_NORMAL, delay=3.0)
    assert env.peek() == pytest.approx(3.0)
    _schedule(env, [], "bucket", PRIORITY_LOW)
    assert env.peek() == pytest.approx(0.0)


def test_run_to_horizon_drains_buckets_before_stopping():
    env = Environment()
    log = []

    def driver():
        yield env.timeout(1.0)
        _schedule(env, log, "at-horizon", PRIORITY_NORMAL)

    env.process(driver())
    env.run(until=1.0)
    # The zero-delay event at exactly t=1.0 fires before the horizon
    # stop; the clock then rests at the horizon.
    assert log == ["at-horizon"]
    assert env.now == pytest.approx(1.0)
