"""Property-based tests of the event kernel: random process trees."""

from hypothesis import given, settings, strategies as st

from repro.simulation import AllOf, Environment


@st.composite
def process_trees(draw, depth=0):
    """A tree: each node waits some delay, then spawns children and
    joins them."""
    delay = draw(st.floats(min_value=0.0, max_value=2.0))
    n_children = 0 if depth >= 3 else draw(st.integers(0, 3))
    children = [draw(process_trees(depth=depth + 1))
                for _ in range(n_children)]
    return (delay, children)


@given(process_trees())
@settings(max_examples=60, deadline=None)
def test_join_time_is_critical_path(tree):
    """A parent's completion time equals its delay plus the max child
    completion (the critical path) — events never fire early or late."""
    env = Environment()

    def expected(node):
        delay, children = node
        return delay + max((expected(c) for c in children), default=0.0)

    def runner(node):
        delay, children = node
        yield env.timeout(delay)
        procs = [env.process(runner(c)) for c in children]
        if procs:
            yield AllOf(env, procs)
        return env.now

    proc = env.process(runner(tree))
    finish = env.run(proc)
    assert abs(finish - expected(tree)) < 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1,
                max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def worker(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(worker(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=3.0),
                          st.floats(min_value=0.0, max_value=3.0)),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_resource_conservation_under_contention(jobs):
    """With a capacity-1 resource, total busy time is the sum of holds
    and at most one job holds it at any instant."""
    from repro.simulation import Resource
    env = Environment()
    res = Resource(env)
    intervals = []

    def worker(arrive, hold):
        yield env.timeout(arrive)
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(hold)
        res.release(req)
        intervals.append((start, env.now))

    for arrive, hold in jobs:
        env.process(worker(arrive, hold))
    env.run()
    assert len(intervals) == len(jobs)
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-12  # no overlap
