"""Slot-level fast paths of the mailbox: SlotFilter and EpochBoundFilter.

``tests/simulation/test_mailbox.py`` pins the generic predicate
semantics; these tests target the slotted storage specifically — the
O(1) ``(tag, epoch)`` lookup, cross-slot FIFO recovery, and whole-slot
stale-epoch drains — plus the filters' plain-callable behavior, which
the thread backend relies on.
"""

from dataclasses import dataclass

from repro.simulation import Environment
from repro.simulation.mailbox import EpochBoundFilter, Mailbox, SlotFilter


@dataclass
class Msg:
    tag: str
    epoch: int
    payload: int = 0


TAG_A = "alpha"
TAG_B = "beta"


def _box():
    return Mailbox(Environment())


# -- SlotFilter as a plain predicate ------------------------------------

def test_slot_filter_is_a_plain_predicate():
    f = SlotFilter(tag=TAG_A, epoch=3)
    assert f(Msg(TAG_A, 3))
    assert not f(Msg(TAG_A, 4))
    assert not f(Msg(TAG_B, 3))
    assert not f(object())  # no tag/epoch attributes at all


def test_slot_filter_composes_with_match():
    f = SlotFilter(tag=TAG_A, epoch=1, match=lambda m: m.payload > 10)
    assert not f(Msg(TAG_A, 1, payload=5))
    assert f(Msg(TAG_A, 1, payload=11))


def test_slot_filter_tag_is_identity_matched():
    # Tags are interned sentinels in the message layer; the filter
    # matches by identity, so an equal-but-distinct string won't do.
    tag = "".join(["al", "pha"])
    assert tag == TAG_A and tag is not TAG_A
    assert not SlotFilter(tag=TAG_A)(Msg(tag, 0))


# -- slotted lookup ------------------------------------------------------

def test_fully_keyed_get_hits_the_exact_slot():
    box = _box()
    box.put(Msg(TAG_B, 1, payload=1))
    box.put(Msg(TAG_A, 2, payload=2))
    box.put(Msg(TAG_A, 1, payload=3))
    got = box.get(SlotFilter(tag=TAG_A, epoch=1))
    assert got.triggered and got.value.payload == 3
    assert len(box) == 2


def test_fully_keyed_get_respects_match_within_slot():
    box = _box()
    box.put(Msg(TAG_A, 1, payload=1))
    box.put(Msg(TAG_A, 1, payload=9))
    got = box.get(SlotFilter(tag=TAG_A, epoch=1, match=lambda m: m.payload > 5))
    assert got.value.payload == 9
    # The skipped older item is still queued.
    assert box.peek(SlotFilter(tag=TAG_A, epoch=1)).payload == 1


def test_partial_filter_recovers_fifo_across_slots():
    box = _box()
    box.put(Msg(TAG_A, 2, payload=1))   # seq 1
    box.put(Msg(TAG_A, 1, payload=2))   # seq 2
    box.put(Msg(TAG_A, 2, payload=3))   # seq 3
    # Tag-only filter spans two slots; arrival order must win.
    order = [box.take(SlotFilter(tag=TAG_A)).payload for _ in range(3)]
    assert order == [1, 2, 3]
    assert box.take(SlotFilter(tag=TAG_A)) is None


def test_missing_slot_queues_the_getter():
    box = _box()
    box.put(Msg(TAG_A, 1))
    got = box.get(SlotFilter(tag=TAG_A, epoch=2))
    assert not got.triggered
    box.put(Msg(TAG_A, 2, payload=7))
    assert got.triggered and got.value.payload == 7


def test_items_property_is_seq_ordered_across_slots():
    box = _box()
    payloads = [4, 1, 3, 2]
    for i, p in enumerate(payloads):
        box.put(Msg(TAG_A if i % 2 else TAG_B, i % 3, payload=p))
    assert [m.payload for m in box.items] == payloads


# -- EpochBoundFilter ----------------------------------------------------

def test_epoch_bound_filter_item_semantics():
    f = EpochBoundFilter(3, tags=(TAG_A,))
    assert f(Msg(TAG_A, 2))
    assert not f(Msg(TAG_A, 3))          # exclusive by default
    assert not f(Msg(TAG_B, 0))          # wrong tag
    assert EpochBoundFilter(3, inclusive=True)(Msg(TAG_B, 3))


def test_covers_slot_matches_item_semantics():
    f = EpochBoundFilter(2, tags=(TAG_A,), inclusive=True)
    assert f.covers_slot((TAG_A, 2))
    assert not f.covers_slot((TAG_A, 3))
    assert not f.covers_slot((TAG_B, 0))
    assert not f.covers_slot((TAG_A, None))  # epoch-less slot never stale


def test_drain_stale_epochs_removes_whole_slots():
    box = _box()
    for epoch in (0, 1, 2, 3):
        box.put(Msg(TAG_A, epoch, payload=epoch))
        box.put(Msg(TAG_B, epoch, payload=10 + epoch))
    drained = box.drain(EpochBoundFilter(2, tags=(TAG_A,)))
    assert [m.payload for m in drained] == [0, 1]     # arrival order
    assert len(box) == 6
    # Slots for the drained keys are gone; survivors untouched.
    assert box.peek(SlotFilter(tag=TAG_A, epoch=2)).payload == 2
    assert box.peek(SlotFilter(tag=TAG_B, epoch=0)).payload == 10


def test_drain_counts_stay_consistent():
    box = _box()
    for epoch in range(4):
        box.put(Msg(TAG_A, epoch))
    box.drain(EpochBoundFilter(10))
    assert len(box) == 0
    assert box.put_count == 4 and box.got_count == 4
    # A later put lands in a fresh slot and is retrievable.
    box.put(Msg(TAG_A, 99, payload=42))
    assert box.take(SlotFilter(tag=TAG_A, epoch=99)).payload == 42
