"""Unit tests for predicate-matched mailboxes."""

from repro.simulation import Mailbox


def test_put_then_get(env):
    box = Mailbox(env)
    box.put("hello")

    def worker():
        value = yield box.get()
        return value

    assert env.run(env.process(worker())) == "hello"


def test_get_blocks_until_put(env):
    box = Mailbox(env)

    def consumer():
        value = yield box.get()
        return (env.now, value)

    def producer():
        yield env.timeout(2.0)
        box.put("late")

    proc = env.process(consumer())
    env.process(producer())
    assert env.run(proc) == (2.0, "late")


def test_fifo_order(env):
    box = Mailbox(env)
    for i in range(3):
        box.put(i)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield box.get()))

    env.run(env.process(consumer()))
    assert got == [0, 1, 2]


def test_predicate_skips_non_matching(env):
    box = Mailbox(env)
    box.put("skip")
    box.put("take-me")

    def consumer():
        value = yield box.get(lambda m: m.startswith("take"))
        return value

    assert env.run(env.process(consumer())) == "take-me"
    assert list(box.items) == ["skip"]


def test_predicate_waiter_woken_only_by_match(env):
    box = Mailbox(env)

    def consumer():
        value = yield box.get(lambda m: m == "yes")
        return (env.now, value)

    def producer():
        yield env.timeout(1.0)
        box.put("no")
        yield env.timeout(1.0)
        box.put("yes")

    proc = env.process(consumer())
    env.process(producer())
    assert env.run(proc) == (2.0, "yes")
    assert list(box.items) == ["no"]


def test_multiple_waiters_matched_independently(env):
    box = Mailbox(env)
    results = {}

    def consumer(tag):
        value = yield box.get(lambda m, t=tag: m[0] == t)
        results[tag] = value

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1.0)
        box.put(("b", 2))
        box.put(("a", 1))

    env.process(producer())
    env.run()
    assert results == {"a": ("a", 1), "b": ("b", 2)}


def test_take_nonblocking(env):
    box = Mailbox(env)
    assert box.take() is None
    box.put(5)
    assert box.take() == 5
    assert box.take() is None


def test_take_with_predicate(env):
    box = Mailbox(env)
    box.put(1)
    box.put(2)
    assert box.take(lambda x: x % 2 == 0) == 2
    assert list(box.items) == [1]


def test_peek_does_not_remove(env):
    box = Mailbox(env)
    box.put("x")
    assert box.peek() == "x"
    assert len(box) == 1


def test_peek_predicate_miss_returns_none(env):
    box = Mailbox(env)
    box.put("x")
    assert box.peek(lambda m: m == "y") is None


def test_drain_removes_all_matching(env):
    box = Mailbox(env)
    for i in range(6):
        box.put(i)
    out = box.drain(lambda x: x % 2 == 0)
    assert out == [0, 2, 4]
    assert list(box.items) == [1, 3, 5]


def test_drain_without_predicate_empties(env):
    box = Mailbox(env)
    box.put(1)
    box.put(2)
    assert box.drain() == [1, 2]
    assert len(box) == 0


def test_notify_hook_fires_on_every_put(env):
    box = Mailbox(env)
    seen = []
    box.notify = seen.append
    box.put("a")
    box.put("b")
    assert seen == ["a", "b"]


def test_notify_fires_even_when_waiter_consumes(env):
    box = Mailbox(env)
    seen = []
    box.notify = seen.append

    def consumer():
        yield box.get()

    proc = env.process(consumer())
    box.put("direct")
    env.run(proc)
    assert seen == ["direct"]


def test_counters(env):
    box = Mailbox(env)
    box.put(1)
    box.put(2)
    box.take()
    assert box.put_count == 2
    assert box.got_count == 1
