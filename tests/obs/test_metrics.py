"""MetricsRegistry unit tests: counters as live dict views, histograms."""

from __future__ import annotations

import pytest

from repro.obs import CounterDict, Histogram, MetricsRegistry


def test_counter_dict_is_a_dict():
    c = CounterDict()
    c.inc("profile")
    c.inc("profile", 2)
    c.inc("work")
    assert c == {"profile": 3, "work": 1}
    assert dict(c) == {"profile": 3, "work": 1}
    assert c.get("missing", 0) == 0


def test_counter_dict_merge():
    c = CounterDict({"a": 1})
    out = c.merge({"a": 2, "b": 5})
    assert out is c
    assert c == {"a": 3, "b": 5}


def test_registry_counter_is_live_storage():
    reg = MetricsRegistry()
    view = reg.counter("messages_by_tag")
    reg.counter("messages_by_tag").inc("profile")
    # The same object every time: a stats field holding it sees bumps.
    assert view == {"profile": 1}
    assert reg.counter("messages_by_tag") is view


def test_registry_gauges():
    reg = MetricsRegistry()
    assert reg.gauge("depth") == 0.0
    reg.set_gauge("depth", 3.5)
    assert reg.gauge("depth") == 3.5


def test_histogram_buckets_mean_and_snapshot():
    h = Histogram(bounds=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(55.5 / 3)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["buckets"] == {"le_1": 1, "le_10": 1, "inf": 1}


def test_histogram_requires_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())


def test_registry_snapshot_is_json_clean():
    import json

    reg = MetricsRegistry()
    reg.counter("by_tag").inc("profile")
    reg.set_gauge("depth", 2.0)
    reg.histogram("sizes", bounds=(10.0,)).observe(4.0)
    snap = reg.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert snap["counters"] == {"by_tag": {"profile": 1}}
    assert snap["gauges"] == {"depth": 2.0}
    assert snap["histograms"]["sizes"]["count"] == 1
