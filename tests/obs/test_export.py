"""Trace exporters: Chrome/Perfetto format details and round-trips."""

from __future__ import annotations

import json

from repro.obs.export import (
    events_to_chrome,
    events_to_ndjson,
    read_trace,
    render_trace_gantt,
    render_trace_summary,
    sorted_tracks,
    write_trace,
)

EVENTS = [
    {"name": "compute", "ph": "X", "ts": 0.5, "dur": 0.25,
     "track": "node1", "args": {"iteration": 3}},
    {"name": "sync", "ph": "i", "ts": 0.75, "track": "node1",
     "args": {"epoch": 1}},
    {"name": "decision", "ph": "i", "ts": 0.8, "track": "balancer",
     "args": {}},
    {"name": "transfer", "ph": "X", "ts": 0.81, "dur": 0.02,
     "track": "link:0-1", "args": {"nbytes": 800}},
]


def test_sorted_tracks_order():
    events = [{"track": t} for t in
              ("node10", "link:0-1", "node2", "balancer", "faults")]
    assert sorted_tracks(events) == \
        ["balancer", "node2", "node10", "link:0-1", "faults"]


def test_chrome_format_details():
    doc = events_to_chrome(EVENTS, dropped=2, meta={"backend": "sim"})
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {"dropped_events": 2, "backend": "sim"}
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta
             if e["name"] == "thread_name"}
    assert names == {"balancer", "node1", "link:0-1"}
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # Seconds scale to microseconds, the format's required unit.
    assert spans[0]["ts"] == 0.5 * 1e6
    assert spans[0]["dur"] == 0.25 * 1e6
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    assert json.loads(json.dumps(doc)) == doc


def test_ndjson_is_one_sorted_event_per_line():
    text = events_to_ndjson(EVENTS)
    lines = text.strip().splitlines()
    assert len(lines) == len(EVENTS)
    parsed = [json.loads(line) for line in lines]
    assert [e["ts"] for e in parsed] == sorted(e["ts"] for e in EVENTS)
    assert events_to_ndjson([]) == ""


def test_chrome_round_trip(tmp_path):
    path = str(tmp_path / "out.trace.json")
    write_trace(path, EVENTS, dropped=1)
    back = read_trace(path)
    assert len(back) == len(EVENTS)
    by_name = {e["name"]: e for e in back}
    assert by_name["compute"]["track"] == "node1"
    assert by_name["compute"]["ts"] == 0.5
    assert by_name["compute"]["dur"] == 0.25
    assert by_name["transfer"]["track"] == "link:0-1"
    assert by_name["sync"]["args"] == {"epoch": 1}


def test_ndjson_round_trip(tmp_path):
    path = str(tmp_path / "out.ndjson")
    write_trace(path, EVENTS)
    back = read_trace(path)
    assert sorted(back, key=lambda e: e["ts"]) == \
        sorted(EVENTS, key=lambda e: e["ts"])


def test_ndjson_single_event_still_detected(tmp_path):
    # A one-line ndjson file parses as a bare JSON object; detection
    # must not mistake it for a Chrome document.
    path = str(tmp_path / "one.ndjson")
    write_trace(path, EVENTS[:1])
    assert read_trace(path) == EVENTS[:1]


def test_renderers():
    summary = render_trace_summary(EVENTS)
    assert "4 events" in summary
    assert "balancer" in summary and "link:0-1" in summary
    assert "compute=1" in summary
    gantt = render_trace_gantt(EVENTS, width=32)
    assert "node1" in gantt
    assert "#" in gantt  # span coverage
    assert "|" in gantt  # sync/decision instants
    assert render_trace_summary([]) == "(empty trace)"
    assert render_trace_gantt([]) == "(empty trace)"
