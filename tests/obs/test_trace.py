"""TraceRecorder / NullRecorder unit tests: ring buffer, clocks, merge."""

from __future__ import annotations

import pytest

from repro.obs import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.trace import DEFAULT_CAPACITY


def _clock_at(times):
    """A fake clock that pops successive readings."""
    readings = list(times)
    return lambda: readings.pop(0)


def test_null_recorder_is_inert():
    rec = NULL_RECORDER
    assert rec.enabled is False
    assert rec.dropped == 0
    rec.event("anything", track="node0", x=1)
    rec.complete("span", 0.0, 1.0)
    with rec.span("block"):
        pass
    rec.set_clock(lambda: 1.0)
    rec.merge_payload({"events": [{"name": "x"}], "dropped": 3})
    assert rec.events() == []
    assert rec.to_payload() == {"events": [], "dropped": 0}


def test_trace_recorder_is_a_null_recorder():
    # Instrumentation sites hold "a recorder"; the subtype relationship
    # is what lets them not care which.
    assert isinstance(TraceRecorder(), NullRecorder)
    assert TraceRecorder().enabled is True


def test_event_and_complete_shapes():
    rec = TraceRecorder(clock=_clock_at([1.5]))
    rec.event("sync", track="node2", epoch=3)
    rec.complete("compute", 2.0, 0.5, track="node1", iteration=7)
    events = rec.events()
    assert events[0] == {"name": "sync", "ph": "i", "ts": 1.5,
                         "track": "node2", "args": {"epoch": 3}}
    assert events[1] == {"name": "compute", "ph": "X", "ts": 2.0,
                         "dur": 0.5, "track": "node1",
                         "args": {"iteration": 7}}


def test_events_sorted_by_timestamp():
    rec = TraceRecorder(clock=lambda: 0.0)
    rec.complete("b", 2.0, 0.1)
    rec.complete("a", 1.0, 0.1)
    assert [e["name"] for e in rec.events()] == ["a", "b"]


def test_span_measures_with_injected_clock():
    rec = TraceRecorder(clock=_clock_at([10.0, 12.5]))
    with rec.span("plan", track="balancer", group=1):
        pass
    (event,) = rec.events()
    assert event["ts"] == 10.0
    assert event["dur"] == 2.5
    assert event["args"] == {"group": 1}


def test_ring_buffer_drops_oldest_and_counts():
    rec = TraceRecorder(clock=lambda: 0.0, capacity=3)
    for i in range(5):
        rec.event(f"e{i}")
    assert rec.dropped == 2
    assert [e["name"] for e in rec.events()] == ["e2", "e3", "e4"]
    assert rec.to_payload()["dropped"] == 2


def test_default_capacity_and_validation():
    assert TraceRecorder().capacity == DEFAULT_CAPACITY
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_default_clock_is_zero_based_and_monotonic():
    rec = TraceRecorder()
    rec.event("first")
    rec.event("second")
    first, second = rec.events()
    assert 0.0 <= first["ts"] <= second["ts"] < 60.0


def test_payload_round_trip_and_merge():
    worker = TraceRecorder(clock=_clock_at([2.0, 1.0]))
    worker.event("late", track="node1")
    worker.event("early", track="node1")
    hub = TraceRecorder(clock=lambda: 0.0)
    hub.event("own", track="balancer")
    hub.merge_payload(worker.to_payload())
    # Merged buffers interleave; events() restores timestamp order.
    assert [e["name"] for e in hub.events()] == ["own", "early", "late"]
    assert hub.dropped == 0


def test_merge_payload_accumulates_dropped():
    hub = TraceRecorder(clock=lambda: 0.0)
    hub.merge_payload({"events": [], "dropped": 4})
    hub.merge_payload({"events": [{"name": "x", "ph": "i", "ts": 0.0,
                                   "track": "node0", "args": {}}],
                       "dropped": 1})
    assert hub.dropped == 5
    assert len(hub.events()) == 1


def test_set_clock_rebinds():
    rec = TraceRecorder(clock=lambda: 1.0)
    rec.set_clock(lambda: 42.0)
    rec.event("after")
    assert rec.events()[0]["ts"] == 42.0
