"""End-to-end recording on real runs, one test per backend.

The load-bearing claim is the simulation one: enabling the recorder
must not move the DES schedule by a single event, because every sim
instrumentation site is a pure call inside an existing callback.  The
wall-clock backends then only need shape checks — the right tracks,
the right event names, the stats fields still live.
"""

from __future__ import annotations

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.backend import SocketBackend, ThreadBackend
from repro.obs import CounterDict, TraceRecorder
from repro.runtime.options import RunOptions


def _cluster(n=4):
    return ClusterSpec.homogeneous(n, max_load=3, persistence=1.0, seed=7)


def _loop(iters=64):
    return mxm_loop(MxmConfig(iters, 16, 16), op_seconds=4e-7)


def _names(recorder):
    return {e["name"] for e in recorder.events()}


def _tracks(recorder):
    return {e["track"] for e in recorder.events()}


def test_sim_recording_does_not_perturb_the_schedule():
    loop, cluster = _loop(), _cluster()
    baseline = run_loop(loop, cluster, "GDDLB", RunOptions())
    recorder = TraceRecorder()
    traced = run_loop(loop, cluster, "GDDLB",
                      RunOptions(recorder=recorder))
    # Bit-identical, not approximately equal: virtual time may not move.
    assert traced.duration == baseline.duration
    assert traced.n_syncs == baseline.n_syncs
    assert [(s.time, s.epoch) for s in traced.syncs] == \
        [(s.time, s.epoch) for s in baseline.syncs]
    assert traced.executed_by_node == baseline.executed_by_node


def test_sim_trace_contents():
    recorder = TraceRecorder()
    stats = run_loop(_loop(), _cluster(), "GDDLB",
                     RunOptions(recorder=recorder))
    events = recorder.events()
    assert events, "recording enabled but no events recorded"
    names = _names(recorder)
    # The acceptance surface: per-workstation compute spans, sync
    # markers, and redistribution transfers over the network.
    assert "compute" in names
    assert "sync" in names
    assert "transfer" in names
    tracks = _tracks(recorder)
    assert {"node0", "node1", "node2", "node3"} <= tracks
    assert any(t.startswith("link:") for t in tracks)
    computes = [e for e in events if e["name"] == "compute"]
    assert all(e["ph"] == "X" and e["dur"] > 0 for e in computes)
    # Timestamps are virtual seconds within the run's own extent.
    assert all(0.0 <= e["ts"] <= stats.duration + 1e-9 for e in events)
    # Environment fingerprint rides the stats on every backend.
    assert stats.environment["cpu_count"] >= 1


def test_sim_centralized_decisions_land_on_the_balancer_track():
    recorder = TraceRecorder()
    run_loop(_loop(), _cluster(), "GCDLB", RunOptions(recorder=recorder))
    decisions = [e for e in recorder.events()
                 if e["name"] == "decision"]
    assert decisions
    assert all(e["track"] == "balancer" for e in decisions)
    assert all("reason" in e["args"] for e in decisions)


def test_thread_backend_recording():
    recorder = TraceRecorder()
    stats = run_loop(_loop(48), _cluster(), "GCDLB",
                     RunOptions(recorder=recorder),
                     backend=ThreadBackend(time_scale=0.1))
    names = _names(recorder)
    assert "compute" in names and "sync" in names
    assert {"node0", "balancer"} <= _tracks(recorder)
    # The registry counter IS the stats field (live view, still a dict).
    assert isinstance(stats.messages_by_tag, CounterDict)
    assert sum(stats.messages_by_tag.values()) > 0
    assert stats.environment["kernel"] == "wall"


def test_socket_backend_recording():
    recorder = TraceRecorder()
    stats = run_loop(_loop(48), _cluster(), "GDDLB",
                     RunOptions(recorder=recorder),
                     backend=SocketBackend(time_scale=0.1))
    names = _names(recorder)
    assert "compute" in names and "sync" in names
    assert {"node0", "node1", "node2", "node3"} <= _tracks(recorder)
    # The workers shipped their ring buffers over TRACE frames.
    assert stats.payload_by_frame["TRACE"] > 0
    assert stats.environment["workers"] == "tasks"


def test_untraced_socket_run_sends_no_trace_frames():
    stats = run_loop(_loop(48), _cluster(), "GDDLB", RunOptions(),
                     backend=SocketBackend(time_scale=0.1))
    assert "TRACE" not in stats.payload_by_frame
