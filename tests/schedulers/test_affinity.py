"""Tests for affinity scheduling."""

import pytest

from repro.apps.workload import LoopSpec
from repro.machine.cluster import ClusterSpec
from repro.schedulers.affinity import run_affinity


LOOP = LoopSpec(name="aff", n_iterations=96, iteration_time=0.01,
                dc_bytes=0)
QUIET = ClusterSpec.homogeneous(4, max_load=0)
NOISY = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                    load_traces=((0,), (0,), (0,), (5,)))


def test_all_iterations_scheduled():
    result = run_affinity(LOOP, QUIET)
    assert sum(result.iterations_by_processor.values()) == 96


def test_idle_processor_steals_from_loaded():
    result = run_affinity(LOOP, NOISY)
    counts = result.iterations_by_processor
    assert counts[3] < 24  # its initial block was partially stolen
    assert sum(counts.values()) == 96


def test_stealing_beats_static_under_load():
    whole = run_affinity(LOOP, NOISY, local_fraction=1.0)  # ~static
    steal = run_affinity(LOOP, NOISY, local_fraction=0.25)
    assert steal.finish_time < whole.finish_time


def test_local_fraction_bounds():
    with pytest.raises(ValueError):
        run_affinity(LOOP, QUIET, local_fraction=0.0)


def test_steal_cost_slows_completion():
    cheap = run_affinity(LOOP, NOISY, steal_cost=0.0)
    pricey = run_affinity(LOOP, NOISY, steal_cost=5e-3)
    assert pricey.finish_time >= cheap.finish_time


def test_no_load_close_to_ideal():
    result = run_affinity(LOOP, QUIET)
    ideal = LOOP.total_work / 4
    assert result.finish_time == pytest.approx(ideal, rel=0.15)


def test_deterministic():
    a = run_affinity(LOOP, NOISY)
    b = run_affinity(LOOP, NOISY)
    assert a.finish_time == b.finish_time
