"""Tests for the task-queue scheduling simulation (§2.2 baselines)."""

import pytest

from repro.apps.workload import LoopSpec
from repro.machine.cluster import ClusterSpec
from repro.schedulers.policies import (
    Factoring,
    FixedSizeChunking,
    GuidedSelfScheduling,
    SafeSelfScheduling,
    SelfScheduling,
    StaticChunking,
    TrapezoidSelfScheduling,
    ALL_POLICIES,
)
from repro.schedulers.taskqueue import run_task_queue


LOOP = LoopSpec(name="tq", n_iterations=100, iteration_time=0.01,
                dc_bytes=0)
QUIET = ClusterSpec.homogeneous(4, max_load=0)
NOISY = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                    load_traces=((0,), (0,), (0,), (4,)))


def test_every_policy_schedules_all_iterations():
    for policy in ALL_POLICIES():
        result = run_task_queue(LOOP, QUIET, policy)
        assert sum(result.iterations_by_processor.values()) == 100, \
            policy.name


def test_self_scheduling_one_chunk_per_iteration():
    result = run_task_queue(LOOP, QUIET, SelfScheduling())
    assert result.n_chunks == 100


def test_static_one_chunk_per_processor():
    result = run_task_queue(LOOP, QUIET, StaticChunking())
    assert result.n_chunks == 4


def test_gss_chunks_decrease():
    gss = GuidedSelfScheduling()
    # First chunk is remaining/P, later ones shrink.
    assert gss.chunk(100, 4, 0) == 25
    assert gss.chunk(75, 4, 1) == 19
    assert gss.chunk(3, 4, 9) == 1


def test_factoring_batches_halve():
    f = Factoring()
    f.reset(100, 4)
    first_batch = [f.chunk(100 - 13 * i, 4, i) for i in range(4)]
    assert first_batch == [13, 13, 13, 13]
    second = f.chunk(48, 4, 4)
    assert second == 6


def test_tss_linear_decrease():
    t = TrapezoidSelfScheduling()
    t.reset(100, 4)
    sizes = [t.chunk(100, 4, i) for i in range(5)]
    assert sizes[0] > sizes[-1] >= 1
    assert sizes == sorted(sizes, reverse=True)


def test_safe_ss_static_then_dynamic():
    s = SafeSelfScheduling(alpha=0.5)
    s.reset(100, 4)
    static = [s.chunk(100, 4, i) for i in range(4)]
    assert static == [12, 12, 12, 12]
    assert s.chunk(52, 4, 4) == 7  # ceil(52 / 8)


def test_safe_ss_alpha_bounds():
    with pytest.raises(ValueError):
        SafeSelfScheduling(alpha=1.5)


def test_chunking_auto_size():
    c = FixedSizeChunking()
    c.reset(100, 4)
    assert c.chunk(100, 4, 0) == 13  # ceil(100 / (4 * 2))


def test_access_cost_penalizes_fine_grain():
    cheap = run_task_queue(LOOP, QUIET, SelfScheduling(), access_cost=0.0)
    pricey = run_task_queue(LOOP, QUIET, SelfScheduling(),
                            access_cost=2.4e-3)
    assert pricey.finish_time > cheap.finish_time
    # Static barely notices the access cost.
    s_cheap = run_task_queue(LOOP, QUIET, StaticChunking(), access_cost=0.0)
    s_pricey = run_task_queue(LOOP, QUIET, StaticChunking(),
                              access_cost=2.4e-3)
    assert (s_pricey.finish_time - s_cheap.finish_time) < \
        (pricey.finish_time - cheap.finish_time)


def test_dynamic_beats_static_under_load():
    static = run_task_queue(LOOP, NOISY, StaticChunking())
    dynamic = run_task_queue(LOOP, NOISY, SelfScheduling())
    assert dynamic.finish_time < static.finish_time


def test_loaded_processor_gets_fewer_iterations():
    result = run_task_queue(LOOP, NOISY, SelfScheduling())
    counts = result.iterations_by_processor
    assert counts[3] < min(counts[i] for i in (0, 1, 2))


def test_negative_access_cost_rejected():
    with pytest.raises(ValueError):
        run_task_queue(LOOP, QUIET, SelfScheduling(), access_cost=-1.0)


def test_deterministic():
    a = run_task_queue(LOOP, NOISY, GuidedSelfScheduling())
    b = run_task_queue(LOOP, NOISY, GuidedSelfScheduling())
    assert a.finish_time == b.finish_time
