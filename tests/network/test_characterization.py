"""Tests for the Figure-4 characterization and fitted cost model."""

import pytest

from repro.network.characterization import (
    CommCostModel,
    characterize_network,
    probe_link_parameters,
)
from repro.network.parameters import NetworkParameters


@pytest.fixture(scope="module")
def model():
    return characterize_network(proc_counts=range(2, 17, 2))


def test_fits_cover_all_patterns(model):
    assert set(model.fits) == {"OA", "AO", "AA"}


def test_fit_close_to_samples(model):
    for fit in model.fits.values():
        for p, measured in fit.samples:
            assert fit(p) == pytest.approx(measured, rel=0.1, abs=2e-3)


def test_residuals_small(model):
    for fit in model.fits.values():
        assert fit.residual_rms() < 2e-3


def test_cost_ordering_preserved(model):
    for p in (4, 8, 16):
        assert model.one_to_all(p) <= model.all_to_one(p) \
            <= model.all_to_all(p)


def test_single_host_costs_nothing(model):
    assert model.one_to_all(1) == 0.0
    assert model.all_to_all(0) == 0.0


def test_point_to_point_formula(model):
    nbytes = 9600
    expected = model.latency + nbytes / model.bandwidth
    assert model.point_to_point(nbytes) == pytest.approx(expected)


def test_latency_matches_paper_default(model):
    assert model.latency == pytest.approx(2414.5e-6)
    assert model.bandwidth == pytest.approx(0.96e6)


def test_uncharacterized_pattern_raises():
    empty = CommCostModel(params=NetworkParameters())
    with pytest.raises(KeyError):
        empty.all_to_all(4)


def test_analytic_fallback_sane():
    model = CommCostModel.analytic()
    for p in (2, 8, 16):
        assert 0 < model.one_to_all(p) <= model.all_to_all(p)


def test_too_few_samples_rejected():
    with pytest.raises(ValueError):
        characterize_network(proc_counts=[2, 3], degree=2)


def test_negative_fit_clipped():
    fit = characterize_network(proc_counts=range(2, 8)).fits["OA"]
    # Extrapolating far below the sample range must never go negative.
    assert fit(0.0) >= 0.0


# -- seeded probe estimation (regression: was global-RNG-dependent) ------

def test_probe_estimate_is_deterministic():
    """Identical arguments => identical estimate, regardless of global
    RNG state (the probe draws from its own default_rng(seed))."""
    import random

    import numpy as np

    a = probe_link_parameters(topology="ring", n_hosts=6, seed=0)
    random.seed(999)
    np.random.seed(999)
    b = probe_link_parameters(topology="ring", n_hosts=6, seed=0)
    assert a == b


def test_probe_estimate_pinned_ring():
    """Pin the exact seeded output; any change to probing (pair
    selection, fit, hop accounting) must be deliberate."""
    est = probe_link_parameters(topology="ring", n_hosts=6, seed=0)
    assert est.latency == 0.002548562500000001
    assert est.bandwidth == 590769.2307692305
    assert est.mean_hops == 1.625
    assert len(est.samples) == 16
    assert est.samples[0] == (5, 3, 64, 0.002762333333333333)


def test_probe_estimate_pinned_bus():
    est = probe_link_parameters(n_hosts=8, seed=3)
    assert est.latency == 0.0024145000000000013
    assert est.bandwidth == 959999.9999999994
    assert est.mean_hops == 1.0  # every bus route is one hop


def test_probe_seed_changes_pairs():
    a = probe_link_parameters(topology="ring", n_hosts=6, seed=0)
    b = probe_link_parameters(topology="ring", n_hosts=6, seed=1)
    assert a.samples != b.samples


def test_probe_recovers_bus_parameters():
    """On the uncontended bus the fitted line is exact: intercept =
    send + latency + recv overheads, slope = 1/bandwidth."""
    p = NetworkParameters()
    est = probe_link_parameters(params=p, n_hosts=4, seed=7)
    expected = p.send_overhead + p.wire_latency + p.recv_overhead
    assert est.latency == pytest.approx(expected)
    assert est.bandwidth == pytest.approx(p.bandwidth)


def test_probe_input_validation():
    with pytest.raises(ValueError):
        probe_link_parameters(n_hosts=1)
    with pytest.raises(ValueError):
        probe_link_parameters(n_probes=0)
    with pytest.raises(ValueError):
        probe_link_parameters(probe_sizes=(64, 64))
