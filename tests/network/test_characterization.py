"""Tests for the Figure-4 characterization and fitted cost model."""

import pytest

from repro.network.characterization import (
    CommCostModel,
    characterize_network,
)
from repro.network.parameters import NetworkParameters


@pytest.fixture(scope="module")
def model():
    return characterize_network(proc_counts=range(2, 17, 2))


def test_fits_cover_all_patterns(model):
    assert set(model.fits) == {"OA", "AO", "AA"}


def test_fit_close_to_samples(model):
    for fit in model.fits.values():
        for p, measured in fit.samples:
            assert fit(p) == pytest.approx(measured, rel=0.1, abs=2e-3)


def test_residuals_small(model):
    for fit in model.fits.values():
        assert fit.residual_rms() < 2e-3


def test_cost_ordering_preserved(model):
    for p in (4, 8, 16):
        assert model.one_to_all(p) <= model.all_to_one(p) \
            <= model.all_to_all(p)


def test_single_host_costs_nothing(model):
    assert model.one_to_all(1) == 0.0
    assert model.all_to_all(0) == 0.0


def test_point_to_point_formula(model):
    nbytes = 9600
    expected = model.latency + nbytes / model.bandwidth
    assert model.point_to_point(nbytes) == pytest.approx(expected)


def test_latency_matches_paper_default(model):
    assert model.latency == pytest.approx(2414.5e-6)
    assert model.bandwidth == pytest.approx(0.96e6)


def test_uncharacterized_pattern_raises():
    empty = CommCostModel(params=NetworkParameters())
    with pytest.raises(KeyError):
        empty.all_to_all(4)


def test_analytic_fallback_sane():
    model = CommCostModel.analytic()
    for p in (2, 8, 16):
        assert 0 < model.one_to_all(p) <= model.all_to_all(p)


def test_too_few_samples_rejected():
    with pytest.raises(ValueError):
        characterize_network(proc_counts=[2, 3], degree=2)


def test_negative_fit_clipped():
    fit = characterize_network(proc_counts=range(2, 8)).fits["OA"]
    # Extrapolating far below the sample range must never go negative.
    assert fit(0.0) >= 0.0
