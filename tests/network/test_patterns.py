"""Tests for the collective pattern measurements (§6.1 shapes)."""

import pytest

from repro.network.parameters import NetworkParameters
from repro.network.patterns import measure_pattern


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        measure_pattern("XX", 4, 64)


def test_needs_two_hosts():
    with pytest.raises(ValueError):
        measure_pattern("OA", 1, 64)


def test_patterns_positive_and_ordered():
    """At every P: AA >= AO >= OA (the paper's Figure 4 ordering)."""
    for p in (2, 4, 8, 16):
        oa = measure_pattern("OA", p, 64)
        ao = measure_pattern("AO", p, 64)
        aa = measure_pattern("AA", p, 64)
        assert 0 < oa <= ao <= aa


def test_oa_grows_linearly():
    t4 = measure_pattern("OA", 4, 64)
    t8 = measure_pattern("OA", 8, 64)
    t16 = measure_pattern("OA", 16, 64)
    # Linear: increments roughly equal per added host.
    slope1 = (t8 - t4) / 4
    slope2 = (t16 - t8) / 8
    assert slope2 == pytest.approx(slope1, rel=0.2)


def test_aa_superlinear():
    t4 = measure_pattern("AA", 4, 64)
    t16 = measure_pattern("AA", 16, 64)
    # Message count grows 20x (12 -> 240); time must grow much more
    # than the 4x host ratio.
    assert t16 / t4 > 6


def test_bigger_messages_cost_more():
    small = measure_pattern("AO", 8, 64)
    big = measure_pattern("AO", 8, 64_000)
    assert big > small


def test_measurement_deterministic():
    assert measure_pattern("AA", 6, 128) == measure_pattern("AA", 6, 128)


def test_custom_params_respected():
    slow = NetworkParameters(bandwidth=0.1e6)
    fast = NetworkParameters(bandwidth=100e6)
    assert measure_pattern("AA", 4, 10_000, slow) > \
        measure_pattern("AA", 4, 10_000, fast)
