"""Unit tests for the graph transport (GraphNetwork).

The shared-bus equivalence tests mirror tests/network/test_bus.py
case-for-case: a ``shared_medium`` complete graph must reproduce the
original ``SharedBusNetwork`` timings exactly, because it *is* the same
resource-acquisition sequence (one wire, per-host NICs).
"""

import pytest

from repro.network.bus import SharedBusNetwork
from repro.network.graph import GraphNetwork, build_network
from repro.network.parameters import NetworkParameters
from repro.network.topology import Topology

PARAMS = NetworkParameters(send_overhead=1e-3, recv_overhead=1.2e-3,
                           wire_latency=0.2e-3, bandwidth=1e6,
                           local_overhead=0.05e-3)


def _deliver(env, net, src, dst, nbytes):
    arrival = []

    def sender():
        ev = yield from net.transmit(src, dst, nbytes)
        yield ev
        arrival.append(env.now)

    env.run(env.process(sender()))
    return arrival[0]


# -- store-and-forward timing -------------------------------------------

def test_single_hop_matches_bus_formula(env):
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    # 0 -> 1 is adjacent: send + one wire + recv, same as the bus.
    assert _deliver(env, net, 0, 1, 0) == pytest.approx(1e-3 + 0.2e-3
                                                        + 1.2e-3)


def test_multi_hop_pays_wire_per_link(env):
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    # 0 -> 2 crosses two links; each pays latency + nbytes/bandwidth,
    # but NIC overheads are charged once at each end (cut-through relay).
    nbytes = 1000
    wire = 0.2e-3 + nbytes / 1e6
    assert _deliver(env, net, 0, 2, nbytes) == \
        pytest.approx(1e-3 + 2 * wire + 1.2e-3)


def test_ring_two_hops_slower_than_bus_one_hop(env):
    bus_time = 1e-3 + (0.2e-3 + 1000 / 1e6) + 1.2e-3
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    assert _deliver(env, net, 0, 2, 1000) > bus_time


def test_per_link_parameter_override(env):
    slow = NetworkParameters(send_overhead=1e-3, recv_overhead=1.2e-3,
                             wire_latency=50e-3, bandwidth=1e6,
                             local_overhead=0.05e-3)
    topo = Topology("line", 3, ((0, 1), (1, 2)),
                    link_params=(((1, 2), slow),))
    net = GraphNetwork(env, topo, PARAMS)
    fast_wire = 0.2e-3 + 100 / 1e6
    slow_wire = 50e-3 + 100 / 1e6
    assert _deliver(env, net, 0, 2, 100) == \
        pytest.approx(1e-3 + fast_wire + slow_wire + 1.2e-3)


# -- contention ----------------------------------------------------------

def test_disjoint_links_carry_traffic_concurrently(env):
    """On a switched ring, edges (0,1) and (2,3) are separate wires:
    simultaneous transfers overlap instead of serializing."""
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    arrivals = {}

    def sender(src, dst):
        ev = yield from net.transmit(src, dst, 100_000)
        yield ev
        arrivals[src] = env.now

    env.process(sender(0, 1))
    env.process(sender(2, 3))
    env.run()
    one = 1e-3 + (0.2e-3 + 0.1) + 1.2e-3
    assert arrivals[0] == pytest.approx(one)
    assert arrivals[2] == pytest.approx(one)  # not 2x: no shared wire


def test_shared_medium_serializes_disjoint_pairs(env):
    """The same two transfers on a shared bus contend for the one wire."""
    net = GraphNetwork(env, Topology.bus(4), PARAMS)
    arrivals = {}

    def sender(src, dst):
        ev = yield from net.transmit(src, dst, 100_000)
        yield ev
        arrivals[src] = env.now

    env.process(sender(0, 1))
    env.process(sender(2, 3))
    env.run()
    assert max(arrivals.values()) >= 0.2  # second waits ~0.1s of wire


def test_same_link_serializes(env):
    """Opposite-direction transfers over one undirected edge share its
    wire resource."""
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    arrivals = []

    def sender(src, dst):
        ev = yield from net.transmit(src, dst, 100_000)
        yield ev
        arrivals.append(env.now)

    env.process(sender(0, 1))
    env.process(sender(1, 0))
    env.run()
    arrivals.sort()
    assert arrivals[1] - arrivals[0] >= 0.1 - 1e-9  # one wire-time apart


# -- bus equivalence (the bit-identity seam, at transport level) ---------

@pytest.mark.parametrize("src,dst,nbytes", [(0, 1, 0), (0, 1, 100_000),
                                            (1, 1, 10_000), (2, 0, 64)])
def test_shared_medium_complete_graph_equals_bus(src, dst, nbytes):
    from repro.simulation import Environment

    env_a, env_b = Environment(), Environment()
    bus = SharedBusNetwork(env_a, 3, PARAMS)
    graph = GraphNetwork(env_b, Topology.bus(3), PARAMS)
    assert _deliver(env_a, bus, src, dst, nbytes) == \
        _deliver(env_b, graph, src, dst, nbytes)


def test_contended_schedule_equals_bus():
    """Interleaved senders: the full event schedule (not just a single
    delivery) must match the original bus implementation exactly."""
    from repro.simulation import Environment

    def drive(net, env):
        arrivals = []

        def sender(src, dst, nbytes):
            ev = yield from net.transmit(src, dst, nbytes)
            yield ev
            arrivals.append((env.now, src, dst))

        for src, dst, nbytes in ((0, 2, 5000), (1, 2, 5000), (2, 0, 800),
                                 (3, 1, 0), (1, 1, 64)):
            env.process(sender(src, dst, nbytes))
        env.run()
        return arrivals

    env_a, env_b = Environment(), Environment()
    a = drive(SharedBusNetwork(env_a, 4, PARAMS), env_a)
    b = drive(GraphNetwork(env_b, Topology.bus(4), PARAMS), env_b)
    assert a == b  # bit-identical floats, same order


# -- faults and hooks ----------------------------------------------------

def test_drop_fault_consumes_sender_cost_only(env):
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    net.fault_hook = lambda src, dst, nbytes, item: "drop"
    dropped = []
    net.on_drop = lambda src, dst, item: dropped.append((src, dst))
    freed = []

    def sender():
        yield from net.transmit(0, 2, 1000)
        freed.append(env.now)

    env.run(env.process(sender()))
    assert freed[0] == pytest.approx(1e-3)
    assert dropped == [(0, 2)]
    assert net.stats.dropped_messages == 1


def test_delay_fault_adds_wire_time(env):
    net = GraphNetwork(env, Topology.ring(4), PARAMS)
    baseline = _deliver(env, net, 0, 1, 0)
    from repro.simulation import Environment
    env2 = Environment()
    net2 = GraphNetwork(env2, Topology.ring(4), PARAMS)
    net2.fault_hook = lambda *a: 0.5
    assert _deliver(env2, net2, 0, 1, 0) == pytest.approx(baseline + 0.5)
    assert net2.stats.delayed_messages == 1


def test_build_network_spec_routing(env):
    assert build_network(env, None, 4, PARAMS).topology.shared_medium
    assert build_network(env, "ring", 4, PARAMS).topology.kind == "ring"
    topo = Topology.mesh(6)
    assert build_network(env, topo, 6, PARAMS).topology is topo


def test_out_of_range_and_negative_bytes_rejected(env):
    net = GraphNetwork(env, Topology.ring(3), PARAMS)

    def bad_host():
        yield from net.transmit(0, 9, 0)

    def bad_bytes():
        yield from net.transmit(0, 1, -1)

    with pytest.raises(ValueError):
        env.run(env.process(bad_host()))
    with pytest.raises(ValueError):
        env.run(env.process(bad_bytes()))
