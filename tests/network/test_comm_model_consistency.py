"""Cross-checks between the fitted communication model and the
simulated transport it was fitted on."""

import pytest

from repro.core.model.costs import default_comm_model
from repro.message.messages import ProfileMsg
from repro.network.characterization import DEFAULT_PROBE_BYTES
from repro.network.parameters import NetworkParameters
from repro.network.patterns import measure_pattern


def test_probe_size_matches_profile_message():
    """The characterization probes with profile-sized messages, so the
    model's sigma terms describe real sync traffic."""
    assert ProfileMsg(0, 1).nbytes == DEFAULT_PROBE_BYTES


def test_fit_interpolates_unsampled_points():
    model = default_comm_model()
    # The cache was fitted on 2..16; check an interior non-sample...
    for p in (5, 11, 13):
        measured = measure_pattern("AA", p, DEFAULT_PROBE_BYTES)
        assert model.all_to_all(p) == pytest.approx(measured, rel=0.1)


def test_model_terms_monotone_in_p():
    model = default_comm_model()
    for fn in (model.one_to_all, model.all_to_one, model.all_to_all):
        values = [fn(p) for p in range(2, 17)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_custom_network_gets_its_own_fit():
    fast = NetworkParameters(send_overhead=10e-6, recv_overhead=12e-6,
                             wire_latency=3e-6, bandwidth=100e6)
    fast_model = default_comm_model(fast)
    slow_model = default_comm_model()
    assert fast_model.all_to_all(8) < slow_model.all_to_all(8) / 10
