"""Tests for network parameter validation and derived quantities."""

import pytest

from repro.network.parameters import (
    NetworkParameters,
    PAPER_BANDWIDTH_BPS,
    PAPER_LATENCY_S,
)


def test_default_latency_is_papers():
    assert NetworkParameters().latency == pytest.approx(PAPER_LATENCY_S)


def test_default_bandwidth_is_papers():
    assert NetworkParameters().bandwidth == PAPER_BANDWIDTH_BPS


def test_transfer_time():
    p = NetworkParameters()
    assert p.transfer_time(0) == pytest.approx(p.latency)
    assert p.transfer_time(960_000) == pytest.approx(p.latency + 1.0)


def test_negative_overhead_rejected():
    with pytest.raises(ValueError):
        NetworkParameters(send_overhead=-1.0)


def test_nonpositive_bandwidth_rejected():
    with pytest.raises(ValueError):
        NetworkParameters(bandwidth=0.0)


def test_frozen_and_hashable():
    a = NetworkParameters()
    b = NetworkParameters()
    assert a == b
    assert hash(a) == hash(b)
