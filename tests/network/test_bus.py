"""Unit tests for the shared-bus transport."""

import pytest

from repro.network.bus import SharedBusNetwork
from repro.network.parameters import NetworkParameters


PARAMS = NetworkParameters(send_overhead=1e-3, recv_overhead=1.2e-3,
                           wire_latency=0.2e-3, bandwidth=1e6,
                           local_overhead=0.05e-3)


def test_needs_at_least_one_host(env):
    with pytest.raises(ValueError):
        SharedBusNetwork(env, 0)


def test_single_message_latency(env):
    net = SharedBusNetwork(env, 2, PARAMS)
    arrival = []

    def sender():
        ev = yield from net.transmit(0, 1, 0)
        yield ev
        arrival.append(env.now)

    env.run(env.process(sender()))
    # send + wire + recv overheads with zero payload
    assert arrival[0] == pytest.approx(1e-3 + 0.2e-3 + 1.2e-3)


def test_payload_adds_bandwidth_term(env):
    net = SharedBusNetwork(env, 2, PARAMS)
    arrival = []

    def sender():
        ev = yield from net.transmit(0, 1, 100_000)
        yield ev
        arrival.append(env.now)

    env.run(env.process(sender()))
    assert arrival[0] == pytest.approx(2.4e-3 + 0.1)


def test_sender_returns_after_send_overhead_only(env):
    net = SharedBusNetwork(env, 2, PARAMS)
    freed = []

    def sender():
        yield from net.transmit(0, 1, 1_000_000)
        freed.append(env.now)

    env.run(env.process(sender()))
    assert freed[0] == pytest.approx(1e-3)


def test_local_delivery_skips_bus(env):
    net = SharedBusNetwork(env, 2, PARAMS)
    arrival = []

    def sender():
        ev = yield from net.transmit(1, 1, 10_000)
        yield ev
        arrival.append(env.now)

    env.run(env.process(sender()))
    assert arrival[0] == pytest.approx(0.05e-3)
    assert net.stats.local_messages == 1


def test_bus_serializes_wire_time(env):
    net = SharedBusNetwork(env, 3, PARAMS)
    arrivals = {}

    def sender(src):
        ev = yield from net.transmit(src, 2 if src != 2 else 0, 100_000)
        yield ev
        arrivals[src] = env.now

    env.process(sender(0))
    env.process(sender(1))
    env.run()
    # Both need 0.1s of wire; the second waits for the first.
    assert min(arrivals.values()) == pytest.approx(2.4e-3 + 0.1)
    assert max(arrivals.values()) >= 0.2


def test_sender_nic_serializes_broadcast(env):
    net = SharedBusNetwork(env, 4, PARAMS)
    done = []

    def broadcaster():
        for dst in (1, 2, 3):
            yield from net.transmit(0, dst, 0)
        done.append(env.now)

    env.run(env.process(broadcaster()))
    assert done[0] == pytest.approx(3e-3)  # 3 x send_overhead


def test_receiver_nic_serializes_gather(env):
    net = SharedBusNetwork(env, 4, PARAMS)
    arrivals = []

    def sender(src):
        ev = yield from net.transmit(src, 0, 0)
        yield ev
        arrivals.append(env.now)

    for src in (1, 2, 3):
        env.process(sender(src))
    env.run()
    arrivals.sort()
    # Receiver overhead 1.2 ms each must serialize at host 0.
    assert arrivals[1] - arrivals[0] >= 1.2e-3 - 1e-9
    assert arrivals[2] - arrivals[1] >= 1.2e-3 - 1e-9


def test_on_deliver_hook(env):
    net = SharedBusNetwork(env, 2, PARAMS)
    seen = []
    net.on_deliver = lambda dst, item: seen.append((dst, item))

    def sender():
        ev = yield from net.transmit(0, 1, 0, item="payload")
        yield ev

    env.run(env.process(sender()))
    assert seen == [(1, "payload")]


def test_out_of_range_host_rejected(env):
    net = SharedBusNetwork(env, 2, PARAMS)

    def sender():
        yield from net.transmit(0, 5, 0)

    with pytest.raises(ValueError):
        env.run(env.process(sender()))


def test_negative_bytes_rejected(env):
    net = SharedBusNetwork(env, 2, PARAMS)

    def sender():
        yield from net.transmit(0, 1, -1)

    with pytest.raises(ValueError):
        env.run(env.process(sender()))


def test_stats_accumulate(env):
    net = SharedBusNetwork(env, 3, PARAMS)

    def sender():
        ev = yield from net.transmit(0, 1, 100)
        yield ev
        ev = yield from net.transmit(0, 2, 200)
        yield ev

    env.run(env.process(sender()))
    assert net.stats.messages == 2
    assert net.stats.bytes == 300
    assert net.stats.per_host_sent[0] == 2
    assert net.stats.per_host_received[1] == 1


def test_post_fire_and_forget(env):
    net = SharedBusNetwork(env, 2, PARAMS)
    delivered = net.post(0, 1, 0, item="x")
    env.run()
    assert delivered.processed
    assert delivered.value == "x"
