"""Unit tests for the Topology graph abstraction."""

import json

import pytest

from repro.network.parameters import NetworkParameters
from repro.network.topology import (
    Topology,
    mesh_dims,
    parse_topology_spec,
    resolve_topology,
)


# -- constructors --------------------------------------------------------

def test_bus_is_complete_and_shared():
    topo = Topology.bus(4)
    assert topo.shared_medium
    assert len(topo.edges) == 6  # C(4, 2)
    assert topo.diameter == 1
    assert topo.max_degree == 3


def test_complete_is_switched():
    topo = Topology.complete(4)
    assert not topo.shared_medium
    assert topo.edges == Topology.bus(4).edges


def test_ring_structure():
    topo = Topology.ring(5)
    assert len(topo.edges) == 5
    assert all(topo.degree(h) == 2 for h in range(5))
    assert topo.diameter == 2


def test_ring_small_cases():
    assert Topology.ring(1).edges == ()
    assert Topology.ring(2).edges == ((0, 1),)


def test_mesh_dims_prefers_square():
    assert mesh_dims(16) == (4, 4)
    assert mesh_dims(8) == (2, 4)
    assert mesh_dims(7) == (1, 7)  # prime: a line


def test_mesh_is_grid_without_wraparound():
    topo = Topology.mesh(6)  # 2 x 3
    assert len(topo.edges) == 7  # 2*2 vertical + 3*1... (r*(c-1) + c*(r-1))
    corners = [h for h in range(6) if topo.degree(h) == 2]
    assert len(corners) == 4


def test_torus_adds_wraparound():
    mesh = Topology.mesh(9)   # 3 x 3
    torus = Topology.torus(9)
    assert len(torus.edges) > len(mesh.edges)
    assert all(torus.degree(h) == 4 for h in range(9))


def test_random_graph_is_seeded_and_connected():
    a = Topology.random_graph(10, extra_edges=3, seed=5)
    b = Topology.random_graph(10, extra_edges=3, seed=5)
    c = Topology.random_graph(10, extra_edges=3, seed=6)
    assert a.edges == b.edges
    assert a.edges != c.edges
    assert a.is_connected
    assert len(a.edges) == 9 + 3  # spanning tree + chords


# -- validation ----------------------------------------------------------

def test_rejects_disconnected_graph():
    with pytest.raises(ValueError, match="connected"):
        Topology("broken", 4, ((0, 1), (2, 3)))


def test_rejects_self_edge_and_duplicates():
    with pytest.raises(ValueError, match="self-edge"):
        Topology("bad", 2, ((0, 0), (0, 1)))
    with pytest.raises(ValueError, match="duplicate"):
        Topology("bad", 2, ((0, 1), (0, 1)))


def test_rejects_out_of_range_and_unnormalized_edges():
    with pytest.raises(ValueError, match="out of range"):
        Topology("bad", 2, ((0, 5),))
    with pytest.raises(ValueError, match="not normalized"):
        Topology("bad", 2, ((1, 0),))


def test_rejects_link_params_on_non_edge():
    override = ((0, 2), NetworkParameters())
    with pytest.raises(ValueError, match="non-edge"):
        Topology("bad", 3, ((0, 1), (1, 2)), link_params=(override,))


# -- routing -------------------------------------------------------------

def test_route_is_shortest_path():
    ring = Topology.ring(6)
    assert ring.route(0, 1) == ((0, 1),)
    assert ring.route(0, 5) == ((0, 5),)     # wraps the short way
    assert ring.hops(0, 3) == 3              # antipode
    assert ring.route(2, 2) == ()


def test_route_tie_break_is_lowest_id_and_deterministic():
    # On a 4-ring both 0->1->2 and 0->3->2 are shortest; BFS with sorted
    # neighbors must pick the lowest-id first hop, every time.
    ring = Topology.ring(4)
    assert ring.route(0, 2) == ((0, 1), (1, 2))
    assert all(ring.route(0, 2) == ((0, 1), (1, 2)) for _ in range(5))


def test_routes_are_continuous_and_end_at_dst():
    topo = Topology.random_graph(12, extra_edges=4, seed=1)
    for src in range(12):
        for dst in range(12):
            route = topo.route(src, dst)
            if src == dst:
                assert route == ()
                continue
            assert route[0][0] == src and route[-1][1] == dst
            for (_, a), (b, _) in zip(route, route[1:]):
                assert a == b


def test_diameter_examples():
    assert Topology.bus(8).diameter == 1
    assert Topology.ring(8).diameter == 4
    assert Topology.torus(16).diameter == 4  # 4x4, wraparound


# -- spectral helpers ----------------------------------------------------

def test_laplacian_rows_sum_to_zero():
    topo = Topology.mesh(6)
    lap = topo.laplacian()
    for h, row in enumerate(lap):
        assert sum(row) == 0.0
        assert row[h] == topo.degree(h)


def test_topology_is_hashable_cache_key():
    assert hash(Topology.ring(4)) == hash(Topology.ring(4))
    assert Topology.ring(4) == Topology.ring(4)
    assert Topology.ring(4) != Topology.mesh(4)


# -- adjacency files -----------------------------------------------------

def test_from_adjacency_object(tmp_path):
    path = tmp_path / "net.json"
    path.write_text(json.dumps({"0": [1, 2], "1": [0], "2": [0]}))
    topo = Topology.from_file(str(path))
    assert topo.n_hosts == 3
    assert topo.edges == ((0, 1), (0, 2))


def test_from_edge_list_with_link_overrides(tmp_path):
    path = tmp_path / "net.json"
    path.write_text(json.dumps({
        "n_hosts": 4,
        "edges": [[0, 1], [1, 2], [2, 3]],
        "links": [{"edge": [2, 3], "bandwidth": 120000.0}]}))
    topo = Topology.from_file(str(path))
    assert topo.n_hosts == 4
    assert topo.params_for(3, 2).bandwidth == 120000.0
    assert topo.params_for(0, 1) is None


def test_from_file_rejects_unknown_link_fields(tmp_path):
    path = tmp_path / "net.json"
    path.write_text(json.dumps({
        "n_hosts": 2, "edges": [[0, 1]],
        "links": [{"edge": [0, 1], "color": 3}]}))
    with pytest.raises(ValueError, match="unknown link fields"):
        Topology.from_file(str(path))


def test_from_adjacency_rejects_gaps():
    with pytest.raises(ValueError, match="contiguous"):
        Topology.from_adjacency({0: [3], 3: [0]})


# -- spec parsing / resolution -------------------------------------------

def test_parse_topology_spec_accepts_kinds_and_files():
    for kind in ("bus", "complete", "ring", "mesh", "torus"):
        assert parse_topology_spec(kind) == kind
    assert parse_topology_spec("file:net.json") == "file:net.json"
    with pytest.raises(ValueError, match="bad --topology"):
        parse_topology_spec("hypercube")
    with pytest.raises(ValueError):
        parse_topology_spec("file:")


def test_resolve_topology_none_is_the_paper_bus():
    topo = resolve_topology(None, 4)
    assert topo.kind == "bus" and topo.shared_medium


def test_resolve_topology_checks_host_count(tmp_path):
    with pytest.raises(ValueError, match="4 hosts"):
        resolve_topology(Topology.ring(4), 8)
    path = tmp_path / "net.json"
    path.write_text(json.dumps({"0": [1], "1": [0]}))
    with pytest.raises(ValueError, match="2 hosts"):
        resolve_topology(f"file:{path}", 5)
    assert resolve_topology(f"file:{path}", 2).n_hosts == 2
