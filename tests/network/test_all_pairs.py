"""The lazy complete-graph edge sequence behind bus/complete at scale.

``_AllPairs`` must be observationally identical to the sorted tuple of
all ``(u, v), u < v`` pairs — length, order, membership, indexing,
equality — while staying O(1) memory, and the :class:`Topology` fast
paths keyed off it (routing, diameter, connectivity) must agree with a
materialized copy of the same graph.
"""

import pickle

import pytest

from repro.network.topology import Topology, _AllPairs


def _materialized(n):
    return tuple((u, v) for u in range(n) for v in range(u + 1, n))


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_matches_materialized_tuple(n):
    lazy = _AllPairs(n)
    real = _materialized(n)
    assert len(lazy) == len(real)
    assert tuple(lazy) == real
    assert lazy == real          # element-wise tuple comparison
    for idx, edge in enumerate(real):
        assert lazy[idx] == edge
        assert edge in lazy


def test_negative_indexing_and_slices():
    lazy = _AllPairs(5)
    real = _materialized(5)
    assert lazy[-1] == real[-1]
    assert lazy[2:6] == real[2:6]
    with pytest.raises(IndexError):
        lazy[len(real)]
    with pytest.raises(IndexError):
        lazy[-len(real) - 1]


def test_membership_rejects_junk():
    lazy = _AllPairs(4)
    assert (0, 3) in lazy
    assert (3, 0) not in lazy    # not normalized
    assert (1, 1) not in lazy
    assert (0, 4) not in lazy    # out of range
    assert "ab" not in lazy
    assert 17 not in lazy
    assert (0, 1, 2) not in lazy


def test_len_is_o1_at_scale():
    # The point of the class: P=4096 without 8.4M tuples in memory.
    lazy = _AllPairs(4096)
    assert len(lazy) == 4096 * 4095 // 2
    assert lazy[0] == (0, 1)
    assert lazy[-1] == (4094, 4095)
    assert (1234, 4000) in lazy


def test_equality_and_hash():
    assert _AllPairs(6) == _AllPairs(6)
    assert _AllPairs(6) != _AllPairs(7)
    assert hash(_AllPairs(6)) == hash(_AllPairs(6))
    assert _AllPairs(3) != ((0, 1), (0, 2), (2, 1))  # wrong elements


def test_pickle_round_trip():
    lazy = _AllPairs(9)
    clone = pickle.loads(pickle.dumps(lazy))
    assert isinstance(clone, _AllPairs)
    assert clone == lazy and clone.n == 9


def test_topology_fast_paths_agree_with_materialized_graph():
    n = 7
    via_lazy = Topology.complete(n)
    via_real = Topology("complete", n, _materialized(n))
    assert via_lazy.max_degree == via_real.max_degree == n - 1
    assert via_lazy.diameter == via_real.diameter == 1
    assert via_lazy.is_connected and via_real.is_connected
    for src in range(n):
        for dst in range(n):
            assert via_lazy.route(src, dst) == via_real.route(src, dst)
    # Hashable (frozen dataclass over the O(1)-hash edge view).
    assert hash(via_lazy) == hash(Topology.complete(n))


def test_bus_is_shared_medium_complete_graph():
    bus = Topology.bus(4)
    assert bus.shared_medium
    assert isinstance(bus.edges, _AllPairs)
    assert tuple(bus.edges) == _materialized(4)


def test_host_count_mismatch_rejected():
    with pytest.raises(ValueError):
        Topology("complete", 5, _AllPairs(4))
