"""Tests for the MXM workload spec (§6.2)."""

import pytest

from repro.apps.mxm import (
    MxmConfig,
    PAPER_MXM_P16,
    PAPER_MXM_P4,
    mxm_application,
    mxm_loop,
)


def test_work_per_iteration_formula():
    cfg = MxmConfig(400, 800, 400)
    assert cfg.work_per_iteration_ops == 800 * 400


def test_dc_is_c_elements():
    cfg = MxmConfig(400, 800, 400)
    assert cfg.dc_bytes == 800 * 8


def test_loop_spec_dimensions():
    loop = mxm_loop(MxmConfig(400, 800, 400), op_seconds=1e-7)
    assert loop.n_iterations == 400
    assert loop.uniform
    assert loop.iteration_time == pytest.approx(800 * 400 * 1e-7)
    assert loop.replicated_bytes == 400 * 800 * 8


def test_paper_sizes_r_per_proc():
    assert [c.r for c in PAPER_MXM_P4] == [400, 400, 800, 800]
    assert [c.r for c in PAPER_MXM_P16] == [1600, 1600, 3200, 3200]
    assert all(c.r2 == 400 for c in PAPER_MXM_P4 + PAPER_MXM_P16)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        MxmConfig(0, 1, 1)


def test_application_wraps_single_loop():
    app = mxm_application(MxmConfig(16, 16, 16))
    assert len(app.loops()) == 1
    assert app.loops()[0].name == "mxm"


def test_label():
    assert MxmConfig(400, 800, 400).label == "R=400,C=800,R2=400"
