"""Unit and property tests for workload specs and work tables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.workload import (
    ApplicationSpec,
    LoopSpec,
    SequentialStage,
    WorkTable,
)


def test_uniform_table_basics():
    t = WorkTable(0.5, 10)
    assert t.uniform
    assert t.total_work == pytest.approx(5.0)
    assert t.cost(3) == 0.5
    assert t.range_work(2, 6) == pytest.approx(2.0)


def test_non_uniform_table_basics():
    t = WorkTable(np.array([1.0, 2.0, 3.0]))
    assert not t.uniform
    assert t.total_work == pytest.approx(6.0)
    assert t.cost(2) == 3.0
    assert t.range_work(1, 3) == pytest.approx(5.0)


def test_uniform_requires_count():
    with pytest.raises(ValueError):
        WorkTable(1.0)


def test_nonpositive_costs_rejected():
    with pytest.raises(ValueError):
        WorkTable(np.array([1.0, 0.0]))
    with pytest.raises(ValueError):
        WorkTable(0.0, 5)


def test_count_mismatch_rejected():
    with pytest.raises(ValueError):
        WorkTable(np.array([1.0, 2.0]), n_iterations=3)


def test_range_bounds_checked():
    t = WorkTable(1.0, 4)
    with pytest.raises(IndexError):
        t.range_work(0, 5)
    with pytest.raises(IndexError):
        t.cost(4)


def test_count_for_work_round_trip_uniform():
    t = WorkTable(2.0, 10)
    assert t.count_for_work(0, 5.0) == 3       # round up
    assert t.count_for_work(0, 5.0, round_up=False) == 2
    assert t.count_for_work(0, 4.0) == 2       # exact boundary
    assert t.count_for_work(0, 4.0, round_up=False) == 2
    assert t.count_for_work(4, 100.0) == 6     # clipped


def test_count_for_work_non_uniform():
    t = WorkTable(np.array([1.0, 2.0, 3.0, 4.0]))
    assert t.count_for_work(0, 3.5) == 3
    assert t.count_for_work(0, 3.0) == 2
    assert t.count_for_work(1, 2.0, round_up=False) == 1


def test_loop_spec_validation():
    with pytest.raises(ValueError):
        LoopSpec(name="bad", n_iterations=0, iteration_time=1.0, dc_bytes=0)
    with pytest.raises(ValueError):
        LoopSpec(name="bad", n_iterations=2, iteration_time=1.0,
                 dc_bytes=-1)


def test_loop_spec_uniform_properties():
    loop = LoopSpec(name="u", n_iterations=8, iteration_time=0.25,
                    dc_bytes=10)
    assert loop.uniform
    assert loop.total_work == pytest.approx(2.0)
    assert loop.mean_iteration_time == pytest.approx(0.25)
    assert loop.work_table().uniform


def test_loop_spec_non_uniform_properties():
    loop = LoopSpec(name="n", n_iterations=3,
                    iteration_time=(1.0, 2.0, 3.0), dc_bytes=10)
    assert not loop.uniform
    assert loop.total_work == pytest.approx(6.0)
    assert not loop.work_table().uniform


def test_application_spec_accessors():
    l1 = LoopSpec(name="a", n_iterations=2, iteration_time=1.0, dc_bytes=0)
    l2 = LoopSpec(name="b", n_iterations=2, iteration_time=1.0, dc_bytes=0)
    stage = SequentialStage(name="t", compute_seconds=1.0)
    app = ApplicationSpec(name="app", stages=(l1, stage, l2))
    assert [s.name for s in app.loops()] == ["a", "b"]
    assert app.loop("b") is l2
    with pytest.raises(KeyError):
        app.loop("zzz")


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=50),
       st.integers(min_value=0, max_value=49),
       st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=150, deadline=None)
def test_count_for_work_is_minimal_cover(costs, start, work):
    """round_up returns the smallest k whose cumulative cost >= work."""
    if start >= len(costs):
        start = start % len(costs)
    t = WorkTable(np.array(costs))
    k = t.count_for_work(start, work)
    covered = t.range_work(start, start + k)
    limit = len(costs) - start
    if k < limit:
        assert covered >= work - 1e-9
    if k > 0:
        assert t.range_work(start, start + k - 1) < work + 1e-9


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2,
                max_size=50))
@settings(max_examples=100, deadline=None)
def test_range_work_additive(costs):
    t = WorkTable(np.array(costs))
    mid = len(costs) // 2
    assert t.range_work(0, len(costs)) == pytest.approx(
        t.range_work(0, mid) + t.range_work(mid, len(costs)))
