"""Tests for the TRFD workload spec (§6.3)."""

import numpy as np
import pytest

from repro.apps.trfd import (
    TrfdConfig,
    bitonic_pair_costs,
    loop2_iteration_ops,
    transpose_stage,
    trfd_application,
    trfd_loop1,
    trfd_loop2,
)


def test_array_size_formula():
    assert TrfdConfig(30).m == 465
    assert TrfdConfig(40).m == 820
    assert TrfdConfig(50).m == 1275


def test_loop1_uniform_work():
    cfg = TrfdConfig(30)
    loop = trfd_loop1(cfg, op_seconds=1e-7)
    assert loop.uniform
    assert loop.n_iterations == 465
    assert loop.iteration_time == pytest.approx(
        (30 ** 3 + 3 * 30 ** 2 + 30) * 1e-7)


def test_loop2_raw_costs_decreasing():
    cfg = TrfdConfig(30)
    ops = loop2_iteration_ops(cfg)
    assert ops.size == 465
    assert ops[0] > ops[-1]
    assert np.all(np.diff(ops) <= 1e-9)
    assert np.all(ops > 0)


def test_loop2_first_iteration_matches_loop1():
    """At j=1 (i=1) the §6.3 formula reduces to n^3+3n^2+n."""
    cfg = TrfdConfig(40)
    assert loop2_iteration_ops(cfg)[0] == pytest.approx(
        cfg.loop1_iteration_ops)


def test_bitonic_pairing_evens_out():
    cfg = TrfdConfig(30)
    raw = loop2_iteration_ops(cfg)
    paired = bitonic_pair_costs(raw)
    assert paired.size == 233  # ceil(465 / 2)
    assert paired.sum() == pytest.approx(raw.sum())
    # Paired costs vary far less than raw costs.
    assert paired[:-1].std() / paired[:-1].mean() < \
        0.25 * raw.std() / raw.mean()


def test_bitonic_even_count():
    costs = np.array([4.0, 3.0, 2.0, 1.0])
    paired = bitonic_pair_costs(costs)
    assert np.allclose(paired, [5.0, 5.0])


def test_loop2_spec_bitonic_default():
    cfg = TrfdConfig(30)
    loop = trfd_loop2(cfg)
    assert loop.n_iterations == 233
    assert loop.dc_bytes == 2 * cfg.dc_bytes  # two columns per pair
    assert not loop.uniform


def test_loop2_spec_raw_variant():
    cfg = TrfdConfig(30)
    loop = trfd_loop2(cfg, bitonic=False)
    assert loop.n_iterations == 465
    assert loop.dc_bytes == cfg.dc_bytes


def test_transpose_stage_scales_with_m():
    small = transpose_stage(TrfdConfig(30))
    big = transpose_stage(TrfdConfig(50))
    assert big.compute_seconds > small.compute_seconds
    assert big.gather_bytes == 1275 * 1275 * 8


def test_application_structure():
    app = trfd_application(TrfdConfig(30))
    assert [s.name for s in app.stages] == ["trfd-L1", "trfd-transpose",
                                            "trfd-L2"]


def test_small_n_rejected():
    with pytest.raises(ValueError):
        TrfdConfig(1)
