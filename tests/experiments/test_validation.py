"""Tests for the claim-validation engine (fast, 2 seeds)."""


from repro.experiments.config import ExperimentConfig
from repro.experiments.validation import (
    ALL_CLAIMS,
    Claim,
    ClaimResult,
    render_validation,
    validate,
)


CFG = ExperimentConfig(n_seeds=2, base_seed=12)


def test_all_claims_have_distinct_ids():
    ids = [c.claim_id for c in ALL_CLAIMS]
    assert len(set(ids)) == len(ids)
    assert len(ALL_CLAIMS) == 8


def test_claims_cite_paper_sections():
    assert all("§" in c.source for c in ALL_CLAIMS)


def test_single_claim_check_returns_evidence():
    claim = next(c for c in ALL_CLAIMS if c.claim_id == "fig4-shape")
    passed, evidence = claim.check(CFG)
    assert isinstance(passed, bool)
    assert "AA" in evidence


def test_validate_runs_selected_claims():
    subset = tuple(c for c in ALL_CLAIMS
                   if c.claim_id in ("fig4-shape", "different-winners"))
    results = validate(CFG, claims=subset)
    assert len(results) == 2
    assert all(isinstance(r, ClaimResult) for r in results)
    # Figure 4 is deterministic: its claim must hold even at 2 seeds.
    fig4 = next(r for r in results if r.claim.claim_id == "fig4-shape")
    assert fig4.passed


def test_render_validation_format():
    claim = Claim("demo", "§0", "a statement",
                  lambda cfg: (True, "the data"))
    text = render_validation([ClaimResult(claim=claim, passed=True,
                                          evidence="the data")])
    assert "[PASS] demo" in text
    assert "1/1 claims reproduced" in text


def test_render_validation_failure():
    claim = Claim("demo", "§0", "a statement",
                  lambda cfg: (False, "contradiction"))
    results = validate(CFG, claims=(claim,))
    text = render_validation(results)
    assert "[FAIL] demo" in text
    assert "0/1" in text
