"""Tests for the generic sweep utility."""

import pytest

from repro.apps.workload import LoopSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import sweep


CFG = ExperimentConfig(n_seeds=2, base_seed=8, persistence=0.5)
LOOP = LoopSpec(name="swp", n_iterations=48, iteration_time=0.01,
                dc_bytes=200)


def test_unknown_knob_rejected():
    with pytest.raises(KeyError):
        sweep(LOOP, 4, "flux_capacitor", [1, 2], config=CFG)


def test_sweep_shape():
    result = sweep(LOOP, 4, "persistence", [0.2, 1.0], schemes=("GD", "LD"),
                   config=CFG)
    assert result.knob == "persistence"
    assert [p.value for p in result.points] == [0.2, 1.0]
    for p in result.points:
        assert set(p.means) == {"GD", "LD"}
        assert all(v > 0 for v in p.means.values())


def test_sweep_render():
    result = sweep(LOOP, 4, "max_load", [0, 4], schemes=("GD",),
                   config=CFG)
    text = result.render()
    assert "max_load" in text and "GD" in text
    # No external load is strictly faster.
    assert result.points[0].means["GD"] < result.points[1].means["GD"]


def test_sweep_group_size_k_equals_p_recovers_globals():
    """§3.5: the global strategies are the K = P instance of the locals.

    With identical clusters, LD at K=P must produce *exactly* GD's
    execution time (and LC exactly GC's): the protocols coincide."""
    result = sweep(LOOP, 4, "group_size", [4],
                   schemes=("GC", "GD", "LC", "LD"), config=CFG)
    point = result.points[0]
    assert point.means["LD"] == pytest.approx(point.means["GD"], rel=1e-12)
    assert point.means["LC"] == pytest.approx(point.means["GC"], rel=1e-12)


def test_sweep_crossover_helper():
    result = sweep(LOOP, 4, "max_load", [0, 5], schemes=("GD", "LD"),
                   config=CFG)
    # crossover returns None when b never beats a, or the first value.
    value = result.crossover("GD", "LD")
    assert value in (None, 0.0, 5.0)


def test_all_knobs_apply_cleanly():
    for knob, values in (("persistence", [0.5]), ("group_size", [2]),
                         ("improvement_threshold", [0.2]),
                         ("sync_period", [0.3]), ("max_load", [2])):
        result = sweep(LOOP, 4, knob, values, schemes=("GD",), config=CFG)
        assert len(result.points) == 1, knob
