"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.apps.mxm import MxmConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import (
    figure_to_csv,
    result_to_json,
    table_to_csv,
    write_result,
)
from repro.experiments.figures import figure2, mxm_figure
from repro.experiments.tables import OrderRow, TableResult


CFG = ExperimentConfig(n_seeds=2, base_seed=4)


@pytest.fixture(scope="module")
def fig():
    return mxm_figure(4, CFG, sizes=(MxmConfig(64, 160, 160),))


@pytest.fixture(scope="module")
def tab():
    return TableResult(table_id="tX", title="demo", rows=[
        OrderRow(label="row-a", actual=("GD", "GC", "LD", "LC"),
                 predicted=("GD", "GC", "LD", "LC"), agreement=1.0,
                 actual_means={"GD": 1.0}, predicted_means={"GD": 1.1})])


def test_figure_csv_round_trip(fig):
    text = figure_to_csv(fig)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "config"
    assert len(rows) == 1 + len(fig.rows)
    # Values parse back as floats.
    assert float(rows[1][1]) > 0


def test_table_csv(tab):
    text = table_to_csv(tab)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[1][0] == "row-a"
    assert rows[1][1] == "GD GC LD LC"


def test_figure_json(fig):
    doc = json.loads(result_to_json(fig))
    assert doc["kind"] == "figure"
    assert doc["rows"][0]["normalized"]["NONE"] == pytest.approx(1.0)
    assert len(doc["rows"][0]["raw_times"]["GD"]) == 2


def test_table_json(tab):
    doc = json.loads(result_to_json(tab))
    assert doc["kind"] == "table"
    assert doc["rows"][0]["agreement"] == 1.0


def test_json_rejects_unknown():
    with pytest.raises(TypeError):
        result_to_json(object())


def test_write_result_csv_and_json(tmp_path, fig):
    csv_path = tmp_path / "fig.csv"
    json_path = tmp_path / "fig.json"
    write_result(fig, str(csv_path))
    write_result(fig, str(json_path))
    assert csv_path.read_text().startswith("config")
    assert json.loads(json_path.read_text())["kind"] == "figure"


def test_write_result_bad_extension(tmp_path, fig):
    with pytest.raises(ValueError):
        write_result(fig, str(tmp_path / "fig.xlsx"))


def test_figure2_exports(tmp_path):
    result = figure2(CFG, seed=1, n_windows=8)
    assert len(result.rows) == 8
    levels = [row.normalized["level"] for row in result.rows]
    assert all(0 <= lv <= CFG.max_load for lv in levels)
    text = figure_to_csv(result)
    assert "level" in text

def _small_run(**kwargs):
    from repro import ClusterSpec, run_loop
    from repro.apps.mxm import mxm_loop
    from repro.runtime.options import RunOptions
    loop = mxm_loop(MxmConfig(48, 32, 32), op_seconds=4e-7)
    cluster = ClusterSpec.homogeneous(4, max_load=2, persistence=1.0, seed=3)
    return run_loop(loop, cluster, "GDDLB", RunOptions(), **kwargs)


def test_run_csv_includes_backend():
    from repro.experiments.export import run_to_csv
    stats = _small_run()
    rows = list(csv.DictReader(io.StringIO(run_to_csv(stats))))
    assert len(rows) == 1
    assert rows[0]["backend"] == "sim"
    assert rows[0]["strategy"] == "GDDLB"
    assert float(rows[0]["duration"]) == stats.duration


def test_run_csv_many_rows():
    from repro.experiments.export import run_to_csv
    runs = [_small_run(), _small_run()]
    rows = list(csv.DictReader(io.StringIO(run_to_csv(runs))))
    assert [r["backend"] for r in rows] == ["sim", "sim"]


def test_run_json_detail():
    from repro.experiments.export import run_to_json
    stats = _small_run()
    doc = json.loads(run_to_json(stats))
    assert doc["kind"] == "run"
    assert doc["backend"] == "sim"
    assert len(doc["node_finish_times"]) == 4
    assert len(doc["syncs"]) == stats.n_syncs


def test_write_result_accepts_run(tmp_path):
    stats = _small_run()
    csv_path = tmp_path / "run.csv"
    json_path = tmp_path / "run.json"
    write_result(stats, str(csv_path))
    write_result(stats, str(json_path))
    assert csv_path.read_text().startswith("loop_name")
    assert json.loads(json_path.read_text())["backend"] == "sim"
