"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.apps.mxm import MxmConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import (
    figure_to_csv,
    result_to_json,
    table_to_csv,
    write_result,
)
from repro.experiments.figures import figure2, mxm_figure
from repro.experiments.tables import OrderRow, TableResult


CFG = ExperimentConfig(n_seeds=2, base_seed=4)


@pytest.fixture(scope="module")
def fig():
    return mxm_figure(4, CFG, sizes=(MxmConfig(64, 160, 160),))


@pytest.fixture(scope="module")
def tab():
    return TableResult(table_id="tX", title="demo", rows=[
        OrderRow(label="row-a", actual=("GD", "GC", "LD", "LC"),
                 predicted=("GD", "GC", "LD", "LC"), agreement=1.0,
                 actual_means={"GD": 1.0}, predicted_means={"GD": 1.1})])


def test_figure_csv_round_trip(fig):
    text = figure_to_csv(fig)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "config"
    assert len(rows) == 1 + len(fig.rows)
    # Values parse back as floats.
    assert float(rows[1][1]) > 0


def test_table_csv(tab):
    text = table_to_csv(tab)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[1][0] == "row-a"
    assert rows[1][1] == "GD GC LD LC"


def test_figure_json(fig):
    doc = json.loads(result_to_json(fig))
    assert doc["kind"] == "figure"
    assert doc["rows"][0]["normalized"]["NONE"] == pytest.approx(1.0)
    assert len(doc["rows"][0]["raw_times"]["GD"]) == 2


def test_table_json(tab):
    doc = json.loads(result_to_json(tab))
    assert doc["kind"] == "table"
    assert doc["rows"][0]["agreement"] == 1.0


def test_json_rejects_unknown():
    with pytest.raises(TypeError):
        result_to_json(object())


def test_write_result_csv_and_json(tmp_path, fig):
    csv_path = tmp_path / "fig.csv"
    json_path = tmp_path / "fig.json"
    write_result(fig, str(csv_path))
    write_result(fig, str(json_path))
    assert csv_path.read_text().startswith("config")
    assert json.loads(json_path.read_text())["kind"] == "figure"


def test_write_result_bad_extension(tmp_path, fig):
    with pytest.raises(ValueError):
        write_result(fig, str(tmp_path / "fig.xlsx"))


def test_figure2_exports(tmp_path):
    result = figure2(CFG, seed=1, n_windows=8)
    assert len(result.rows) == 8
    levels = [row.normalized["level"] for row in result.rows]
    assert all(0 <= lv <= CFG.max_load for lv in levels)
    text = figure_to_csv(result)
    assert "level" in text
