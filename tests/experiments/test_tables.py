"""Tests for table regeneration (reduced grids for speed)."""

import pytest

from repro.apps.workload import LoopSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_table
from repro.experiments.runner import measured_order, predicted_order
from repro.experiments.tables import OrderRow, TableResult, _order_row


CFG = ExperimentConfig(n_seeds=2, base_seed=3)
LOOP = LoopSpec(name="t", n_iterations=48, iteration_time=0.01,
                dc_bytes=400)


def test_order_row_construction():
    row = _order_row("demo", LOOP, 4, CFG)
    assert set(row.actual) == {"GC", "GD", "LC", "LD"}
    assert set(row.predicted) == {"GC", "GD", "LC", "LD"}
    assert 0.0 <= row.agreement <= 1.0
    assert set(row.actual_means) == set(row.predicted_means)


def test_table_result_aggregates():
    rows = [OrderRow(label="a", actual=("GD", "GC", "LD", "LC"),
                     predicted=("GD", "GC", "LD", "LC"), agreement=1.0),
            OrderRow(label="b", actual=("GD", "GC", "LD", "LC"),
                     predicted=("GC", "GD", "LD", "LC"), agreement=5 / 6)]
    table = TableResult(table_id="t", title="demo", rows=rows)
    assert table.mean_agreement == pytest.approx((1.0 + 5 / 6) / 2)
    assert table.best_match_rate == pytest.approx(0.5)
    assert rows[0].best_match and not rows[1].best_match


def test_render_table_text():
    row = _order_row("demo", LOOP, 4, CFG)
    text = render_table(TableResult(table_id="tX", title="T", rows=[row]))
    assert "actual order" in text and "agree" in text and "demo" in text


def test_actual_and_predicted_use_same_seeds():
    a1, _ = measured_order(LOOP, 4, CFG)
    a2, _ = measured_order(LOOP, 4, CFG)
    assert a1 == a2
    p1, _ = predicted_order(LOOP, 4, CFG)
    p2, _ = predicted_order(LOOP, 4, CFG)
    assert p1 == p2
