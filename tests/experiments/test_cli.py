"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_mxm(capsys):
    rc = main(["run", "--app", "mxm", "--size", "64x64x64", "-P", "3",
               "--strategy", "GDDLB", "--persistence", "0.5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GDDLB" in out and "syncs=" in out


def test_run_mxm_custom_reports_selection(capsys):
    rc = main(["run", "--app", "mxm", "--size", "128x128x128", "-P", "4",
               "--strategy", "CUSTOM"])
    assert rc == 0
    assert "customized selection" in capsys.readouterr().out


def test_run_trfd(capsys):
    rc = main(["run", "--app", "trfd", "--n", "8", "-P", "3",
               "--strategy", "LDDLB"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trfd-L1" in out and "trfd-L2" in out


def test_run_bad_size(capsys):
    rc = main(["run", "--app", "mxm", "--size", "not-a-size"])
    assert rc == 2
    assert "bad --size" in capsys.readouterr().err


def test_run_periodic_mode(capsys):
    rc = main(["run", "--app", "mxm", "--size", "64x64x64", "-P", "3",
               "--strategy", "GDDLB", "--sync-mode", "periodic",
               "--sync-period", "0.2"])
    assert rc == 0


def test_characterize(capsys):
    rc = main(["characterize", "--max-procs", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "latency" in out and "AA:" in out


def test_figure_small(capsys, monkeypatch):
    rc = main(["figure", "4", "--seeds", "1"])
    assert rc == 0
    assert "figure4" in capsys.readouterr().out


def test_table_requires_valid_number():
    with pytest.raises(SystemExit):
        main(["table", "9"])


def test_compile_analysis(tmp_path, capsys):
    src = tmp_path / "prog.dlb"
    src.write_text("""
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: loadbalance */
    for i = 0, N { A[i] = A[i] + 1; }
    """)
    rc = main(["compile", str(src)])
    assert rc == 0
    assert "parallel over i" in capsys.readouterr().out


def test_compile_listing(tmp_path, capsys):
    src = tmp_path / "prog.dlb"
    src.write_text("""
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: loadbalance */
    for i = 0, N { A[i] = A[i] + 1; }
    """)
    rc = main(["compile", str(src), "--emit", "listing"])
    assert rc == 0
    assert "DLB_init" in capsys.readouterr().out


def test_compile_module(tmp_path, capsys):
    src = tmp_path / "prog.dlb"
    src.write_text("""
    /* dlb: array A(N) distribute(BLOCK) */
    /* dlb: loadbalance */
    for i = 0, N { A[i] = A[i] + 1; }
    """)
    rc = main(["compile", str(src), "--emit", "module"])
    assert rc == 0
    assert "make_loop_spec_loop0" in capsys.readouterr().out


def test_compile_missing_file(capsys):
    rc = main(["compile", "/nonexistent/path.dlb"])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_sweep_command(capsys):
    rc = main(["sweep", "max_load", "0", "3", "--size", "48x48x48",
               "-P", "3", "--seeds", "1", "--schemes", "GD"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "max_load" in out and "GD" in out


def test_sweep_bad_size(capsys):
    rc = main(["sweep", "max_load", "0", "--size", "oops"])
    assert rc == 2


def test_figure2_command(capsys):
    rc = main(["figure", "2", "--seeds", "1"])
    assert rc == 0
    assert "Load function" in capsys.readouterr().out


def test_validate_subset_runs(capsys, monkeypatch):
    # Full validation is heavy; patch the claim list to a fast one.
    from repro.experiments import validation as V

    fast = tuple(c for c in V.ALL_CLAIMS if c.claim_id == "fig4-shape")
    monkeypatch.setattr(V, "ALL_CLAIMS", fast)
    # The CLI imports validate/render lazily from the module, and
    # validate() defaults to the patched ALL_CLAIMS.
    monkeypatch.setattr(
        V, "validate",
        lambda config, claims=fast: [
            V.ClaimResult(claim=c, passed=c.check(config)[0],
                          evidence=c.check(config)[1]) for c in claims])
    rc = main(["validate", "--seeds", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "claim validation" in out and "fig4-shape" in out
