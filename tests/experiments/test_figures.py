"""Tests for figure regeneration (small configurations for speed)."""

import pytest

from repro.apps.mxm import MxmConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import figure4, mxm_figure, trfd_figure
from repro.experiments.report import render_bars, render_figure


CFG = ExperimentConfig(n_seeds=2, base_seed=9)


def test_figure4_shapes():
    result = figure4(proc_counts=tuple(range(2, 9)))
    assert result.figure_id == "figure4"
    assert len(result.rows) == 7
    for row in result.rows:
        assert row.normalized["AA(exp)"] >= row.normalized["AO(exp)"] \
            >= row.normalized["OA(exp)"] > 0
    assert "coefficients" in result.meta


def test_figure4_fit_close_to_measurement():
    result = figure4(proc_counts=tuple(range(2, 9)))
    for row in result.rows:
        for pat in ("AA", "AO", "OA"):
            assert row.normalized[f"{pat}(polyfit)"] == pytest.approx(
                row.normalized[f"{pat}(exp)"], rel=0.15, abs=1e-3)


def test_mxm_figure_small():
    result = mxm_figure(4, CFG, sizes=(MxmConfig(64, 160, 160),))
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.normalized["NONE"] == pytest.approx(1.0)
    # The global schemes beat the static baseline clearly; the locals
    # (groups of two) can at worst only tie when the imbalance happens
    # to fall across group boundaries.
    for scheme in ("GC", "GD"):
        assert row.normalized[scheme] < 0.9
    for scheme in ("LC", "LD"):
        assert row.normalized[scheme] < 1.05


def test_trfd_figure_small():
    result = trfd_figure(4, CFG, n_values=(10,))
    assert result.figure_id == "figure7"
    row = result.rows[0]
    assert row.normalized["NONE"] == pytest.approx(1.0)
    assert set(row.normalized) == {"NONE", "GC", "GD", "LC", "LD"}


def test_figure_row_best():
    result = mxm_figure(4, CFG, sizes=(MxmConfig(64, 32, 32),))
    best = result.rows[0].best()
    assert best in ("GC", "GD", "LC", "LD")


def test_render_figure_text():
    result = figure4(proc_counts=tuple(range(2, 7)))
    text = render_figure(result)
    assert "figure4" in text
    assert "P=2" in text and "fit AA" in text


def test_render_bars_text():
    result = mxm_figure(4, CFG, sizes=(MxmConfig(64, 32, 32),))
    text = render_bars(result)
    assert "#" in text and "NONE" in text
