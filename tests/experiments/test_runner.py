"""Tests for the experiment runner and order helpers."""

import pytest

from repro.apps.workload import LoopSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    measure_loop,
    measured_order,
    order_agreement,
    predict_loop,
    predicted_order,
)


CFG = ExperimentConfig(n_seeds=2, persistence=0.5, base_seed=5)
LOOP = LoopSpec(name="exp", n_iterations=48, iteration_time=0.01,
                dc_bytes=400)


def test_measure_loop_samples_per_seed():
    m = measure_loop(LOOP, 4, "GD", CFG)
    assert len(m.times) == 2
    assert m.mean > 0
    assert m.mean_syncs >= 1


def test_measure_respects_explicit_seeds():
    a = measure_loop(LOOP, 4, "GD", CFG, seeds=[1, 2])
    b = measure_loop(LOOP, 4, "GD", CFG, seeds=[1, 2])
    assert a.times == b.times


def test_predict_loop_runs_model():
    p = predict_loop(LOOP, 4, "LD", CFG)
    assert len(p.times) == 2
    assert p.mean > 0


def test_measured_order_ranks_all():
    order, cells = measured_order(LOOP, 4, CFG)
    assert set(order) == {"GC", "GD", "LC", "LD"}
    means = [cells[s].mean for s in order]
    assert means == sorted(means)


def test_predicted_order_ranks_all():
    order, _ = predicted_order(LOOP, 4, CFG)
    assert set(order) == {"GC", "GD", "LC", "LD"}


def test_order_agreement_extremes():
    assert order_agreement(("A", "B", "C"), ("A", "B", "C")) == 1.0
    assert order_agreement(("A", "B", "C"), ("C", "B", "A")) == 0.0
    assert order_agreement(("A", "B", "C", "D"),
                           ("B", "A", "C", "D")) == pytest.approx(5 / 6)


def test_order_agreement_set_mismatch():
    with pytest.raises(ValueError):
        order_agreement(("A", "B"), ("A", "C"))


def test_group_size_two_groups():
    assert CFG.group_size(4) == 2
    assert CFG.group_size(16) == 8
    assert CFG.group_size(5) == 3


def test_seed_env_override(monkeypatch):
    from repro.experiments.config import default_seed_count
    monkeypatch.setenv("REPRO_SEEDS", "3")
    assert default_seed_count() == 3
    monkeypatch.setenv("REPRO_SEEDS", "junk")
    assert default_seed_count(7) == 7
