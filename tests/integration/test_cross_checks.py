"""Cross-cutting consistency checks between subsystems."""

import pytest

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.trfd import TrfdConfig, trfd_loop1, trfd_loop2
from repro.apps.workload import LoopSpec
from repro.core.model.predictor import predict_no_dlb
from repro.machine.analytics import ideal_balanced_time
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


def test_no_dlb_simulation_matches_model_exactly(options):
    """With no protocol involved, the event simulation and the model
    must agree on the static time to within boundary rounding."""
    loop = LoopSpec(name="x", n_iterations=64, iteration_time=0.01,
                    dc_bytes=0)
    cluster = ClusterSpec.homogeneous(4, max_load=5, persistence=0.7,
                                      seed=19)
    sim = run_loop(loop, cluster, "NONE", options=options)
    model = predict_no_dlb(loop, cluster)
    assert sim.duration == pytest.approx(model.total_time, rel=1e-6)


def test_mxm_configs_paper_ratio_r_per_proc():
    """The paper keeps R/P at 100 and 200 across both processor counts."""
    for p, sizes in ((4, (400, 800)), (16, (1600, 3200))):
        for r in sizes:
            assert r // p in (100, 200)


def test_trfd_l2_has_more_work_per_iteration_than_l1():
    """'Loop 2 has almost double the work per iteration than in loop 1'
    (§6.3) — after the bitonic pairing."""
    for n in (30, 40, 50):
        cfg = TrfdConfig(n)
        l1 = trfd_loop1(cfg)
        l2 = trfd_loop2(cfg)
        ratio = l2.mean_iteration_time / l1.mean_iteration_time
        assert 1.4 < ratio < 2.2, (n, ratio)


def test_loop_total_work_preserved_by_strategies(options, cluster4):
    """Every strategy executes exactly the loop's iterations — work is
    conserved end to end (stronger phrasing of the coverage check)."""
    loop = mxm_loop(MxmConfig(48, 32, 32), op_seconds=1e-5)
    table = loop.work_table()
    for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB", "WS"):
        stats = run_loop(loop, cluster4, scheme, options=options)
        executed_work = sum(
            table.range_work(s, e)
            for ranges in stats.executed_by_node.values()
            for s, e in ranges)
        assert executed_work == pytest.approx(loop.total_work)


def test_duration_bounded_by_ideal_and_static(options):
    """Every DLB run lands between the omniscient lower bound and the
    static upper bound (plus sync overheads)."""
    loop = LoopSpec(name="b", n_iterations=80, iteration_time=0.01,
                    dc_bytes=100)
    for seed in (3, 4, 5):
        cluster = ClusterSpec.homogeneous(4, max_load=5, persistence=0.8,
                                          seed=seed)
        stations = cluster.build()
        lower = ideal_balanced_time(loop, stations)
        static = run_loop(loop, cluster, "NONE", options=options).duration
        for scheme in ("GDDLB", "LDDLB"):
            d = run_loop(loop, cluster, scheme, options=options).duration
            assert d >= lower - 1e-9
            assert d <= static * 1.3 + 0.1


def test_network_bytes_scale_with_dc(options, cluster4):
    """Work messages dominate traffic when DC is large: doubling DC
    roughly doubles the bytes on the wire."""
    small = LoopSpec(name="dc1", n_iterations=64, iteration_time=0.01,
                     dc_bytes=10_000)
    big = LoopSpec(name="dc2", n_iterations=64, iteration_time=0.01,
                   dc_bytes=20_000)
    b_small = run_loop(small, cluster4, "GDDLB", options=options)
    b_big = run_loop(big, cluster4, "GDDLB", options=options)
    if b_small.total_work_moved > 0 and b_big.total_work_moved > 0:
        ratio = b_big.network_bytes / max(b_small.network_bytes, 1)
        assert ratio > 1.2


def test_stats_messages_match_network_counter(options, cluster4,
                                              small_loop):
    stats = run_loop(small_loop, cluster4, "GCDLB", options=options)
    by_tag = sum(stats.messages_by_tag.values())
    # Every sent message crosses the network exactly once.
    assert by_tag == stats.network_messages
