"""Failure-injection tests: extreme load, frozen processors, degenerate
clusters.  The DLB protocols must drain crippled processors and finish;
the static baseline demonstrably cannot."""

import pytest

from repro.apps.workload import LoopSpec
from repro.core.model.predictor import predict_strategy
from repro.core.strategies import LCDLB, LDDLB
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


LOOP = LoopSpec(name="fi", n_iterations=64, iteration_time=0.01,
                dc_bytes=200)


def frozen_cluster(frozen_level: int = 99) -> ClusterSpec:
    """Processor 3 is near-frozen (load factor 100: 10 ms iterations
    take a second).

    Note a faithful-to-the-paper consequence of boundary polling
    (Figure 3 checks the interrupt flag *between* iterations): every
    synchronization waits for the crippled processor to finish its
    in-flight iteration, so completion is bounded below by one frozen
    iteration regardless of strategy.
    """
    return ClusterSpec(speeds=(1.0,) * 4, persistence=1e9,
                       load_traces=((0,), (0,), (0,), (frozen_level,)))


@pytest.mark.parametrize("scheme", ["GCDLB", "GDDLB", "LCDLB", "LDDLB",
                                    "WS", "CUSTOM"])
def test_frozen_processor_drained(scheme, options):
    """Every dynamic scheme must finish despite one frozen processor,
    in time comparable to 3 healthy processors doing all the work."""
    stats = run_loop(LOOP, frozen_cluster(), scheme, options=options)
    total = sum(stats.executed_count(i) for i in range(4))
    assert total == 64
    # One frozen iteration (~1 s) gates the first sync; after that the
    # frozen node is drained.  The distributed schemes additionally pay
    # the frozen node's load-scaled plan calculation.  Static would
    # take 16 frozen iterations (~16 s).
    assert stats.duration < 4.0
    # Work stealing halves the victim's queue but never drains it, so
    # the frozen node keeps a few iterations; the synchronized schemes
    # retire it almost empty.
    assert stats.executed_count(3) <= (4 if scheme == "WS" else 2)


def test_static_hostage_to_frozen_processor(options):
    stats = run_loop(LOOP, frozen_cluster(), "NONE", options=options)
    assert stats.duration > 10.0  # 16 frozen iterations


def test_model_predicts_frozen_drain():
    pred = predict_strategy(LOOP, frozen_cluster(), LDDLB, group_size=2)
    assert pred.total_time < 6.0


def test_frozen_processor_in_local_group(options):
    """LDDLB with the frozen node inside a 2-member group: the partner
    absorbs its block; the group finishes late but finite."""
    stats = run_loop(LOOP, frozen_cluster(), "LDDLB",
                     options=options.but(group_size=2))
    total = sum(stats.executed_count(i) for i in range(4))
    assert total == 64
    assert stats.duration < 6.0


def test_all_processors_heavily_loaded(options):
    """Uniform extreme load: DLB cannot help but must not hurt much."""
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1e9,
                          load_traces=tuple(((50,),) * 4))
    static = run_loop(LOOP, cluster, "NONE", options=options)
    dlb = run_loop(LOOP, cluster, "GDDLB", options=options)
    assert dlb.duration <= static.duration * 1.10


def test_speed_ratio_extreme(options):
    """A 100:1 speed spread: the fast node should do nearly everything."""
    cluster = ClusterSpec.heterogeneous([10.0, 0.1, 0.1, 0.1], max_load=0)
    stats = run_loop(LOOP, cluster, "GDDLB", options=options)
    assert stats.executed_count(0) > 48
    assert sum(stats.executed_count(i) for i in range(4)) == 64


def test_single_iteration_loop(options):
    tiny = LoopSpec(name="one", n_iterations=1, iteration_time=0.05,
                    dc_bytes=10)
    for scheme in ("NONE", "GDDLB", "LCDLB", "WS"):
        cluster = ClusterSpec.homogeneous(4, max_load=2, persistence=0.5,
                                          seed=3)
        stats = run_loop(tiny, cluster, scheme, options=options)
        assert sum(stats.executed_count(i) for i in range(4)) == 1, scheme


def test_lcdlb_delay_factor_visible():
    """With many groups, LCDLB's single balancer queues group service —
    the model must charge more than LDDLB for the same run (§4.2)."""
    loop = LoopSpec(name="dq", n_iterations=256, iteration_time=0.005,
                    dc_bytes=100)
    cluster = ClusterSpec.homogeneous(16, max_load=5, persistence=0.4,
                                      seed=6)
    lc = predict_strategy(loop, cluster, LCDLB, group_size=2,
                          stations=cluster.build())
    ld = predict_strategy(loop, cluster, LDDLB, group_size=2,
                          stations=cluster.build())
    assert lc.total_time > ld.total_time
