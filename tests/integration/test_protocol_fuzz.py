"""Property-based fuzzing of the full DLB protocol.

Random loops, clusters, policies and schemes; the invariants that must
hold for *every* run:

* every iteration executes exactly once (checked inside the executor),
* every node process terminates,
* the run is no slower than the worst theoretical bound (all work on
  the slowest processor plus overheads),
* statistics are internally consistent.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.workload import LoopSpec
from repro.core.policy import DlbPolicy
from repro.machine.cluster import ClusterSpec
from repro.network.parameters import NetworkParameters
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions

FAST_NET = NetworkParameters(send_overhead=100e-6, recv_overhead=120e-6,
                             wire_latency=30e-6, bandwidth=10e6,
                             local_overhead=10e-6)


@st.composite
def scenarios(draw):
    n_procs = draw(st.integers(min_value=2, max_value=9))
    n_iters = draw(st.integers(min_value=1, max_value=120))
    uniform = draw(st.booleans())
    if uniform:
        iteration_time = draw(st.floats(min_value=0.001, max_value=0.05))
    else:
        iteration_time = tuple(
            draw(st.lists(st.floats(min_value=0.001, max_value=0.05),
                          min_size=n_iters, max_size=n_iters)))
    loop = LoopSpec(name="fuzz", n_iterations=n_iters,
                    iteration_time=iteration_time,
                    dc_bytes=draw(st.integers(min_value=0, max_value=5000)))
    cluster = ClusterSpec.homogeneous(
        n_procs,
        max_load=draw(st.integers(min_value=0, max_value=6)),
        persistence=draw(st.floats(min_value=0.05, max_value=2.0)),
        seed=draw(st.integers(min_value=0, max_value=2 ** 20)))
    scheme = draw(st.sampled_from(
        ["NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB", "CUSTOM"]))
    policy = DlbPolicy(
        improvement_threshold=draw(st.sampled_from([0.0, 0.1, 0.3])),
        min_move_fraction=draw(st.sampled_from([0.0, 0.02, 0.1])),
        include_movement_cost=draw(st.booleans()))
    group_size = draw(st.integers(min_value=1, max_value=n_procs))
    return loop, cluster, scheme, policy, group_size


@given(scenarios())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_protocol_invariants(scenario):
    loop, cluster, scheme, policy, group_size = scenario
    options = RunOptions(policy=policy, network=FAST_NET,
                         group_size=group_size)
    stats = run_loop(loop, cluster, scheme, options=options)

    # Exactly-once execution (the executor also raises CoverageError).
    total = sum(stats.executed_count(i)
                for i in range(cluster.n_processors))
    assert total == loop.n_iterations

    # All nodes terminated within the run.
    assert all(t is not None for t in stats.node_finish_times.values())
    assert stats.end_time >= stats.start_time

    # Sanity bound: even the slowest processor alone under the worst
    # constant load would finish in total_work * (m_l + 1); allow2 x for
    # protocol overheads.
    worst = loop.total_work * (cluster.max_load + 1) * 2 + 5.0
    assert stats.duration <= worst

    # Sync records are time-ordered within each group.
    by_group = {}
    for s in stats.syncs:
        by_group.setdefault(s.group, []).append(s.time)
    for times in by_group.values():
        assert times == sorted(times)
