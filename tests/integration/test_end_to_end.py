"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro import (
    ClusterSpec,
    DlbPolicy,
    TrfdConfig,
    run_application,
    run_loop,
    trfd_application,
)
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.workload import LoopSpec
from repro.compiler import compile_source
from repro.core.model.predictor import predict_strategy
from repro.core.strategies import ALL_DLB_STRATEGIES


def test_trfd_pipeline_all_schemes(options):
    app = trfd_application(TrfdConfig(8))
    cluster = ClusterSpec.homogeneous(4, max_load=3, persistence=0.2,
                                      seed=21)
    durations = {}
    for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB", "CUSTOM"):
        stats = run_application(app, cluster, scheme, options=options)
        assert len(stats.stages) == 3
        durations[scheme] = stats.total_duration
    assert all(d > 0 for d in durations.values())


def test_mxm_loop_matches_paper_structure(options):
    loop = mxm_loop(MxmConfig(64, 32, 32), op_seconds=2e-6)
    cluster = ClusterSpec.homogeneous(4, max_load=4, persistence=0.5,
                                      seed=33)
    static = run_loop(loop, cluster, "NONE", options=options)
    dlb = run_loop(loop, cluster, "GDDLB", options=options)
    assert dlb.duration < static.duration


def test_compiled_trfd_like_program_runs_under_dlb():
    src = """
    /* dlb: array V(M, M) distribute(WHOLE, BLOCK) */
    /* dlb: loadbalance */
    /* dlb: name xform */
    for j = 0, M {
        for i = 0, M {
            V[i][j] = V[i][j] * 2 + 1;
        }
    }
    """
    prog = compile_source(src)
    sizes = {"M": 18}
    seq = prog.run_sequential(sizes, seed=4)
    cluster = ClusterSpec.homogeneous(3, max_load=2, persistence=0.3,
                                      seed=13)
    _stats, par = prog.run_parallel(sizes, cluster, "GCDLB", seed=4)
    assert np.allclose(seq["V"], par["V"])


def test_model_and_simulation_agree_on_clear_winner(options):
    """When one scheme is clearly best, model and simulation agree.

    The external load is persistent and falls entirely on group {0, 1}:
    the local schemes (groups of two) cannot move work across groups,
    so the globals win decisively in both worlds.
    """
    loop = LoopSpec(name="clear", n_iterations=64, iteration_time=0.05,
                    dc_bytes=100)
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((5,), (5,), (0,), (0,)))
    opts = options.but(group_size=2)
    sim = {s.code: run_loop(loop, cluster, s, options=opts).duration
           for s in ALL_DLB_STRATEGIES}
    pred = {s.code: predict_strategy(loop, cluster, s, group_size=2
                                     ).total_time
            for s in ALL_DLB_STRATEGIES}
    assert min(sim, key=sim.get) in ("GD", "GC")
    assert min(pred, key=pred.get) in ("GD", "GC")
    # And the gap is material in both.
    assert min(sim.values()) < 0.8 * max(sim.values())
    assert min(pred.values()) < 0.8 * max(pred.values())


def test_ablation_movement_cost_inclusion_is_worse_or_equal(options):
    """§3.4: including movement cost in profitability tends to cancel
    useful moves; excluding it should never be much worse."""
    loop = LoopSpec(name="abl", n_iterations=96, iteration_time=0.02,
                    dc_bytes=120_000)
    results = {}
    for include in (False, True):
        opts = options.but(policy=DlbPolicy(include_movement_cost=include))
        times = []
        for seed in range(4):
            cluster = ClusterSpec.homogeneous(4, max_load=5,
                                              persistence=0.5,
                                              seed=100 + seed)
            times.append(run_loop(loop, cluster, "GDDLB",
                                  options=opts).duration)
        results[include] = float(np.mean(times))
    assert results[False] <= results[True] * 1.1


def test_heterogeneous_cluster_respects_speeds(options):
    """Faster processors end up executing more iterations."""
    cluster = ClusterSpec.heterogeneous([2.0, 1.0, 1.0, 0.5], max_load=0)
    loop = LoopSpec(name="het", n_iterations=90, iteration_time=0.01,
                    dc_bytes=100)
    stats = run_loop(loop, cluster, "GDDLB", options=options)
    counts = {i: stats.executed_count(i) for i in range(4)}
    assert counts[0] > counts[3]


def test_stats_serialize_to_summary(options, cluster4, small_loop):
    stats = run_loop(small_loop, cluster4, "LCDLB", options=options)
    assert isinstance(stats.summary(), str)


@pytest.mark.parametrize("p,scheme", [
    (2, "GDDLB"), (3, "GCDLB"), (5, "LDDLB"), (6, "LCDLB"), (7, "CUSTOM"),
])
def test_odd_cluster_sizes(p, scheme, options):
    """Cluster sizes that do not divide evenly still satisfy coverage."""
    loop = LoopSpec(name="odd", n_iterations=41, iteration_time=0.015,
                    dc_bytes=200)
    cluster = ClusterSpec.homogeneous(p, max_load=4, persistence=0.3,
                                      seed=p * 11)
    stats = run_loop(loop, cluster, scheme, options=options)
    assert sum(stats.executed_count(i) for i in range(p)) == 41
