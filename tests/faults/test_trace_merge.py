"""Trace and metric merging under faults.

A crashed worker can never hand its ring buffer back — the contract is
that its absence is *marked* (a ``trace_truncated`` instant on the dead
node's track), never silently dropped, while every survivor's buffer
still merges into the run-wide recorder.  The simulation additionally
records the fault events themselves (crash, declare_dead, fence,
message_drop), so a faulted trace tells the whole recovery story.
"""

from __future__ import annotations

import pytest

from repro.apps.workload import LoopSpec
from repro.backend import ProcessBackend, SocketBackend
from repro.backend.socket import KillEvent
from repro.faults import FaultPlan, MessageDropFault
from repro.machine.cluster import ClusterSpec
from repro.obs import TraceRecorder
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions

from .conftest import DLB_SCHEMES, assert_exact_coverage

pytestmark = pytest.mark.faults


def _cluster(n=4):
    return ClusterSpec.homogeneous(n, max_load=3, persistence=1.0, seed=7)


def _names(recorder):
    return {e["name"] for e in recorder.events()}


def _truncations(recorder):
    return [e for e in recorder.events()
            if e["name"] == "trace_truncated"]


# -- simulation: fault events land in the trace --------------------------
@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_sim_crash_events_recorded(scheme, ft_loop, cluster4, ft_options):
    recorder = TraceRecorder()
    plan = FaultPlan.single_crash(node=2, time=0.05)
    stats = run_loop(ft_loop, cluster4, scheme,
                     options=ft_options.but(recorder=recorder),
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    events = recorder.events()
    crashes = [e for e in events if e["name"] == "crash"]
    assert [e["track"] for e in crashes] == ["node2"]
    # Detection follows: someone declared the victim dead on its track.
    declares = [e for e in events if e["name"] == "declare_dead"]
    assert declares and all(e["track"] == "node2" for e in declares)
    # Survivors' compute spans sit beside the fault markers.
    assert any(e["name"] == "compute" and e["track"] != "node2"
               for e in events)


def test_sim_recording_does_not_change_faulted_run(ft_loop, cluster4,
                                                   ft_options):
    plan = FaultPlan.single_crash(node=1, time=0.08)
    baseline = run_loop(ft_loop, cluster4, "GDDLB", options=ft_options,
                        fault_plan=plan)
    traced = run_loop(ft_loop, cluster4, "GDDLB",
                      options=ft_options.but(recorder=TraceRecorder()),
                      fault_plan=plan)
    assert traced.duration == baseline.duration
    assert traced.reclaimed_iterations == baseline.reclaimed_iterations
    assert traced.executed_by_node == baseline.executed_by_node


def test_sim_message_drops_recorded(ft_loop, cluster4, ft_options):
    recorder = TraceRecorder()
    plan = FaultPlan(drops=(MessageDropFault(probability=1.0,
                                             max_drops=2),), seed=3)
    stats = run_loop(ft_loop, cluster4, "GCDLB",
                     options=ft_options.but(recorder=recorder),
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    drops = [e for e in recorder.events()
             if e["name"] == "message_drop"]
    assert len(drops) == stats.dropped_messages > 0
    assert all(e["track"] == "network" for e in drops)
    assert all({"src", "dst", "tag"} <= set(e["args"]) for e in drops)


# -- process backend: partial buffers merge, losses are marked -----------
def test_process_crash_marks_truncation_and_merges_survivors():
    loop = LoopSpec(name="steady", n_iterations=64, iteration_time=0.01,
                    dc_bytes=64)
    recorder = TraceRecorder()
    plan = FaultPlan.single_crash(node=1, time=0.05)
    stats = ProcessBackend(time_scale=1.0).run_loop(
        loop, _cluster(), "GCDLB", RunOptions(recorder=recorder),
        fault_plan=plan)
    assert stats.crashed_nodes == (1,)
    truncated = _truncations(recorder)
    assert [e["track"] for e in truncated] == ["node1"]
    assert truncated[0]["args"]["reason"] == "crashed"
    # Every survivor's buffer arrived over the stats channel.
    tracks = {e["track"] for e in recorder.events()
              if e["name"] == "compute"}
    assert {"node0", "node2", "node3"} <= tracks


def test_process_clean_run_has_no_truncation():
    loop = LoopSpec(name="steady", n_iterations=48, iteration_time=0.005,
                    dc_bytes=64)
    recorder = TraceRecorder()
    ProcessBackend(time_scale=0.5).run_loop(
        loop, _cluster(), "GDDLB", RunOptions(recorder=recorder))
    assert _truncations(recorder) == []
    assert "compute" in _names(recorder)


# -- socket backend: a killed connection is marked, survivors merge ------
def test_socket_kill_marks_truncation_and_merges_survivors():
    loop = LoopSpec(name="steady", n_iterations=200, iteration_time=0.002,
                    dc_bytes=8)
    recorder = TraceRecorder()
    backend = SocketBackend(script=(KillEvent(node=2,
                                              after_iterations=30),))
    stats = backend.run_loop(loop, _cluster(), "GCDLB",
                             RunOptions(recorder=recorder))
    assert stats.crashed_nodes == (2,)
    truncated = _truncations(recorder)
    assert any(e["track"] == "node2"
               and e["args"]["reason"] == "crashed" for e in truncated)
    tracks = {e["track"] for e in recorder.events()
              if e["name"] == "compute"}
    assert {"node0", "node1", "node3"} <= tracks
