"""Shared fixtures for the fault-injection test suite."""

from __future__ import annotations

import pytest

from repro.apps.workload import LoopSpec
from repro.core.policy import DlbPolicy
from repro.runtime.options import FaultToleranceConfig, RunOptions
from repro.runtime.stats import LoopRunStats

#: The four paper strategies the hardened protocol must cover uniformly.
DLB_SCHEMES = ("GCDLB", "GDDLB", "LCDLB", "LDDLB")


@pytest.fixture
def ft_loop() -> LoopSpec:
    """Small enough to keep faulted runs quick, large enough that a
    mid-loop crash strands real work on the victim."""
    return LoopSpec(name="ft", n_iterations=64, iteration_time=0.010,
                    dc_bytes=800)


@pytest.fixture
def ft_options(fast_network) -> RunOptions:
    """Detection knobs scaled to ``ft_loop``: a few iteration times of
    patience, so tests spend simulated seconds, not minutes, detecting
    deaths."""
    return RunOptions(
        network=fast_network, policy=DlbPolicy(),
        fault_tolerance=FaultToleranceConfig(
            request_timeout=0.08, backoff=2.0, max_retries=4,
            liveness_timeout=0.24))


def assert_exact_coverage(stats: LoopRunStats, loop: LoopSpec) -> None:
    """Every iteration executed exactly once across all nodes.

    ``run_loop`` already verifies this internally (raising
    CoverageError otherwise); asserting here keeps the invariant the
    test's own, visible statement.
    """
    executed = sorted(
        (s, e) for ranges in stats.executed_by_node.values()
        for s, e in ranges)
    total = sum(e - s for s, e in executed)
    assert total == loop.n_iterations
    covered = 0
    for s, e in executed:
        assert s >= covered, f"overlap at {s}"
        covered = max(covered, e)
    assert covered == loop.n_iterations
