"""Fault-plan construction, validation and determinism."""

import math

import pytest

from repro.faults import (
    CrashFault,
    FaultPlan,
    MessageDelayFault,
    MessageDropFault,
    SlowdownFault,
)

pytestmark = pytest.mark.faults


def test_master_crash_rejected():
    with pytest.raises(ValueError, match="master"):
        CrashFault(node=0, time=1.0)


def test_plan_rejects_duplicate_crash():
    with pytest.raises(ValueError, match="at most once"):
        FaultPlan(crashes=(CrashFault(1, 0.1), CrashFault(1, 0.2)))


def test_plan_rejects_out_of_range_node():
    plan = FaultPlan(crashes=(CrashFault(5, 0.1),))
    with pytest.raises(ValueError, match="cluster has 4"):
        plan.validate_for(4)


def test_plan_validates_targets_against_cluster():
    plan = FaultPlan(crashes=(CrashFault(1, 0.1), CrashFault(2, 0.2),
                              CrashFault(3, 0.3)))
    with pytest.raises(ValueError):
        plan.validate_for(3)  # node 3 does not exist on 3 processors
    plan.validate_for(4)      # every slave dies; the master survives


def test_empty_plan():
    assert FaultPlan().empty
    assert not FaultPlan.single_crash(node=1, time=0.5).empty


def test_slowdown_pause_seconds():
    freeze = SlowdownFault(node=1, time=0.0, duration=2.0)
    assert math.isinf(freeze.factor)
    assert freeze.pause_seconds == 2.0
    half = SlowdownFault(node=1, time=0.0, duration=2.0, factor=2.0)
    assert half.pause_seconds == pytest.approx(1.0)


def test_drop_fault_matching_is_case_insensitive():
    fault = MessageDropFault(tag="WORK", src=1)
    assert fault.matches(0.0, 1, 2, "work")
    assert not fault.matches(0.0, 1, 2, "profile")
    assert not fault.matches(0.0, 2, 1, "work")   # src filter
    assert not fault.matches(0.0, 1, 2, None)      # non-message payload


def test_delay_fault_window():
    fault = MessageDelayFault(extra_seconds=0.5, window=(1.0, 2.0))
    assert not fault.matches(0.5, 1, 2, "work")
    assert fault.matches(1.5, 1, 2, "work")
    assert not fault.matches(2.5, 1, 2, "work")


def test_seeded_rng_reproducible():
    a, b = FaultPlan(seed=9).rng(), FaultPlan(seed=9).rng()
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_random_plan_reproducible_and_master_safe():
    p1 = FaultPlan.random_plan(seed=3, n_processors=4, duration_hint=1.0,
                               n_crashes=2, drop_probability=0.2)
    p2 = FaultPlan.random_plan(seed=3, n_processors=4, duration_hint=1.0,
                               n_crashes=2, drop_probability=0.2)
    assert p1 == p2
    assert 0 not in p1.crashed_nodes
    assert all(0.1 <= c.time <= 0.9 for c in p1.crashes)
