"""Message drops and delays: retries heal transient loss; exhaustion
fences the unreachable peer."""

import pytest

from repro.faults import FaultPlan, MessageDelayFault, MessageDropFault
from repro.runtime.executor import run_loop

from .conftest import DLB_SCHEMES, assert_exact_coverage

pytestmark = pytest.mark.faults


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_work_drop_recovered_by_retry(scheme, ft_loop, cluster4,
                                      ft_options):
    """Two lost WORK messages are re-requested and resent; nobody is
    declared dead and coverage is exact."""
    plan = FaultPlan(
        drops=(MessageDropFault(probability=1.0, max_drops=2, tag="work"),),
        seed=7)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.dropped_messages == 2
    assert stats.declared_dead == ()
    assert stats.fault_retries > 0


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_profile_drop_recovered(scheme, ft_loop, cluster4, ft_options):
    """A lost PROFILE stalls the sync until a resend-profile probe or
    the waiter's re-request heals it."""
    plan = FaultPlan(
        drops=(MessageDropFault(probability=1.0, max_drops=1,
                                tag="profile"),),
        seed=11)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.declared_dead == ()


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_retry_exhaustion_fences_silent_peer(scheme, ft_loop, cluster4,
                                             ft_options):
    """Node 3's outbound link dies entirely: peers exhaust their retry
    budget, declare it dead, and the declaration fences it — the loop
    still completes exactly once on the survivors."""
    plan = FaultPlan(
        drops=(MessageDropFault(probability=1.0, max_drops=10_000, src=3),),
        seed=13)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert 3 in stats.declared_dead
    assert 3 in stats.fenced_nodes
    assert stats.fault_retries >= ft_options.fault_tolerance.max_retries


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_delays_reorder_but_lose_nothing(scheme, ft_loop, cluster4,
                                         ft_options):
    plan = FaultPlan(
        delays=(MessageDelayFault(extra_seconds=0.05, probability=0.5,
                                  max_delays=20),),
        seed=17)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.delayed_messages > 0
    assert stats.declared_dead == ()


def test_drop_budget_respected(ft_loop, cluster4, ft_options):
    plan = FaultPlan(
        drops=(MessageDropFault(probability=1.0, max_drops=3),), seed=23)
    stats = run_loop(ft_loop, cluster4, "GDDLB", options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.dropped_messages == 3
