"""Crash recovery: the loop completes exactly once on the survivors.

Each test parametrizes over all four paper strategies — the hardened
protocol must be uniform across GC/GD centralized/distributed and the
local K-group variants (docs/FAULT_MODEL.md).
"""

from dataclasses import replace

import pytest

from repro.faults import CrashFault, FaultPlan
from repro.runtime.executor import run_loop

from .conftest import DLB_SCHEMES, assert_exact_coverage

pytestmark = pytest.mark.faults


def _hardened(options):
    """The same knobs with the protocol pre-enabled, so a fault-free
    run's sync times line up exactly with a faulted run's prefix."""
    return options.but(fault_tolerance=replace(
        options.fault_tolerance, enabled=True))


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_crash_before_first_sync(scheme, ft_loop, cluster4, ft_options):
    """The victim dies while everyone is still computing the initial
    partition; its entire block must be reclaimed."""
    baseline = run_loop(ft_loop, cluster4, scheme,
                        options=_hardened(ft_options))
    assert baseline.syncs, "loop too small to sync: test is vacuous"
    crash_time = 0.5 * baseline.syncs[0].time
    plan = FaultPlan.single_crash(node=2, time=crash_time)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.crashed_nodes == (2,)
    assert 2 in stats.declared_dead
    assert stats.reclaimed_iterations > 0
    assert stats.executed_count(2) < ft_loop.n_iterations // 4


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_crash_mid_redistribution(scheme, ft_loop, cluster4, ft_options):
    """The victim dies just after the first redistribution is decided,
    while WORK parcels are in flight; the ledger must reclaim whatever
    it was sending or owed."""
    baseline = run_loop(ft_loop, cluster4, scheme,
                        options=_hardened(ft_options))
    assert baseline.syncs
    crash_time = baseline.syncs[0].time + 1e-4
    plan = FaultPlan.single_crash(node=3, time=crash_time)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.crashed_nodes == (3,)
    assert 3 in stats.declared_dead


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_crash_costs_time_but_not_iterations(scheme, ft_loop, cluster4,
                                             ft_options):
    baseline = run_loop(ft_loop, cluster4, scheme, options=ft_options)
    plan = FaultPlan.single_crash(node=1, time=0.4 * baseline.duration)
    stats = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    # Detection timeouts and re-execution make the run slower, never
    # cheaper, than the fault-free baseline.
    assert stats.duration > baseline.duration


def test_two_crashes_one_survivor_pair(ft_loop, cluster4, ft_options):
    """Two of four nodes die; the master and one slave finish the loop."""
    plan = FaultPlan(crashes=(CrashFault(node=1, time=0.15),
                              CrashFault(node=3, time=0.25)))
    stats = run_loop(ft_loop, cluster4, "GCDLB", options=ft_options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.crashed_nodes == (1, 3)


@pytest.mark.parametrize("scheme", DLB_SCHEMES)
def test_faulted_run_is_deterministic(scheme, ft_loop, cluster4,
                                      ft_options):
    """Same plan, same cluster seed: bit-identical runs."""
    plan = FaultPlan.single_crash(node=2, time=0.2)
    a = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                 fault_plan=plan)
    b = run_loop(ft_loop, cluster4, scheme, options=ft_options,
                 fault_plan=plan)
    assert a.duration == b.duration
    assert a.executed_by_node == b.executed_by_node
    assert a.fault_retries == b.fault_retries
    assert a.declared_dead == b.declared_dead


def test_fault_free_runs_unchanged_by_ft_machinery(ft_loop, cluster4,
                                                   options):
    """With no plan and ft disabled (the default), runs stay
    deterministic and carry no fault bookkeeping."""
    vanilla = run_loop(ft_loop, cluster4, "GDDLB", options=options)
    again = run_loop(ft_loop, cluster4, "GDDLB", options=options)
    assert vanilla.duration == again.duration
    assert not vanilla.faulted
    assert vanilla.fault_retries == 0
