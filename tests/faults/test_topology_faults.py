"""Property (b): exactly-once coverage on graph topologies under crashes.

The fault-hardened protocol was built against the shared bus; these
tests pin that its guarantees — every iteration executed exactly once,
crash victims reclaimed, the loop terminating on the survivors — are
topology-independent.  Diffusion rides the same WORK-parcel ledger as
the eq.-3 strategies, so it is parametrized alongside them.
"""

from dataclasses import replace

import pytest

from repro.faults import FaultPlan
from repro.runtime.executor import run_loop

from .conftest import assert_exact_coverage

pytestmark = pytest.mark.faults

TOPOLOGIES = ("ring", "mesh", "torus")
SCHEMES = ("GDDLB", "LDDLB", "DIFF")


def _hardened(options):
    return options.but(fault_tolerance=replace(
        options.fault_tolerance, enabled=True))


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_crash_exactly_once_on_graph(scheme, topology, ft_loop, cluster4,
                                     ft_options):
    """Crash a worker mid-run on a switched graph: total work must still
    be executed exactly once across the survivors."""
    options = ft_options.but(topology=topology)
    baseline = run_loop(ft_loop, cluster4, scheme,
                        options=_hardened(options))
    assert baseline.syncs, "loop too small to sync: test is vacuous"
    crash_time = baseline.syncs[0].time + 1e-4
    plan = FaultPlan.single_crash(node=2, time=crash_time)
    stats = run_loop(ft_loop, cluster4, scheme, options=options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.crashed_nodes == (2,)
    assert 2 in stats.declared_dead


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_diffusion_crash_before_first_sync(topology, ft_loop, cluster4,
                                           ft_options):
    """The victim dies while its whole initial block is outstanding;
    diffusion's neighbor-only flows must not strand the reclaimed work."""
    options = ft_options.but(topology=topology)
    baseline = run_loop(ft_loop, cluster4, "DIFF",
                        options=_hardened(options))
    assert baseline.syncs
    crash_time = 0.5 * baseline.syncs[0].time
    plan = FaultPlan.single_crash(node=1, time=crash_time)
    stats = run_loop(ft_loop, cluster4, "DIFF", options=options,
                     fault_plan=plan)
    assert_exact_coverage(stats, ft_loop)
    assert stats.reclaimed_iterations > 0


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_fault_free_diffusion_covers_exactly_once(topology, ft_loop,
                                                  cluster4, ft_options):
    """Control: without faults, diffusion on a graph is also
    exactly-once (redistribution itself neither loses nor duplicates)."""
    stats = run_loop(ft_loop, cluster4, "DIFF",
                     options=ft_options.but(topology=topology))
    assert_exact_coverage(stats, ft_loop)
    assert stats.n_syncs > 0
