"""Fault-sweep experiment and CLI surface smoke tests."""

import pytest

from repro.cli import main
from repro.experiments.faults import (
    fault_sweep,
    render_fault_sweep,
    standard_scenarios,
)
from repro.faults import FaultPlan
from repro.runtime.executor import run_loop

pytestmark = pytest.mark.faults


def test_standard_scenarios_cover_the_taxonomy():
    names = [s.name for s in standard_scenarios()]
    assert names == ["crash-mid", "crash-late", "drop-storm", "freeze"]
    for sc in standard_scenarios():
        plan = sc.make_plan(1.0, 4, 1000)
        plan.validate_for(4)
        assert not plan.empty


def test_fault_sweep_smoke():
    """One seed, one scheme, two scenarios: full completion, slowdown
    at least 1, counters populated."""
    scenarios = [s for s in standard_scenarios()
                 if s.name in ("crash-mid", "drop-storm")]
    result = fault_sweep(schemes=("GC",), scenarios=scenarios,
                         seeds=(1000,))
    assert result.scenarios == ("crash-mid", "drop-storm")
    for scenario in result.scenarios:
        cell = result.cell(scenario, "GC")
        assert cell.n_runs == 1
        assert cell.completion_rate == 1.0
        assert cell.mean_slowdown >= 1.0
    assert result.cell("crash-mid", "GC").reclaimed > 0
    report = render_fault_sweep(result)
    assert "crash-mid" in report and "GC" in report
    assert "completion rate" in report


def test_ws_baseline_rejects_fault_plans(ft_loop, cluster4, ft_options):
    with pytest.raises(ValueError, match="work-stealing"):
        run_loop(ft_loop, cluster4, "WS", options=ft_options,
                 fault_plan=FaultPlan.single_crash(node=1, time=0.1))


def test_cli_faults_demo(capsys):
    assert main(["faults-demo", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    for scheme in ("GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        assert scheme in out
    assert "declared_dead=[2]" in out
    assert "96/96 iterations" in out


def test_cli_faults_demo_rejects_master_victim(capsys):
    assert main(["faults-demo", "--victim", "0"]) == 2


def test_cli_run_with_crash_flag(capsys):
    code = main(["run", "--app", "mxm", "--size", "120x100x100",
                 "-P", "4", "--strategy", "GDDLB",
                 "--crash", "2:0.15", "--ft-timeout", "0.05"])
    assert code == 0
    out = capsys.readouterr().out
    assert "faults: crashed=[2]" in out


def test_cli_run_rejects_bad_crash_spec(capsys):
    assert main(["run", "--crash", "0:1.0"]) == 2
    assert "bad fault flag" in capsys.readouterr().err
