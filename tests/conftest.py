"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.apps.workload import LoopSpec
from repro.core.policy import DlbPolicy
from repro.machine.cluster import ClusterSpec
from repro.network.parameters import NetworkParameters
from repro.runtime.options import RunOptions
from repro.simulation import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def small_loop() -> LoopSpec:
    """A small uniform loop: 64 iterations of 10 ms."""
    return LoopSpec(name="small", n_iterations=64, iteration_time=0.010,
                    dc_bytes=800)


@pytest.fixture
def tiny_loop() -> LoopSpec:
    """An even smaller loop for protocol-heavy tests."""
    return LoopSpec(name="tiny", n_iterations=16, iteration_time=0.020,
                    dc_bytes=400)


@pytest.fixture
def nonuniform_loop() -> LoopSpec:
    """Decreasing triangular-ish costs."""
    costs = tuple(0.002 * (40 - i) for i in range(40))
    return LoopSpec(name="tri", n_iterations=40, iteration_time=costs,
                    dc_bytes=160)


@pytest.fixture
def cluster4() -> ClusterSpec:
    return ClusterSpec.homogeneous(4, max_load=3, persistence=0.5, seed=42)


@pytest.fixture
def cluster8() -> ClusterSpec:
    return ClusterSpec.homogeneous(8, max_load=4, persistence=0.4, seed=7)


@pytest.fixture
def quiet_cluster4() -> ClusterSpec:
    """Four dedicated (no external load) processors."""
    return ClusterSpec.homogeneous(4, max_load=0, seed=0)


@pytest.fixture
def fast_network() -> NetworkParameters:
    """A cheap network so protocol tests run many syncs quickly."""
    return NetworkParameters(send_overhead=100e-6, recv_overhead=120e-6,
                             wire_latency=30e-6, bandwidth=10e6,
                             local_overhead=10e-6)


@pytest.fixture
def options(fast_network) -> RunOptions:
    return RunOptions(network=fast_network, policy=DlbPolicy())
