"""Tests for typed protocol messages."""

import pytest

from repro.message.messages import (
    ControlMsg,
    DataMsg,
    InstructionMsg,
    InterruptMsg,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
)


def test_tags_distinct():
    msgs = [InterruptMsg(0, 1), ProfileMsg(0, 1), InstructionMsg(0, 1),
            WorkMsg(0, 1), ControlMsg(0, 1), DataMsg(0, 1)]
    assert len({m.tag for m in msgs}) == 6


def test_interrupt_is_small():
    assert InterruptMsg(0, 1).nbytes <= 32


def test_profile_carries_metrics():
    msg = ProfileMsg(src=2, dst=0, epoch=3, remaining_work=1.5,
                     remaining_count=10, rate=0.8)
    assert msg.tag is Tag.PROFILE
    assert msg.remaining_work == 1.5
    assert msg.nbytes > InterruptMsg(0, 1).nbytes


def test_transfer_order_validation():
    with pytest.raises(ValueError):
        TransferOrder(src=0, dst=1, work=-1.0)


def test_instruction_size_grows_with_orders():
    small = InstructionMsg(0, 1)
    big = InstructionMsg(0, 1, outgoing=(TransferOrder(1, 2, 1.0),
                                         TransferOrder(1, 3, 1.0)),
                         active=(0, 1, 2, 3))
    assert big.nbytes > small.nbytes


def test_work_message_counts_data_bytes():
    msg = WorkMsg(src=0, dst=1, ranges=((0, 5),), count=5, data_bytes=4000)
    assert msg.nbytes >= 4000
    assert msg.count == 5


def test_data_message_bytes():
    assert DataMsg(0, 1, data_bytes=1000).nbytes >= 1000


def test_messages_are_immutable():
    msg = InterruptMsg(0, 1)
    with pytest.raises(Exception):
        msg.src = 5  # type: ignore[misc]


def test_epoch_defaults_to_zero():
    assert ProfileMsg(0, 1).epoch == 0


def test_instruction_selection_fields():
    msg = InstructionMsg(0, 1, select_scheme="LD", select_group_size=4)
    assert msg.select_scheme == "LD"
    assert msg.select_group_size == 4
