"""Tests for the PVM-like virtual machine layer."""

import pytest

from repro.message.messages import InterruptMsg, ProfileMsg, Tag
from repro.message.pvm import VirtualMachine
from repro.network.parameters import NetworkParameters


PARAMS = NetworkParameters(send_overhead=1e-3, recv_overhead=1e-3,
                           wire_latency=0.1e-3, bandwidth=1e6)


@pytest.fixture
def vm(env):
    return VirtualMachine(env, 4, PARAMS)


def test_send_recv_round_trip(env, vm):
    def sender():
        yield from vm.send(ProfileMsg(src=0, dst=1, epoch=2, rate=1.5))

    def receiver():
        msg = yield vm.recv(1, Tag.PROFILE)
        return (env.now, msg.rate)

    env.process(sender())
    proc = env.process(receiver())
    t, rate = env.run(proc)
    assert rate == 1.5
    assert t > 0


def test_recv_filters_by_tag(env, vm):
    def sender():
        yield from vm.send(InterruptMsg(src=0, dst=1))
        yield from vm.send(ProfileMsg(src=0, dst=1, rate=2.0))

    def receiver():
        msg = yield vm.recv(1, Tag.PROFILE)
        return msg.rate

    env.process(sender())
    proc = env.process(receiver())
    assert env.run(proc) == 2.0
    # The interrupt is still queued.
    assert vm.poll(1, Tag.INTERRUPT) is not None


def test_recv_filters_by_epoch(env, vm):
    def sender():
        yield from vm.send(ProfileMsg(src=0, dst=1, epoch=1, rate=1.0))
        yield from vm.send(ProfileMsg(src=0, dst=1, epoch=2, rate=2.0))

    def receiver():
        msg = yield vm.recv(1, Tag.PROFILE, epoch=2)
        return msg.rate

    env.process(sender())
    proc = env.process(receiver())
    assert env.run(proc) == 2.0


def test_poll_nonblocking(env, vm):
    assert vm.poll(2) is None

    def sender():
        yield from vm.send(InterruptMsg(src=0, dst=2))

    env.process(sender())
    env.run()
    msg = vm.poll(2, Tag.INTERRUPT)
    assert msg is not None and msg.src == 0
    assert vm.poll(2) is None


def test_drain_by_epoch(env, vm):
    def sender():
        for e in (0, 0, 1):
            yield from vm.send(InterruptMsg(src=0, dst=3, epoch=e))

    env.process(sender())
    env.run()
    out = vm.drain(3, Tag.INTERRUPT, epoch=0)
    assert len(out) == 2
    assert len(vm.inbox[3]) == 1


def test_multicast_serializes_at_sender(env, vm):
    freed = []

    def sender():
        yield from vm.multicast(
            InterruptMsg(src=0, dst=d) for d in (1, 2, 3))
        freed.append(env.now)

    env.run(env.process(sender()))
    assert freed[0] == pytest.approx(3e-3)  # 3 sequential send overheads


def test_sent_by_tag_counts(env, vm):
    def sender():
        yield from vm.send(InterruptMsg(src=0, dst=1))
        yield from vm.send(ProfileMsg(src=0, dst=1))
        yield from vm.send(ProfileMsg(src=0, dst=2))

    env.run(env.process(sender()))
    assert vm.sent_by_tag[Tag.INTERRUPT] == 1
    assert vm.sent_by_tag[Tag.PROFILE] == 2


def test_local_send_to_self(env, vm):
    def sender():
        yield from vm.send(ProfileMsg(src=0, dst=0, rate=3.0))

    env.process(sender())
    env.run()
    msg = vm.poll(0, Tag.PROFILE)
    assert msg is not None and msg.rate == 3.0


def test_network_size_mismatch_rejected(env):
    from repro.network.bus import SharedBusNetwork
    net = SharedBusNetwork(env, 3, PARAMS)
    with pytest.raises(ValueError):
        VirtualMachine(env, 4, PARAMS, network=net)


def test_match_predicate(env, vm):
    def sender():
        yield from vm.send(ProfileMsg(src=2, dst=1, rate=1.0))
        yield from vm.send(ProfileMsg(src=3, dst=1, rate=2.0))

    def receiver():
        msg = yield vm.recv(1, Tag.PROFILE, match=lambda m: m.src == 3)
        return msg.rate

    env.process(sender())
    proc = env.process(receiver())
    assert env.run(proc) == 2.0
