"""Tests for the socket backend's wire-frame codec.

No network involved: everything here exercises the pure byte codec in
``repro.message.frames``.  The byte-for-byte examples mirror the ones
in docs/WIRE_PROTOCOL.md — if an encoding change breaks these, update
the document in the same commit.
"""

import json
import random

import pytest

from repro.core.policy import DlbPolicy
from repro.message.frames import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    FrameType,
    decode_frame,
    encode_frame,
    ft_from_wire,
    ft_to_wire,
    message_from_wire,
    message_to_wire,
    policy_from_wire,
    policy_to_wire,
)
from repro.message.messages import (
    ControlMsg,
    DataMsg,
    InstructionMsg,
    InterruptMsg,
    ProfileMsg,
    TransferOrder,
    WorkMsg,
)
from repro.runtime.options import FaultToleranceConfig


# ---------------------------------------------------------------------------
# Frame layout.
# ---------------------------------------------------------------------------
def test_frame_layout_byte_for_byte():
    # The docs/WIRE_PROTOCOL.md worked example: length prefix counts the
    # type byte plus the canonical-JSON body.
    data = encode_frame(FrameType.PING, {"t": 1.5})
    assert data.hex() == "0000000a047b2274223a312e357d"
    assert data[:4] == (1 + len(b'{"t":1.5}')).to_bytes(4, "big")
    assert data[4] == FrameType.PING


def test_hello_frame_example():
    data = encode_frame(FrameType.HELLO, {"v": PROTOCOL_VERSION})
    assert data.hex() == "00000008017b2276223a317d"


def test_canonical_json_is_unique():
    # Same body dict in any insertion order encodes identically.
    a = encode_frame(FrameType.STAT, {"k": "exec", "node": 3})
    b = encode_frame(FrameType.STAT, {"node": 3, "k": "exec"})
    assert a == b


def test_empty_body_round_trip():
    data = encode_frame(FrameType.BYE)
    ftype, body, used = decode_frame(data)
    assert (ftype, body, used) == (FrameType.BYE, {}, len(data))


def test_decode_round_trip_all_types():
    for ftype in FrameType:
        data = encode_frame(ftype, {"x": 1})
        got_type, body, used = decode_frame(data)
        assert got_type is ftype
        assert body == {"x": 1}
        assert used == len(data)


# ---------------------------------------------------------------------------
# Error cases.
# ---------------------------------------------------------------------------
def test_truncated_header_rejected():
    with pytest.raises(FrameError):
        decode_frame(b"\x00\x00")


def test_truncated_body_rejected():
    data = encode_frame(FrameType.MSG, {"tag": "control"})
    with pytest.raises(FrameError):
        decode_frame(data[:-1])


def test_zero_length_rejected():
    with pytest.raises(FrameError):
        decode_frame(b"\x00\x00\x00\x00")


def test_oversize_length_rejected():
    bad = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"\x01"
    with pytest.raises(FrameError):
        decode_frame(bad)


def test_unknown_frame_type_rejected():
    data = bytearray(encode_frame(FrameType.PING, {"t": 0}))
    data[4] = 0x7F
    with pytest.raises(FrameError, match="unknown frame type"):
        decode_frame(bytes(data))


def test_non_object_body_rejected():
    payload = json.dumps([1, 2, 3]).encode()
    data = ((1 + len(payload)).to_bytes(4, "big")
            + bytes([FrameType.STAT]) + payload)
    with pytest.raises(FrameError, match="JSON object"):
        decode_frame(data)


def test_garbage_body_rejected():
    payload = b"\xff\xfenot json"
    data = ((1 + len(payload)).to_bytes(4, "big")
            + bytes([FrameType.STAT]) + payload)
    with pytest.raises(FrameError):
        decode_frame(data)


def test_encode_oversize_body_rejected():
    with pytest.raises(FrameError, match="too large"):
        encode_frame(FrameType.MSG, {"blob": "x" * MAX_FRAME_BYTES})


# ---------------------------------------------------------------------------
# Incremental decoding.
# ---------------------------------------------------------------------------
def test_decoder_byte_at_a_time():
    frames = [encode_frame(FrameType.HELLO, {"v": 1}),
              encode_frame(FrameType.MSG, message_to_wire(
                  InterruptMsg(src=0, dst=1, epoch=2, group=0))),
              encode_frame(FrameType.BYE)]
    stream = b"".join(frames)
    dec = FrameDecoder()
    got = []
    for i in range(len(stream)):
        got.extend(dec.feed(stream[i:i + 1]))
    assert [t for t, _ in got] == [FrameType.HELLO, FrameType.MSG,
                                   FrameType.BYE]
    assert got[0][1] == {"v": 1}


def test_decoder_random_chunking_fuzz():
    rng = random.Random(20260808)
    msgs = []
    for _ in range(50):
        msgs.append(encode_frame(
            FrameType(rng.choice(list(FrameType))),
            {"n": rng.randrange(1000),
             "s": "".join(rng.choice("abc{}:,\"") for _ in range(
                 rng.randrange(40))),
             "f": rng.random(),
             "l": [rng.randrange(10) for _ in range(rng.randrange(5))]}))
    stream = b"".join(msgs)
    dec = FrameDecoder()
    got = []
    pos = 0
    while pos < len(stream):
        step = rng.randrange(1, 17)
        got.extend(dec.feed(stream[pos:pos + step]))
        pos += step
    assert len(got) == len(msgs)
    for (ftype, body), raw in zip(got, msgs):
        ref_type, ref_body, _ = decode_frame(raw)
        assert ftype is ref_type and body == ref_body


def test_decoder_rejects_bad_length_mid_stream():
    dec = FrameDecoder()
    list(dec.feed(encode_frame(FrameType.PING, {"t": 0})))
    with pytest.raises(FrameError):
        list(dec.feed(b"\xff\xff\xff\xff"))


# ---------------------------------------------------------------------------
# Message <-> MSG-frame body.
# ---------------------------------------------------------------------------
_SAMPLES = [
    InterruptMsg(src=3, dst=0, epoch=5, group=1),
    ProfileMsg(src=2, dst=0, epoch=1, group=0, remaining_work=3.5,
               remaining_count=7, rate=0.5),
    InstructionMsg(src=0, dst=2, epoch=4, group=0,
                   outgoing=(TransferOrder(2, 1, 1.5),
                             TransferOrder(2, 3, 0.25)),
                   incoming=1.0, retire=True, done=False,
                   active=(0, 1, 2, 3), select_scheme="GCDLB",
                   select_group_size=2, incoming_srcs=(1,),
                   grant=((10, 14), (20, 21))),
    WorkMsg(src=1, dst=2, epoch=4, ranges=((0, 5), (9, 12)), count=8,
            data_bytes=6400),
    ControlMsg(src=2, dst=0, epoch=3, kind="leave",
               payload=((4, 9), (11, 12))),
    ControlMsg(src=0, dst=1, epoch=0, kind="done"),
    DataMsg(src=1, dst=3, epoch=2, label="stage", data_bytes=1234),
]


@pytest.mark.parametrize("msg", _SAMPLES,
                         ids=lambda m: type(m).__name__)
def test_message_round_trip(msg):
    body = message_to_wire(msg)
    # The body must survive canonical JSON (what actually hits the wire).
    _, wired, _ = decode_frame(encode_frame(FrameType.MSG, body))
    assert message_from_wire(wired) == msg


def test_wire_body_carries_routing_header():
    body = message_to_wire(InterruptMsg(src=3, dst=0, epoch=5, group=1))
    assert body == {"tag": "interrupt", "src": 3, "dst": 0, "epoch": 5,
                    "group": 1}


def test_profile_body_canonical_bytes():
    # The docs/WIRE_PROTOCOL.md MSG example, byte-for-byte.
    msg = ProfileMsg(src=2, dst=0, epoch=1, group=0, remaining_work=3.5,
                     remaining_count=7, rate=0.5)
    frame = encode_frame(FrameType.MSG, message_to_wire(msg))
    assert frame[5:] == (b'{"dst":0,"epoch":1,"group":0,"rate":0.5,'
                         b'"remaining_count":7,"remaining_work":3.5,'
                         b'"src":2,"tag":"profile"}')


def test_unknown_body_keys_ignored():
    # Forward compatibility: a newer peer may add fields.
    body = message_to_wire(InterruptMsg(src=0, dst=1, epoch=1))
    body["future_field"] = {"nested": True}
    assert message_from_wire(body) == InterruptMsg(src=0, dst=1, epoch=1)


def test_unknown_tag_rejected():
    with pytest.raises(FrameError, match="unknown message tag"):
        message_from_wire({"tag": "telepathy", "src": 0, "dst": 1,
                           "epoch": 0})


# ---------------------------------------------------------------------------
# Config fragments (WELCOME frame).
# ---------------------------------------------------------------------------
def test_policy_round_trip():
    policy = DlbPolicy(improvement_threshold=0.25, min_move_fraction=0.02)
    assert policy_from_wire(policy_to_wire(policy)) == policy


def test_policy_ignores_unknown_keys():
    body = policy_to_wire(DlbPolicy())
    body["from_the_future"] = 1
    assert policy_from_wire(body) == DlbPolicy()


def test_ft_round_trip():
    ft = FaultToleranceConfig(enabled=True, request_timeout=0.125,
                              max_retries=3)
    assert ft_from_wire(ft_to_wire(ft)) == ft
