"""Cross-backend determinism and equivalence.

The protocol extraction must be invisible to the simulator: every
seeded statistic below was captured from the pre-refactor tree and the
:class:`SimBackend` must keep reproducing it bit-identically.  The
:class:`ThreadBackend` runs the same protocol on real threads, so its
durations are wall-clock (non-deterministic) — there we assert the
invariants instead: exactly-once iteration coverage, termination, and
the stats provenance tag.
"""

from __future__ import annotations

import pytest

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.backend import (
    BackendError,
    ProcessBackend,
    SimBackend,
    ThreadBackend,
    get_backend,
)
from repro.faults.plan import FaultPlan
from repro.runtime.options import FaultToleranceConfig, RunOptions


def _mxm():
    return mxm_loop(MxmConfig(120, 100, 100), op_seconds=4e-7)


def _cluster():
    return ClusterSpec.homogeneous(4, max_load=3, persistence=1.0, seed=7)


#: (duration, n_syncs, network_messages, network_bytes) captured from
#: the seed tree before the protocol/backend split.
SEED_ORACLE = {
    "GCDLB": (0.4031058333333333, 2, 25, 9200),
    "GDDLB": (0.375, 2, 33, 9728),
    "LCDLB": (0.43220000000000003, 4, 19, 8120),
    "LDDLB": (0.3698623333333333, 3, 12, 7696),
    "CUSTOM": (0.5371101666666667, 3, 21, 9008),
    "NONE": (0.48, 0, 0, 0),
}


@pytest.mark.parametrize("strategy", sorted(SEED_ORACLE))
def test_sim_backend_bit_identical_to_seed(strategy):
    stats = run_loop(_mxm(), _cluster(), strategy, RunOptions())
    assert (stats.duration, stats.n_syncs, stats.network_messages,
            stats.network_bytes) == SEED_ORACLE[strategy]
    assert stats.backend == "sim"


def test_sim_backend_finish_times_unchanged():
    stats = run_loop(_mxm(), _cluster(), "GCDLB", RunOptions())
    assert sorted(stats.node_finish_times.values()) == [
        0.3986413333333333, 0.4011058333333333,
        0.4021058333333333, 0.4031058333333333]


def test_sim_backend_bit_identical_under_faults():
    """The hardened-protocol path must also survive the extraction."""
    options = RunOptions(
        fault_tolerance=FaultToleranceConfig(enabled=True))
    stats = run_loop(_mxm(), _cluster(), "GDDLB", options,
                     fault_plan=FaultPlan.single_crash(node=2, time=0.02))
    assert (stats.duration, stats.n_syncs, stats.network_messages,
            stats.fault_retries, stats.reclaimed_iterations,
            stats.salvaged_iterations) == \
        (13.019924666666666, 3, 49, 15, 30, 0)


def test_explicit_sim_backend_matches_default():
    default = run_loop(_mxm(), _cluster(), "LDDLB", RunOptions())
    routed = run_loop(_mxm(), _cluster(), "LDDLB", RunOptions(),
                      backend="sim")
    explicit = SimBackend().run_loop(_mxm(), _cluster(), "LDDLB",
                                     RunOptions())
    for stats in (routed, explicit):
        assert stats.duration == default.duration
        assert stats.n_syncs == default.n_syncs
        assert stats.network_bytes == default.network_bytes


def test_get_backend_resolution():
    assert get_backend(None).name == "sim"
    assert get_backend("sim").name == "sim"
    assert get_backend("thread").name == "thread"
    assert get_backend("process").name == "process"
    assert get_backend("socket").name == "socket"
    backend = ThreadBackend()
    assert get_backend(backend) is backend
    with pytest.raises(BackendError):
        get_backend("mpi")


def _real_backend(name):
    if name == "thread":
        return ThreadBackend(time_scale=0.2)
    return ProcessBackend(time_scale=0.2)


@pytest.mark.parametrize("backend_name", ["thread", "process"])
@pytest.mark.parametrize("strategy", ["GCDLB", "GDDLB", "LCDLB", "LDDLB"])
def test_real_backend_exactly_once(backend_name, strategy):
    """Real threads/processes, real queues: every iteration executed
    exactly once, all four strategies terminate, stats carry
    provenance."""
    loop = mxm_loop(MxmConfig(48, 16, 16), op_seconds=4e-7)
    stats = run_loop(loop, _cluster(), strategy, RunOptions(),
                     backend=_real_backend(backend_name))
    assert stats.backend == backend_name
    executed = sum(stats.executed_count(node)
                   for node in stats.executed_by_node)
    assert executed == loop.n_iterations
    assert stats.duration > 0.0
    assert len(stats.node_finish_times) == 4


def test_thread_backend_rejects_simulation_only_features():
    loop = mxm_loop(MxmConfig(16, 8, 8), op_seconds=4e-7)
    backend = ThreadBackend(time_scale=0.2)
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "CUSTOM", RunOptions())
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "WS", RunOptions())
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "GDDLB", RunOptions(),
                         fault_plan=FaultPlan.single_crash(node=1,
                                                           time=0.01))
    with pytest.raises(BackendError):
        backend.run_loop(
            loop, _cluster(), "GDDLB",
            RunOptions(fault_tolerance=FaultToleranceConfig(enabled=True)))
