"""SocketBackend: the DLB protocol over real TCP on localhost.

The cross-backend suite pins exactly-once coverage for the in-process
backends; this file covers what is *specific* to sockets — the hub/star
transport, the per-frame-type byte ledger, elastic membership (a worker
joining mid-run, a planned departure, a killed connection), the
procs-workers mode, export of the new transport columns, and the
rejection surface for simulation-only features.

Everything runs on 127.0.0.1 with ephemeral ports, so the suite is safe
on network-less CI runners.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.workload import LoopSpec
from repro.backend import BackendError, SocketBackend
from repro.backend.socket import JoinEvent, KillEvent, LeaveEvent
from repro.experiments.export import run_to_csv, run_to_json
from repro.faults.plan import FaultPlan, MessageDropFault, SlowdownFault
from repro.runtime.options import RunOptions


def _cluster(n=4):
    return ClusterSpec.homogeneous(n, max_load=3, persistence=1.0, seed=7)


def _mxm(iters=48):
    return mxm_loop(MxmConfig(iters, 16, 16), op_seconds=4e-7)


def _steady(n_iterations=200, cost=0.002):
    """Uniform 2 ms iterations: compute dominates protocol latency, so
    membership events that fire mid-run leave a joiner/grantee enough
    remaining work to matter."""
    return LoopSpec(name="steady", n_iterations=n_iterations,
                    iteration_time=cost, dc_bytes=8)


def _executed(stats):
    return sum(stats.executed_count(n) for n in stats.executed_by_node)


def _no_orphans():
    return [p.name for p in multiprocessing.active_children()
            if p.name.startswith("dlb-sock")]


# -- exactly-once over TCP, all strategies -------------------------------
@pytest.mark.parametrize("strategy", ["GCDLB", "GDDLB", "LCDLB", "LDDLB",
                                      "NONE"])
def test_socket_backend_exactly_once(strategy):
    loop = _mxm(64)
    stats = run_loop(loop, _cluster(), strategy, RunOptions(),
                     backend=SocketBackend(time_scale=0.1))
    assert stats.backend == "socket"
    assert _executed(stats) == loop.n_iterations
    assert stats.duration > 0.0
    assert len(stats.node_finish_times) == 4
    # Every strategy moves real bytes through the hub, and the ledger
    # splits them by frame type.
    assert stats.transport_payload_bytes > 0
    assert stats.payload_by_frame
    assert sum(stats.payload_by_frame.values()) == \
        stats.transport_payload_bytes
    expected = ["HELLO", "WELCOME", "STAT", "BYE"]
    if strategy != "NONE":  # NONE never exchanges protocol messages
        expected.append("MSG")
    for name in expected:
        assert stats.payload_by_frame[name] > 0


def test_workers_as_processes_end_to_end():
    stats = SocketBackend(time_scale=0.1, workers="procs").run_loop(
        _mxm(48), _cluster(3), "GCDLB", RunOptions())
    assert _executed(stats) == 48
    assert len(stats.node_finish_times) == 3
    assert _no_orphans() == []


# -- elastic membership: join --------------------------------------------
def test_join_mid_run_centralized():
    """A worker that dials in mid-run is admitted by the balancer and is
    handed real work through the §3.1 receiver-initiated sync."""
    backend = SocketBackend(script=(JoinEvent(after_iterations=30),))
    stats = backend.run_loop(_steady(200), _cluster(), "GCDLB",
                             RunOptions())
    assert _executed(stats) == 200
    assert stats.joined_nodes == (4,)
    assert stats.executed_count(4) > 0  # the joiner really computed
    assert stats.left_nodes == ()
    assert stats.crashed_nodes == ()


def test_join_mid_run_distributed():
    """Distributed schemes fence the join on a future profile epoch; the
    fence may never be reached, so the joiner may legitimately execute
    nothing — coverage and the membership record are the contract."""
    backend = SocketBackend(script=(JoinEvent(after_iterations=20),))
    stats = backend.run_loop(_steady(200), _cluster(), "GDDLB",
                             RunOptions())
    assert _executed(stats) == 200
    assert stats.joined_nodes == (4,)
    assert "MEMBER" in stats.payload_by_frame


# -- elastic membership: planned leave -----------------------------------
@pytest.mark.parametrize("strategy", ["GCDLB", "LDDLB"])
def test_planned_leave_hands_work_back(strategy):
    backend = SocketBackend(
        script=(LeaveEvent(node=1, after_iterations=30),))
    stats = backend.run_loop(_steady(200), _cluster(), strategy,
                             RunOptions())
    assert _executed(stats) == 200
    assert stats.left_nodes == (1,)
    assert stats.crashed_nodes == ()
    # A planned departure hands its residual ranges back over the wire;
    # nothing is lost, so nothing needs post-hoc salvage.
    assert stats.salvaged_iterations == 0
    assert "LEAVE" in stats.payload_by_frame
    assert "DEATH" in stats.payload_by_frame  # the planned announcement


# -- elastic membership: crash (killed connection) -----------------------
@pytest.mark.faults
@pytest.mark.parametrize("strategy", ["GCDLB", "LDDLB"])
def test_killed_connection_salvaged_exactly_once(strategy):
    backend = SocketBackend(
        script=(KillEvent(node=2, after_iterations=30),))
    stats = backend.run_loop(_steady(200), _cluster(), strategy,
                             RunOptions())
    assert stats.crashed_nodes == (2,)
    assert _executed(stats) == 200
    assert 2 not in stats.node_finish_times


@pytest.mark.faults
def test_timed_crash_fault_plan_lifted():
    """FaultPlan crash faults (wall-clock timed) work like the process
    backend's, on top of the script-event path."""
    plan = FaultPlan.single_crash(node=1, time=0.05)
    stats = SocketBackend(time_scale=1.0).run_loop(
        LoopSpec(name="steady", n_iterations=64, iteration_time=0.01,
                 dc_bytes=64),
        _cluster(), "GCDLB", RunOptions(), fault_plan=plan)
    assert stats.crashed_nodes == (1,)
    assert _executed(stats) == 64


# -- stats export --------------------------------------------------------
def test_export_carries_frame_split():
    stats = run_loop(_mxm(48), _cluster(3), "GCDLB", RunOptions(),
                     backend=SocketBackend(time_scale=0.1))
    csv_text = run_to_csv(stats)
    header, row = csv_text.strip().splitlines()
    assert "payload_by_frame" in header.split(",")
    cell = dict(zip(header.split(","), row.split(","))) \
        ["payload_by_frame"].strip('"')
    parsed = dict(item.split("=") for item in cell.split(";"))
    assert int(parsed["MSG"]) > 0

    import json
    doc = json.loads(run_to_json(stats))
    assert doc["payload_by_frame"]["MSG"] == stats.payload_by_frame["MSG"]
    assert doc["joined_nodes"] == []
    assert doc["left_nodes"] == []


# -- rejection surface ---------------------------------------------------
def test_socket_backend_rejects_simulation_only_features():
    loop = _mxm(16)
    backend = SocketBackend(time_scale=0.2)
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "CUSTOM", RunOptions())
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "WS", RunOptions())
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "GDDLB",
                         RunOptions(sync_mode="periodic"))
    slow = FaultPlan(slowdowns=(SlowdownFault(node=1, time=0.1,
                                              duration=0.1),))
    drops = FaultPlan(drops=(MessageDropFault(probability=0.5),))
    for plan in (slow, drops):
        with pytest.raises(BackendError, match="simulation-only"):
            backend.run_loop(loop, _cluster(), "GCDLB", RunOptions(),
                             fault_plan=plan)
    with pytest.raises(BackendError):
        SocketBackend(time_scale=0)
    with pytest.raises(BackendError):
        SocketBackend(workers="threads")
    with pytest.raises(ValueError):
        backend.run_loop(loop, _cluster(1), "GCDLB", RunOptions())
