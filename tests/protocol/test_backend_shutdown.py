"""Shutdown contract of the real-time backends.

A mid-run failure must never leave ``dlb-*`` worker threads or
processes behind: an orphan blocks interpreter exit (non-daemon
contexts) or hangs CI runners.  ThreadBackend aborts and joins every
thread before re-raising; ProcessBackend terminates and joins every
child in a ``finally`` (its own regression lives in
``test_process_backend.py::test_worker_failure_tears_down_all_processes``).
"""

from __future__ import annotations

import threading

import pytest

from repro import ClusterSpec
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.backend import BackendError, ThreadBackend
from repro.protocol import WorkerProtocol
from repro.runtime.options import RunOptions


def _cluster():
    return ClusterSpec.homogeneous(4, max_load=3, persistence=1.0, seed=7)


def _dlb_threads():
    return [t.name for t in threading.enumerate()
            if t.name.startswith("dlb-")]


def test_thread_worker_failure_joins_all_threads(monkeypatch):
    """One worker raising mid-compute aborts peers and joins the pack."""
    original = WorkerProtocol.note_work

    def bomb(self, cost):
        if self.me == 1:
            raise RuntimeError("injected mid-run failure")
        return original(self, cost)

    monkeypatch.setattr(WorkerProtocol, "note_work", bomb)
    loop = mxm_loop(MxmConfig(48, 16, 16), op_seconds=4e-7)
    with pytest.raises((RuntimeError, BackendError)):
        ThreadBackend(time_scale=0.2).run_loop(
            loop, _cluster(), "GCDLB", RunOptions())
    assert _dlb_threads() == []


def test_thread_clean_run_leaves_no_threads():
    loop = mxm_loop(MxmConfig(32, 8, 8), op_seconds=4e-7)
    ThreadBackend(time_scale=0.2).run_loop(
        loop, _cluster(), "GDDLB", RunOptions())
    assert _dlb_threads() == []


def test_thread_ops_kernel_end_to_end():
    """The calibrated op-count kernel covers every iteration too."""
    loop = mxm_loop(MxmConfig(32, 8, 8), op_seconds=4e-7)
    stats = ThreadBackend(time_scale=0.2, kernel="ops").run_loop(
        loop, _cluster(), "LDDLB", RunOptions())
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 32
    with pytest.raises(BackendError, match="kernel"):
        ThreadBackend(kernel="quantum")
