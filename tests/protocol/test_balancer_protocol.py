"""Scripted event traces through :class:`BalancerProtocol`.

Covers the centralized strategies (GCDLB: one global group; LCDLB:
several local groups) plus the fault-tolerance paths: lost-INSTRUCTION
recovery from a stale duplicate profile, and death pruning mid-gather.
"""

from __future__ import annotations

import pytest

from repro.core.policy import DlbPolicy
from repro.message.messages import ControlMsg, InstructionMsg, ProfileMsg, Tag
from repro.protocol import (
    AwaitMessage,
    BalancerProtocol,
    Charge,
    Done,
    MessageReceived,
    PeerDead,
    RecordSync,
    Send,
    Start,
)
from repro.runtime.options import FaultToleranceConfig

from .conftest import COST, all_of, only

FT = FaultToleranceConfig(enabled=True, request_timeout=0.05, backoff=2.0,
                          max_retries=2)


def make_balancer(groups, *, ft=None):
    return BalancerProtocol(0, groups, policy=DlbPolicy(),
                            mean_iteration_time=COST, ft=ft)


def profile(src, *, epoch=0, group=0, count=16, rate=1.0):
    return ProfileMsg(src=src, dst=0, epoch=epoch, group=group,
                      remaining_work=count * COST / rate,
                      remaining_count=count, rate=rate)


def test_global_group_round(capsys=None):
    """GCDLB shape: one group; instructions fan out once the last
    profile lands, work moves from the slow node to the fast ones."""
    b = make_balancer([[0, 1, 2]])
    assert b.on_event(Start()) == (AwaitMessage(tags=(Tag.PROFILE,)),)

    cmds = b.on_event(MessageReceived(profile(0, count=0)))
    assert cmds == (AwaitMessage(tags=(Tag.PROFILE,)),)   # box incomplete
    cmds = b.on_event(MessageReceived(profile(1, count=0)))
    assert cmds == (AwaitMessage(tags=(Tag.PROFILE,)),)

    cmds = b.on_event(MessageReceived(profile(2, count=30)))
    charge = only(cmds, Charge)
    policy = DlbPolicy()
    assert charge.seconds == pytest.approx(
        policy.delta_seconds + 2 * policy.context_switch_seconds)
    sync = only(cmds, RecordSync)
    assert (sync.group, sync.epoch) == (0, 0)
    assert sync.plan.transfers           # imbalance forced movement
    instrs = [c.msg for c in all_of(cmds, Send)]
    assert sorted(i.dst for i in instrs) == [0, 1, 2]
    assert all(isinstance(i, InstructionMsg) and i.epoch == 0
               for i in instrs)
    assert cmds[-1] == AwaitMessage(tags=(Tag.PROFILE,))
    assert b.group_epoch[0] == 1         # next round is epoch 1


def test_local_groups_serve_independently():
    """LCDLB shape: two groups complete at different times; each is
    served as soon as its own box fills, and Done only when both
    groups report done plans."""
    b = make_balancer([[0, 1], [2, 3]])
    b.on_event(Start())

    b.on_event(MessageReceived(profile(2, group=1, count=0)))
    cmds = b.on_event(MessageReceived(profile(3, group=1, count=4)))
    sync = only(cmds, RecordSync)
    assert sync.group == 1
    assert {c.msg.dst for c in all_of(cmds, Send)} == {2, 3}
    assert b.group_epoch == {0: 0, 1: 1}  # group 0 still gathering

    # Group 1 finishes for good while group 0 holds its first sync.
    b.on_event(MessageReceived(profile(2, group=1, epoch=1, count=0)))
    cmds = b.on_event(MessageReceived(profile(3, group=1, epoch=1,
                                              count=0)))
    assert only(cmds, RecordSync).plan.done
    assert b.groups_done == {1}
    assert cmds[-1] == AwaitMessage(tags=(Tag.PROFILE,))

    b.on_event(MessageReceived(profile(0, count=0)))
    cmds = b.on_event(MessageReceived(profile(1, count=0)))
    assert only(cmds, RecordSync).plan.done
    assert cmds[-1] == Done("done")


def test_stale_profile_resends_cached_instruction():
    """Lost-INSTRUCTION recovery: a duplicate epoch-0 profile after the
    group advanced means the sender never saw its instruction — the
    cached copy is re-sent verbatim."""
    b = make_balancer([[0, 1]], ft=FT)
    b.on_event(Start())
    b.on_event(MessageReceived(profile(0, count=8)))
    cmds = b.on_event(MessageReceived(profile(1, count=8)))
    original = {c.msg.dst: c.msg for c in all_of(cmds, Send)}

    dup = profile(1, count=8)            # epoch 0 again: 1 is stuck
    cmds = b.on_event(MessageReceived(dup))
    resent = only(cmds, Send).msg
    assert resent == original[1]
    assert cmds[-1] == AwaitMessage(tags=(Tag.PROFILE,))


def test_non_profile_message_rearms():
    b = make_balancer([[0, 1]], ft=FT)
    b.on_event(Start())
    cmds = b.on_event(MessageReceived(
        ControlMsg(src=1, dst=0, epoch=0, kind="resend-work")))
    assert cmds == (AwaitMessage(tags=(Tag.PROFILE,)),)


def test_peer_death_completes_gather():
    """A death declaration mid-gather shrinks the active set; the
    survivors' box is then complete and the round is served without
    the dead node's (reclaimed) work."""
    b = make_balancer([[0, 1, 2]], ft=FT)
    b.on_event(Start())
    b.on_event(MessageReceived(profile(0, count=0)))
    b.on_event(MessageReceived(profile(1, count=12)))

    cmds = b.on_event(PeerDead(2))
    sync = only(cmds, RecordSync)
    assert 2 not in sync.plan.active
    assert {c.msg.dst for c in all_of(cmds, Send)} == {0, 1}
    assert b.group_active[0] == {0, 1}


def test_dead_profile_is_discarded():
    """A profile that raced a death declaration must not be planned
    with — its work was reclaimed into the orphan pool."""
    b = make_balancer([[0, 1]], ft=FT)
    b.on_event(Start())
    b.on_event(MessageReceived(profile(1, count=12)))
    cmds = b.on_event(PeerDead(1))
    assert not all_of(cmds, RecordSync)    # box emptied, 0 still missing
    cmds = b.on_event(MessageReceived(profile(0, count=8)))
    sync = only(cmds, RecordSync)
    assert sync.plan.active == (0,)


def test_whole_group_death_is_done():
    b = make_balancer([[0, 1], [2, 3]], ft=FT)
    b.on_event(Start())
    b.on_event(PeerDead(2))
    cmds = b.on_event(PeerDead(3))
    assert b.groups_done == {1}
    assert cmds[-1] == AwaitMessage(tags=(Tag.PROFILE,))


def test_probe_bookkeeping():
    """overdue_members only reports silent nodes whose probe budget is
    spent; any sign of life resets the clock."""
    b = make_balancer([[0, 1, 2]], ft=FT)
    b.on_event(MessageReceived(profile(0, count=0)))
    assert b.overdue_members(0, {0, 1, 2}) == []
    b.probe_rounds[1] = FT.max_retries
    b.probe_rounds[2] = FT.max_retries - 1
    assert b.overdue_members(0, {0, 1, 2}) == [1]
    b.note_alive(1)
    assert b.overdue_members(0, {0, 1, 2}) == []
