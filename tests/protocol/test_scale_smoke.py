"""Large-P smoke: the optimized DES at P=512 inside tier-1.

The full P=64..4096 sweeps live in ``benchmarks/test_bench_scale.py``;
this is the tier-1 canary (marker ``scale``) that keeps "thousands of
workstations" a *supported* scenario rather than a bench-only one: a
seeded P=512 run under a local scheme must complete, balance, and
account for every iteration in a couple of seconds of wall time.
"""

import time

import pytest

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.runtime.options import RunOptions

#: Generous wall budget: ~1 s on the dev box, headroom for slow CI.
WALL_BUDGET_SECONDS = 30.0


@pytest.mark.scale
def test_p512_bus_local_scheme_smoke():
    p = 512
    loop = mxm_loop(MxmConfig(64, 32, 32), op_seconds=4e-7)
    cluster = ClusterSpec.homogeneous(p, max_load=3, persistence=1.0,
                                      seed=7)
    t0 = time.perf_counter()
    stats = run_loop(loop, cluster, "LCDLB", RunOptions(group_size=32))
    wall = time.perf_counter() - t0

    assert wall < WALL_BUDGET_SECONDS, f"P=512 took {wall:.1f}s"
    assert stats.n_processors == p
    assert stats.duration > 0
    # Exactly-once coverage at scale: every iteration executed by
    # exactly one of the 512 nodes.
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == loop.n_iterations
    # The local scheme actually balanced (some group synced) and its
    # sync traffic stayed O(P*k), nowhere near the global O(P^2).
    assert stats.n_syncs >= 1
    assert stats.network_messages < p * p
