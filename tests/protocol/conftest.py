"""Shared helpers for the pure-protocol test suite.

These tests drive :mod:`repro.protocol` state machines with
hand-written event scripts — no simulator, no threads, no clock.
"""

from __future__ import annotations

import pytest

from repro.apps.workload import WorkTable
from repro.core.policy import DlbPolicy
from repro.protocol import WorkerProtocol
from repro.runtime.assignment import Assignment
from repro.runtime.options import FaultToleranceConfig

#: Uniform 10 ms iterations; 64 of them.
N_ITER = 64
COST = 0.010


@pytest.fixture
def table() -> WorkTable:
    return WorkTable(COST, n_iterations=N_ITER)


def make_worker(me, members, *, centralized, table, ranges=(),
                ft: FaultToleranceConfig | None = None,
                group: int = 0, is_dlb: bool = True) -> WorkerProtocol:
    return WorkerProtocol(
        me, members, group=group, centralized=centralized, lb_host=0,
        policy=DlbPolicy(), table=table,
        mean_iteration_time=COST, dc_bytes=100,
        ft=ft, assignment=Assignment(ranges), is_dlb=is_dlb)


def only(commands, kind):
    """The single command of ``kind`` in ``commands`` (assert exactly one)."""
    found = [c for c in commands if isinstance(c, kind)]
    assert len(found) == 1, f"expected one {kind.__name__} in {commands}"
    return found[0]


def all_of(commands, kind):
    return [c for c in commands if isinstance(c, kind)]
