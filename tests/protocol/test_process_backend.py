"""ProcessBackend: true-parallel execution, shm data movement, crashes.

The cross-backend suite already pins exactly-once coverage for all four
strategies; this file covers what is *specific* to processes — the
shared-memory data path and its audit trail, the transport/shm byte
split, alternate start methods, lifted crash-fault injection with
reclaim/salvage, the shutdown contract (no orphaned processes after a
mid-run failure), and the rejection surface for simulation-only
features.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import ClusterSpec
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.workload import LoopSpec
from repro.backend import BackendError, ProcessBackend
from repro.backend.process import STAMP_BYTES
from repro.faults.plan import (
    FaultPlan,
    MessageDropFault,
    SlowdownFault,
)
from repro.runtime.options import RunOptions


def _cluster(n=4):
    return ClusterSpec.homogeneous(n, max_load=3, persistence=1.0, seed=7)


def _skewed_loop():
    """Front-loaded costs: node 0's block dominates, forcing the
    balancer to move work (and therefore data) off it."""
    times = (0.02,) * 12 + (0.002,) * 36
    return LoopSpec(name="skew", n_iterations=48, iteration_time=times,
                    dc_bytes=256)


def _no_orphans():
    return [p.name for p in multiprocessing.active_children()
            if p.name.startswith("dlb-")]


# -- data movement over shared memory -----------------------------------
@pytest.mark.parametrize("strategy", ["GCDLB", "GDDLB"])
def test_redistribution_moves_data_through_shm(strategy):
    stats = ProcessBackend(time_scale=0.5).run_loop(
        _skewed_loop(), _cluster(), strategy, RunOptions())
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 48
    assert stats.n_redistributions >= 1
    # Work moved, so iteration rows moved — by remapping, not copying:
    # the shm ledger counts them, and they never inflate the pipe
    # payload by more than the pickled range descriptors.
    assert stats.shm_data_bytes >= 256
    assert stats.shm_data_bytes % 256 == 0
    assert stats.transport_payload_bytes > 0


def test_shm_audit_catches_misattributed_rows(monkeypatch):
    backend = ProcessBackend(time_scale=0.2)
    real_verify = backend._verify_shm

    seen = {}

    def spying_verify(stats, shm, row_bytes):
        real_verify(stats, shm, row_bytes)  # the genuine audit passes
        seen["row_bytes"] = row_bytes
        # ... and it really checks: corrupt one row, expect a scream.
        shm.buf[0:STAMP_BYTES] = b"\xff" * STAMP_BYTES
        with pytest.raises(AssertionError, match="stamped by"):
            real_verify(stats, shm, row_bytes)

    monkeypatch.setattr(backend, "_verify_shm", spying_verify)
    loop = mxm_loop(MxmConfig(48, 16, 16), op_seconds=4e-7)
    backend.run_loop(loop, _cluster(), "LDDLB", RunOptions())
    assert seen["row_bytes"] >= STAMP_BYTES


def test_start_method_spawn_end_to_end():
    loop = mxm_loop(MxmConfig(32, 8, 8), op_seconds=4e-7)
    stats = ProcessBackend(time_scale=0.2, start_method="spawn").run_loop(
        loop, _cluster(), "GCDLB", RunOptions())
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 32
    assert stats.backend == "process"


def test_unknown_start_method_rejected():
    loop = mxm_loop(MxmConfig(16, 8, 8), op_seconds=4e-7)
    with pytest.raises(BackendError, match="start method"):
        ProcessBackend(start_method="telepathy").run_loop(
            loop, _cluster(), "GCDLB", RunOptions())


# -- crash faults: lifted, not rejected ---------------------------------
@pytest.mark.faults
@pytest.mark.parametrize("strategy", ["GCDLB", "GDDLB", "LCDLB", "LDDLB"])
def test_crash_fault_salvages_exactly_once(strategy):
    loop = LoopSpec(name="steady", n_iterations=64, iteration_time=0.01,
                    dc_bytes=64)
    plan = FaultPlan.single_crash(node=1, time=0.05)
    stats = ProcessBackend(time_scale=1.0).run_loop(
        loop, _cluster(), strategy, RunOptions(), fault_plan=plan)
    assert stats.crashed_nodes == (1,)
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 64  # coverage also re-verified inside run_loop
    # The victim's unfinished share was recovered by someone.
    assert stats.salvaged_iterations + stats.executed_count(1) <= 64
    assert stats.node_finish_times  # survivors finished and reported
    assert 1 not in stats.node_finish_times


@pytest.mark.faults
def test_crash_before_any_work_is_fully_salvaged():
    loop = mxm_loop(MxmConfig(48, 16, 16), op_seconds=4e-7)
    plan = FaultPlan.single_crash(node=2, time=1e-9)
    stats = ProcessBackend(time_scale=0.2).run_loop(
        loop, _cluster(), "LDDLB", RunOptions(), fault_plan=plan)
    assert stats.crashed_nodes == (2,)
    assert stats.executed_count(2) + stats.salvaged_iterations >= 12
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 48


@pytest.mark.faults
def test_crash_plan_times_scale_with_time_scale():
    # At time_scale=0.5, a nominal-time-0.1 crash fires at 0.05s wall;
    # the run (0.64s of nominal work / 4 nodes at scale 0.5 ≈ 0.08s)
    # is still in flight, so the crash must actually land.
    loop = LoopSpec(name="steady", n_iterations=64, iteration_time=0.01,
                    dc_bytes=0)
    plan = FaultPlan.single_crash(node=3, time=0.1)
    stats = ProcessBackend(time_scale=0.5).run_loop(
        loop, _cluster(), "GDDLB", RunOptions(), fault_plan=plan)
    assert stats.crashed_nodes == (3,)


@pytest.mark.faults
def test_non_crash_faults_stay_simulation_only():
    loop = mxm_loop(MxmConfig(16, 8, 8), op_seconds=4e-7)
    backend = ProcessBackend(time_scale=0.2)
    slow = FaultPlan(slowdowns=(SlowdownFault(node=1, time=0.1,
                                              duration=0.1),))
    drops = FaultPlan(drops=(MessageDropFault(probability=0.5),))
    for plan in (slow, drops):
        with pytest.raises(BackendError, match="simulation-only"):
            backend.run_loop(loop, _cluster(), "GCDLB", RunOptions(),
                             fault_plan=plan)


# -- shutdown contract ---------------------------------------------------
def test_worker_failure_tears_down_all_processes():
    backend = ProcessBackend(time_scale=1.0)
    backend._fail_after = {1: 3}  # node 1 raises mid-run
    loop = LoopSpec(name="steady", n_iterations=64, iteration_time=0.01,
                    dc_bytes=32)
    with pytest.raises(BackendError, match="worker 1 failed"):
        backend.run_loop(loop, _cluster(), "GCDLB", RunOptions())
    assert _no_orphans() == []


def test_clean_run_leaves_no_processes():
    loop = mxm_loop(MxmConfig(32, 8, 8), op_seconds=4e-7)
    ProcessBackend(time_scale=0.2).run_loop(
        loop, _cluster(), "LCDLB", RunOptions())
    assert _no_orphans() == []


# -- rejection surface ---------------------------------------------------
def test_process_backend_rejects_simulation_only_features():
    loop = mxm_loop(MxmConfig(16, 8, 8), op_seconds=4e-7)
    backend = ProcessBackend(time_scale=0.2)
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "CUSTOM", RunOptions())
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "WS", RunOptions())
    with pytest.raises(BackendError):
        backend.run_loop(loop, _cluster(), "GDDLB",
                         RunOptions(sync_mode="periodic"))
    with pytest.raises(BackendError):
        ProcessBackend(time_scale=0)
    with pytest.raises(ValueError):
        backend.run_loop(loop, _cluster(1), "GCDLB", RunOptions())
