"""The vectorized compute kernel and its backend wiring.

Covers :mod:`repro.backend.kernels`'s numpy additions — in-place
vectorized burns, zero-copy shared-memory views, size-keyed
calibration — and the ``kernel="numpy"`` paths through both real-time
backends, including the validation surface.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

from repro import ClusterSpec
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.backend import BackendError, ProcessBackend, ThreadBackend
from repro.backend.kernels import (
    HAVE_NUMPY,
    MIN_VEC_ELEMS,
    VEC_CHUNK,
    _cached_vec_rates,
    burn_vec,
    calibrate_vec_rate,
    shm_row_view,
)
from repro.runtime.options import RunOptions

np = pytest.importorskip("numpy")

#: Small enough to keep calibration tests fast, large enough to measure.
SAMPLE_OPS = 1_000_000


def _cluster(n=4):
    return ClusterSpec.homogeneous(n, max_load=3, persistence=1.0, seed=7)


# -- burn_vec ------------------------------------------------------------

def test_burn_vec_mutates_supplied_array_in_place():
    x = np.full(64, 0.5)
    before = x.copy()
    sink = burn_vec(10_000, out=x)
    assert not np.array_equal(x, before)
    assert sink == x[0]


def test_burn_vec_values_stay_bounded_over_many_passes():
    # The contraction multiplier (< 1) must keep repeated in-place
    # burns over the same row from diverging, whatever the row held.
    x = np.full(MIN_VEC_ELEMS, 1e300)
    for _ in range(5):
        burn_vec(50_000, out=x)
    assert np.all(np.isfinite(x))
    assert np.all(np.abs(x) <= 1e300)


def test_burn_vec_falls_back_to_scratch_for_tiny_views():
    tiny = np.full(MIN_VEC_ELEMS - 1, 0.5)
    before = tiny.copy()
    burn_vec(10_000, out=tiny)
    # Too small to vectorize over: left untouched, scratch burned.
    assert np.array_equal(tiny, before)


def test_burn_vec_respects_abort():
    x = np.full(VEC_CHUNK, 0.5)
    before = x.copy()
    burn_vec(10**12, out=x, should_abort=lambda: True)
    # Aborted before the first pass: nothing computed, no hang.
    assert np.array_equal(x, before)


def test_burn_vec_abort_after_first_pass():
    calls = []

    def abort_after_one():
        calls.append(None)
        return len(calls) > 1

    x = np.full(VEC_CHUNK, 0.5)
    burn_vec(10**12, out=x, should_abort=abort_after_one)
    assert len(calls) == 2  # one pass ran, the second probe aborted


# -- shm_row_view --------------------------------------------------------

def test_shm_row_view_aliases_shared_memory():
    shm = shared_memory.SharedMemory(create=True, size=256)
    try:
        view = shm_row_view(shm.buf, 8, 128)
        assert view is not None and view.size == 16
        view[:] = 0.25
        roundtrip = np.frombuffer(bytes(shm.buf[8:136]), dtype=np.float64)
        assert np.all(roundtrip == 0.25)
        # Burning through the view writes the shared block directly.
        burn_vec(10_000, out=view)
        after = np.frombuffer(bytes(shm.buf[8:136]), dtype=np.float64)
        assert not np.all(after == 0.25)
        del view, roundtrip, after  # release buf references before close
    finally:
        shm.close()
        shm.unlink()


def test_shm_row_view_rejects_windows_too_small_to_vectorize():
    buf = bytearray(1024)
    assert shm_row_view(buf, 0, (MIN_VEC_ELEMS - 1) * 8) is None
    assert shm_row_view(buf, 0, MIN_VEC_ELEMS * 8) is not None


# -- calibration ---------------------------------------------------------

def test_calibrate_vec_rate_caches_per_element_count():
    _cached_vec_rates.pop(256, None)
    first = calibrate_vec_rate(256, sample_ops=SAMPLE_OPS, repeats=1)
    assert first > 0
    # Cached: an absurd sample size is never run.
    again = calibrate_vec_rate(256, sample_ops=10**15, repeats=1)
    assert again == first
    # fresh=True recomputes (value may legitimately differ).
    refreshed = calibrate_vec_rate(256, sample_ops=SAMPLE_OPS, repeats=1,
                                   fresh=True)
    assert refreshed > 0


def test_calibrate_vec_rate_small_elems_use_scratch_size():
    _cached_vec_rates.pop(VEC_CHUNK, None)
    rate = calibrate_vec_rate(2, sample_ops=SAMPLE_OPS, repeats=1)
    assert _cached_vec_rates.get(VEC_CHUNK) == rate


# -- backend wiring ------------------------------------------------------

def test_thread_backend_numpy_kernel_end_to_end():
    loop = mxm_loop(MxmConfig(32, 8, 8), op_seconds=4e-7)
    stats = ThreadBackend(time_scale=0.2, kernel="numpy").run_loop(
        loop, _cluster(), "GCDLB", RunOptions())
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 32
    assert stats.backend == "thread"


def test_process_backend_numpy_kernel_end_to_end():
    # dc_bytes large enough that workers burn in place on their shm
    # rows; the run's own stamp audit doubles as the integrity check.
    loop = mxm_loop(MxmConfig(32, 8, 8), op_seconds=4e-7)
    assert loop.dc_bytes >= MIN_VEC_ELEMS * 8
    stats = ProcessBackend(time_scale=0.2, kernel="numpy").run_loop(
        loop, _cluster(), "LDDLB", RunOptions())
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == 32
    assert stats.shm_data_bytes >= 0


def test_unknown_kernel_rejected():
    with pytest.raises(BackendError, match="kernel"):
        ThreadBackend(kernel="cuda")
    with pytest.raises(BackendError, match="kernel"):
        ProcessBackend(kernel="cuda")


def test_process_backend_rejects_wall_kernel():
    # Wall-spinning proves nothing about parallel CPU work.
    with pytest.raises(BackendError, match="thread-only"):
        ProcessBackend(kernel="wall")


def test_have_numpy_reflects_import():
    assert HAVE_NUMPY  # numpy imported fine above via importorskip
