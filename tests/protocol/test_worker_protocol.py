"""Scripted event traces through :class:`WorkerProtocol`.

One happy-path and one crash-recovery trace per strategy shape:
GCDLB (centralized, global group), LCDLB (centralized, local group),
GDDLB (distributed, global group), LDDLB (distributed, local group) —
plus the static NONE baseline and the lone-node edge.  Pure state
machine throughout: events in, commands out, no simulator.
"""

from __future__ import annotations

import pytest

from repro.message.messages import (
    ControlMsg,
    InstructionMsg,
    InterruptMsg,
    ProfileMsg,
    Tag,
    TransferOrder,
    WorkMsg,
)
from repro.protocol import (
    AwaitMessage,
    Charge,
    ComputeDone,
    DeclareDead,
    Done,
    MessageReceived,
    ProtocolRetryExhausted,
    RecordSync,
    Send,
    Start,
    StartCompute,
    TimerFired,
)
from repro.runtime.options import FaultToleranceConfig

from .conftest import COST, all_of, make_worker, only

FT = FaultToleranceConfig(enabled=True, request_timeout=0.05, backoff=2.0,
                          max_retries=2)


# ---------------------------------------------------------------------------
# Happy paths
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("members,group", [((0, 1, 2), 0),   # GCDLB shape
                                           ((2, 3), 1)])     # LCDLB shape
def test_centralized_happy_path(table, members, group):
    """Compute -> interrupt group -> profile to master -> instruction ->
    receive work -> next epoch -> done instruction -> Done."""
    me = members[-1]
    w = make_worker(me, members, centralized=True, table=table,
                    ranges=[(32, 48)], group=group)
    assert w.on_event(Start()) == (StartCompute(),)

    cmds = w.on_event(ComputeDone("finished"))
    interrupts = [c.msg for c in all_of(cmds, Send)
                  if c.msg.tag is Tag.INTERRUPT]
    assert sorted(m.dst for m in interrupts) == \
        sorted(set(members) - {me})
    assert all(isinstance(m, InterruptMsg) and m.epoch == 0
               for m in interrupts)
    profile = [c.msg for c in all_of(cmds, Send)
               if c.msg.tag is Tag.PROFILE]
    assert len(profile) == 1 and profile[0].dst == 0  # to the master
    assert profile[0].remaining_count == 16
    wait = only(cmds, AwaitMessage)
    assert wait.tags == (Tag.INSTRUCTION,) and wait.epoch == 0
    assert wait.timeout is None  # fault tolerance off: block forever

    # The balancer orders us to expect one incoming transfer.
    instr = InstructionMsg(src=0, dst=me, epoch=0, group=group,
                           incoming=1, active=tuple(members))
    cmds = w.on_event(MessageReceived(instr))
    wait = only(cmds, AwaitMessage)
    assert wait.tags == (Tag.WORK,) and wait.epoch == 0

    work = WorkMsg(src=members[0], dst=me, epoch=0, ranges=((0, 4),),
                   count=4)
    cmds = w.on_event(MessageReceived(work))
    assert cmds == (StartCompute(),)
    assert w.epoch == 1                      # epoch advanced
    assert w.assignment.count == 20          # 16 + 4 granted

    # Next round: the group is globally done.
    cmds = w.on_event(ComputeDone("finished"))
    done = InstructionMsg(src=0, dst=me, epoch=1, group=group, done=True,
                          active=())
    cmds = w.on_event(MessageReceived(done))
    assert cmds == (Done("done"),)
    assert w.more_work is False


@pytest.mark.parametrize("members,group", [((0, 1), 0),    # GDDLB shape
                                           ((2, 3), 1)])   # LDDLB shape
def test_distributed_happy_path(table, members, group):
    """Two peers replicate the plan; work flows from loaded to idle."""
    a, b = members
    wa = make_worker(a, members, centralized=False, table=table,
                     ranges=(), group=group)            # finished its block
    wb = make_worker(b, members, centralized=False, table=table,
                     ranges=[(32, 64)], group=group)    # 32 iterations left
    wa.on_event(Start())
    wb.on_event(Start())

    # a finishes first: interrupts b, sends its profile, gathers.
    cmds_a = wa.on_event(ComputeDone("finished"))
    sends = [c.msg for c in all_of(cmds_a, Send)]
    assert [m.tag for m in sends] == [Tag.INTERRUPT, Tag.PROFILE]
    assert all(m.dst == b for m in sends)
    wait = only(cmds_a, AwaitMessage)
    assert wait.tags == (Tag.PROFILE,) and wait.srcs == (b,)

    # b stops at an iteration boundary and profiles back.
    cmds_b = wb.on_event(ComputeDone("interrupted"))
    profile_b = only(cmds_b, Send).msg
    assert profile_b.tag is Tag.PROFILE and profile_b.dst == a

    # Deliver the profiles; both compute the same plan.
    cmds_a = wa.on_event(MessageReceived(profile_b))
    profile_a = [m for m in sends if m.tag is Tag.PROFILE][0]
    cmds_b = wb.on_event(MessageReceived(profile_a))
    plan_a = only(cmds_a, RecordSync).plan
    plan_b = only(cmds_b, RecordSync).plan
    assert plan_a.transfers == plan_b.transfers
    (transfer,) = plan_a.transfers
    assert (transfer.src, transfer.dst) == (b, a)
    assert transfer.work == pytest.approx(0.16)
    assert isinstance(only(cmds_a, Charge), Charge)

    # b ships the tail half; a waits for exactly that parcel.
    work = only(cmds_b, Send).msg
    assert work.tag is Tag.WORK and work.dst == a
    assert work.ranges == ((48, 64),)
    assert cmds_b[-1] == StartCompute() and wb.epoch == 1
    wait = only(cmds_a, AwaitMessage)
    assert wait.tags == (Tag.WORK,) and wait.epoch == 0

    cmds_a = wa.on_event(MessageReceived(work))
    assert cmds_a == (StartCompute(),)
    assert wa.epoch == 1 and wa.assignment.count == 16


def test_static_baseline_stops_after_block(table):
    w = make_worker(0, (0, 1), centralized=False, table=table,
                    ranges=[(0, 32)], is_dlb=False)
    assert w.on_event(Start()) == (StartCompute(),)
    assert w.on_event(ComputeDone("finished")) == (Done("done"),)


def test_lone_distributed_node_terminates(table):
    w = make_worker(3, (3,), centralized=False, table=table,
                    ranges=[(0, 8)], group=1)
    w.on_event(Start())
    assert w.on_event(ComputeDone("finished")) == (Done("lone"),)


def test_retire_path(table):
    """A retiring node ships everything and exits with Done('retired')."""
    w = make_worker(1, (0, 1), centralized=True, table=table,
                    ranges=[(60, 64)])
    w.on_event(Start())
    w.on_event(ComputeDone("interrupted"))
    instr = InstructionMsg(
        src=0, dst=1, epoch=0,
        outgoing=(TransferOrder(src=1, dst=0, work=4 * COST),),
        retire=True, active=(0,))
    cmds = w.on_event(MessageReceived(instr))
    work = only(cmds, Send).msg
    assert work.ranges == ((60, 64),)      # ship-all on retirement
    assert cmds[-1] == Done("retired")
    assert w.more_work is False and w.assignment.empty


# ---------------------------------------------------------------------------
# Crash recovery (hardened protocol as pure transitions)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("members,group", [((0, 1, 2), 0),   # GCDLB shape
                                           ((2, 3), 1)])     # LCDLB shape
def test_centralized_lost_instruction_recovery(table, members, group):
    """Timeouts re-send the profile with backoff; exhaustion raises."""
    me = members[-1]
    w = make_worker(me, members, centralized=True, table=table,
                    ranges=[(0, 8)], ft=FT, group=group)
    w.on_event(Start())
    cmds = w.on_event(ComputeDone("finished"))
    wait = only(cmds, AwaitMessage)
    assert wait.timeout == pytest.approx(FT.timeout_for(0))

    for attempt in range(1, FT.max_retries + 1):
        cmds = w.on_event(TimerFired())
        resent = only(cmds, Send).msg
        assert resent.tag is Tag.PROFILE and resent.dst == 0
        wait = only(cmds, AwaitMessage)
        assert wait.timeout == pytest.approx(FT.timeout_for(attempt))

    with pytest.raises(ProtocolRetryExhausted):
        w.on_event(TimerFired())  # the master is assumed reliable


@pytest.mark.parametrize("members,group", [((0, 1, 2), 0),   # GDDLB shape
                                           ((2, 3, 4), 1)])  # LDDLB shape
def test_distributed_silent_peer_declared_dead(table, members, group):
    """Gather probes a silent peer, then plans over the survivors."""
    me, alive_peer, silent = members
    w = make_worker(me, members, centralized=False, table=table,
                    ranges=[(0, 16)], ft=FT, group=group)
    w.on_event(Start())
    cmds = w.on_event(ComputeDone("finished"))
    assert only(cmds, AwaitMessage).srcs == tuple(sorted((alive_peer,
                                                          silent)))

    alive = ProfileMsg(src=alive_peer, dst=me, epoch=0, group=group,
                       remaining_work=16 * COST, remaining_count=16,
                       rate=1.0)
    w.on_event(MessageReceived(alive))

    # Two probe rounds against the silent peer...
    for _ in range(FT.max_retries):
        cmds = w.on_event(TimerFired())
        probe = only(cmds, Send).msg
        assert isinstance(probe, ControlMsg) and probe.dst == silent
        assert probe.kind == "resend-profile"
    # ...then the declaration, and a plan over the survivors.
    cmds = w.on_event(TimerFired())
    assert only(cmds, DeclareDead).peer == silent
    assert silent not in w.active
    plan = only(cmds, RecordSync).plan
    assert silent not in plan.active
    assert cmds[-1] in (StartCompute(),) or isinstance(cmds[-1],
                                                       AwaitMessage)


def test_distributed_stale_profile_is_liveness_evidence(table):
    """A stale profile resets the sender's probe budget (it is alive,
    just stuck in an older epoch) without contributing plan data."""
    w = make_worker(0, (0, 1), centralized=False, table=table,
                    ranges=[(0, 16)], ft=FT)
    w.on_event(Start())
    # Reach epoch 1 via a first no-op sync round.
    w.on_event(ComputeDone("finished"))
    fresh = ProfileMsg(src=1, dst=0, epoch=0, remaining_work=16 * COST,
                       remaining_count=16, rate=1.0)
    w.on_event(MessageReceived(fresh))
    assert w.epoch == 1

    w.on_event(ComputeDone("finished"))
    w.on_event(TimerFired())               # probe round 1
    stale = ProfileMsg(src=1, dst=0, epoch=0, remaining_work=0,
                       remaining_count=0, rate=1.0)
    w.on_event(MessageReceived(stale))     # resets rounds to 0
    for _ in range(FT.max_retries):        # full budget again
        cmds = w.on_event(TimerFired())
        assert not all_of(cmds, DeclareDead)
    cmds = w.on_event(TimerFired())
    assert only(cmds, DeclareDead).peer == 1


def test_recv_work_timeout_and_no_work_reply(table):
    """A missing parcel is re-requested; a 'no-work' control releases
    the waiter (plan divergence under partial failure)."""
    w = make_worker(1, (0, 1), centralized=True, table=table,
                    ranges=[(8, 16)], ft=FT)
    w.on_event(Start())
    w.on_event(ComputeDone("interrupted"))
    instr = InstructionMsg(src=0, dst=1, epoch=0, incoming=1,
                           incoming_srcs=(0,), active=(0, 1))
    cmds = w.on_event(MessageReceived(instr))
    wait = only(cmds, AwaitMessage)
    assert wait.tags == (Tag.WORK, Tag.CONTROL) and wait.srcs == (0,)

    cmds = w.on_event(TimerFired())
    nudge = only(cmds, Send).msg
    assert isinstance(nudge, ControlMsg) and nudge.kind == "resend-work"

    release = ControlMsg(src=0, dst=1, epoch=0, kind="no-work")
    cmds = w.on_event(MessageReceived(release))
    assert cmds[-1] == StartCompute() and w.epoch == 1


def test_instruction_grant_absorbs_orphans(table):
    """Orphaned ranges granted by the balancer join the assignment
    before the plan applies."""
    w = make_worker(1, (0, 1), centralized=True, table=table,
                    ranges=[(8, 16)], ft=FT)
    w.on_event(Start())
    w.on_event(ComputeDone("interrupted"))
    instr = InstructionMsg(src=0, dst=1, epoch=0, grant=((48, 56),),
                           active=(0, 1))
    cmds = w.on_event(MessageReceived(instr))
    assert w.assignment.count == 16       # 8 own + 8 granted
    assert cmds[-1] == StartCompute()
