"""Event-for-event seed identity of the optimized DES engine.

The engine/mailbox/network hot-path optimizations (slotted event queue,
O(1) mailbox delivery, callback-driven message carries, shared-medium
routing fast path) are pure *mechanical* speedups: they must not change
a single simulated timestamp, sync decision, executed range, or message
count on any seeded run.  These tests pin that claim with SHA-256
fingerprints over the complete observable trace of representative runs
— the four paper strategies, the customized selector, work stealing,
diffusion on graph topologies, periodic sync, and a faulted run with
crashes and message drops — captured from the pre-optimization kernel.

If one of these digests ever changes, the engine's event ordering
changed: that is a correctness regression, not a tuning choice.  Fix
the engine; do not re-pin the digest without understanding exactly why
every downstream oracle (tests/protocol/test_cross_backend.py,
tests/protocol/test_topology_seed_identity.py) still holds.
"""

import hashlib
import json

import pytest

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    MessageDelayFault,
    MessageDropFault,
)
from repro.runtime.options import RunOptions


def _fingerprint(stats) -> str:
    """Canonical SHA-256 over every deterministic field of a run."""
    doc = {
        "strategy": stats.strategy,
        "n": stats.n_processors,
        "k": stats.group_size,
        "duration": repr(stats.duration),
        "syncs": [
            [repr(s.time), s.group, s.epoch, s.reason, repr(s.moved_work),
             s.n_transfers, list(s.retired), repr(s.predicted_current),
             repr(s.predicted_balanced)]
            for s in stats.syncs
        ],
        "executed": {str(n): sorted(map(list, r))
                     for n, r in sorted(stats.executed_by_node.items())},
        "finish": {str(n): repr(t)
                   for n, t in sorted(stats.node_finish_times.items())},
        "msgs": dict(sorted(stats.messages_by_tag.items())),
        "net": [stats.network_messages, stats.network_bytes],
        "selected": stats.selected_scheme,
        "faults": [list(stats.crashed_nodes), list(stats.fenced_nodes),
                   list(stats.declared_dead), stats.dropped_messages,
                   stats.delayed_messages, stats.fault_retries,
                   stats.reclaimed_iterations, stats.salvaged_iterations],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _cluster(n=8):
    return ClusterSpec.homogeneous(n, max_load=3, persistence=1.0, seed=7)


def _loop():
    return mxm_loop(MxmConfig(64, 32, 32), op_seconds=4e-7)


_FAULT_PLAN = FaultPlan(
    seed=11,
    crashes=(CrashFault(node=3, time=0.05),),
    drops=(MessageDropFault(src=1, dst=2, max_drops=2,
                            window=(0.0, 0.2)),),
    delays=(MessageDelayFault(extra_seconds=0.01, src=4, dst=5,
                              max_delays=3, window=(0.0, 0.3)),),
)

# SHA-256 fingerprints captured from the pre-optimization DES kernel
# (commit 697a927).  See module docstring before ever editing these.
EXPECTED = {
    "CUSTOM": "84d5db3cd672f5cd364b2c0252b3f0b493a0a1ef5a1bf41de955ca8d940f836c",
    "GCDLB": "c921a704e34804d70dda8202a24dcdab9f8d21e8faf32f447561b08b2a391e69",
    "GDDLB": "3d9b9f658de62bdfb56ba012282dc5a23ac9675dc571cd57e454a45551bc51b0",
    "LCDLB": "6df2948713594c86c20f9ed177c2f4afc037d39768f2b7e95a06126b1dcf8049",
    "LDDLB": "f1254afe023ce341c57c4d81c702223c9a8ac5b62a2f4058c866af527f8ae95c",
    "WS": "bc6cad189d3773f675e17d166921e25361a3c17f8da70fe7d22d1b92d51d60f3",
    "diff-ring": "31c1e0f6fbbcdeddf6c89e26e1675c3f5e2e369ab78f68b9553a9bb7f42c13d2",
    "diff-torus": "76d279a7e1bcefa9bd9d4d3d7f373d4893a7fb34bbf25146b326d01a9001cd50",
    "faulted": "24fac2a2fa21b2cbdb712e5c32e71c6f7364633c3f2a8618a06a13f2a4a40fc4",
    "periodic": "f5703bd3173479e1139b927b24b78e12015724b98a5c788bf8a79bf89a26d674",
}


def _run(case: str):
    if case in ("GCDLB", "GDDLB", "LCDLB", "LDDLB", "CUSTOM", "WS"):
        return run_loop(_loop(), _cluster(), case, RunOptions())
    if case == "periodic":
        return run_loop(_loop(), _cluster(), "GDDLB",
                        RunOptions(sync_mode="periodic", sync_period=0.05))
    if case == "diff-ring":
        return run_loop(_loop(), _cluster(16), "DIFF",
                        RunOptions(topology="ring"))
    if case == "diff-torus":
        return run_loop(_loop(), _cluster(16), "DIFF",
                        RunOptions(topology="torus"))
    if case == "faulted":
        return run_loop(_loop(), _cluster(), "GDDLB", RunOptions(),
                        fault_plan=_FAULT_PLAN)
    raise AssertionError(case)


@pytest.mark.parametrize("case", sorted(EXPECTED))
def test_seed_identity(case):
    assert _fingerprint(_run(case)) == EXPECTED[case], (
        f"seeded {case} trace diverged from the pre-optimization oracle")


def test_fingerprint_is_stable_across_runs():
    # The fingerprint itself must be deterministic, or the oracle above
    # could never fail meaningfully.
    assert _fingerprint(_run("GDDLB")) == _fingerprint(_run("GDDLB"))
