"""Property (a): the bus-as-complete-graph reproduces the seed oracle.

``--topology bus`` routes every run through the generalized
:class:`~repro.network.graph.GraphNetwork` (a shared-medium complete
graph) instead of the default-path ``SharedBusNetwork``.  The refactor's
contract is that this is not merely *approximately* the same model but
the same resource-acquisition sequence: every statistic the seed tree
pinned must come out byte-for-byte identical.
"""

from __future__ import annotations

import pytest

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.faults.plan import FaultPlan
from repro.runtime.options import FaultToleranceConfig, RunOptions

from .test_cross_backend import SEED_ORACLE


def _mxm():
    return mxm_loop(MxmConfig(120, 100, 100), op_seconds=4e-7)


def _cluster():
    return ClusterSpec.homogeneous(4, max_load=3, persistence=1.0, seed=7)


@pytest.mark.parametrize("strategy", sorted(SEED_ORACLE))
def test_topology_bus_bit_identical_to_seed(strategy):
    stats = run_loop(_mxm(), _cluster(), strategy,
                     RunOptions(topology="bus"))
    assert (stats.duration, stats.n_syncs, stats.network_messages,
            stats.network_bytes) == SEED_ORACLE[strategy]


@pytest.mark.parametrize("strategy", sorted(SEED_ORACLE))
def test_topology_bus_equals_default_path(strategy):
    """Beyond the pinned tuple: per-node finish times must also match
    the untouched ``topology=None`` construction exactly."""
    default = run_loop(_mxm(), _cluster(), strategy, RunOptions())
    routed = run_loop(_mxm(), _cluster(), strategy,
                      RunOptions(topology="bus"))
    assert routed.node_finish_times == default.node_finish_times
    assert routed.duration == default.duration
    assert routed.network_bytes == default.network_bytes


def test_topology_bus_bit_identical_under_faults():
    """The hardened protocol (retries, reclamation) over the graph
    transport must match the seed's faulted oracle too."""
    options = RunOptions(
        topology="bus",
        fault_tolerance=FaultToleranceConfig(enabled=True))
    stats = run_loop(_mxm(), _cluster(), "GDDLB", options,
                     fault_plan=FaultPlan.single_crash(node=2, time=0.02))
    assert (stats.duration, stats.n_syncs, stats.network_messages,
            stats.fault_retries, stats.reclaimed_iterations,
            stats.salvaged_iterations) == \
        (13.019924666666666, 3, 49, 15, 30, 0)


def test_switched_topology_diverges_from_bus():
    """Sanity guard against a vacuous equivalence: a genuinely switched
    graph (per-link wires, multi-hop routes) must NOT reproduce the bus
    schedule."""
    bus = run_loop(_mxm(), _cluster(), "GDDLB", RunOptions())
    ring = run_loop(_mxm(), _cluster(), "GDDLB",
                    RunOptions(topology="ring"))
    # Multi-hop wire time shifts at least some node's finish time (the
    # run is small, so end-to-end duration may coincide by quantization).
    assert ring.node_finish_times != bus.node_finish_times
