"""Unit and property tests for iteration assignments."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.workload import WorkTable
from repro.runtime.assignment import (
    Assignment,
    equal_block_partition,
    merge_ranges,
)


def test_merge_sorts_and_coalesces():
    assert merge_ranges([(5, 8), (0, 3), (3, 5)]) == [(0, 8)]


def test_merge_keeps_gaps():
    assert merge_ranges([(0, 2), (4, 6)]) == [(0, 2), (4, 6)]


def test_merge_drops_empty():
    assert merge_ranges([(3, 3), (1, 2)]) == [(1, 2)]


def test_merge_rejects_overlap():
    with pytest.raises(ValueError):
        merge_ranges([(0, 3), (2, 5)])


def test_equal_block_partition_covers_all():
    parts = equal_block_partition(10, 3)
    assert [p.count for p in parts] == [4, 3, 3]
    merged = merge_ranges(r for p in parts for r in p.ranges)
    assert merged == [(0, 10)]


def test_equal_block_partition_more_procs_than_iters():
    parts = equal_block_partition(2, 4)
    assert [p.count for p in parts] == [1, 1, 0, 0]


def test_count_and_empty():
    a = Assignment([(0, 4), (6, 8)])
    assert a.count == 6
    assert not a.empty
    assert Assignment().empty


def test_work_uniform():
    table = WorkTable(0.5, 20)
    assert Assignment([(0, 4)]).work(table) == pytest.approx(2.0)


def test_work_non_uniform():
    table = WorkTable(np.array([1.0, 2.0, 3.0, 4.0]))
    assert Assignment([(1, 3)]).work(table) == pytest.approx(5.0)


def test_head_work():
    table = WorkTable(np.array([1.0, 2.0, 3.0, 4.0]))
    a = Assignment([(0, 2), (3, 4)])
    assert a.head_work(table, 0) == 0.0
    assert a.head_work(table, 2) == pytest.approx(3.0)
    assert a.head_work(table, 3) == pytest.approx(7.0)


def test_head_count_for_work_rounds_up():
    table = WorkTable(1.0, 10)
    a = Assignment([(0, 5)])
    assert a.head_count_for_work(table, 0.0) == 0
    assert a.head_count_for_work(table, 0.5) == 1
    assert a.head_count_for_work(table, 2.0) == 2
    assert a.head_count_for_work(table, 2.1) == 3
    assert a.head_count_for_work(table, 99.0) == 5


def test_head_count_spans_ranges():
    table = WorkTable(1.0, 10)
    a = Assignment([(0, 2), (5, 8)])
    assert a.head_count_for_work(table, 3.5) == 4


def test_take_head():
    a = Assignment([(0, 3), (5, 8)])
    taken = a.take_head(4)
    assert taken == [(0, 3), (5, 6)]
    assert a.ranges == [(6, 8)]


def test_take_head_too_many_rejected():
    with pytest.raises(ValueError):
        Assignment([(0, 2)]).take_head(3)


def test_take_tail_count():
    a = Assignment([(0, 3), (5, 8)])
    taken = a.take_tail_count(4)
    assert taken == [(2, 3), (5, 8)]
    assert a.ranges == [(0, 2)]


def test_take_tail_work_rounds_down():
    table = WorkTable(1.0, 10)
    a = Assignment([(0, 6)])
    ranges, count = a.take_tail_work(table, 2.7)
    assert count == 2
    assert ranges == [(4, 6)]
    assert a.count == 4


def test_take_tail_work_keep_one():
    table = WorkTable(1.0, 10)
    a = Assignment([(0, 4)])
    ranges, count = a.take_tail_work(table, 100.0, keep_one=True)
    assert count == 3
    assert a.count == 1


def test_take_tail_work_zero_order():
    table = WorkTable(1.0, 10)
    a = Assignment([(0, 4)])
    ranges, count = a.take_tail_work(table, 0.5)
    assert count == 0 and ranges == []
    assert a.count == 4


def test_take_all():
    a = Assignment([(0, 2), (4, 6)])
    assert a.take_all() == [(0, 2), (4, 6)]
    assert a.empty


def test_add_merges():
    a = Assignment([(0, 2)])
    a.add([(2, 5)])
    assert a.ranges == [(0, 5)]


def test_add_rejects_overlap():
    a = Assignment([(0, 3)])
    with pytest.raises(ValueError):
        a.add([(1, 2)])


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=32))
def test_partition_property(n, p):
    parts = equal_block_partition(n, p)
    assert len(parts) == p
    assert sum(q.count for q in parts) == n
    assert max(q.count for q in parts) - min(q.count for q in parts) <= 1


@given(st.lists(st.integers(min_value=0, max_value=99), min_size=1,
                max_size=30),
       st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=100, deadline=None)
def test_take_tail_work_never_exceeds_order(starts, work):
    """The shipped work never exceeds the ordered amount (round-down)."""
    ranges = merge_ranges({(s, s + 1) for s in starts})
    table = WorkTable(np.linspace(0.5, 1.5, 100))
    a = Assignment(ranges)
    before = a.work(table)
    taken, count = a.take_tail_work(table, work, keep_one=False)
    shipped = sum(table.range_work(s, e) for s, e in taken)
    assert shipped <= work * (1 + 1e-9)
    assert a.work(table) + shipped == pytest.approx(before, rel=1e-9)
    assert sum(e - s for s, e in taken) == count
