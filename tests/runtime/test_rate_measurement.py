"""Tests pinning down the §3.2 performance-metric semantics."""

import pytest

from repro.apps.workload import LoopSpec
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


def test_measured_rates_drive_shares(options):
    """Under a persistent 3:1 effective-speed split, the first
    redistribution's shares reflect the measured rates, so executed
    counts approach the 3:1 capacity ratio."""
    cluster = ClusterSpec(speeds=(1.0, 1.0), persistence=1e9,
                          load_traces=((0,), (2,)))  # speeds 1 vs 1/3
    loop = LoopSpec(name="rate", n_iterations=120, iteration_time=0.01,
                    dc_bytes=50)
    stats = run_loop(loop, cluster, "GDDLB", options=options)
    fast = stats.executed_count(0)
    slow = stats.executed_count(1)
    assert fast + slow == 120
    # Capacity ratio 3:1 -> fast executes ~90.
    assert fast / slow == pytest.approx(3.0, rel=0.25)


def test_rate_window_resets_adapt_to_load_change(options):
    """When the load flips mid-run, windowed rates re-learn it; the
    final distribution tracks the *new* speeds, not the stale ones."""
    # Node 0 fast then slow; node 1 slow then fast (flip at t=0.6).
    cluster = ClusterSpec(speeds=(1.0, 1.0), persistence=0.6,
                          load_traces=((0, 5, 5, 5, 5, 5, 5, 5),
                                       (5, 0, 0, 0, 0, 0, 0, 0)))
    loop = LoopSpec(name="flip", n_iterations=200, iteration_time=0.01,
                    dc_bytes=50)
    stats = run_loop(loop, cluster, "GDDLB", options=options)
    # After the flip node 1 is 6x faster; across the whole run it must
    # have executed well over half the iterations.
    assert stats.executed_count(1) > 110


def test_whole_history_window_slower_to_adapt(options):
    """profile_window_reset=False (the §3.2 'whole past history'
    variant) reacts more sluggishly to a load flip."""
    cluster_spec = dict(speeds=(1.0, 1.0), persistence=0.6,
                        load_traces=((0, 5, 5, 5, 5, 5, 5, 5),
                                     (5, 0, 0, 0, 0, 0, 0, 0)))
    loop = LoopSpec(name="flip2", n_iterations=200, iteration_time=0.01,
                    dc_bytes=50)
    windowed = run_loop(loop, ClusterSpec(**cluster_spec), "GDDLB",
                        options=options)
    history = run_loop(loop, ClusterSpec(**cluster_spec), "GDDLB",
                       options=options.but(profile_window_reset=False))
    # Both finish correctly.
    assert windowed.executed_count(0) + windowed.executed_count(1) == 200
    assert history.executed_count(0) + history.executed_count(1) == 200
    # The windowed variant shifts at least as much work to the node
    # that became fast.
    assert windowed.executed_count(1) >= history.executed_count(1) - 5


def test_rates_ignore_idle_time(options):
    """The finisher's measured rate uses busy time only: despite idling
    while waiting for the sync, it receives a fair share afterwards."""
    cluster = ClusterSpec(speeds=(1.0, 1.0), persistence=1e9,
                          load_traces=((0,), (1,)))
    loop = LoopSpec(name="busy", n_iterations=60, iteration_time=0.01,
                    dc_bytes=50)
    stats = run_loop(loop, cluster, "GDDLB", options=options)
    # Capacity ratio 2:1.
    assert stats.executed_count(0) / stats.executed_count(1) == \
        pytest.approx(2.0, rel=0.3)
