"""Unit tests for session bookkeeping and central balancer internals."""

import pytest

from repro.core.strategies import CUSTOMIZED, GCDLB, GDDLB, LCDLB, LDDLB
from repro.machine.cluster import ClusterSpec
from repro.message.pvm import VirtualMachine
from repro.runtime.balancer import CentralBalancer
from repro.runtime.options import RunOptions
from repro.runtime.session import LoopSession
from repro.simulation import Environment


def make_session(strategy, n=4, options=None, small_loop=None):
    from repro.apps.workload import LoopSpec
    loop = small_loop or LoopSpec(name="s", n_iterations=32,
                                  iteration_time=0.01, dc_bytes=100)
    env = Environment()
    cluster = ClusterSpec.homogeneous(n, max_load=0)
    stations = cluster.build()
    options = options or RunOptions()
    vm = VirtualMachine(env, n, options.network)
    return LoopSession(env, vm, stations, loop, strategy, options)


def test_global_strategy_single_group():
    session = make_session(GDDLB)
    assert session.groups == [[0, 1, 2, 3]]
    assert session.group_of[3] == 0


def test_local_strategy_k_blocks():
    session = make_session(LDDLB, n=8, options=RunOptions(group_size=4))
    assert session.groups == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert session.group_size == 4


def test_default_group_size_two_groups():
    session = make_session(LCDLB, n=6)
    assert len(session.groups) == 2


def test_custom_starts_centralized():
    session = make_session(CUSTOMIZED)
    assert session.centralized
    assert session.groups == [[0, 1, 2, 3]]


def test_apply_selection_switches_strategy():
    session = make_session(CUSTOMIZED)
    session.apply_selection("LD", 2)
    assert session.strategy.code == "LD"
    assert not session.centralized
    assert len(session.groups) == 2
    assert session.stats.selected_scheme == "LDDLB"


def test_apply_selection_idempotent():
    session = make_session(CUSTOMIZED)
    session.apply_selection("GC", 0)
    session.apply_selection("LD", 2)  # ignored
    assert session.strategy.code == "GC"


def test_record_plan_once_per_epoch():
    from repro.core.redistribution import plan_redistribution, SyncProfile
    session = make_session(GDDLB)
    plan = plan_redistribution(
        [SyncProfile(0, 1.0, 10, 1.0), SyncProfile(1, 0.0, 0, 1.0)],
        session.policy, session.mean_iteration_time)
    session.record_plan(0, 0, plan)
    session.record_plan(0, 0, plan)   # replicated balancer, same epoch
    session.record_plan(0, 1, plan)
    assert session.stats.n_syncs == 2


def test_movement_cost_fn_built_when_policy_asks():
    from repro.core.policy import DlbPolicy
    plain = make_session(GDDLB)
    assert plain.movement_cost_fn is None
    costed = make_session(
        GDDLB, options=RunOptions(policy=DlbPolicy(
            include_movement_cost=True)))
    assert costed.movement_cost_fn is not None


def test_balancer_absorbs_and_queues():
    from repro.message.messages import ProfileMsg
    session = make_session(GCDLB)
    balancer = CentralBalancer(session)
    for node in range(3):
        balancer._absorb(ProfileMsg(src=node, dst=0, epoch=0, group=0,
                                    remaining_work=1.0, remaining_count=10,
                                    rate=1.0))
    assert not balancer.ready          # one profile still missing
    balancer._absorb(ProfileMsg(src=3, dst=0, epoch=0, group=0,
                                remaining_work=1.0, remaining_count=10,
                                rate=1.0))
    assert list(balancer.ready) == [0]


def test_balancer_tracks_groups_independently():
    from repro.message.messages import ProfileMsg
    session = make_session(LCDLB, n=4, options=RunOptions(group_size=2))
    balancer = CentralBalancer(session)
    balancer._absorb(ProfileMsg(src=0, dst=0, epoch=0, group=0,
                                remaining_work=1.0, rate=1.0))
    balancer._absorb(ProfileMsg(src=2, dst=0, epoch=0, group=1,
                                remaining_work=1.0, rate=1.0))
    assert not balancer.ready
    balancer._absorb(ProfileMsg(src=3, dst=0, epoch=0, group=1,
                                remaining_work=1.0, rate=1.0))
    assert list(balancer.ready) == [1]


def test_service_wall_time_scaled_by_load():
    session = make_session(GCDLB)
    balancer = CentralBalancer(session)
    # No load: wall time equals work time.
    assert balancer._service_wall_time(0.01) == pytest.approx(0.01)
