"""Tests for run statistics aggregates and option resolution."""

import pytest

from repro.core.strategies import LDDLB
from repro.runtime.options import RunOptions
from repro.runtime.stats import AppRunStats, LoopRunStats, StageRunStats, \
    SyncRecord


def make_stats(**kw):
    defaults = dict(loop_name="l", strategy="GDDLB", n_processors=4,
                    group_size=2)
    defaults.update(kw)
    return LoopRunStats(**defaults)


def test_duration_and_counts():
    stats = make_stats(start_time=1.0, end_time=3.5)
    assert stats.duration == pytest.approx(2.5)
    assert stats.n_syncs == 0
    assert stats.n_redistributions == 0
    assert stats.total_work_moved == 0.0


def test_sync_aggregates():
    stats = make_stats()
    stats.record_sync(SyncRecord(time=1.0, group=0, epoch=0,
                                 reason="moved", moved_work=2.0,
                                 n_transfers=3, retired=()))
    stats.record_sync(SyncRecord(time=2.0, group=0, epoch=1,
                                 reason="unprofitable", moved_work=0.0,
                                 n_transfers=0, retired=(3,)))
    assert stats.n_syncs == 2
    assert stats.n_redistributions == 1
    assert stats.total_work_moved == pytest.approx(2.0)


def test_executed_count():
    stats = make_stats()
    stats.executed_by_node[0] = [(0, 5), (10, 12)]
    assert stats.executed_count(0) == 7
    assert stats.executed_count(1) == 0


def test_app_stats_accessors():
    app = AppRunStats(app_name="a", strategy="GD", n_processors=2)
    loop = make_stats(start_time=0.0, end_time=1.0)
    stage = StageRunStats(stage_name="t", start_time=1.0, end_time=1.5)
    app.stages.extend([loop, stage])
    assert app.total_duration == pytest.approx(1.5)
    assert app.loop_stats == [loop]
    assert app.loop("l") is loop
    with pytest.raises(KeyError):
        app.loop("nope")
    assert "a" in app.summary()


def test_effective_group_size_priority():
    options = RunOptions(group_size=3)
    # Strategy override wins.
    assert options.effective_group_size(8, 2) == 2
    # Option value next.
    assert options.effective_group_size(8, None) == 3
    # Paper default: ceil(P / 2).
    assert RunOptions().effective_group_size(8, None) == 4
    assert RunOptions().effective_group_size(5, None) == 3
    # Capped at P.
    assert RunOptions(group_size=64).effective_group_size(4, None) == 4


def test_options_but_copies():
    a = RunOptions()
    b = a.but(group_size=7)
    assert b.group_size == 7 and a.group_size == 0


def test_strategy_override_flows_to_session(small_loop, quiet_cluster4,
                                            options):
    from repro.runtime.executor import run_loop
    stats = run_loop(small_loop, quiet_cluster4,
                     LDDLB.with_group_size(3), options=options)
    assert stats.group_size == 3
