"""Integration tests for the run-time executor."""

import pytest

from repro.apps.workload import ApplicationSpec, LoopSpec, SequentialStage
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_application, run_loop


ALL_SCHEMES = ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB")


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_every_iteration_executed_exactly_once(scheme, small_loop, cluster4,
                                               options):
    stats = run_loop(small_loop, cluster4, scheme, options=options)
    total = sum(stats.executed_count(i) for i in range(4))
    assert total == small_loop.n_iterations  # coverage also verified inside


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_all_nodes_finish(scheme, small_loop, cluster4, options):
    stats = run_loop(small_loop, cluster4, scheme, options=options)
    assert len(stats.node_finish_times) == 4
    assert all(t is not None and t <= stats.end_time
               for t in stats.node_finish_times.values())


def test_no_dlb_never_syncs(small_loop, cluster4, options):
    stats = run_loop(small_loop, cluster4, "NONE", options=options)
    assert stats.n_syncs == 0
    assert stats.network_messages == 0


def test_dlb_beats_static_under_imbalanced_load(options, small_loop):
    """With one heavily loaded processor, DLB must win clearly."""
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((5,), (0,), (0,), (0,)))
    static = run_loop(small_loop, cluster, "NONE", options=options)
    dlb = run_loop(small_loop, cluster, "GDDLB", options=options)
    assert dlb.duration < 0.6 * static.duration


def test_no_load_near_ideal(quiet_cluster4, small_loop, options):
    """Without external load the equal partition is already balanced;
    DLB overhead must be small."""
    static = run_loop(small_loop, quiet_cluster4, "NONE", options=options)
    dlb = run_loop(small_loop, quiet_cluster4, "GDDLB", options=options)
    assert dlb.duration <= static.duration * 1.15


def test_deterministic_replay(small_loop, cluster4, options):
    a = run_loop(small_loop, cluster4, "LDDLB", options=options)
    b = run_loop(small_loop, cluster4, "LDDLB", options=options)
    assert a.duration == b.duration
    assert a.n_syncs == b.n_syncs
    assert a.executed_by_node == b.executed_by_node


def test_different_seeds_differ(small_loop, cluster4, options):
    a = run_loop(small_loop, cluster4, "GDDLB", options=options)
    b = run_loop(small_loop, cluster4.reseeded(43), "GDDLB", options=options)
    assert a.duration != b.duration


def test_single_processor_requires_no_dlb(small_loop, options):
    single = ClusterSpec.homogeneous(1, max_load=0)
    stats = run_loop(small_loop, single, "NONE", options=options)
    assert stats.executed_count(0) == small_loop.n_iterations
    with pytest.raises(ValueError):
        run_loop(small_loop, single, "GDDLB", options=options)


def test_more_processors_than_iterations(options, cluster8):
    tiny = LoopSpec(name="nano", n_iterations=3, iteration_time=0.05,
                    dc_bytes=100)
    stats = run_loop(tiny, cluster8, "GDDLB", options=options)
    total = sum(stats.executed_count(i) for i in range(8))
    assert total == 3


def test_non_uniform_loop_all_schemes(nonuniform_loop, cluster4, options):
    for scheme in ALL_SCHEMES:
        stats = run_loop(nonuniform_loop, cluster4, scheme, options=options)
        assert sum(stats.executed_count(i) for i in range(4)) == 40


def test_group_size_recorded(small_loop, cluster8, options):
    stats = run_loop(small_loop, cluster8, "LDDLB",
                     options=options.but(group_size=4))
    assert stats.group_size == 4
    groups = {s.group for s in stats.syncs}
    assert groups <= {0, 1}


def test_message_tags_accounted(small_loop, cluster4, options):
    stats = run_loop(small_loop, cluster4, "GCDLB", options=options)
    assert stats.messages_by_tag["profile"] > 0
    assert stats.messages_by_tag["instruction"] > 0
    assert stats.messages_by_tag["work"] >= 0
    # Distributed scheme sends no instructions.
    stats = run_loop(small_loop, cluster4, "GDDLB", options=options)
    assert stats.messages_by_tag["instruction"] == 0


def test_on_execute_callback_sees_everything(small_loop, cluster4, options):
    executed = []
    opts = options.but(on_execute=lambda node, ranges:
                       executed.extend(ranges))
    run_loop(small_loop, cluster4, "GDDLB", options=opts)
    assert sum(e - s for s, e in executed) == small_loop.n_iterations


def test_application_pipeline(cluster4, options, tiny_loop):
    app = ApplicationSpec(
        name="two-phase",
        stages=(tiny_loop,
                SequentialStage(name="mid", compute_seconds=0.1),
                LoopSpec(name="second", n_iterations=12,
                         iteration_time=0.01, dc_bytes=50)))
    stats = run_application(app, cluster4, "LDDLB", options=options)
    assert len(stats.stages) == 3
    assert stats.total_duration > 0.1
    assert stats.loop("tiny").n_processors == 4
    assert "second" == stats.loop_stats[1].loop_name


def test_staging_adds_time(tiny_loop, cluster4, options):
    plain = run_loop(tiny_loop, cluster4, "GDDLB", options=options)
    staged_loop = LoopSpec(name="tiny", n_iterations=16,
                           iteration_time=0.020, dc_bytes=400,
                           input_bytes=4000, result_bytes=4000,
                           replicated_bytes=100_000)
    staged = run_loop(staged_loop, cluster4, "GDDLB",
                      options=options.but(include_staging=True))
    assert staged.duration > plain.duration


def test_summary_mentions_key_numbers(small_loop, cluster4, options):
    stats = run_loop(small_loop, cluster4, "GDDLB", options=options)
    text = stats.summary()
    assert "GDDLB" in text and "syncs=" in text
