"""Unit and property tests for the DLB_array descriptor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.arrays import DlbArray


Z = DlbArray("Z", (400, 800), ("BLOCK", "WHOLE"))
Y = DlbArray("Y", (400, 800), ("WHOLE", "WHOLE"))
C = DlbArray("C", (10, 4), ("CYCLIC", "WHOLE"))


def test_validation():
    with pytest.raises(ValueError):
        DlbArray("bad", (), ())
    with pytest.raises(ValueError):
        DlbArray("bad", (4,), ("BLOCK", "WHOLE"))
    with pytest.raises(ValueError):
        DlbArray("bad", (4, 4), ("BLOCK", "DIAGONAL"))
    with pytest.raises(ValueError):
        DlbArray("bad", (4, 4), ("BLOCK", "CYCLIC"))  # two partitioned
    with pytest.raises(ValueError):
        DlbArray("bad", (0, 4), ("BLOCK", "WHOLE"))


def test_byte_accounting():
    assert Z.total_bytes == 400 * 800 * 8
    assert Z.section_bytes == 800 * 8        # one row
    assert Y.section_bytes == Y.total_bytes  # replicated
    col = DlbArray("V", (400, 800), ("WHOLE", "BLOCK"))
    assert col.section_bytes == 400 * 8      # one column


def test_block_ownership_contiguous():
    arr = DlbArray("A", (10,), ("BLOCK",))
    owners = [arr.owner(i, 3) for i in range(10)]
    # 10 over 3: sizes 4, 3, 3.
    assert owners == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_cyclic_ownership_round_robin():
    owners = [C.owner(i, 3) for i in range(10)]
    assert owners == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]


def test_local_index_block():
    arr = DlbArray("A", (10,), ("BLOCK",))
    assert arr.local_index(0, 3) == 0
    assert arr.local_index(3, 3) == 3
    assert arr.local_index(4, 3) == 0   # first of rank 1's block
    assert arr.local_index(9, 3) == 2


def test_local_index_cyclic():
    assert C.local_index(7, 3) == 2  # rank 1 holds 1, 4, 7


def test_replicated_has_no_owner():
    with pytest.raises(ValueError):
        Y.owner(0, 4)
    with pytest.raises(ValueError):
        Y.owned_indices(0, 4)


def test_scatter_bytes():
    arr = DlbArray("A", (8, 2), ("BLOCK", "WHOLE"))
    assert arr.scatter_bytes(0, 4) == 2 * 2 * 8
    # Replicated arrays go whole to every non-master rank.
    assert Y.scatter_bytes(1, 4) == Y.total_bytes
    assert Y.scatter_bytes(0, 4) == 0


def test_move_bytes():
    assert Z.move_bytes(3) == 3 * 800 * 8
    assert Y.move_bytes(5) == 0
    with pytest.raises(ValueError):
        Z.move_bytes(-1)


def test_index_out_of_range():
    with pytest.raises(IndexError):
        Z.owner(400, 4)


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=17),
       st.sampled_from(["BLOCK", "CYCLIC"]))
@settings(max_examples=120, deadline=None)
def test_ownership_partitions_indices(extent, p, dist):
    """owned_indices over all ranks partitions the index space, and
    owner() agrees with owned_indices()."""
    arr = DlbArray("A", (extent,), (dist,))
    seen = []
    for rank in range(p):
        for idx in arr.owned_indices(rank, p):
            assert arr.owner(idx, p) == rank
            seen.append(idx)
    assert sorted(seen) == list(range(extent))


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=17))
@settings(max_examples=100, deadline=None)
def test_block_sizes_balanced(extent, p):
    arr = DlbArray("A", (extent,), ("BLOCK",))
    sizes = [len(arr.owned_indices(r, p)) for r in range(p)]
    assert sum(sizes) == extent
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(min_value=1, max_value=120),
       st.integers(min_value=1, max_value=9),
       st.sampled_from(["BLOCK", "CYCLIC"]))
@settings(max_examples=100, deadline=None)
def test_local_index_bijective_per_rank(extent, p, dist):
    arr = DlbArray("A", (extent,), (dist,))
    for rank in range(p):
        owned = arr.owned_indices(rank, p)
        locals_ = [arr.local_index(i, p) for i in owned]
        assert locals_ == list(range(len(owned)))
