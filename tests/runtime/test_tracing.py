"""Tests for the execution tracing / utilization reconstruction."""

import pytest

from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.tracing import (
    render_gantt,
    render_sync_timeline,
    utilization_report,
)


@pytest.fixture
def run(small_loop, cluster4, options):
    stations = cluster4.build()
    stats = run_loop(small_loop, cluster4, "GDDLB", options=options)
    return stats, small_loop, stations


def test_utilization_report_counts(run):
    stats, loop, stations = run
    report = utilization_report(stats, loop, stations)
    assert sum(report.executed.values()) == loop.n_iterations
    assert report.duration == pytest.approx(stats.duration)
    assert 0.0 < report.busy_fraction <= 1.0


def test_utilization_busy_bounded_by_wall(run):
    stats, loop, stations = run
    report = utilization_report(stats, loop, stations)
    for node, busy in report.per_node_busy.items():
        assert 0.0 <= busy <= report.per_node_finish[node] + 1e-9


def test_no_load_high_utilization(small_loop, options):
    cluster = ClusterSpec.homogeneous(4, max_load=0)
    stations = cluster.build()
    stats = run_loop(small_loop, cluster, "NONE", options=options)
    report = utilization_report(stats, small_loop, stations)
    assert report.busy_fraction > 0.95


def test_summary_text(run):
    stats, loop, stations = run
    text = utilization_report(stats, loop, stations).summary()
    assert "node 0" in text and "busy" in text


def test_gantt_renders_all_nodes(run):
    stats, loop, stations = run
    chart = render_gantt(stats, loop, stations, width=40)
    assert chart.count("P") >= 4
    assert "#" in chart
    assert "|" in chart  # sync markers


def test_gantt_static_has_no_sync_markers(small_loop, options):
    cluster = ClusterSpec.homogeneous(2, max_load=0)
    stations = cluster.build()
    stats = run_loop(small_loop, cluster, "NONE", options=options)
    chart = render_gantt(stats, small_loop, stations, width=30)
    # Only the frame pipes at the row edges: rows look like |#####|.
    for line in chart.splitlines()[1:3]:
        assert line.count("|") == 2


def test_sync_timeline_lists_records(run):
    stats, _loop, _stations = run
    text = render_sync_timeline(stats)
    assert text.count("t=") == stats.n_syncs


def test_sync_timeline_limit(run):
    stats, _loop, _stations = run
    if stats.n_syncs > 1:
        text = render_sync_timeline(stats, limit=1)
        assert "more" in text
