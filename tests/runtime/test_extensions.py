"""Tests for the extension features: group formation, periodic sync,
speed-proportional partitioning, and work stealing."""

import pytest

from repro.apps.workload import LoopSpec
from repro.machine.cluster import ClusterSpec, build_groups
from repro.runtime.assignment import proportional_block_partition
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


# -- group formation (§3.5 variants) -------------------------------------

def test_build_groups_interleaved():
    assert build_groups(8, 4, formation="interleaved") == \
        [[0, 2, 4, 6], [1, 3, 5, 7]]


def test_build_groups_random_is_seeded_permutation():
    a = build_groups(8, 4, formation="random", seed=3)
    b = build_groups(8, 4, formation="random", seed=3)
    c = build_groups(8, 4, formation="random", seed=4)
    assert a == b
    assert a != c
    flat = sorted(x for g in a for x in g)
    assert flat == list(range(8))


def test_build_groups_unknown_formation():
    with pytest.raises(ValueError):
        build_groups(8, 4, formation="fancy")


def test_group_formation_changes_who_balances_with_whom(options):
    """With load striped across processors, interleaved groups pair a
    loaded processor with an idle one — block groups do not."""
    loop = LoopSpec(name="stripe", n_iterations=64, iteration_time=0.01,
                    dc_bytes=100)
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((5,), (5,), (0,), (0,)))
    block = run_loop(loop, cluster, "LDDLB",
                     options=options.but(group_size=2,
                                         group_formation="block"))
    inter = run_loop(loop, cluster, "LDDLB",
                     options=options.but(group_size=2,
                                         group_formation="interleaved"))
    assert inter.duration < block.duration * 0.8


def test_random_formation_runs_to_coverage(options, cluster8, small_loop):
    stats = run_loop(small_loop, cluster8, "LDDLB",
                     options=options.but(group_formation="random",
                                         group_seed=5))
    assert sum(stats.executed_count(i) for i in range(8)) == 64


# -- speed-proportional initial partition ---------------------------------

def test_proportional_partition_counts():
    parts = proportional_block_partition(100, [2.0, 1.0, 1.0])
    assert [p.count for p in parts] == [50, 25, 25]
    assert parts[0].ranges == [(0, 50)]


def test_proportional_partition_largest_remainder():
    parts = proportional_block_partition(10, [1.0, 1.0, 1.0])
    assert sum(p.count for p in parts) == 10
    assert max(p.count for p in parts) - min(p.count for p in parts) <= 1


def test_proportional_partition_validation():
    with pytest.raises(ValueError):
        proportional_block_partition(10, [])
    with pytest.raises(ValueError):
        proportional_block_partition(10, [1.0, 0.0])


def test_speed_partition_balances_heterogeneous_static(options):
    cluster = ClusterSpec.heterogeneous([2.0, 1.0, 1.0, 0.5], max_load=0)
    loop = LoopSpec(name="het", n_iterations=90, iteration_time=0.01,
                    dc_bytes=100)
    equal = run_loop(loop, cluster, "NONE", options=options)
    speed = run_loop(loop, cluster, "NONE",
                     options=options.but(initial_partition="speed"))
    assert speed.duration < equal.duration * 0.6
    # The ideal is total work / total speed.
    assert speed.duration == pytest.approx(0.9 / 4.5, rel=0.1)


def test_speed_partition_under_dlb_reduces_moves(options):
    cluster = ClusterSpec.heterogeneous([2.0, 1.0, 1.0, 0.5], max_load=0)
    loop = LoopSpec(name="het2", n_iterations=90, iteration_time=0.01,
                    dc_bytes=100)
    equal = run_loop(loop, cluster, "GDDLB", options=options)
    speed = run_loop(loop, cluster, "GDDLB",
                     options=options.but(initial_partition="speed"))
    assert speed.total_work_moved <= equal.total_work_moved


# -- periodic synchronization ----------------------------------------------

def test_periodic_mode_completes_with_coverage(options, cluster4,
                                               small_loop):
    stats = run_loop(small_loop, cluster4, "GDDLB",
                     options=options.but(sync_mode="periodic",
                                         sync_period=0.1))
    assert sum(stats.executed_count(i) for i in range(4)) == 64
    assert stats.n_syncs >= 1


def test_periodic_sync_times_follow_period(options, cluster4):
    loop = LoopSpec(name="per", n_iterations=200, iteration_time=0.01,
                    dc_bytes=100)
    stats = run_loop(loop, cluster4, "GDDLB",
                     options=options.but(sync_mode="periodic",
                                         sync_period=0.3))
    times = [s.time for s in stats.syncs]
    # Syncs happen at roughly multiples of the period (plus boundary
    # rounding and communication).
    assert times[0] == pytest.approx(0.3, abs=0.15)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g > 0.2 for g in gaps)


def test_interrupt_mode_beats_periodic_with_long_period(options, cluster4,
                                                        small_loop):
    """Long periods leave finished processors idle — the §3.1 argument
    for interrupt-based synchronization."""
    interrupt = run_loop(small_loop, cluster4, "GDDLB", options=options)
    periodic = run_loop(small_loop, cluster4, "GDDLB",
                        options=options.but(sync_mode="periodic",
                                            sync_period=1.0))
    assert interrupt.duration <= periodic.duration


def test_periodic_centralized_works(options, cluster8, small_loop):
    stats = run_loop(small_loop, cluster8, "LCDLB",
                     options=options.but(sync_mode="periodic",
                                         sync_period=0.15))
    assert sum(stats.executed_count(i) for i in range(8)) == 64


def test_bad_option_values_rejected():
    with pytest.raises(ValueError):
        RunOptions(sync_mode="sometimes")
    with pytest.raises(ValueError):
        RunOptions(sync_period=0.0)
    with pytest.raises(ValueError):
        RunOptions(group_formation="circular")
    with pytest.raises(ValueError):
        RunOptions(initial_partition="alphabetical")


# -- work stealing -----------------------------------------------------------

def test_work_stealing_coverage(options, cluster4, small_loop):
    stats = run_loop(small_loop, cluster4, "WS", options=options)
    assert sum(stats.executed_count(i) for i in range(4)) == 64


def test_work_stealing_moves_work_to_idle(options):
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((0,), (4,), (4,), (4,)))
    loop = LoopSpec(name="ws", n_iterations=64, iteration_time=0.01,
                    dc_bytes=100)
    stats = run_loop(loop, cluster, "WS", options=options)
    counts = {i: stats.executed_count(i) for i in range(4)}
    assert counts[0] > max(counts[i] for i in (1, 2, 3))
    steals = [s for s in stats.syncs if s.reason == "steal"]
    assert len(steals) >= 1


def test_work_stealing_beats_static_under_load(options):
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((5,), (0,), (0,), (0,)))
    loop = LoopSpec(name="ws2", n_iterations=64, iteration_time=0.01,
                    dc_bytes=100)
    static = run_loop(loop, cluster, "NONE", options=options)
    ws = run_loop(loop, cluster, "WS", options=options)
    assert ws.duration < 0.7 * static.duration


def test_work_stealing_deterministic(options, cluster4, small_loop):
    a = run_loop(small_loop, cluster4, "WS", options=options)
    b = run_loop(small_loop, cluster4, "WS", options=options)
    assert a.duration == b.duration


def test_work_stealing_many_processors(options, small_loop):
    cluster = ClusterSpec.homogeneous(8, max_load=4, persistence=0.3,
                                      seed=31)
    stats = run_loop(small_loop, cluster, "WS", options=options)
    assert sum(stats.executed_count(i) for i in range(8)) == 64


def test_work_stealing_registry():
    from repro.core.strategies import WORK_STEALING, get_strategy
    assert get_strategy("WS") is WORK_STEALING
    assert get_strategy("workstealing") is WORK_STEALING
    assert "stealing" in WORK_STEALING.describe()
