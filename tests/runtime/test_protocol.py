"""Protocol-level tests: sync behavior, retirement, balancer queueing."""

import pytest

from repro.apps.workload import LoopSpec
from repro.core.policy import DlbPolicy
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


def test_receiver_initiated_sync(small_loop, options):
    """The first finisher triggers the first sync: with one fast and
    three slow processors, the first sync comes well before the static
    finish of the slow ones."""
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((0,), (4,), (4,), (4,)))
    stats = run_loop(small_loop, cluster, "GDDLB", options=options)
    # Fast node finishes its block (16 iters x 10 ms) at ~0.16 s.
    assert stats.syncs[0].time == pytest.approx(0.16, rel=0.3)


def test_work_flows_to_fast_node(small_loop, options):
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((0,), (4,), (4,), (4,)))
    stats = run_loop(small_loop, cluster, "GDDLB", options=options)
    counts = {i: stats.executed_count(i) for i in range(4)}
    assert counts[0] > max(counts[i] for i in (1, 2, 3))


def test_local_scheme_keeps_work_in_group(small_loop, options):
    """LDDLB with group {0,1} fast and {2,3} slow: no iteration of the
    second group's initial block may be executed by the first group."""
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((0,), (0,), (5,), (5,)))
    stats = run_loop(small_loop, cluster, "LDDLB",
                     options=options.but(group_size=2))
    # Initial blocks: node2 gets [32,48), node3 [48,64).
    group0_executed = (stats.executed_by_node.get(0, [])
                       + stats.executed_by_node.get(1, []))
    assert all(e <= 32 for _s, e in group0_executed)


def test_global_scheme_crosses_groups(small_loop, options):
    cluster = ClusterSpec(speeds=(1.0,) * 4, persistence=1000.0,
                          load_traces=((0,), (0,), (5,), (5,)))
    stats = run_loop(small_loop, cluster, "GDDLB", options=options)
    group0_executed = (stats.executed_by_node.get(0, [])
                       + stats.executed_by_node.get(1, []))
    assert any(e > 32 for _s, e in group0_executed)


def test_local_groups_sync_independently(small_loop, options, cluster8):
    stats = run_loop(small_loop, cluster8, "LDDLB",
                     options=options.but(group_size=4))
    epochs_by_group = {}
    for s in stats.syncs:
        epochs_by_group.setdefault(s.group, []).append(s.epoch)
    assert len(epochs_by_group) == 2
    for epochs in epochs_by_group.values():
        assert epochs == sorted(epochs)


def test_final_sync_reports_done(small_loop, cluster4, options):
    stats = run_loop(small_loop, cluster4, "GDDLB", options=options)
    assert stats.syncs[-1].reason == "done"


def test_unprofitable_sync_retires_finisher(options):
    """When load is perfectly uniform, syncs near the end should refuse
    to move and retire idle finishers rather than thrash."""
    loop = LoopSpec(name="u", n_iterations=40, iteration_time=0.01,
                    dc_bytes=100)
    cluster = ClusterSpec.homogeneous(4, max_load=0)
    stats = run_loop(loop, cluster, "GDDLB", options=options)
    # Nothing to balance: at most a couple of syncs, no moves.
    assert stats.n_redistributions == 0
    assert stats.n_syncs <= 2


def test_sync_count_bounded(small_loop, cluster8, options):
    """No sync storms: syncs should be at most a few dozen for a small
    loop (regression guard for the sub-iteration livelock)."""
    for scheme in ("GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        stats = run_loop(small_loop, cluster8, scheme, options=options)
        assert stats.n_syncs <= 40, scheme


def test_centralized_uses_instruction_messages(small_loop, cluster4,
                                               options):
    gc = run_loop(small_loop, cluster4, "GCDLB", options=options)
    gd = run_loop(small_loop, cluster4, "GDDLB", options=options)
    assert gc.messages_by_tag["instruction"] > 0
    # Distributed profiles broadcast: many more profile messages.
    assert gd.messages_by_tag["profile"] > gc.messages_by_tag["profile"]


def test_lcdlb_single_balancer_serves_all_groups(small_loop, cluster8,
                                                 options):
    stats = run_loop(small_loop, cluster8, "LCDLB",
                     options=options.but(group_size=4))
    served_groups = {s.group for s in stats.syncs}
    assert served_groups == {0, 1}


def test_include_movement_cost_reduces_moves(options, cluster4):
    loop = LoopSpec(name="heavy-dc", n_iterations=48, iteration_time=0.01,
                    dc_bytes=200_000)  # expensive rows
    base = run_loop(loop, cluster4, "GDDLB", options=options)
    incl = run_loop(loop, cluster4, "GDDLB", options=options.but(
        policy=DlbPolicy(include_movement_cost=True)))
    assert incl.n_redistributions <= base.n_redistributions


def test_profile_window_no_reset_variant(small_loop, cluster4, options):
    """The whole-history metric variant also completes correctly."""
    stats = run_loop(small_loop, cluster4, "GDDLB",
                     options=options.but(profile_window_reset=False))
    assert sum(stats.executed_count(i) for i in range(4)) == 64


def test_retirement_recorded_in_sync_trace(options):
    """A drastically slow node should eventually be retired or drained."""
    cluster = ClusterSpec(speeds=(1.0, 1.0, 1.0, 0.02), persistence=1000.0,
                          load_traces=((0,), (0,), (0,), (5,)))
    loop = LoopSpec(name="drain", n_iterations=64, iteration_time=0.01,
                    dc_bytes=100)
    stats = run_loop(loop, cluster, "GDDLB", options=options)
    assert stats.executed_count(3) < 16  # its initial block migrated away
