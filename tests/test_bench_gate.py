"""Unit tests for tools/bench_gate.py (loaded by file path — tools/ is
deliberately not a package)."""

from __future__ import annotations

import importlib.util
import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "tools" / "bench_gate.py")
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


def _process_doc(wall: float, speedup: float, cpus: int = 4) -> dict:
    return {"best_speedup": speedup, "cpu_count": cpus,
            "strategies": {"GCDLB": {"process_wall_seconds": wall}}}


def _backend_doc(wall: float, virtual: float = 0.1) -> dict:
    return {"cpu_count": 4,
            "strategies": {"GCDLB": {"thread_wall_seconds": wall,
                                     "sim_virtual_duration": virtual}}}


def _topology_doc(seconds: float) -> dict:
    return {"cpu_count": 4, "topologies": {"ring": {"GD": seconds}}}


def _scale_doc(virtual: float = 1.0, wall: float = 2.0,
               speedup: float = 2.0, cpus: int = 4) -> dict:
    return {"cpu_count": cpus, "best_speedup_at_4": speedup,
            "des": {"bus-P1024-LCDLB": {"virtual_duration": virtual,
                                        "wall_seconds": wall}}}


def _obs_doc(virtual: float = 1.0, wall: float = 2.0) -> dict:
    return {"cpu_count": 4,
            "des": {"virtual_duration_off": virtual,
                    "virtual_duration_on": virtual,
                    "wall_seconds_off": wall, "wall_seconds_on": wall},
            "thread": {"wall_seconds_off": wall}}


def _write(directory, process=None, backend=None, topology=None,
           scale=None, obs=None):
    if process is not None:
        if topology is None:
            topology = _topology_doc(1.0)  # benign: every gated doc present
        if scale is None:
            scale = _scale_doc()
        if obs is None:
            obs = _obs_doc()
    if process is not None:
        (directory / "BENCH_process.json").write_text(json.dumps(process))
    if backend is not None:
        (directory / "BENCH_backend.json").write_text(json.dumps(backend))
    if topology is not None:
        (directory / "BENCH_topology.json").write_text(json.dumps(topology))
    if scale is not None:
        (directory / "BENCH_scale.json").write_text(json.dumps(scale))
    if obs is not None:
        (directory / "BENCH_obs.json").write_text(json.dumps(obs))


def _run(base, fresh, threshold=0.25, mode="all"):
    return bench_gate.main(["--baseline-dir", str(base),
                            "--fresh-dir", str(fresh),
                            "--threshold", str(threshold),
                            "--mode", mode])


def test_resolve_fans_out_wildcards():
    doc = {"strategies": {"A": {"w": 1.5}, "B": {"w": 2.5, "skip": "text"}}}
    assert bench_gate.resolve(doc, "strategies.*.w") == {
        "strategies.A.w": 1.5, "strategies.B.w": 2.5}
    assert bench_gate.resolve(doc, "strategies.B.skip") == {}
    assert bench_gate.resolve(doc, "missing.path") == {}


def test_within_threshold_passes(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0))
    _write(fresh, _process_doc(1.2, 1.8), _backend_doc(0.9))
    assert _run(base, fresh) == 0


def test_slower_wall_time_fails(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0))
    _write(fresh, _process_doc(1.4, 2.0), _backend_doc(1.0))
    assert _run(base, fresh) == 1


def test_lower_speedup_fails(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0))
    _write(fresh, _process_doc(1.0, 1.2), _backend_doc(1.0))
    assert _run(base, fresh) == 1
    assert "best_speedup regressed" in capsys.readouterr().err


def test_missing_baseline_is_tolerated(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(fresh, _process_doc(1.0, 2.0), _backend_doc(1.0))
    assert _run(base, fresh) == 0
    assert "no baseline" in capsys.readouterr().out


def test_missing_fresh_results_fail(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0))
    assert _run(base, fresh) == 1
    assert "fresh results missing" in capsys.readouterr().err


def test_custom_threshold(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0))
    _write(fresh, _process_doc(1.4, 2.0), _backend_doc(1.0))
    assert _run(base, fresh, threshold=0.5) == 0


def test_topology_virtual_seconds_gated(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0),
           _topology_doc(0.25))
    _write(fresh, _process_doc(1.0, 2.0), _backend_doc(1.0),
           _topology_doc(0.40))
    assert _run(base, fresh) == 1
    assert "topologies.ring.GD regressed" in capsys.readouterr().err


def test_deterministic_mode_ignores_wall_regressions(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    # Wall time 4x worse and speedup collapsed — but every virtual
    # duration identical: the deterministic (blocking) mode passes.
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0),
           scale=_scale_doc(wall=2.0, speedup=2.0))
    _write(fresh, _process_doc(4.0, 0.5), _backend_doc(4.0),
           scale=_scale_doc(wall=8.0, speedup=0.5))
    assert _run(base, fresh, mode="deterministic") == 0
    assert _run(base, fresh, mode="wall") == 1


def test_deterministic_mode_is_tight(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    # A 2% drift in a virtual duration is a model change, not noise —
    # far below the 25% wall threshold, but the blocking mode trips.
    _write(base, _process_doc(1.0, 2.0), _backend_doc(1.0),
           scale=_scale_doc(virtual=1.0))
    _write(fresh, _process_doc(1.0, 2.0), _backend_doc(1.0),
           scale=_scale_doc(virtual=1.02))
    assert _run(base, fresh, mode="deterministic") == 1
    assert "virtual_duration regressed" in capsys.readouterr().err


def test_speedup_skipped_on_smaller_runner(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    # Baseline recorded on 4 cores; fresh runner has 1.  The collapsed
    # speedups must be skipped loudly, not failed (and not silently
    # passed: the annotation is printed).
    _write(base, _process_doc(1.0, 2.0, cpus=4), _backend_doc(1.0),
           scale=_scale_doc(speedup=2.0, cpus=4))
    _write(fresh, _process_doc(1.0, 0.6, cpus=1), _backend_doc(1.0),
           scale=_scale_doc(speedup=0.6, cpus=1))
    assert _run(base, fresh) == 0
    out = capsys.readouterr().out
    assert "::warning" in out
    assert "speedup comparison skipped" in out


def test_speedup_enforced_when_cores_match(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir(), fresh.mkdir()
    _write(base, _process_doc(1.0, 2.0, cpus=4), _backend_doc(1.0),
           scale=_scale_doc(speedup=2.0, cpus=4))
    _write(fresh, _process_doc(1.0, 0.6, cpus=4), _backend_doc(1.0),
           scale=_scale_doc(speedup=0.6, cpus=4))
    assert _run(base, fresh) == 1
