"""CLI smoke tests: argument wiring for every execution backend.

These are deliberately shallow — the strategies and backends have their
own suites — but they run the *real* ``main(argv)`` entry point so CI
catches the breakage unit tests cannot: renamed flags, bad defaults,
handler-table typos, backend routing mistakes.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SMALL_RUN = ["run", "--size", "48x16x16", "-P", "4", "--seed", "1"]


def test_run_backend_sim(capsys):
    assert main(SMALL_RUN + ["--strategy", "GCDLB"]) == 0
    out = capsys.readouterr().out
    assert "mxm [GCDLB]" in out
    assert "backend=" not in out  # sim is the unadorned default


def test_run_backend_thread(capsys):
    assert main(SMALL_RUN + ["--strategy", "GDDLB", "--backend", "thread",
                             "--time-scale", "0.1"]) == 0
    assert "backend=thread" in capsys.readouterr().out


def test_run_backend_process(capsys):
    assert main(SMALL_RUN + ["--strategy", "LDDLB", "--backend", "process",
                             "--time-scale", "0.1"]) == 0
    assert "backend=process" in capsys.readouterr().out


def test_run_backend_socket(capsys):
    assert main(SMALL_RUN + ["--strategy", "GCDLB", "--backend", "socket",
                             "--time-scale", "0.1"]) == 0
    assert "backend=socket" in capsys.readouterr().out


def test_run_backend_process_with_crash(capsys):
    assert main(SMALL_RUN + ["--strategy", "GCDLB", "--backend", "process",
                             "--time-scale", "0.1",
                             "--crash", "1:0.001"]) == 0
    out = capsys.readouterr().out
    assert "backend=process" in out
    assert "crashed=[1]" in out


def test_run_rejects_simulation_only_on_real_backends(capsys):
    # CUSTOM consults the simulated load model: the real backends
    # refuse (exit 2 + diagnostic), they do not silently degrade.
    for backend in ("thread", "process", "socket"):
        code = main(SMALL_RUN + ["--strategy", "CUSTOM",
                                 "--backend", backend,
                                 "--time-scale", "0.1"])
        assert code == 2
        assert "backend error" in capsys.readouterr().err


def test_run_rejects_multiloop_app_on_real_backends(capsys):
    for backend in ("thread", "process", "socket"):
        code = main(["run", "--app", "trfd", "--n", "4",
                     "--backend", backend])
        assert code == 2
        assert "single-loop apps only" in capsys.readouterr().err


def test_run_bad_size_exits_2(capsys):
    assert main(["run", "--size", "not-a-size"]) == 2
    assert "bad --size" in capsys.readouterr().err


def test_run_bad_crash_flag_exits_2(capsys):
    assert main(SMALL_RUN + ["--crash", "zero:way"]) == 2
    assert "bad fault flag" in capsys.readouterr().err


def test_start_method_flag_parses():
    args = build_parser().parse_args(
        SMALL_RUN + ["--backend", "process", "--start-method", "spawn"])
    assert args.start_method == "spawn"
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            SMALL_RUN + ["--start-method", "threads-please"])


def test_unknown_backend_choice_exits():
    with pytest.raises(SystemExit):
        build_parser().parse_args(SMALL_RUN + ["--backend", "mpi"])


def test_balancer_worker_flags_parse():
    args = build_parser().parse_args(
        ["balancer", "-P", "3", "--strategy", "LDDLB", "--port", "7171"])
    assert (args.processors, args.strategy, args.port) == (3, "LDDLB", 7171)
    args = build_parser().parse_args(
        ["worker", "--port", "7171", "--leave-after", "20"])
    assert (args.host, args.port, args.leave_after) == \
        ("127.0.0.1", 7171, 20)


def test_faults_demo(capsys):
    assert main(["faults-demo", "--victim", "1", "-P", "3",
                 "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "fault-injection demo" in out
    assert "LDDLB" in out


def test_faults_demo_bad_victim_exits_2(capsys):
    assert main(["faults-demo", "--victim", "0"]) == 2
    assert "reliable master" in capsys.readouterr().err


# -- kernel flag ---------------------------------------------------------

def test_run_kernel_numpy_thread(capsys):
    pytest.importorskip("numpy")
    assert main(SMALL_RUN + ["--strategy", "GCDLB", "--backend", "thread",
                             "--time-scale", "0.1",
                             "--kernel", "numpy"]) == 0
    assert "backend=thread" in capsys.readouterr().out


def test_run_kernel_numpy_process(capsys):
    pytest.importorskip("numpy")
    assert main(SMALL_RUN + ["--strategy", "GDDLB", "--backend", "process",
                             "--time-scale", "0.1",
                             "--kernel", "numpy"]) == 0
    assert "backend=process" in capsys.readouterr().out


def test_run_kernel_ops_thread(capsys):
    assert main(SMALL_RUN + ["--strategy", "GCDLB", "--backend", "thread",
                             "--time-scale", "0.1",
                             "--kernel", "ops"]) == 0
    assert "backend=thread" in capsys.readouterr().out


def test_run_kernel_rejected_without_real_backend(capsys):
    # Both the sim default and the socket backend refuse the flag: a
    # CPU-burn kernel is meaningless there and must not silently no-op.
    assert main(SMALL_RUN + ["--kernel", "numpy"]) == 2
    assert "thread and process backends only" in capsys.readouterr().err
    assert main(SMALL_RUN + ["--backend", "socket", "--time-scale", "0.1",
                             "--kernel", "ops"]) == 2
    assert "thread and process backends only" in capsys.readouterr().err


def test_run_kernel_wall_rejected_on_process(capsys):
    assert main(SMALL_RUN + ["--backend", "process", "--time-scale", "0.1",
                             "--kernel", "wall"]) == 2
    assert "backend error" in capsys.readouterr().err


def test_unknown_kernel_choice_exits():
    with pytest.raises(SystemExit):
        build_parser().parse_args(SMALL_RUN + ["--kernel", "cuda"])


# -- topology flag -------------------------------------------------------

def test_run_topology_sim(capsys):
    assert main(SMALL_RUN + ["--strategy", "GDDLB",
                             "--topology", "ring"]) == 0
    out = capsys.readouterr().out
    assert "mxm [GDDLB]" in out
    assert "topology=ring" in out


def test_run_topology_diffusion_sim(capsys):
    assert main(SMALL_RUN + ["--strategy", "DIFF",
                             "--topology", "torus"]) == 0
    out = capsys.readouterr().out
    assert "mxm [Diffusion]" in out
    assert "topology=torus" in out


def test_run_topology_thread(capsys):
    assert main(SMALL_RUN + ["--strategy", "DIFF", "--topology", "mesh",
                             "--backend", "thread",
                             "--time-scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "backend=thread" in out
    assert "topology=mesh" in out


def test_run_topology_custom_selection(capsys):
    # CUSTOM on a graph considers DIFF as a candidate; the run must
    # complete and report whichever scheme the model picked.
    assert main(SMALL_RUN + ["--strategy", "CUSTOM",
                             "--topology", "ring"]) == 0
    assert "topology=ring" in capsys.readouterr().out


def test_run_topology_file(tmp_path, capsys):
    import json

    path = tmp_path / "net.json"
    path.write_text(json.dumps({
        "n_hosts": 4, "edges": [[0, 1], [1, 2], [2, 3], [0, 3]]}))
    assert main(SMALL_RUN + ["--strategy", "GDDLB",
                             "--topology", f"file:{path}"]) == 0
    assert "topology=file:" in capsys.readouterr().out


def test_run_bad_topology_exits_2(capsys):
    assert main(SMALL_RUN + ["--topology", "hypercube"]) == 2
    assert "bad --topology" in capsys.readouterr().err


def test_run_topology_rejected_on_flat_transports(capsys):
    # The process/socket transports are flat meshes: graph topologies
    # (and DIFF) must refuse loudly, not silently fall back to the bus.
    for backend in ("process", "socket"):
        code = main(SMALL_RUN + ["--strategy", "GDDLB",
                                 "--topology", "ring",
                                 "--backend", backend,
                                 "--time-scale", "0.1"])
        assert code == 2
        assert "backend error" in capsys.readouterr().err


def test_characterize_topology_and_probe(capsys):
    assert main(["characterize", "--max-procs", "6",
                 "--topology", "ring", "--probe",
                 "--probe-seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "NX" in out  # neighbor-exchange fit only exists on graphs
    assert "probe" in out


# -- version flag --------------------------------------------------------

def test_version_flag_exits_0(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert capsys.readouterr().out.startswith("repro ")


# -- tracing -------------------------------------------------------------

def test_run_trace_writes_perfetto_loadable_json(tmp_path, capsys):
    import json

    path = tmp_path / "out.trace.json"
    assert main(SMALL_RUN + ["--strategy", "GDDLB",
                             "--trace", str(path)]) == 0
    assert f"-> {path}" in capsys.readouterr().out
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"compute", "sync"} <= names


def test_run_trace_ndjson_extension_streams_lines(tmp_path, capsys):
    import json

    path = tmp_path / "out.ndjson"
    assert main(SMALL_RUN + ["--strategy", "GCDLB", "--backend", "thread",
                             "--time-scale", "0.1",
                             "--trace", str(path)]) == 0
    assert "trace:" in capsys.readouterr().out
    lines = path.read_text().strip().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)


def test_trace_subcommand_renders_summary(tmp_path, capsys):
    path = tmp_path / "out.trace.json"
    assert main(SMALL_RUN + ["--trace", str(path)]) == 0
    capsys.readouterr()
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    assert "node0" in out


def test_trace_subcommand_missing_file_exits_2(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "absent.json")]) == 2
    assert "cannot read" in capsys.readouterr().err
