"""Backend overhead: the same fixed MXM loop on both backends.

The simulated backend charges virtual seconds and finishes in
microseconds of wall time; the thread backend actually burns the CPU,
so its wall time is dominated by the (scaled) compute itself.  The
interesting number is the thread backend's *coordination overhead*:
wall time beyond the unloaded perfectly-parallel ideal,
``total_work * time_scale / n_workers``.  (An earlier revision derived
it from the *simulated* duration instead — but the simulation charges
the paper's external-load model, which real threads never experience,
so a well-balanced thread run could finish faster than the loaded sim
critical path and the "overhead" went negative.)  Results land in
``BENCH_backend.json`` next to the repo root for trend tracking.
"""

import json
import os
import pathlib
import time

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.backend import ThreadBackend
from repro.runtime.options import RunOptions

#: Small enough to keep the CI wall-clock modest, large enough that the
#: thread backend syncs a few times per strategy.
CONFIG = MxmConfig(96, 48, 48)
TIME_SCALE = 0.25
STRATEGIES = ("GCDLB", "GDDLB", "LCDLB", "LDDLB")

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_backend.json"


def _loop():
    return mxm_loop(CONFIG, op_seconds=4e-7)


def _cluster():
    return ClusterSpec.homogeneous(4, max_load=3, persistence=1.0, seed=7)


def _run_both():
    table = _loop().work_table()
    n_workers = _cluster().n_processors
    # The unloaded ideal: every worker computes its equal share of the
    # (scaled) total work with zero idle/sync time.  Real wall time can
    # only exceed it, so the derived overhead is non-negative by
    # construction (modulo clock noise on sub-ms runs).
    ideal = table.total_work * TIME_SCALE / n_workers
    doc = {"config": f"mxm {CONFIG.r}x{CONFIG.c}x{CONFIG.r2}",
           "time_scale": TIME_SCALE, "cpu_count": os.cpu_count(),
           "ideal_parallel_seconds": ideal, "strategies": {}}
    for strategy in STRATEGIES:
        t0 = time.perf_counter()
        sim = run_loop(_loop(), _cluster(), strategy, RunOptions())
        sim_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        thr = run_loop(_loop(), _cluster(), strategy, RunOptions(),
                       backend=ThreadBackend(time_scale=TIME_SCALE))
        thr_wall = time.perf_counter() - t0

        doc["strategies"][strategy] = {
            "sim_wall_seconds": sim_wall,
            "sim_virtual_duration": sim.duration,
            "sim_syncs": sim.n_syncs,
            "thread_wall_seconds": thr_wall,
            "thread_duration": thr.duration,
            "thread_syncs": thr.n_syncs,
            # Wall time past the unloaded parallel ideal: scheduling +
            # queue + sync + imbalance overhead of the real backend.
            "thread_overhead_seconds": max(0.0, thr.duration - ideal),
        }
    return doc


def test_bench_backend_overhead(benchmark):
    doc = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    print()
    for strategy, row in doc["strategies"].items():
        print(f"  {strategy}: sim {row['sim_wall_seconds']*1e3:7.2f} ms wall "
              f"({row['sim_virtual_duration']:.4f} virtual s), "
              f"thread {row['thread_wall_seconds']:7.3f} s wall "
              f"({row['thread_syncs']} syncs)")
        # Both backends balanced the same loop; the thread backend's
        # wall clock should be within an order of magnitude of the
        # scaled virtual duration (generous: CI machines vary).
        assert row["thread_duration"] > 0
        assert row["thread_syncs"] >= 1
        assert row["thread_overhead_seconds"] >= 0

    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True))
    benchmark.extra_info["strategies"] = doc["strategies"]
