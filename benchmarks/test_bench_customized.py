"""The paper's central pitch: customization pays.

For a grid of (application, processor count) settings, run the hybrid
§4.3 customized strategy and every fixed strategy over the same load
realizations.  The customized runs should track the per-setting best
fixed strategy (low *regret*) while no single fixed strategy does.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.trfd import TrfdConfig, trfd_loop1
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


FIXED = ("GC", "GD", "LC", "LD")


def test_bench_customization_regret(benchmark, bench_config):
    settings = [
        ("mxm/P4", mxm_loop(MxmConfig(400, 400, 400),
                            op_seconds=bench_config.mxm_op_seconds), 4),
        ("mxm/P8", mxm_loop(MxmConfig(800, 400, 400),
                            op_seconds=bench_config.mxm_op_seconds), 8),
        ("trfd-L1/P4", trfd_loop1(TrfdConfig(30),
                                  op_seconds=bench_config.trfd_op_seconds),
         4),
        ("trfd-L1/P16", trfd_loop1(TrfdConfig(40),
                                   op_seconds=bench_config.trfd_op_seconds),
         16),
    ]

    def run_grid():
        rows = {}
        for label, loop, p in settings:
            opts = RunOptions(group_size=bench_config.group_size(p))
            means = {}
            for scheme in FIXED + ("CUSTOM",):
                times = []
                for seed in bench_config.seeds:
                    cluster = ClusterSpec.homogeneous(
                        p, max_load=bench_config.max_load,
                        persistence=bench_config.persistence, seed=seed)
                    times.append(run_loop(loop, cluster, scheme,
                                          options=opts).duration)
                means[scheme] = float(np.mean(times))
            best_fixed = min(means[s] for s in FIXED)
            rows[label] = {
                "means": means,
                "best_fixed": best_fixed,
                "regret": means["CUSTOM"] / best_fixed,
                "worst_ratio": max(means[s] for s in FIXED) / best_fixed,
            }
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    print("\ncustomization regret (CUSTOM time / best fixed time):")
    for label, row in rows.items():
        fixed_txt = ", ".join(f"{s}={row['means'][s]:.2f}" for s in FIXED)
        print(f"  {label:>12s}: regret={row['regret']:.3f} "
              f"(worst fixed {row['worst_ratio']:.3f}x) [{fixed_txt}, "
              f"CUSTOM={row['means']['CUSTOM']:.2f}]")

    regrets = [row["regret"] for row in rows.values()]
    # Customization pays one selection sync but must stay close to the
    # per-setting best — and never as bad as the worst fixed choice.
    assert float(np.mean(regrets)) < 1.10
    for label, row in rows.items():
        assert row["regret"] < row["worst_ratio"] + 0.05, label

    benchmark.extra_info["rows"] = {
        label: {"regret": row["regret"], "worst": row["worst_ratio"]}
        for label, row in rows.items()}
