"""Ablation: duration of persistence t_l (§4.1).

Small t_l is a rapidly changing load (measurements go stale before they
can be exploited); large t_l is stable load (one good redistribution
lasts).  DLB's advantage over static scheduling should grow with t_l.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


LOOP = mxm_loop(MxmConfig(240, 200, 200), op_seconds=4e-7)


def test_bench_persistence_sweep(benchmark, bench_config):
    persistences = (0.5, 2.0, 5.0, 20.0)

    def sweep():
        out = {}
        for tl in persistences:
            ratios = []
            for seed in bench_config.seeds:
                cluster = ClusterSpec.homogeneous(4, max_load=5,
                                                  persistence=tl, seed=seed)
                static = run_loop(LOOP, cluster, "NONE").duration
                dlb = run_loop(LOOP, cluster, "GDDLB").duration
                ratios.append(dlb / static)
            out[tl] = float(np.mean(ratios))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\npersistence sweep: GDDLB time / static time (lower = DLB wins):")
    for tl, r in results.items():
        print(f"  t_l={tl:5.1f}s: {r:6.3f}")

    # Stable load must be clearly exploitable; rapidly changing load
    # much less so.
    assert results[20.0] < results[0.5]
    assert results[20.0] < 0.9
    benchmark.extra_info["sweep"] = {str(k): v for k, v in results.items()}
