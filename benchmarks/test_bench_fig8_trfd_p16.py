"""Figure 8: TRFD normalized execution time, P = 16."""

from repro.experiments.figures import figure8
from repro.experiments.report import render_figure


def test_bench_figure8(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: figure8(bench_config), rounds=1, iterations=1)
    print()
    print(render_figure(result))

    means = {s: sum(r.normalized[s] for r in result.rows)
             / len(result.rows) for s in ("GC", "GD", "LC", "LD")}
    for row in result.rows:
        n = row.normalized
        assert max(n["GC"], n["GD"], n["LC"], n["LD"]) < 1.0
        # LD is the winner or within noise of it in every row...
        assert n["LD"] <= min(n["GC"], n["GD"], n["LC"]) * 1.03
    # ... and strictly the best on average — the paper's P=16 claim.
    assert means["LD"] == min(means.values())
    # Distributed beats centralized within each scope on average.
    assert means["GD"] <= means["GC"] * 1.02
    assert means["LD"] <= means["LC"] * 1.02

    benchmark.extra_info["rows"] = {
        row.label: row.normalized for row in result.rows}
    benchmark.extra_info["means"] = means
