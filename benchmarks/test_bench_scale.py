"""Large-P DES sweeps and the multi-core speedup matrix.

Two halves, one document (``BENCH_scale.json``):

* **des** — seeded simulations at P=64..1024 on bus/ring/torus using the
  *local* schemes (LCDLB/LDDLB with bounded group size) plus diffusion
  at moderate P.  Global schemes broadcast P×(P-1) termination
  interrupts, so they are inherently quadratic — exactly the paper's §6
  argument for local/customized strategies at scale; the sweep runs the
  strategies that are *supposed* to scale.  Each case records the
  deterministic simulated duration (gated strictly — it only moves when
  the model changes) and the wall-clock time the optimized engine took
  (advisory; shared runners are noisy).  The P=1024 bus case carries
  the acceptance budget: under 10 s of wall time.
* **matrix** — the same fixed real workload run at 2/4/8 workers on the
  thread and process backends under the wall, ops, and numpy kernels.
  All kernels burn the same *nominal seconds of work* per iteration
  (each is separately calibrated), so wall times compare across cells:
  ``thread/ops`` is the GIL-serialized baseline, ``process/ops`` shows
  multi-core speedup from real processes, ``thread/numpy`` shows the
  GIL released inside vectorized passes, and ``process/numpy`` computes
  in place on the shared-memory rows.  The >= 1.5x speedup assertion at
  4 workers arms only when ``os.cpu_count()`` provides the cores.
"""

import json
import os
import pathlib
import time

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.workload import LoopSpec
from repro.backend import ProcessBackend, ThreadBackend
from repro.runtime.options import RunOptions

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_scale.json"

#: name -> (P, strategy, topology, group_size).  Local schemes with a
#: bounded group keep sync traffic O(P*k); DIFF is global-scope (its
#: planning state is replicated all-to-all) so it stays at moderate P.
DES_CASES = {
    "bus-P64-LCDLB": (64, "LCDLB", None, 32),
    "bus-P256-LCDLB": (256, "LCDLB", None, 32),
    "bus-P1024-LCDLB": (1024, "LCDLB", None, 32),
    "ring-P256-LDDLB": (256, "LDDLB", "ring", 16),
    "torus-P256-LCDLB": (256, "LCDLB", "torus", 32),
    "torus-P64-DIFF": (64, "DIFF", "torus", 0),
}

#: Acceptance budget for the flagship case (ISSUE 8): a seeded P=1024
#: bus sweep must finish in seconds, not minutes.
P1024_CASE = "bus-P1024-LCDLB"
P1024_BUDGET_SECONDS = float(os.environ.get("REPRO_SCALE_BUDGET", "10"))

WORKER_COUNTS = (2, 4, 8)
MATRIX_STRATEGY = "GCDLB"

#: (backend, kernel) cells; the wall kernel is thread-only (process
#: workers always burn real CPU work).
MATRIX_CELLS = (
    ("thread", "wall"),
    ("thread", "ops"),
    ("thread", "numpy"),
    ("process", "ops"),
    ("process", "numpy"),
)

#: Per-worker slice of the matrix workload: enough iterations that the
#: balancer syncs, short enough that a full 3x5 matrix stays CI-sized.
ITERS_PER_WORKER = 16
ITERATION_SECONDS = 0.01
DC_BYTES = 1024  # 127 float64s of row payload for the numpy kernel


def _des_sweep():
    cases = {}
    for name, (p, strategy, topology, k) in DES_CASES.items():
        loop = mxm_loop(MxmConfig(64, 32, 32), op_seconds=4e-7)
        cluster = ClusterSpec.homogeneous(p, max_load=3,
                                          persistence=1.0, seed=7)
        options = RunOptions(topology=topology, group_size=k)
        t0 = time.perf_counter()
        stats = run_loop(loop, cluster, strategy, options)
        wall = time.perf_counter() - t0
        cases[name] = {
            "n_processors": p,
            "strategy": strategy,
            "virtual_duration": stats.duration,
            "wall_seconds": wall,
            "syncs": stats.n_syncs,
            "messages": stats.network_messages,
        }
    return cases


def _matrix_loop(workers: int) -> LoopSpec:
    return LoopSpec(name=f"scale-{workers}w",
                    n_iterations=ITERS_PER_WORKER * workers,
                    iteration_time=ITERATION_SECONDS, dc_bytes=DC_BYTES)


def _backend(backend: str, kernel: str):
    if backend == "thread":
        return ThreadBackend(kernel=kernel)
    return ProcessBackend(kernel=kernel)


def _speedup_matrix():
    matrix = {}
    for workers in WORKER_COUNTS:
        loop = _matrix_loop(workers)
        cluster = ClusterSpec.homogeneous(workers, max_load=3,
                                          persistence=1.0, seed=7)
        row = {}
        for backend, kernel in MATRIX_CELLS:
            t0 = time.perf_counter()
            stats = run_loop(loop, cluster, MATRIX_STRATEGY, RunOptions(),
                             backend=_backend(backend, kernel))
            wall = time.perf_counter() - t0
            executed = sum(stats.executed_count(n)
                           for n in stats.executed_by_node)
            assert executed == loop.n_iterations
            row[f"{backend}_{kernel}_wall_seconds"] = wall
        matrix[str(workers)] = row
    return matrix


def _speedups(matrix):
    """Wall-clock ratios against the GIL-serialized thread/ops cell."""
    out = {}
    for workers, row in matrix.items():
        serial = row["thread_ops_wall_seconds"]
        out[workers] = {
            # Real processes on real cores vs GIL-serialized threads.
            "process_ops": serial / row["process_ops_wall_seconds"],
            # Same, with the compute vectorized into the shm rows.
            "process_numpy": serial / row["process_numpy_wall_seconds"],
            # Threads overlapping because numpy releases the GIL.
            "thread_numpy": serial / row["thread_numpy_wall_seconds"],
        }
    return out


def test_bench_scale(benchmark):
    def run():
        doc = {
            "cpu_count": os.cpu_count(),
            "workload": f"mxm 64x32x32 (des) / "
                        f"{ITERS_PER_WORKER}x{ITERATION_SECONDS}s "
                        f"per worker (matrix)",
            "des": _des_sweep(),
            "matrix": _speedup_matrix(),
        }
        doc["speedup"] = _speedups(doc["matrix"])
        doc["best_speedup_at_4"] = max(doc["speedup"]["4"].values())
        return doc

    doc = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for name, row in doc["des"].items():
        print(f"  des {name}: {row['wall_seconds']:6.2f} s wall, "
              f"{row['virtual_duration']:.4f} virtual s, "
              f"{row['messages']} msgs")
    for workers, ratios in doc["speedup"].items():
        cells = ", ".join(f"{k} {v:.2f}x" for k, v in sorted(ratios.items()))
        print(f"  matrix {workers}w: {cells}")

    p1024_wall = doc["des"][P1024_CASE]["wall_seconds"]
    assert p1024_wall < P1024_BUDGET_SECONDS, (
        f"P=1024 bus sweep took {p1024_wall:.1f}s "
        f"(budget {P1024_BUDGET_SECONDS}s)")

    cpus = doc["cpu_count"] or 1
    if cpus >= 4:
        # Acceptance: real multi-core speedup at 4 workers.  On fewer
        # cores the physics caps every ratio near 1x; the recorded
        # numbers still track trends (the bench gate skips the speedup
        # comparison on such runners — see tools/bench_gate.py).
        assert doc["best_speedup_at_4"] >= 1.5, doc["speedup"]
    else:
        print(f"  [speedup assertion skipped: {cpus} CPU(s) < 4]")

    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    benchmark.extra_info["best_speedup_at_4"] = doc["best_speedup_at_4"]
    benchmark.extra_info["p1024_wall_seconds"] = p1024_wall
