"""Figure 5: MXM normalized execution time, P = 4."""

from repro.experiments.figures import figure5
from repro.experiments.report import render_figure


def test_bench_figure5(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: figure5(bench_config), rounds=1, iterations=1)
    print()
    print(render_figure(result))

    for row in result.rows:
        n = row.normalized
        # Every DLB scheme beats no-DLB...
        assert max(n["GC"], n["GD"], n["LC"], n["LD"]) < 1.0
        # ... the globals beat the locals on MXM/P=4 ...
        assert max(n["GC"], n["GD"]) < min(n["LC"], n["LD"])
        # ... and distributed edges out centralized.
        assert n["GD"] <= n["GC"] * 1.02
        assert n["LD"] <= n["LC"] * 1.02

    benchmark.extra_info["rows"] = {
        row.label: row.normalized for row in result.rows}
