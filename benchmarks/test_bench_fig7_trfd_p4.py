"""Figure 7: TRFD normalized execution time, P = 4."""

from repro.experiments.figures import figure7
from repro.experiments.report import render_figure


def test_bench_figure7(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: figure7(bench_config), rounds=1, iterations=1)
    print()
    print(render_figure(result))

    for row in result.rows:
        n = row.normalized
        # DLB helps at P=4 for every data size.
        assert max(n["GC"], n["GD"], n["LC"], n["LD"]) < 1.0
        # Distributed beats centralized within each scope.
        assert n["GD"] <= n["GC"] * 1.02
        assert n["LD"] <= n["LC"] * 1.02

    benchmark.extra_info["rows"] = {
        row.label: row.normalized for row in result.rows}
