"""Topology benchmark: strategies across network graphs.

Runs the :func:`repro.experiments.sweeps.topology_sweep` matrix — the
eq.-3 global/local direct schemes plus diffusion on bus, ring, mesh and
torus — and lands the per-cell mean simulated durations in
``BENCH_topology.json`` for the regression gate.  The gated metrics are
*virtual* (simulated) seconds: deterministic given the seeds, so any
gate trip is a genuine model/protocol change, not runner noise.
"""

import json
import os
import pathlib
import time

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.experiments.sweeps import topology_sweep

CONFIG = MxmConfig(120, 100, 100)
N_PROCESSORS = 8
TOPOLOGIES = ("bus", "ring", "mesh", "torus")
SCHEMES = ("GD", "LD", "DIFF")

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_topology.json"


def _run(bench_config):
    loop = mxm_loop(CONFIG, op_seconds=4e-7)
    t0 = time.perf_counter()
    result = topology_sweep(loop, N_PROCESSORS, topologies=TOPOLOGIES,
                            schemes=SCHEMES, config=bench_config)
    wall = time.perf_counter() - t0
    doc = {
        "config": f"mxm {CONFIG.r}x{CONFIG.c}x{CONFIG.r2}",
        "n_processors": N_PROCESSORS,
        "cpu_count": os.cpu_count(),
        "seeds": bench_config.n_seeds,
        "wall_seconds": wall,
        "topologies": {
            p.label: {s: p.means[s] for s in SCHEMES}
            for p in result.points
        },
    }
    return doc, result


def test_bench_topology(benchmark, bench_config):
    doc, result = benchmark.pedantic(
        lambda: _run(bench_config), rounds=1, iterations=1)

    print()
    print("  " + result.render().replace("\n", "\n  "))
    for topology, row in doc["topologies"].items():
        # Simulated durations: positive and finite for every cell.
        assert all(v > 0 for v in row.values()), (topology, row)
    # Diffusion's transfers are single-hop by construction, so its cost
    # penalty relative to the winning direct scheme must stay bounded
    # on every graph (a factor regression here means the planner or the
    # transport charging broke).
    for topology, row in doc["topologies"].items():
        best_direct = min(row["GD"], row["LD"])
        assert row["DIFF"] < 10 * best_direct, (topology, row)

    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {OUT_PATH.name} ({doc['wall_seconds']:.1f}s sweep)")
