"""Cross-model comparison: §2.2 task-queue schedulers vs. interrupt DLB.

On a network of workstations every central-queue grab costs a message
round trip; the paper's receiver-initiated DLB synchronizes only when a
processor actually runs dry.  This bench runs both families under the
same external load.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.network.parameters import PAPER_LATENCY_S
from repro.runtime.executor import run_loop
from repro.schedulers import ALL_POLICIES, run_affinity, run_task_queue


LOOP = mxm_loop(MxmConfig(240, 200, 200), op_seconds=4e-7)
ROUND_TRIP = 2 * PAPER_LATENCY_S


def test_bench_scheduler_families(benchmark, bench_config):
    def compare():
        out = {}
        clusters = [ClusterSpec.homogeneous(
            4, max_load=5, persistence=bench_config.persistence, seed=s)
            for s in bench_config.seeds]
        for policy in ALL_POLICIES():
            times = [run_task_queue(LOOP, c, policy,
                                    access_cost=ROUND_TRIP).finish_time
                     for c in clusters]
            out[f"queue/{policy.name}"] = float(np.mean(times))
        times = [run_affinity(LOOP, c, access_cost=50e-6,
                              steal_cost=ROUND_TRIP).finish_time
                 for c in clusters]
        out["queue/affinity"] = float(np.mean(times))
        for scheme in ("NONE", "GCDLB", "GDDLB", "LCDLB", "LDDLB"):
            times = [run_loop(LOOP, c, scheme).duration for c in clusters]
            out[f"dlb/{scheme}"] = float(np.mean(times))
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nscheduler family comparison (mean seconds, lower better):")
    for name, t in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<28s} {t:7.3f}s")

    # Both dynamic families beat their static counterparts.
    assert results["dlb/GDDLB"] < results["dlb/NONE"]
    assert results["queue/gss"] < results["queue/static"]
    # Self-scheduling pays one round trip per iteration: on a NOW it
    # must lose to the DLB schemes.
    assert results["queue/self-scheduling"] > results["dlb/GDDLB"]
    benchmark.extra_info["results"] = results
