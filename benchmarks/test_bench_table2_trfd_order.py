"""Table 2: TRFD per-loop actual vs. model-predicted strategy order."""

from repro.experiments.report import render_table
from repro.experiments.tables import table2


def test_bench_table2(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: table2(bench_config), rounds=1, iterations=1)
    print()
    print(render_table(result))

    assert len(result.rows) == 12
    # The paper calls its TRFD predictions "reasonably accurate" — its
    # own Table 2 contains several order mismatches.  Require clearly
    # better-than-chance pairwise agreement.
    assert result.mean_agreement >= 0.55

    benchmark.extra_info["mean_agreement"] = result.mean_agreement
    benchmark.extra_info["best_match_rate"] = result.best_match_rate
    benchmark.extra_info["rows"] = {
        r.label: {"actual": r.actual, "predicted": r.predicted}
        for r in result.rows}
