"""Ablation: bitonic scheduling of TRFD's triangular loop 2 (§6.3).

The transform pairs iteration ``j`` with ``M - j + 1`` so every
scheduled iteration costs roughly the same.  Without it the equal
*count* initial partition is badly work-imbalanced from the start.
"""

import numpy as np

from repro.apps.trfd import TrfdConfig, trfd_loop2
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


def test_bench_bitonic_transform(benchmark, bench_config):
    cfg = TrfdConfig(30)
    with_transform = trfd_loop2(cfg, op_seconds=3e-7, bitonic=True)
    without = trfd_loop2(cfg, op_seconds=3e-7, bitonic=False)

    def compare():
        out = {"bitonic": [], "raw": []}
        for seed in bench_config.seeds:
            cluster = ClusterSpec.homogeneous(
                4, max_load=5, persistence=bench_config.persistence,
                seed=seed)
            out["bitonic"].append(
                run_loop(with_transform, cluster, "GDDLB").duration)
            out["raw"].append(run_loop(without, cluster, "GDDLB").duration)
        results = {k: float(np.mean(v)) for k, v in out.items()}
        # The static-schedule comparison is run on *dedicated* machines:
        # there the work imbalance of the raw triangle is the only
        # effect, with no load noise on top.
        quiet = ClusterSpec.homogeneous(4, max_load=0)
        results["bitonic-static-dedicated"] = run_loop(
            with_transform, quiet, "NONE").duration
        results["raw-static-dedicated"] = run_loop(
            without, quiet, "NONE").duration
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nbitonic transform ablation (TRFD loop 2, N=30, mean seconds):")
    for label, t in results.items():
        print(f"  {label:>26s}: {t:7.3f}s")

    # Identical total work in both variants.
    np.testing.assert_allclose(with_transform.total_work,
                               without.total_work, rtol=1e-9)
    # On dedicated machines the transform's only effect is evening out
    # the triangle: the static schedule must improve (the paper's
    # motivation for bitonic scheduling); under DLB it must not hurt.
    assert results["bitonic-static-dedicated"] < \
        results["raw-static-dedicated"]
    assert results["bitonic"] <= results["raw"] * 1.1
    benchmark.extra_info["results"] = results
