"""Shared configuration for the benchmark harness.

Every paper table and figure has one module here.  Benches run the full
multi-seed experiment once (``benchmark.pedantic`` with a single round
— these are macro-benchmarks of the reproduction harness, not
micro-benchmarks), print the same rows/series the paper reports, and
attach the structured results to ``benchmark.extra_info``.

Seed count per data point defaults to 5 here (10 in the library's
default config); override with ``REPRO_SEEDS``.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    seeds = int(os.environ.get("REPRO_SEEDS", "5"))
    return ExperimentConfig(n_seeds=max(1, seeds))
