"""Thread-vs-process speedup on a genuinely CPU-bound workload.

The honest comparison needs the **ops** kernel on both sides: each
iteration is a calibrated number of floating-point operations, so four
GIL-sharing threads must serialize ~4 seconds-of-work into ~4 wall
seconds while four processes on four cores overlap it — the paper's
Figures 5–8 speedup story, reproduced on whatever multi-core host runs
this.  (The default *wall* kernel would hide the effect: threads
spinning to wall deadlines overlap "for free".)

Results land in ``BENCH_process.json`` at the repo root; the committed
copy is the baseline ``tools/bench_gate.py`` compares fresh runs
against.  The ≥1.5x speedup acceptance assertion only arms on hosts
with at least 4 CPUs — on fewer cores the physics caps the ratio near
1x and the recorded numbers are still useful for trend tracking.
"""

import json
import os
import pathlib
import time

from repro import ClusterSpec, run_loop
from repro.apps.workload import LoopSpec
from repro.backend import ProcessBackend, ThreadBackend
from repro.backend.kernels import calibrate_ops_rate
from repro.runtime.options import RunOptions

N_WORKERS = 4
STRATEGIES = ("GCDLB", "LDDLB")

#: ~1.3 s of nominal single-CPU work: long enough that compute
#: dominates process startup (~10 ms/worker), short enough for CI.
LOOP = LoopSpec(name="cpu-burn", n_iterations=128, iteration_time=0.01,
                dc_bytes=128)

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_process.json"


def _cluster():
    return ClusterSpec.homogeneous(N_WORKERS, max_load=3,
                                   persistence=1.0, seed=7)


def _run_both():
    # One calibration prices both backends' iterations identically.
    rate = calibrate_ops_rate()
    doc = {"workload": f"{LOOP.n_iterations}x{LOOP.iteration_time}s "
                       f"uniform, {N_WORKERS} workers",
           "cpu_count": os.cpu_count(), "ops_rate": rate,
           "strategies": {}}
    for strategy in STRATEGIES:
        t0 = time.perf_counter()
        thr = run_loop(LOOP, _cluster(), strategy, RunOptions(),
                       backend=ThreadBackend(kernel="ops"))
        thread_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        prc = run_loop(LOOP, _cluster(), strategy, RunOptions(),
                       backend=ProcessBackend())
        process_wall = time.perf_counter() - t0

        for stats in (thr, prc):
            executed = sum(stats.executed_count(n)
                           for n in stats.executed_by_node)
            assert executed == LOOP.n_iterations

        doc["strategies"][strategy] = {
            "thread_wall_seconds": thread_wall,
            "process_wall_seconds": process_wall,
            "speedup": thread_wall / process_wall,
            "thread_syncs": thr.n_syncs,
            "process_syncs": prc.n_syncs,
            "process_payload_bytes": prc.transport_payload_bytes,
            "process_shm_bytes": prc.shm_data_bytes,
        }
    doc["best_speedup"] = max(row["speedup"]
                              for row in doc["strategies"].values())
    return doc


def test_bench_process_speedup(benchmark):
    doc = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    print()
    for strategy, row in doc["strategies"].items():
        print(f"  {strategy}: thread {row['thread_wall_seconds']:6.2f} s, "
              f"process {row['process_wall_seconds']:6.2f} s "
              f"-> {row['speedup']:.2f}x "
              f"({doc['cpu_count']} CPUs)")
        assert row["thread_wall_seconds"] > 0
        assert row["process_wall_seconds"] > 0

    if (os.cpu_count() or 1) >= N_WORKERS:
        # The acceptance bar: on a host with a core per worker, real
        # processes must beat GIL-serialized threads by >= 1.5x.
        assert doc["best_speedup"] >= 1.5, doc
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True))
    benchmark.extra_info["process_speedup"] = doc["best_speedup"]
