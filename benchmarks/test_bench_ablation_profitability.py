"""Ablation: the profitability analysis thresholds (§3.3–§3.4).

Sweeps the 10% improvement threshold and toggles whether the estimated
work-movement cost is included in the predicted time.  The paper argues
for 10% and for *excluding* the movement cost (inaccurate estimates
cancel useful moves and idle the requesting processor).
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.core.policy import DlbPolicy
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


LOOP = mxm_loop(MxmConfig(200, 200, 200), op_seconds=4e-7)


def _mean_time(policy: DlbPolicy, config, scheme="GDDLB") -> float:
    times = []
    for seed in config.seeds:
        cluster = ClusterSpec.homogeneous(4, max_load=5,
                                          persistence=config.persistence,
                                          seed=seed)
        stats = run_loop(LOOP, cluster, scheme,
                         options=RunOptions(policy=policy))
        times.append(stats.duration)
    return float(np.mean(times))


def test_bench_improvement_threshold_sweep(benchmark, bench_config):
    thresholds = (0.0, 0.05, 0.10, 0.25, 0.5)

    def sweep():
        return {thr: _mean_time(DlbPolicy(improvement_threshold=thr),
                                bench_config)
                for thr in thresholds}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nimprovement threshold sweep (GDDLB, mean seconds):")
    for thr, t in results.items():
        print(f"  threshold={thr:4.2f}: {t:7.3f}s")

    # An absurdly conservative threshold must hurt: it blocks nearly
    # every redistribution, approaching static behaviour.
    assert results[0.5] >= results[0.10] * 0.98
    benchmark.extra_info["sweep"] = {str(k): v for k, v in results.items()}


def test_bench_movement_cost_inclusion(benchmark, bench_config):
    def compare():
        return {
            "excluded (paper)": _mean_time(
                DlbPolicy(include_movement_cost=False), bench_config),
            "included": _mean_time(
                DlbPolicy(include_movement_cost=True), bench_config),
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nmovement-cost-in-profitability ablation (GDDLB):")
    for label, t in results.items():
        print(f"  {label:>18s}: {t:7.3f}s")

    # §3.4: excluding the movement cost should not be worse.
    assert results["excluded (paper)"] <= results["included"] * 1.05
    benchmark.extra_info["results"] = results
