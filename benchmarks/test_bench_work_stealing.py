"""Extension bench: Phish-style work stealing vs. the paper's schemes.

Work stealing has no synchronization points: idle processors pull work
from random victims.  It avoids the global sync cost but makes small,
uninformed moves (half a random victim's queue) where the paper's
schemes make one informed redistribution.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop


LOOP = mxm_loop(MxmConfig(240, 200, 200), op_seconds=4e-7)


def test_bench_work_stealing(benchmark, bench_config):
    def compare():
        clusters = [ClusterSpec.homogeneous(
            4, max_load=5, persistence=bench_config.persistence, seed=s)
            for s in bench_config.seeds]
        out = {}
        for scheme in ("NONE", "WS", "GDDLB", "LDDLB"):
            out[scheme] = float(np.mean(
                [run_loop(LOOP, c, scheme).duration for c in clusters]))
        steals = [sum(1 for r in run_loop(LOOP, c, "WS").syncs
                      if r.reason == "steal") for c in clusters[:2]]
        out["steals/run"] = float(np.mean(steals))
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nwork stealing vs DLB (mean seconds):")
    for label, t in results.items():
        print(f"  {label:>10s}: {t:7.3f}")

    # Stealing clearly beats static and is in the same league as the
    # synchronized schemes.
    assert results["WS"] < results["NONE"]
    assert results["WS"] < results["GDDLB"] * 1.3
    assert results["steals/run"] >= 1
    benchmark.extra_info["results"] = results
