"""Extension bench: processor heterogeneity (paper §1 and refs [3,4,25]).

The paper's motivation includes heterogeneous processors; its DLB
schemes handle speed differences through the same measured-rate
mechanism as external load.  This bench runs a 2:1:1:0.5 cluster and
compares the static equal partition, the static speed-proportional
partition, and dynamic balancing with and without the better start.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


LOOP = mxm_loop(MxmConfig(240, 200, 200), op_seconds=4e-7)
SPEEDS = (2.0, 1.0, 1.0, 0.5)


def test_bench_heterogeneous_cluster(benchmark, bench_config):
    def compare():
        out: dict[str, float] = {}
        clusters = [ClusterSpec.heterogeneous(
            SPEEDS, max_load=5, persistence=bench_config.persistence,
            seed=s) for s in bench_config.seeds]
        variants = {
            "static/equal": ("NONE", "equal"),
            "static/speed": ("NONE", "speed"),
            "dlb/equal-start": ("GDDLB", "equal"),
            "dlb/speed-start": ("GDDLB", "speed"),
        }
        for label, (scheme, partition) in variants.items():
            opts = RunOptions(initial_partition=partition)
            out[label] = float(np.mean(
                [run_loop(LOOP, c, scheme, options=opts).duration
                 for c in clusters]))
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nheterogeneous cluster (speeds 2:1:1:0.5, mean seconds):")
    for label, t in results.items():
        print(f"  {label:>18s}: {t:7.3f}s")

    # Speed-aware static beats naive static; DLB beats both statics;
    # a speed-aware start does not hurt DLB.
    assert results["static/speed"] < results["static/equal"]
    assert results["dlb/equal-start"] < results["static/equal"]
    assert results["dlb/speed-start"] <= results["dlb/equal-start"] * 1.05
    benchmark.extra_info["results"] = results
