"""Observability overhead: the zero-cost gate for structured tracing.

One document (``BENCH_obs.json``), three claims:

* **Zero perturbation** — a seeded P=512 DES sweep records *identical*
  virtual durations with tracing off and on.  Every simulation
  instrumentation site is a pure function call inside an existing
  callback (no new DES events, no clock reads of its own), so enabling
  the recorder cannot move the event schedule; the equality is asserted
  bit-for-bit here and gated deterministically in CI.
* **Disabled means free** — every instrumentation point holds the
  :data:`~repro.obs.trace.NULL_RECORDER` singleton by default, so a run
  that never asked for tracing pays one no-op method call per
  *potential* event.  The micro-benchmark times that call directly and
  asserts it stays in nanoseconds; the off-mode wall times are gated
  (advisory) so a creeping hot-path cost shows up as a regression.
* **Enabled stays cheap** — the recorded overhead ratios (on/off wall
  seconds for the DES and thread backends) are written into the
  document and quoted in docs/OBSERVABILITY.md.  They are reported, not
  asserted: shared CI runners are too noisy for a tight in-test bound.
"""

import json
import os
import pathlib
import time

from repro import ClusterSpec, run_loop
from repro.apps.mxm import MxmConfig, mxm_loop
from repro.apps.workload import LoopSpec
from repro.backend import ThreadBackend
from repro.obs import NULL_RECORDER, TraceRecorder
from repro.runtime.options import RunOptions

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_obs.json"

#: The DES case: large enough that per-event recording would show up in
#: the schedule if it perturbed anything, bounded group size so the
#: sweep stays CI-sized (same shape as BENCH_scale's bus cases).
DES_P = 512
DES_STRATEGY = "LCDLB"
DES_GROUP = 32

#: Thread-backend case: 4 workers, compute-dominated, wall-clock.
THREAD_WORKERS = 4
THREAD_ITERS_PER_WORKER = 16
THREAD_ITERATION_SECONDS = 0.01

#: Disabled-path budget: one NULL_RECORDER.event(...) call, nanoseconds.
#: A no-op bound method runs in tens of ns on any modern interpreter;
#: 2000 ns absorbs the slowest shared runner while still catching an
#: accidental "just a little formatting" on the disabled path.
NULL_CALL_BUDGET_NS = 2000.0
NULL_CALL_ROUNDS = 200_000


def _des_case(recorder):
    loop = mxm_loop(MxmConfig(64, 32, 32), op_seconds=4e-7)
    cluster = ClusterSpec.homogeneous(DES_P, max_load=3,
                                      persistence=1.0, seed=7)
    options = RunOptions(group_size=DES_GROUP, recorder=recorder)
    t0 = time.perf_counter()
    stats = run_loop(loop, cluster, DES_STRATEGY, options)
    wall = time.perf_counter() - t0
    return stats, wall


def _thread_case(recorder):
    loop = LoopSpec(name="obs-thread",
                    n_iterations=THREAD_ITERS_PER_WORKER * THREAD_WORKERS,
                    iteration_time=THREAD_ITERATION_SECONDS, dc_bytes=64)
    cluster = ClusterSpec.homogeneous(THREAD_WORKERS, max_load=3,
                                      persistence=1.0, seed=7)
    options = RunOptions(recorder=recorder)
    t0 = time.perf_counter()
    stats = run_loop(loop, cluster, "GCDLB", options,
                     backend=ThreadBackend(kernel="wall"))
    wall = time.perf_counter() - t0
    executed = sum(stats.executed_count(n) for n in stats.executed_by_node)
    assert executed == loop.n_iterations
    return stats, wall


def _null_call_ns() -> float:
    """Mean cost of one disabled-recorder call, in nanoseconds."""
    event = NULL_RECORDER.event
    t0 = time.perf_counter()
    for _ in range(NULL_CALL_ROUNDS):
        event("compute")
    return (time.perf_counter() - t0) / NULL_CALL_ROUNDS * 1e9


def test_bench_obs(benchmark):
    def run():
        stats_off, wall_off = _des_case(None)
        recorder = TraceRecorder(capacity=1 << 20)
        stats_on, wall_on = _des_case(recorder)
        events = recorder.events()
        des = {
            "n_processors": DES_P,
            "strategy": DES_STRATEGY,
            "virtual_duration_off": stats_off.duration,
            "virtual_duration_on": stats_on.duration,
            "wall_seconds_off": wall_off,
            "wall_seconds_on": wall_on,
            "overhead_ratio": wall_on / wall_off,
            "events_recorded": len(events),
            "events_dropped": recorder.dropped,
        }

        _, t_wall_off = _thread_case(None)
        t_recorder = TraceRecorder()
        _, t_wall_on = _thread_case(t_recorder)
        thread = {
            "workers": THREAD_WORKERS,
            "wall_seconds_off": t_wall_off,
            "wall_seconds_on": t_wall_on,
            "overhead_ratio": t_wall_on / t_wall_off,
            "events_recorded": len(t_recorder.events()),
        }

        return {
            "cpu_count": os.cpu_count(),
            "workload": f"mxm 64x32x32 P={DES_P} {DES_STRATEGY} "
                        f"k={DES_GROUP} (des) / "
                        f"{THREAD_ITERS_PER_WORKER}x"
                        f"{THREAD_ITERATION_SECONDS}s per worker (thread)",
            "des": des,
            "thread": thread,
            "null_call_ns": _null_call_ns(),
        }

    doc = benchmark.pedantic(run, rounds=1, iterations=1)

    des = doc["des"]
    print()
    print(f"  des off {des['wall_seconds_off']:6.2f}s / "
          f"on {des['wall_seconds_on']:6.2f}s "
          f"({des['overhead_ratio']:.2f}x, "
          f"{des['events_recorded']} events)")
    print(f"  thread off {doc['thread']['wall_seconds_off']:6.2f}s / "
          f"on {doc['thread']['wall_seconds_on']:6.2f}s "
          f"({doc['thread']['overhead_ratio']:.2f}x)")
    print(f"  null call {doc['null_call_ns']:.0f} ns")

    # Zero perturbation: the virtual schedule must not move at all.
    assert des["virtual_duration_on"] == des["virtual_duration_off"], (
        "recording perturbed the simulation: "
        f"{des['virtual_duration_off']} -> {des['virtual_duration_on']}")
    assert des["events_recorded"] > 0
    assert des["events_dropped"] == 0

    # Disabled means free: a no-op call, in nanoseconds.
    assert doc["null_call_ns"] < NULL_CALL_BUDGET_NS, (
        f"disabled recorder costs {doc['null_call_ns']:.0f} ns per call "
        f"(budget {NULL_CALL_BUDGET_NS:.0f} ns) — something crept onto "
        "the NullRecorder path")

    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    benchmark.extra_info["des_overhead_ratio"] = des["overhead_ratio"]
    benchmark.extra_info["null_call_ns"] = doc["null_call_ns"]
