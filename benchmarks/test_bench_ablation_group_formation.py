"""Ablation: group formation for the local strategies (§3.5).

The paper implements K-block fixed groups and names K-nearest-neighbor
and random selection as alternatives.  Under iid per-processor load the
formation barely matters on average; the bench also includes an
adversarial *striped* load where interleaved groups pair loaded with
unloaded processors and block groups do not.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


LOOP = mxm_loop(MxmConfig(240, 200, 200), op_seconds=4e-7)


def test_bench_group_formation(benchmark, bench_config):
    def compare():
        out: dict[str, float] = {}
        clusters = [ClusterSpec.homogeneous(
            8, max_load=5, persistence=bench_config.persistence, seed=s)
            for s in bench_config.seeds]
        for formation in ("block", "interleaved", "random"):
            opts = RunOptions(group_size=4, group_formation=formation,
                              group_seed=1)
            out[f"iid/{formation}"] = float(np.mean(
                [run_loop(LOOP, c, "LDDLB", options=opts).duration
                 for c in clusters]))
        # Adversarial stripe: processors 0..3 loaded, 4..7 idle.
        stripe = ClusterSpec(speeds=(1.0,) * 8, persistence=1000.0,
                             load_traces=tuple(
                                 (4,) if i < 4 else (0,)
                                 for i in range(8)))
        for formation in ("block", "interleaved"):
            opts = RunOptions(group_size=4, group_formation=formation)
            out[f"stripe/{formation}"] = run_loop(
                LOOP, stripe, "LDDLB", options=opts).duration
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\ngroup-formation ablation (LDDLB, K=4 on P=8, mean seconds):")
    for label, t in results.items():
        print(f"  {label:>20s}: {t:7.3f}s")

    # Under iid load all formations are within a few percent.
    iid = [t for k, t in results.items() if k.startswith("iid")]
    assert max(iid) / min(iid) < 1.15
    # Under the stripe, interleaving must win big: each group then
    # contains idle processors that can absorb the loaded ones' work.
    assert results["stripe/interleaved"] < 0.8 * results["stripe/block"]
    benchmark.extra_info["results"] = results
