"""Figure 2 (the load function) and substrate micro-benchmarks.

These are true micro-benchmarks (pytest-benchmark statistics over many
rounds): the discrete random load generator, the workstation time math
and the event kernel — the inner loops every experiment above sits on.
"""

import numpy as np

from repro.machine.load import DiscreteRandomLoad
from repro.machine.workstation import Workstation
from repro.simulation import Environment


def test_bench_load_function_integral(benchmark):
    load = DiscreteRandomLoad(max_load=5, persistence=2.0, seed=1)
    load.integral(1e4)  # pre-generate windows

    def f():
        s = 0.0
        for t in range(0, 10_000, 7):
            s += load.integral(float(t))
        return s

    total = benchmark(f)
    assert total > 0


def test_bench_load_function_statistics(benchmark):
    """Figure 2's generator: mean level must be ~m_l/2, levels iid."""
    def build():
        load = DiscreteRandomLoad(max_load=5, persistence=1.0, seed=42)
        return np.array([load.window_level(k) for k in range(2000)])

    levels = benchmark(build)
    assert 2.2 < levels.mean() < 2.8
    assert set(np.unique(levels)) <= set(range(6))


def test_bench_workstation_time_math(benchmark):
    ws = Workstation(0, speed=1.0,
                     load=DiscreteRandomLoad(max_load=5, persistence=0.5,
                                             seed=3))

    def f():
        t = 0.0
        for _ in range(500):
            t = ws.time_to_complete(t, 0.05)
        return t

    t = benchmark(f)
    assert t > 0


def test_bench_event_kernel_throughput(benchmark):
    """Schedule and run 10k timeout events."""
    def f():
        env = Environment()
        hits = []

        def worker(i):
            yield env.timeout(i * 1e-4)
            hits.append(i)

        for i in range(10_000):
            env.process(worker(i))
        env.run()
        return len(hits)

    assert benchmark(f) == 10_000
