"""Table 1: MXM actual vs. model-predicted strategy order."""

from repro.experiments.report import render_table
from repro.experiments.tables import table1


def test_bench_table1(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: table1(bench_config), rounds=1, iterations=1)
    print()
    print(render_table(result))

    assert len(result.rows) == 8
    # The paper: MXM predicted order "matches very closely".
    assert result.mean_agreement >= 0.70
    # At P=4 the match is essentially perfect.
    p4 = [r for r in result.rows if r.label.startswith("P=4")]
    assert sum(r.agreement for r in p4) / len(p4) >= 0.9

    benchmark.extra_info["mean_agreement"] = result.mean_agreement
    benchmark.extra_info["best_match_rate"] = result.best_match_rate
    benchmark.extra_info["rows"] = {
        r.label: {"actual": r.actual, "predicted": r.predicted}
        for r in result.rows}
