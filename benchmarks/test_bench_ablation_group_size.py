"""Ablation: group size K for the local strategies (§3.5).

The global schemes are the K = P endpoint of the local schemes; this
sweep shows the continuum in between — small groups synchronize cheaply
but balance poorly, large groups the reverse.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


LOOP = mxm_loop(MxmConfig(480, 200, 200), op_seconds=4e-7)
P = 16


def test_bench_group_size_sweep(benchmark, bench_config):
    sizes = (2, 4, 8, 16)

    def sweep():
        out = {}
        for k in sizes:
            times = []
            for seed in bench_config.seeds:
                cluster = ClusterSpec.homogeneous(
                    P, max_load=5, persistence=bench_config.persistence,
                    seed=seed)
                stats = run_loop(LOOP, cluster, "LDDLB",
                                 options=RunOptions(group_size=k))
                times.append(stats.duration)
            out[k] = float(np.mean(times))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nLDDLB group-size sweep on P={P} (mean seconds):")
    for k, t in results.items():
        print(f"  K={k:2d}: {t:7.3f}s")

    # K = P reproduces the global scheme; sanity: it must be finite and
    # the sweep must show *some* variation worth modeling.
    values = list(results.values())
    assert max(values) / min(values) > 1.005
    benchmark.extra_info["sweep"] = {str(k): v for k, v in results.items()}
