"""Figure 6: MXM normalized execution time, P = 16."""

from repro.experiments.figures import figure6
from repro.experiments.report import render_figure


def test_bench_figure6(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: figure6(bench_config), rounds=1, iterations=1)
    print()
    print(render_figure(result))

    gaps = []
    for row in result.rows:
        n = row.normalized
        assert max(n["GC"], n["GD"], n["LC"], n["LD"]) < 1.0
        # The paper: on 16 processors the global/local gap narrows —
        # globals may still win but only by a small margin.
        gaps.append(min(n["LC"], n["LD"]) - min(n["GC"], n["GD"]))
    # Gap small in absolute terms for every configuration.
    assert all(abs(g) < 0.08 for g in gaps)

    benchmark.extra_info["rows"] = {
        row.label: row.normalized for row in result.rows}
    benchmark.extra_info["global_local_gaps"] = gaps
