"""Ablation: interrupt-based vs. periodic synchronization (§2.2 / §3.1).

The paper's receiver-initiated interrupts synchronize exactly when a
processor runs dry; the periodic schemes it contrasts itself with
(Dome, Siegell) synchronize on a timer — too often and they pay for
useless syncs, too rarely and finished processors idle.
"""

import numpy as np

from repro.apps.mxm import MxmConfig, mxm_loop
from repro.machine.cluster import ClusterSpec
from repro.runtime.executor import run_loop
from repro.runtime.options import RunOptions


LOOP = mxm_loop(MxmConfig(240, 200, 200), op_seconds=4e-7)


def test_bench_sync_mode(benchmark, bench_config):
    periods = (0.25, 1.0, 4.0)

    def compare():
        out: dict[str, float] = {}
        clusters = [ClusterSpec.homogeneous(
            4, max_load=5, persistence=bench_config.persistence, seed=s)
            for s in bench_config.seeds]
        out["interrupt (paper)"] = float(np.mean(
            [run_loop(LOOP, c, "GDDLB").duration for c in clusters]))
        for period in periods:
            opts = RunOptions(sync_mode="periodic", sync_period=period)
            out[f"periodic T={period}s"] = float(np.mean(
                [run_loop(LOOP, c, "GDDLB", options=opts).duration
                 for c in clusters]))
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nsynchronization-trigger ablation (GDDLB, mean seconds):")
    for label, t in results.items():
        print(f"  {label:>20s}: {t:7.3f}s")

    # Interrupt-based must beat every periodic setting: there is no
    # single good period when the load is random.
    best_periodic = min(t for k, t in results.items()
                        if k.startswith("periodic"))
    assert results["interrupt (paper)"] <= best_periodic * 1.02
    # A long period is clearly bad (idle finishers).
    assert results["periodic T=4.0s"] > results["interrupt (paper)"]
    benchmark.extra_info["results"] = results
