"""Figure 4: communication cost characterization (measured + polyfit)."""

from repro.experiments.figures import figure4
from repro.experiments.report import render_figure


def test_bench_figure4(benchmark, bench_config):
    result = benchmark.pedantic(
        lambda: figure4(bench_config), rounds=1, iterations=1)
    print()
    print(render_figure(result))

    # Shape checks matching the paper: AA > AO > OA at every P, AA
    # superlinear, OA/AO linear-ish.
    for row in result.rows:
        assert row.normalized["AA(exp)"] >= row.normalized["AO(exp)"] \
            >= row.normalized["OA(exp)"]
    first, last = result.rows[0], result.rows[-1]
    assert last.normalized["AA(exp)"] / first.normalized["AA(exp)"] > 10

    benchmark.extra_info["latency_us"] = result.meta["latency"] * 1e6
    benchmark.extra_info["bandwidth_MBps"] = result.meta["bandwidth"] / 1e6
    benchmark.extra_info["rows"] = {
        row.label: row.normalized for row in result.rows}
