"""Tunable knobs of the DLB run-time (paper §3.3–§3.4 defaults).

Every threshold the paper mentions is a field here so the ablation
benches can sweep them:

* work is moved only when the redistribution is predicted to improve
  execution time by at least ``improvement_threshold`` (the paper's 10%),
* the predicted time *excludes* the cost of the actual work movement by
  default (§3.4 explains why including it cancels beneficial moves —
  the ablation flips ``include_movement_cost``),
* nothing moves when the amount to move is below a threshold
  (``min_move_fraction`` of the work remaining in the group).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DlbPolicy"]


@dataclass(frozen=True)
class DlbPolicy:
    """Run-time load balancing policy parameters.

    Attributes
    ----------
    improvement_threshold:
        Minimum predicted relative improvement to commit a redistribution
        (0.10 in the paper).
    include_movement_cost:
        Add the estimated data-movement time to the predicted new finish
        time during profitability analysis.  Off by default (§3.4).
    min_move_fraction:
        Skip redistribution when the work to move is below this fraction
        of the work remaining in the synchronization domain.
    min_move_iterations:
        Absolute floor on the same threshold, in (mean) iterations:
        moving less than one whole iteration cannot help and, worse,
        sub-iteration plans round to empty transfers — processors would
        synchronize forever over un-movable crumbs.
    min_transfer_iterations:
        Individual transfer orders below this many mean iterations are
        dropped from the plan (they would round to zero iterations at
        the sender anyway).
    retire_fraction:
        A processor whose new share would be below this fraction of one
        *mean* iteration is retired (its share is spread over the rest).
    delta_seconds:
        ``delta`` — cost of one new-distribution calculation (§4.2 calls
        it "usually quite small"); charged on the balancer (and
        replicated on every member in the distributed schemes).
    context_switch_seconds:
        Per-service context-switch penalty on the master when the
        central balancer shares a processor with a computation slave.
    selection_seconds:
        One-off cost of the §4.3 model evaluation during customized
        strategy selection (charged at the first synchronization).
    rate_floor_fraction:
        Floor for measured rates, as a fraction of the fastest profile's
        rate, so a momentarily-stalled processor still gets *some* share.
    """

    improvement_threshold: float = 0.10
    include_movement_cost: bool = False
    min_move_fraction: float = 0.02
    min_move_iterations: float = 1.0
    min_transfer_iterations: float = 0.5
    retire_fraction: float = 0.5
    delta_seconds: float = 2.0e-3
    context_switch_seconds: float = 2.0e-3
    selection_seconds: float = 50.0e-3
    rate_floor_fraction: float = 1.0e-3

    def __post_init__(self) -> None:
        if not 0 <= self.improvement_threshold < 1:
            raise ValueError("improvement_threshold must be in [0, 1)")
        if not 0 <= self.min_move_fraction < 1:
            raise ValueError("min_move_fraction must be in [0, 1)")
        if self.min_move_iterations < 0 or self.min_transfer_iterations < 0:
            raise ValueError("iteration thresholds must be non-negative")
        if self.retire_fraction < 0:
            raise ValueError("retire_fraction must be non-negative")
        if (self.delta_seconds < 0 or self.context_switch_seconds < 0
                or self.selection_seconds < 0):
            raise ValueError("cost parameters must be non-negative")
        if not 0 < self.rate_floor_fraction <= 1:
            raise ValueError("rate_floor_fraction must be in (0, 1]")

    def but(self, **changes) -> "DlbPolicy":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)
