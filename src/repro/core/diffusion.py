"""Diffusion load balancing on graph topologies.

The first-order diffusion scheme (FOS) of Cybenko, in the
indivisible-load formulation of Demirel & Sbalzarini ("Balancing
indivisible real-valued loads in arbitrary networks"): at each
synchronization sweep, every edge ``(u, v)`` of the topology carries a
load flow

    ``f_uv = alpha * (w_u - w_v)``,    ``alpha = 1 / (1 + max_degree)``

from the heavier endpoint to the lighter one.  The choice of ``alpha``
makes the diffusion matrix ``M = I - alpha * L`` (``L`` the graph
Laplacian) stable: the load vector converges geometrically to uniform
at rate ``gamma = max(|eigenvalue of M| != 1)`` (see
:func:`repro.machine.analytics.diffusion_convergence` for the bound).

Indivisibility: iterations cannot be split, so each edge flow is
floored to a whole number of mean-cost iterations before it ships, and
an edge whose flow rounds below the policy's minimum transfer is
skipped.  This quantization is what makes the scheme terminate in
finitely many sweeps — once all neighbor differences fall below the
quantum, the plan reports convergence instead of oscillating.

Integration: :func:`plan_diffusion` returns the same
:class:`~repro.core.redistribution.RedistributionPlan` the eq.-3
planner produces, so the existing distributed-sync protocol machinery
— global profile exchange, replicated deterministic planning,
fault-hardened WORK parcels, exactly-once coverage verification —
applies unchanged.  Only the *transfers* are restricted to topology
edges; profiles still travel all-to-all (the protocol's sync pattern),
which is what the §4 cost model charges for strategy ``DIFF``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..message.messages import TransferOrder
from ..network.topology import Topology
from .policy import DlbPolicy
from .redistribution import (
    MovementCostFn,
    PlannerFn,
    RedistributionPlan,
    SyncProfile,
)

__all__ = ["diffusion_alpha", "plan_diffusion", "make_diffusion_planner"]

_TINY_WORK = 1e-12


def diffusion_alpha(topology: Topology) -> float:
    """The FOS diffusion constant ``alpha = 1 / (1 + max_degree)``.

    The largest value guaranteed stable for every graph of this maximum
    degree (all eigenvalues of ``I - alpha * L`` stay in ``(-1, 1]``).
    """
    return 1.0 / (1.0 + topology.max_degree)


def plan_diffusion(profiles: Sequence[SyncProfile],
                   topology: Topology,
                   policy: DlbPolicy,
                   mean_iteration_time: float,
                   movement_cost_fn: Optional[MovementCostFn] = None
                   ) -> RedistributionPlan:
    """One diffusion sweep over the topology edges.

    Deterministic pure function of the profiles (edges are processed in
    sorted order), so replicated planners in the distributed protocol
    agree without communication.  Nodes absent from ``profiles`` (dead
    or retired) simply drop out of the sweep: their incident edges carry
    no flow, and the survivors keep diffusing over the induced subgraph.
    """
    if not profiles:
        raise ValueError("need at least one profile")
    if mean_iteration_time <= 0:
        raise ValueError("mean_iteration_time must be positive")
    profiles = sorted(profiles, key=lambda p: p.node)
    nodes = [p.node for p in profiles]
    if len(set(nodes)) != len(nodes):
        raise ValueError("duplicate node in profiles")
    work = {p.node: p.remaining_work for p in profiles}
    total = sum(work.values())

    # -- termination: no work anywhere ----------------------------------
    if total <= _TINY_WORK:
        return RedistributionPlan(
            done=True, move=False, reason="done", shares={}, transfers=(),
            retire=tuple(nodes), active=(), predicted_current=0.0,
            predicted_balanced=0.0, work_to_move=0.0)

    # -- rates (floored as in eq. 3) for the prediction terms -----------
    max_rate = max(p.rate for p in profiles)
    if max_rate <= _TINY_WORK:
        rates = {p.node: 1.0 for p in profiles}
    else:
        floor = max_rate * policy.rate_floor_fraction
        rates = {p.node: max(p.rate, floor) for p in profiles}
    predicted_current = max(work[n] / rates[n] for n in nodes)

    # -- per-edge flows, floored to whole iterations --------------------
    present = set(nodes)
    alpha = diffusion_alpha(topology)
    quantum = max(policy.min_transfer_iterations, 1) * mean_iteration_time
    pending = dict(work)
    transfers: list[TransferOrder] = []
    for u, v in topology.edges:
        if u not in present or v not in present:
            continue
        # Flows computed from the *pre-sweep* loads (simultaneous FOS),
        # capped by what the sender still holds once earlier edges in
        # the deterministic order have drained it.
        flow = alpha * (work[u] - work[v])
        src, dst = (u, v) if flow > 0 else (v, u)
        amount = math.floor(abs(flow) / mean_iteration_time) \
            * mean_iteration_time
        if amount < quantum:
            continue
        amount = min(amount, pending[src])
        if amount <= _TINY_WORK:
            continue
        pending[src] -= amount
        pending[dst] += amount
        transfers.append(TransferOrder(src=src, dst=dst, work=amount))

    work_to_move = sum(t.work for t in transfers)

    if not transfers:
        # Converged (all neighbor differences below the quantum): idle
        # nodes retire — nothing will ever flow to them again before the
        # loaded nodes finish — and the rest simply keep computing.
        idle = tuple(n for n in nodes if work[n] <= _TINY_WORK)
        stay = tuple(n for n in nodes if n not in idle)
        return RedistributionPlan(
            done=False, move=False, reason="diffusion-converged",
            shares={n: work[n] for n in stay}, transfers=(),
            retire=idle, active=stay,
            predicted_current=predicted_current,
            predicted_balanced=total / sum(rates[n] for n in nodes),
            work_to_move=0.0)

    movement_cost = 0.0
    if movement_cost_fn is not None:
        movement_cost = movement_cost_fn(transfers)

    shares = {n: max(pending[n], 0.0) for n in nodes}
    return RedistributionPlan(
        done=False, move=True, reason="diffused", shares=shares,
        transfers=tuple(transfers), retire=(), active=tuple(nodes),
        predicted_current=predicted_current,
        predicted_balanced=total / sum(rates[n] for n in nodes),
        work_to_move=work_to_move, movement_cost=movement_cost)


def make_diffusion_planner(topology: Topology,
                           policy: DlbPolicy,
                           mean_iteration_time: float,
                           movement_cost_fn: Optional[MovementCostFn] = None
                           ) -> PlannerFn:
    """Bind a topology into a :data:`PlannerFn` for the protocol layer."""

    def planner(profiles: Sequence[SyncProfile]) -> RedistributionPlan:
        return plan_diffusion(profiles, topology, policy,
                              mean_iteration_time, movement_cost_fn)

    return planner
