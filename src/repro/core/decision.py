"""The hybrid compile/run-time decision process (paper §4.3).

At compile time nothing commits: the compiler emits code that starts
from an equal partition and runs to the *first synchronization point*.
By then at least ``1/P`` of the work is done and — crucially — the load
function has been observed.  The master plugs the measured average
effective speeds into the §4.2 model, evaluates every strategy in the
repertoire, and commits to the best one for the rest of the loop.

:func:`model_based_selector` is that run-time step.  It is invoked by
the central balancer when a loop runs under the ``CUSTOM`` strategy and
returns the chosen scheme, the group size, and a report that the
statistics carry for post-mortem analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

from ..apps.workload import LoopSpec
from ..machine.cluster import ClusterSpec
from ..machine.load import ConstantLoad
from ..machine.workstation import Workstation
from .model.costs import default_comm_model
from .model.predictor import StrategyPrediction, rank_strategies
from .redistribution import SyncProfile
from .strategies.registry import GDDLB, strategies_for_topology

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.session import LoopSession

__all__ = ["SelectionReport", "model_based_selector", "forecast_stations"]


@dataclass(frozen=True)
class SelectionReport:
    """What the decision process saw and decided at the first sync."""

    chosen: str
    group_size: int
    predictions: tuple[StrategyPrediction, ...]
    measured_effective_loads: dict[int, float]
    remaining_work: float
    remaining_iterations: int

    def summary(self) -> str:
        ranks = ", ".join(f"{p.code}={p.total_time:.3f}s"
                          for p in self.predictions)
        return (f"selected {self.chosen} (K={self.group_size}) from "
                f"[{ranks}] with {self.remaining_iterations} iterations "
                f"left")


def forecast_stations(profiles: Sequence[SyncProfile],
                      speeds: dict[int, float],
                      persistence: float) -> list[Workstation]:
    """Forecast workstations from measured rates.

    The measured rate of processor ``i`` is its average effective speed
    ``S_i / mu_i``; the forecast assumes the observed effective load
    ``mu_i`` persists (the most recent window predicts the future,
    §3.2).  Fractional constant loads carry the measurement exactly.
    """
    stations = []
    for p in sorted(profiles, key=lambda q: q.node):
        speed = speeds[p.node]
        rate = p.rate if p.rate > 0 else speed
        mu = max(speed / rate, 1.0)
        stations.append(Workstation(
            index=p.node, speed=speed,
            load=ConstantLoad(mu - 1.0, persistence=persistence)))
    return stations


def model_based_selector(session: "LoopSession",
                         profiles: Sequence[SyncProfile]
                         ) -> tuple[str, int, SelectionReport]:
    """Choose the best strategy for the remainder of the loop (§4.3)."""
    remaining_work = sum(p.remaining_work for p in profiles)
    remaining_count = sum(p.remaining_count for p in profiles)
    speeds = {i: session.stations[i].speed for i in range(session.n)}
    mus = {p.node: max(speeds[p.node] / p.rate, 1.0) if p.rate > 0 else 1.0
           for p in profiles}

    if remaining_count <= 0 or remaining_work <= 0:
        report = SelectionReport(
            chosen=GDDLB.name, group_size=session.group_size,
            predictions=(), measured_effective_loads=mus,
            remaining_work=0.0, remaining_iterations=0)
        return GDDLB.code, session.group_size, report

    stations = forecast_stations(
        profiles, speeds,
        persistence=session.stations[0].load.persistence)
    remainder = LoopSpec(
        name=f"{session.loop.name}:rest",
        n_iterations=remaining_count,
        iteration_time=remaining_work / remaining_count,
        dc_bytes=session.loop.dc_bytes,
        ic_bytes=session.loop.ic_bytes)
    cluster = ClusterSpec.heterogeneous(
        [speeds[i] for i in sorted(speeds)], max_load=0)
    # On the bus the repertoire and the comm model are exactly the seed
    # behavior; a graph topology re-characterizes the patterns on that
    # graph and adds diffusion to the comparison.
    topology = session.topology
    if topology is not None and topology.shared_medium:
        topology = None
    comm = default_comm_model(session.options.network, topology=topology)
    predictions = rank_strategies(
        remainder, cluster, policy=session.policy, comm=comm,
        group_size=session.group_size,
        strategies=strategies_for_topology(topology),
        stations=stations, topology=topology)
    best = predictions[0]
    report = SelectionReport(
        chosen=best.strategy, group_size=session.group_size,
        predictions=tuple(predictions), measured_effective_loads=mus,
        remaining_work=remaining_work, remaining_iterations=remaining_count)
    return best.code, session.group_size, report
