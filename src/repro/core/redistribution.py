"""Redistribution planning: new distribution + profitability (§3.3–§3.4).

This module is the *decision heart* of the DLB system.  Given the
profiles collected at a synchronization point — remaining work and
observed rate per processor — it computes the paper's new distribution
(eq. 3: share proportional to average effective speed), the amount of
work to move, the transfer orders, and runs the profitability analysis.

The same pure function is called by:

* the central load balancer (GCDLB / LCDLB),
* every replica in the distributed schemes (GDDLB / LDDLB) — it is
  deterministic, so replicated decisions agree without communication,
* the analytical cost model of §4.2, so predictions share decision logic
  with the measured system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from ..message.messages import TransferOrder
from ..network.parameters import transfer_seconds
from .policy import DlbPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..network.parameters import NetworkParameters
    from ..network.topology import Topology

__all__ = ["SyncProfile", "RedistributionPlan", "PlannerFn",
           "plan_redistribution", "make_movement_cost_estimator",
           "make_topology_movement_cost_estimator"]

_TINY_WORK = 1e-12


@dataclass(frozen=True)
class SyncProfile:
    """One processor's contribution to a synchronization point.

    ``rate`` is work (base-processor seconds) completed per busy second
    since the last synchronization — the implementation's estimate of
    the paper's average effective speed ``S_i / mu_i``.
    """

    node: int
    remaining_work: float
    remaining_count: int
    rate: float

    def __post_init__(self) -> None:
        if self.remaining_work < 0 or self.remaining_count < 0:
            raise ValueError("remaining work/count must be non-negative")
        if self.rate < 0:
            raise ValueError("rate must be non-negative")


@dataclass(frozen=True)
class RedistributionPlan:
    """The outcome of one synchronization point.

    ``shares`` maps each *kept* node to its target work; ``transfers``
    are the sender → receiver orders realizing it; ``retire`` lists
    nodes that exit (their work, if any, is part of the transfers).
    ``predicted_current`` / ``predicted_balanced`` are the §3.4
    profitability quantities.
    """

    done: bool
    move: bool
    reason: str
    shares: dict[int, float]
    transfers: tuple[TransferOrder, ...]
    retire: tuple[int, ...]
    active: tuple[int, ...]
    predicted_current: float
    predicted_balanced: float
    work_to_move: float
    movement_cost: float = 0.0

    def outgoing(self, node: int) -> tuple[TransferOrder, ...]:
        return tuple(t for t in self.transfers if t.src == node)

    def incoming(self, node: int) -> tuple[TransferOrder, ...]:
        return tuple(t for t in self.transfers if t.dst == node)


MovementCostFn = Callable[[Sequence[TransferOrder]], float]

#: A redistribution calculation: profiles in, plan out.  Must be a
#: deterministic pure function of the profiles — the distributed schemes
#: replicate the call on every node and rely on byte-identical plans.
PlannerFn = Callable[[Sequence[SyncProfile]], "RedistributionPlan"]


def make_movement_cost_estimator(latency: float, bandwidth: float,
                                 dc_bytes: int, mean_iteration_time: float
                                 ) -> MovementCostFn:
    """Estimate the wall time of a set of transfers (for the ablation
    that *includes* movement cost in profitability, §3.4).

    Transfers are assumed to serialize on the shared medium:
    ``sum_t (L + bytes_t / B)`` with ``bytes_t`` derived from the work
    moved via the mean iteration cost.
    """
    if mean_iteration_time <= 0:
        raise ValueError("mean_iteration_time must be positive")

    def estimate(transfers: Sequence[TransferOrder]) -> float:
        total = 0.0
        for t in transfers:
            iterations = t.work / mean_iteration_time
            total += transfer_seconds(latency, bandwidth,
                                      iterations * dc_bytes)
        return total

    return estimate


def make_topology_movement_cost_estimator(params: "NetworkParameters",
                                          topology: "Topology",
                                          dc_bytes: int,
                                          mean_iteration_time: float
                                          ) -> MovementCostFn:
    """Movement cost on a graph topology: store-and-forward routes.

    Each transfer pays the endpoint NIC overheads once plus the wire
    time of every link on its shortest route, honoring per-link
    parameter overrides.  Shared-medium runs keep using
    :func:`make_movement_cost_estimator` so the seed cost arithmetic
    stays bit-identical.
    """
    if mean_iteration_time <= 0:
        raise ValueError("mean_iteration_time must be positive")

    def estimate(transfers: Sequence[TransferOrder]) -> float:
        total = 0.0
        for t in transfers:
            iterations = t.work / mean_iteration_time
            nbytes = iterations * dc_bytes
            seconds = params.send_overhead + params.recv_overhead
            for u, v in topology.route(t.src, t.dst):
                link = topology.params_for(u, v) or params
                seconds += link.wire_time(nbytes)
            total += seconds
        return total

    return estimate


def _match_transfers(deltas: dict[int, float]) -> list[TransferOrder]:
    """Greedy largest-surplus → largest-deficit matching.

    Deterministic (ties broken by node id) so replicated balancers in
    the distributed schemes derive identical orders.
    """
    senders = sorted(((d, n) for n, d in deltas.items() if d > _TINY_WORK),
                     key=lambda x: (-x[0], x[1]))
    receivers = sorted(((-d, n) for n, d in deltas.items() if d < -_TINY_WORK),
                       key=lambda x: (-x[0], x[1]))
    senders = [[d, n] for d, n in senders]
    receivers = [[d, n] for d, n in receivers]
    orders: list[TransferOrder] = []
    si = ri = 0
    while si < len(senders) and ri < len(receivers):
        surplus, src = senders[si]
        deficit, dst = receivers[ri]
        amount = min(surplus, deficit)
        if amount > _TINY_WORK:
            orders.append(TransferOrder(src=src, dst=dst, work=amount))
        senders[si][0] -= amount
        receivers[ri][0] -= amount
        if senders[si][0] <= _TINY_WORK:
            si += 1
        if receivers[ri][0] <= _TINY_WORK:
            ri += 1
    return orders


def plan_redistribution(profiles: Sequence[SyncProfile],
                        policy: DlbPolicy,
                        mean_iteration_time: float,
                        movement_cost_fn: Optional[MovementCostFn] = None
                        ) -> RedistributionPlan:
    """Compute the new distribution for one synchronization point.

    Implements, in order: termination check (eq. 4), rate flooring, the
    proportional new distribution (eq. 3) with retirement of processors
    whose share would round to no whole iteration, the amount-moved
    check (§3.3), and the 10% profitability test (§3.4).
    """
    if not profiles:
        raise ValueError("need at least one profile")
    profiles = sorted(profiles, key=lambda p: p.node)
    nodes = [p.node for p in profiles]
    if len(set(nodes)) != len(nodes):
        raise ValueError("duplicate node in profiles")
    work = {p.node: p.remaining_work for p in profiles}
    total = sum(work.values())

    # -- termination: Gamma(tau) == 0 (eq. 4) ---------------------------
    if total <= max(_TINY_WORK, 0.0):
        return RedistributionPlan(
            done=True, move=False, reason="done", shares={}, transfers=(),
            retire=tuple(nodes), active=(), predicted_current=0.0,
            predicted_balanced=0.0, work_to_move=0.0)

    # -- rates, floored so a stalled node still gets some share ----------
    max_rate = max(p.rate for p in profiles)
    if max_rate <= _TINY_WORK:
        rates = {p.node: 1.0 for p in profiles}
    else:
        floor = max_rate * policy.rate_floor_fraction
        rates = {p.node: max(p.rate, floor) for p in profiles}

    predicted_current = max(work[n] / rates[n] for n in nodes)

    # -- proportional shares with retirement (eq. 3) ----------------------
    kept = list(nodes)
    shares: dict[int, float] = {}
    retire_threshold = policy.retire_fraction * mean_iteration_time
    for _ in range(len(nodes)):
        rate_sum = sum(rates[n] for n in kept)
        shares = {n: total * rates[n] / rate_sum for n in kept}
        too_small = [n for n in kept if shares[n] < retire_threshold]
        if not too_small or len(kept) - len(too_small) < 1:
            break
        kept = [n for n in kept if n not in too_small]
    retired = tuple(n for n in nodes if n not in kept)

    # -- amount of work moved: Phi(j) = 1/2 sum |alpha - beta| -----------
    deltas = {n: work[n] - shares.get(n, 0.0) for n in nodes}
    work_to_move = 0.5 * sum(abs(d) for d in deltas.values())

    def no_move(reason: str) -> RedistributionPlan:
        idle = tuple(n for n in nodes if work[n] <= _TINY_WORK)
        stay = tuple(n for n in nodes if n not in idle)
        return RedistributionPlan(
            done=False, move=False, reason=reason,
            shares={n: work[n] for n in stay}, transfers=(),
            retire=idle, active=stay,
            predicted_current=predicted_current,
            predicted_balanced=total / sum(rates[n] for n in kept),
            work_to_move=work_to_move)

    move_floor = max(policy.min_move_fraction * total,
                     policy.min_move_iterations * mean_iteration_time)
    if work_to_move < move_floor:
        return no_move("below-move-threshold")

    transfers = tuple(_match_transfers(deltas))
    # Orders too small to round to a whole iteration at the sender are
    # dropped (they would materialize as empty messages) — except from
    # retiring senders, whose remaining work must ship somewhere.
    transfer_floor = policy.min_transfer_iterations * mean_iteration_time
    retired_set = set(retired)
    transfers = tuple(t for t in transfers
                      if t.work >= transfer_floor or t.src in retired_set)
    if not transfers:
        return no_move("below-move-threshold")
    # Realizable shares: what each kept node actually ends up holding
    # under the (possibly filtered) transfer list.
    final = dict(work)
    for t in transfers:
        final[t.src] -= t.work
        final[t.dst] += t.work
    shares = {n: max(final[n], 0.0) for n in kept}

    movement_cost = 0.0
    if movement_cost_fn is not None:
        movement_cost = movement_cost_fn(transfers)

    predicted_balanced = total / sum(rates[n] for n in kept)
    predicted_with_cost = predicted_balanced
    if policy.include_movement_cost:
        predicted_with_cost += movement_cost

    if predicted_with_cost > (1.0 - policy.improvement_threshold) * predicted_current:
        return no_move("unprofitable")

    return RedistributionPlan(
        done=False, move=True, reason="moved", shares=shares,
        transfers=transfers, retire=retired, active=tuple(kept),
        predicted_current=predicted_current,
        predicted_balanced=predicted_balanced,
        work_to_move=work_to_move, movement_cost=movement_cost)
