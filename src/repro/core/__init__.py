"""The paper's primary contribution: customized dynamic load balancing.

* :mod:`repro.core.strategies` — the strategy repertoire (§3.5);
* :mod:`repro.core.redistribution` — new-distribution calculation and
  profitability analysis (§3.3–§3.4);
* :mod:`repro.core.model` — the analytical cost model (§4.2);
* :mod:`repro.core.decision` — the hybrid run-time selection (§4.3);
* :mod:`repro.core.policy` — every threshold, as a tunable.
"""

from .decision import SelectionReport, model_based_selector
from .diffusion import diffusion_alpha, make_diffusion_planner, plan_diffusion
from .policy import DlbPolicy
from .redistribution import (
    PlannerFn,
    RedistributionPlan,
    SyncProfile,
    make_movement_cost_estimator,
    make_topology_movement_cost_estimator,
    plan_redistribution,
)
from .strategies import (
    ALL_DLB_STRATEGIES,
    CUSTOMIZED,
    DIFFUSION,
    GCDLB,
    GDDLB,
    LCDLB,
    LDDLB,
    NO_DLB,
    STRATEGY_ORDER,
    StrategySpec,
    WORK_STEALING,
    get_strategy,
    strategies_for_topology,
)

__all__ = [
    "ALL_DLB_STRATEGIES",
    "CUSTOMIZED",
    "DIFFUSION",
    "DlbPolicy",
    "GCDLB",
    "GDDLB",
    "LCDLB",
    "LDDLB",
    "NO_DLB",
    "PlannerFn",
    "RedistributionPlan",
    "STRATEGY_ORDER",
    "SelectionReport",
    "StrategySpec",
    "SyncProfile",
    "WORK_STEALING",
    "diffusion_alpha",
    "get_strategy",
    "make_diffusion_planner",
    "make_movement_cost_estimator",
    "make_topology_movement_cost_estimator",
    "model_based_selector",
    "plan_diffusion",
    "plan_redistribution",
    "strategies_for_topology",
]
