"""The paper's primary contribution: customized dynamic load balancing.

* :mod:`repro.core.strategies` — the strategy repertoire (§3.5);
* :mod:`repro.core.redistribution` — new-distribution calculation and
  profitability analysis (§3.3–§3.4);
* :mod:`repro.core.model` — the analytical cost model (§4.2);
* :mod:`repro.core.decision` — the hybrid run-time selection (§4.3);
* :mod:`repro.core.policy` — every threshold, as a tunable.
"""

from .decision import SelectionReport, model_based_selector
from .policy import DlbPolicy
from .redistribution import (
    RedistributionPlan,
    SyncProfile,
    make_movement_cost_estimator,
    plan_redistribution,
)
from .strategies import (
    ALL_DLB_STRATEGIES,
    CUSTOMIZED,
    GCDLB,
    GDDLB,
    LCDLB,
    LDDLB,
    NO_DLB,
    STRATEGY_ORDER,
    StrategySpec,
    WORK_STEALING,
    get_strategy,
)

__all__ = [
    "ALL_DLB_STRATEGIES",
    "CUSTOMIZED",
    "DlbPolicy",
    "GCDLB",
    "GDDLB",
    "LCDLB",
    "LDDLB",
    "NO_DLB",
    "RedistributionPlan",
    "STRATEGY_ORDER",
    "SelectionReport",
    "StrategySpec",
    "SyncProfile",
    "WORK_STEALING",
    "get_strategy",
    "make_movement_cost_estimator",
    "model_based_selector",
    "plan_redistribution",
]
