"""Analytical cost model of the DLB strategies (S7, paper §4.2)."""

from .costs import SyncCosts, default_comm_model, strategy_sync_costs
from .recurrence import (
    average_effective_speed,
    effective_load_discrete,
    iterations_left_nonuniform,
    iterations_left_uniform,
    new_distribution,
    total_remaining,
    work_moved,
)
from .predictor import (
    StrategyPrediction,
    predict_no_dlb,
    predict_strategy,
    rank_strategies,
)

__all__ = [
    "StrategyPrediction",
    "average_effective_speed",
    "effective_load_discrete",
    "iterations_left_nonuniform",
    "iterations_left_uniform",
    "new_distribution",
    "total_remaining",
    "work_moved",
    "SyncCosts",
    "default_comm_model",
    "predict_no_dlb",
    "predict_strategy",
    "rank_strategies",
    "strategy_sync_costs",
]
