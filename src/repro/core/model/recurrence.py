"""The paper's §4.2 recurrences, as literal standalone functions.

The production solver (:mod:`repro.core.model.predictor`) integrates
these relations with the shared planner and exact load integrals; this
module states them in the paper's own discrete form so tests can verify
the production code against the published equations, and readers can
map code to paper line by line.

Notation (paper §4.2): at the ``j``-th synchronization point,

* ``alpha_i(j)`` — iterations assigned to processor ``i``,
* ``beta_i(j)`` — iterations left to be done by processor ``i``,
* ``Gamma(j) = sum_i beta_i(j)`` — total remaining iterations,
* ``mu_i(j)`` — effective load of processor ``i`` over the window,
* ``S_i`` — processor speed, ``T`` — time per iteration (uniform),
* ``f`` — the first processor to finish its portion.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "effective_load_discrete",
    "average_effective_speed",
    "iterations_left_uniform",
    "iterations_left_nonuniform",
    "new_distribution",
    "work_moved",
    "total_remaining",
]


def effective_load_discrete(levels: Sequence[float]) -> float:
    """Paper: ``mu_i(j) = (b - a + 1) / sum_{k=a}^{b} 1/(l_i(k) + 1)``.

    ``levels`` are the load levels of the persistence windows between
    the two synchronization points.
    """
    arr = np.asarray(levels, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one window")
    if (arr < 0).any():
        raise ValueError("levels must be non-negative")
    return arr.size / float((1.0 / (arr + 1.0)).sum())


def average_effective_speed(speed: float, levels: Sequence[float]) -> float:
    """Paper: the performance metric ``S_i / mu_i(j)``."""
    return speed / effective_load_discrete(levels)


def iterations_left_uniform(beta_prev: Sequence[float],
                            speeds: Sequence[float],
                            mus: Sequence[float],
                            finisher: int) -> np.ndarray:
    """Eq. 1: iterations left on each processor when ``finisher`` is done.

    ``beta_i(j) = beta_i(j-1) - beta_f(j-1) * (S_i / mu_i) * (mu_f / S_f)``

    — everyone computed for the same wall time ``t``, namely the time
    the finisher needed for its whole portion.
    """
    beta = np.asarray(beta_prev, dtype=float)
    s = np.asarray(speeds, dtype=float)
    mu = np.asarray(mus, dtype=float)
    if not (beta.shape == s.shape == mu.shape):
        raise ValueError("shape mismatch")
    f = finisher
    done = beta[f] * (s / mu) * (mu[f] / s[f])
    left = np.maximum(beta - done, 0.0)
    left[f] = 0.0
    return left


def iterations_left_nonuniform(assigned_costs: Sequence[Sequence[float]],
                               speeds: Sequence[float],
                               mus: Sequence[float],
                               finisher: int) -> list[int]:
    """Eq. 2: the non-uniform form, with per-iteration costs ``T_k``.

    Each processor ``i`` completes the longest prefix of its assigned
    iterations whose summed cost fits in the window
    ``t = sum_k T_k^(f) * mu_f / S_f`` scaled by its own ``S_i/mu_i``.
    Returns the number of iterations *left* per processor.
    """
    s = np.asarray(speeds, dtype=float)
    mu = np.asarray(mus, dtype=float)
    costs_f = np.asarray(assigned_costs[finisher], dtype=float)
    t = float(costs_f.sum()) * mu[finisher] / s[finisher]
    left = []
    for i, costs in enumerate(assigned_costs):
        arr = np.asarray(costs, dtype=float)
        budget = t * s[i] / mu[i]
        done = int(np.searchsorted(np.cumsum(arr), budget + 1e-12,
                                   side="right"))
        left.append(max(arr.size - done, 0))
    return left


def new_distribution(beta: Sequence[float], speeds: Sequence[float],
                     mus: Sequence[float]) -> np.ndarray:
    """Eq. 3: shares proportional to average effective speed.

    ``alpha_i(j) = (S_i / mu_i) / sum_k (S_k / mu_k) * Gamma(j)``
    """
    beta_arr = np.asarray(beta, dtype=float)
    rates = np.asarray(speeds, dtype=float) / np.asarray(mus, dtype=float)
    gamma = beta_arr.sum()
    return gamma * rates / rates.sum()


def work_moved(alpha: Sequence[float], beta: Sequence[float]) -> float:
    """``Phi(j) = 1/2 * sum_i |alpha_i(j) - beta_i(j)|``."""
    a = np.asarray(alpha, dtype=float)
    b = np.asarray(beta, dtype=float)
    return 0.5 * float(np.abs(a - b).sum())


def total_remaining(beta: Sequence[float]) -> float:
    """``Gamma(j) = sum_i beta_i(j)``; termination is ``Gamma == 0``."""
    return float(np.asarray(beta, dtype=float).sum())
