"""The §4.2 recurrence solver: predicted total cost per strategy.

The model plays the paper's recurrences forward.  Between two
synchronization points every active processor computes; the first one
to exhaust its assignment (eq. 1 / eq. 2 solved through the shared
:class:`~repro.machine.workstation.Workstation` time math) defines the
synchronization time.  Effective loads over the window give the average
effective speeds (the ``S_i / mu_i(j)`` of §4.2); the *same*
redistribution planner the run-time system uses (eq. 3 + the §3.3/3.4
thresholds) yields the new distribution, the amount of work moved
``Phi(j)``, and the message count ``gamma(j)``; the cost terms of
:mod:`repro.core.model.costs` then advance the group's clock.

For the local strategies, every group runs its own recurrence; the
single central balancer of LCDLB is a shared serial resource, which
reproduces the paper's *delay factor* (waiting time while the balancer
serves other groups).  The total cost of a local strategy is the time
of the last group to finish.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

from ...apps.workload import LoopSpec
from ...machine.cluster import ClusterSpec, build_groups
from ...machine.workstation import Workstation
from ...network.characterization import CommCostModel
from ...network.topology import Topology
from ..diffusion import plan_diffusion
from ..policy import DlbPolicy
from ..redistribution import (
    make_movement_cost_estimator,
    plan_redistribution,
    SyncProfile,
)
from ..strategies.base import StrategySpec
from ..strategies.registry import ALL_DLB_STRATEGIES, NO_DLB
from .costs import default_comm_model, strategy_sync_costs

__all__ = ["StrategyPrediction", "predict_strategy", "rank_strategies",
           "predict_no_dlb"]

_TINY = 1e-12
_MAX_SYNCS = 100_000


@dataclass(frozen=True)
class StrategyPrediction:
    """Predicted behavior of one strategy on one loop."""

    strategy: str
    code: str
    total_time: float
    n_syncs: int
    n_moves: int
    work_moved: float
    group_finish_times: tuple[float, ...]

    def __lt__(self, other: "StrategyPrediction") -> bool:
        return self.total_time < other.total_time


@dataclass
class _GroupState:
    members: list[int]
    active: list[int]
    work: dict[int, float]
    now: float = 0.0
    done: bool = False
    syncs: int = 0
    moves: int = 0
    moved: float = 0.0


def _initial_work(loop: LoopSpec, n: int) -> list[float]:
    """Work of each processor's initial equal block (compiler default)."""
    table = loop.work_table()
    base, extra = divmod(loop.n_iterations, n)
    out = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(table.range_work(start, start + size) if size else 0.0)
        start += size
    return out


def _next_finish(stations: Sequence[Workstation], group: _GroupState
                 ) -> tuple[float, int]:
    """Earliest completion time among the group's active processors."""
    best_t, best_i = float("inf"), -1
    for i in group.active:
        w = group.work[i]
        t = group.now if w <= _TINY else stations[i].time_to_complete(
            group.now, w)
        if t < best_t or (t == best_t and i < best_i):
            best_t, best_i = t, i
    return best_t, best_i


def predict_strategy(loop: LoopSpec, cluster: ClusterSpec,
                     strategy: StrategySpec,
                     policy: Optional[DlbPolicy] = None,
                     comm: Optional[CommCostModel] = None,
                     group_size: int = 0,
                     stations: Optional[Sequence[Workstation]] = None,
                     movement_model: str = "overlap",
                     topology: Optional[Topology] = None
                     ) -> StrategyPrediction:
    """Solve the model for one strategy.

    ``stations`` may be supplied directly (the run-time decision process
    passes forecast workstations built from measured effective loads);
    otherwise they are built from ``cluster`` so model and simulation
    see the same load realization.

    ``topology`` feeds two places: the communication model (when no
    ``comm`` is supplied, the characterization runs on that graph) and
    the diffusion strategy's planner, whose flows follow its edges.
    """
    policy = policy or DlbPolicy()
    comm = comm or default_comm_model(topology=topology)
    if stations is None:
        stations = cluster.build()
    n = len(stations)
    if strategy.code == "NONE":
        return predict_no_dlb(loop, cluster, stations=stations)

    k = group_size or strategy.group_size or max(1, (n + 1) // 2)
    if strategy.global_scope:
        group_lists = [list(range(n))]
    else:
        group_lists = build_groups(n, k)

    costs = strategy_sync_costs(strategy, comm, policy,
                                movement_model=movement_model)
    table = loop.work_table()
    mean_iter = table.total_work / table.n
    initial = _initial_work(loop, n)
    movement_cost_fn = None
    if policy.include_movement_cost:
        movement_cost_fn = make_movement_cost_estimator(
            comm.latency, comm.bandwidth, loop.dc_bytes, mean_iter)

    if strategy.code == "DIFF":
        diff_topology = topology if topology is not None \
            else Topology.bus(n)

        def run_planner(profiles: Sequence[SyncProfile]):
            return plan_diffusion(profiles, diff_topology, policy,
                                  mean_iter, movement_cost_fn)
    else:
        def run_planner(profiles: Sequence[SyncProfile]):
            return plan_redistribution(profiles, policy, mean_iter,
                                       movement_cost_fn)

    groups = [_GroupState(members=m, active=list(m),
                          work={i: initial[i] for i in m})
              for m in group_lists]
    # The central balancer is one serial resource across all groups
    # (the LCDLB delay factor); distributed schemes have no such queue.
    lb_free = 0.0

    # Event loop over groups ordered by their next synchronization time.
    heap: list[tuple[float, int]] = []
    for gi, g in enumerate(groups):
        t, _ = _next_finish(stations, g)
        heapq.heappush(heap, (t, gi))

    total_syncs = 0
    while heap:
        t_sync, gi = heapq.heappop(heap)
        g = groups[gi]
        if g.done:
            continue
        # Recompute (work amounts may have changed since queued).
        t_now, _f = _next_finish(stations, g)
        if t_now > t_sync + _TINY:
            heapq.heappush(heap, (t_now, gi))
            continue
        t_sync = max(t_now, g.now)

        # -- progress all members to the synchronization point ----------
        rates: dict[int, float] = {}
        elapsed = t_sync - g.now
        for i in g.active:
            ws = stations[i]
            cap = ws.capacity(g.now, t_sync) if elapsed > _TINY else 0.0
            done_work = min(cap, g.work[i])
            g.work[i] -= done_work
            if g.work[i] < _TINY:
                g.work[i] = 0.0
            # Average effective speed S_i/mu_i over the window (§4.2).
            rates[i] = (ws.average_effective_speed(g.now, t_sync)
                        if elapsed > _TINY else ws.speed)
        g.now = t_sync
        g.syncs += 1
        total_syncs += 1
        if total_syncs > _MAX_SYNCS:  # pragma: no cover - safety net
            raise RuntimeError("model did not converge (too many syncs)")

        # -- synchronization communication -------------------------------
        k_active = len(g.active)
        overhead = costs.synchronization(k_active)

        # -- central balancer queueing (delay factor) ---------------------
        service = costs.calculation()
        if strategy.centralized:
            start = max(g.now + overhead, lb_free)
            wait = start - (g.now + overhead)
            lb_free = start + service
            overhead += wait + service
        else:
            overhead += service

        # -- plan with the shared decision logic --------------------------
        profiles = [SyncProfile(node=i, remaining_work=g.work[i],
                                remaining_count=max(
                                    1, int(round(g.work[i] / mean_iter)))
                                if g.work[i] > 0 else 0,
                                rate=rates[i])
                    for i in sorted(g.active)]
        plan = run_planner(profiles)

        if plan.done:
            g.now += overhead
            g.done = True
            continue

        # Instructions go to every active member (see SyncCosts docs).
        overhead += costs.instructions(k_active)
        if plan.move:
            overhead += costs.data_movement(
                tuple(t.work for t in plan.transfers),
                loop.dc_bytes, mean_iter)
            g.moves += 1
            g.moved += plan.work_to_move
            for i in list(g.work):
                g.work[i] = plan.shares.get(i, 0.0)
        g.active = [i for i in g.active if i in plan.active]
        g.now += overhead

        if not g.active:
            g.done = True
            continue
        t_next, _ = _next_finish(stations, g)
        heapq.heappush(heap, (t_next, gi))

    finish_times = tuple(g.now for g in groups)
    return StrategyPrediction(
        strategy=strategy.name, code=strategy.code,
        total_time=max(finish_times),
        n_syncs=sum(g.syncs for g in groups),
        n_moves=sum(g.moves for g in groups),
        work_moved=sum(g.moved for g in groups),
        group_finish_times=finish_times)


def predict_no_dlb(loop: LoopSpec, cluster: ClusterSpec,
                   stations: Optional[Sequence[Workstation]] = None
                   ) -> StrategyPrediction:
    """Static equal-block baseline: time of the slowest processor."""
    if stations is None:
        stations = cluster.build()
    initial = _initial_work(loop, len(stations))
    finish = tuple(
        stations[i].time_to_complete(0.0, w) if w > 0 else 0.0
        for i, w in enumerate(initial))
    return StrategyPrediction(strategy=NO_DLB.name, code=NO_DLB.code,
                              total_time=max(finish), n_syncs=0, n_moves=0,
                              work_moved=0.0, group_finish_times=finish)


def rank_strategies(loop: LoopSpec, cluster: ClusterSpec,
                    policy: Optional[DlbPolicy] = None,
                    comm: Optional[CommCostModel] = None,
                    group_size: int = 0,
                    strategies: Sequence[StrategySpec] = ALL_DLB_STRATEGIES,
                    stations: Optional[Sequence[Workstation]] = None,
                    movement_model: str = "overlap",
                    topology: Optional[Topology] = None
                    ) -> list[StrategyPrediction]:
    """Predict every strategy and sort best-first (the §4.3 decision).

    Note: each prediction rebuilds the cluster's workstations so every
    strategy sees the *same* load realization.
    """
    out = []
    for spec in strategies:
        st = list(stations) if stations is not None else cluster.build()
        out.append(predict_strategy(loop, cluster, spec, policy=policy,
                                    comm=comm, group_size=group_size,
                                    stations=st,
                                    movement_model=movement_model,
                                    topology=topology))
    return sorted(out)
