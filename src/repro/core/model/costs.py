"""Per-synchronization cost terms of the §4.2 model.

The cost of one synchronization point decomposes into:

* **synchronization** ``sigma`` — the interrupt broadcast plus the
  profile exchange, expressed through the characterized communication
  patterns: ``one-to-all(K) + all-to-one(K)`` for the centralized
  schemes and ``one-to-all(K) + all-to-all(K)`` for the distributed
  ones;
* **distribution calculation** ``delta`` — small, replicated in the
  distributed schemes (same wall time), plus two context switches when
  the balancer shares the master with a computation slave;
* **instruction send** ``iota = gamma * L`` — centralized only;
* **data movement** ``Delta = gamma * L + moved * DC / B`` (eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ...network.characterization import CommCostModel, characterize_network
from ...network.parameters import NetworkParameters
from ...network.topology import Topology, TopologySpec
from ..policy import DlbPolicy
from ..strategies.base import StrategySpec

__all__ = ["SyncCosts", "strategy_sync_costs", "default_comm_model"]


@lru_cache(maxsize=16)
def _characterize_cached(params: NetworkParameters,
                         topology: "str | Topology | None") -> CommCostModel:
    return characterize_network(params, topology=topology)


def default_comm_model(params: NetworkParameters | None = None,
                       topology: TopologySpec = None) -> CommCostModel:
    """The off-line characterization for ``params`` (cached).

    ``topology`` keys the cache too: pattern costs measured on a ring
    differ from the bus, which is how the customization decision can
    pick differently per topology.  ``None`` and ``"bus"`` share the
    seed behavior (the shared-bus fits, no neighbor-exchange fit).
    """
    if topology == "bus":
        topology = None
    return _characterize_cached(params or NetworkParameters(), topology)


@dataclass(frozen=True)
class SyncCosts:
    """Closed-form cost terms for one strategy's synchronization.

    ``movement_model`` selects how eq. 5 charges data movement to the
    group timeline: ``"serial"`` is the paper's literal form (all moved
    bytes serialize into the clock), ``"overlap"`` (default) charges the
    largest single transfer — transfers to distinct receivers overlap
    with each other and with resumed computation, which matches the
    event simulation far better on big reshuffles.
    """

    comm: CommCostModel
    policy: DlbPolicy
    centralized: bool
    movement_model: str = "overlap"

    def synchronization(self, k_active: int) -> float:
        """``sigma`` for a group with ``k_active`` members."""
        if k_active <= 1:
            return 0.0
        if self.centralized:
            return (self.comm.one_to_all(k_active)
                    + self.comm.all_to_one(k_active))
        return (self.comm.one_to_all(k_active)
                + self.comm.all_to_all(k_active))

    def calculation(self) -> float:
        """``delta`` (+ context switches for a co-located balancer)."""
        if self.centralized:
            return (self.policy.delta_seconds
                    + 2.0 * self.policy.context_switch_seconds)
        return self.policy.delta_seconds

    def instructions(self, n_messages: int) -> float:
        """``iota = gamma * L``; zero for the distributed schemes.

        The paper's implementation sends instructions only to the
        ``gamma`` movers; ours notifies every active member (they must
        learn the new active set), so callers pass the member count.
        """
        if not self.centralized or n_messages <= 0:
            return 0.0
        return self.comm.movement_time(0.0, n_messages)

    def data_movement(self, transfer_works: "tuple[float, ...]",
                      dc_bytes: int, mean_iteration_time: float) -> float:
        """Eq. 5: ``gamma * L +`` (moved data) ``/ B``.

        ``transfer_works`` holds the work of each transfer order; the
        byte volume charged depends on :attr:`movement_model`.
        """
        if not transfer_works:
            return 0.0
        gamma = len(transfer_works)
        if self.movement_model == "serial":
            volume = sum(transfer_works)
        else:
            volume = max(transfer_works)
        iterations = volume / mean_iteration_time
        return self.comm.movement_time(iterations * dc_bytes, gamma)


def strategy_sync_costs(strategy: StrategySpec, comm: CommCostModel,
                        policy: DlbPolicy,
                        movement_model: str = "overlap") -> SyncCosts:
    if movement_model not in ("overlap", "serial"):
        raise ValueError("movement_model must be 'overlap' or 'serial'")
    return SyncCosts(comm=comm, policy=policy,
                     centralized=strategy.centralized,
                     movement_model=movement_model)
