"""The strategy repertoire the compiler customizes over (§3.5, §4.3)."""

from __future__ import annotations

from .base import StrategySpec

__all__ = [
    "GCDLB",
    "GDDLB",
    "LCDLB",
    "LDDLB",
    "NO_DLB",
    "CUSTOMIZED",
    "WORK_STEALING",
    "DIFFUSION",
    "ALL_DLB_STRATEGIES",
    "STRATEGY_ORDER",
    "get_strategy",
    "strategies_for_topology",
]

#: Global Centralized: one balancer on the master; everyone synchronizes.
GCDLB = StrategySpec(code="GC", name="GCDLB", centralized=True,
                     global_scope=True)

#: Global Distributed: balancer replicated; profiles broadcast to all.
GDDLB = StrategySpec(code="GD", name="GDDLB", centralized=False,
                     global_scope=True)

#: Local Centralized: K-block groups; one asynchronous central balancer.
LCDLB = StrategySpec(code="LC", name="LCDLB", centralized=True,
                     global_scope=False)

#: Local Distributed: K-block groups; balancer replicated within groups.
LDDLB = StrategySpec(code="LD", name="LDDLB", centralized=False,
                     global_scope=False)

#: Static equal-block partition under external load (the "no DLB" bars).
NO_DLB = StrategySpec(code="NONE", name="NoDLB", centralized=False,
                      global_scope=True)

#: Hybrid compile/run-time customization (§4.3): selects one of the four.
CUSTOMIZED = StrategySpec(code="CUSTOM", name="Customized", centralized=True,
                          global_scope=True)

#: Random-victim work stealing (the Phish model of §2.2) — a contrast
#: baseline with no synchronization points at all.
WORK_STEALING = StrategySpec(code="WS", name="WorkStealing",
                             centralized=False, global_scope=True)

#: Diffusion balancing (Demirel & Sbalzarini): distributed, replicated
#: planning like GDDLB, but work flows only along topology edges in
#: iterative nearest-neighbor sweeps.  Degenerate on the shared bus
#: (complete adjacency, one global wire), so it enters the
#: customization repertoire only on graph topologies — see
#: :func:`strategies_for_topology`.
DIFFUSION = StrategySpec(code="DIFF", name="Diffusion",
                         centralized=False, global_scope=True)

ALL_DLB_STRATEGIES = (GCDLB, GDDLB, LCDLB, LDDLB)

#: Canonical presentation order used by figures and tables.
STRATEGY_ORDER = ("GC", "GD", "LC", "LD")

_BY_KEY = {s.code: s for s in
           (GCDLB, GDDLB, LCDLB, LDDLB, NO_DLB, CUSTOMIZED, WORK_STEALING,
            DIFFUSION)}
_BY_KEY.update({s.name.upper(): s for s in
                (GCDLB, GDDLB, LCDLB, LDDLB, NO_DLB, CUSTOMIZED,
                 WORK_STEALING, DIFFUSION)})


def strategies_for_topology(topology=None) -> tuple[StrategySpec, ...]:
    """The repertoire the customization decision ranks on a topology.

    On the shared bus (``None`` or a ``shared_medium`` topology) this is
    exactly the paper's four schemes — the seed behavior.  On a graph
    topology, diffusion joins the comparison: its edge-restricted
    transfers can beat the eq.-3 schemes when routes are long.
    """
    if topology is None or getattr(topology, "shared_medium", False):
        return ALL_DLB_STRATEGIES
    return ALL_DLB_STRATEGIES + (DIFFUSION,)


def get_strategy(key: str) -> StrategySpec:
    """Look up a strategy by code ("GD") or name ("GDDLB"), any case."""
    spec = _BY_KEY.get(key.upper())
    if spec is None:
        raise KeyError(f"unknown strategy {key!r}; known: "
                       f"{sorted(set(s.name for s in _BY_KEY.values()))}")
    return spec
