"""DLB strategy taxonomy and registry (S6, paper §3.5)."""

from .base import StrategySpec
from .registry import (
    ALL_DLB_STRATEGIES,
    CUSTOMIZED,
    DIFFUSION,
    GCDLB,
    GDDLB,
    LCDLB,
    LDDLB,
    NO_DLB,
    STRATEGY_ORDER,
    WORK_STEALING,
    get_strategy,
    strategies_for_topology,
)

__all__ = [
    "ALL_DLB_STRATEGIES",
    "CUSTOMIZED",
    "DIFFUSION",
    "GCDLB",
    "GDDLB",
    "LCDLB",
    "LDDLB",
    "NO_DLB",
    "STRATEGY_ORDER",
    "StrategySpec",
    "WORK_STEALING",
    "get_strategy",
    "strategies_for_topology",
]
