"""Strategy taxonomy (paper §3.5): the two axes and the four extremes.

A strategy is a point on two axes:

* **information scope** — *global* (all processors synchronize and the
  decision sees every profile) vs. *local* (processors are statically
  partitioned into K-block groups; decisions and work movement stay
  within a group);
* **decision placement** — *centralized* (one load balancer on the
  master processor, which also computes) vs. *distributed* (the balancer
  is replicated on every processor and profiles are broadcast).

The protocol engine in :mod:`repro.runtime` is parametric in these two
booleans, so each strategy class here is a thin, well-named
configuration — mirroring how the paper treats the four schemes as the
extreme points of one design space.

Because the taxonomy is configuration, cross-cutting machinery applies
to all four schemes uniformly: the fault-tolerance hardening (timed
receives, retries, fencing, orphan reclamation — see
``docs/FAULT_MODEL.md``) lives in the shared protocol engine, not in
any strategy, so every scheme survives the same fault plans without
per-strategy code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["StrategySpec"]


@dataclass(frozen=True)
class StrategySpec:
    """One dynamic load balancing strategy.

    Attributes
    ----------
    code:
        Short id used in the paper's tables: "GC", "GD", "LC", "LD" (and
        "NONE" for the static no-DLB baseline, "CUSTOM" for the hybrid
        model-driven selection).
    name:
        The paper's full acronym, e.g. ``"GCDLB"``.
    centralized:
        True when one load balancer lives on the master processor.
    global_scope:
        True when all processors form a single synchronization domain.
    group_size:
        ``K`` for local strategies; ``None`` means "use the run option"
        (the paper's experiments use two groups, i.e. ``K = P/2``).
    """

    code: str
    name: str
    centralized: bool
    global_scope: bool
    group_size: Optional[int] = None

    @property
    def is_dlb(self) -> bool:
        """Whether the strategy performs any dynamic balancing at all."""
        return self.code not in ("NONE",)

    @property
    def distributed(self) -> bool:
        return not self.centralized

    @property
    def local(self) -> bool:
        return not self.global_scope

    def describe(self) -> str:
        if self.code == "NONE":
            return "static equal-block partition, no dynamic balancing"
        if self.code == "CUSTOM":
            return ("hybrid compile/run-time selection: run to the first "
                    "synchronization point, evaluate the model, commit")
        if self.code == "WS":
            return ("random-victim work stealing (receiver-initiated, "
                    "no synchronization points)")
        if self.code == "DIFF":
            return ("first-order diffusion: replicated planning, work "
                    "flows only along topology edges")
        scope = "global" if self.global_scope else "local"
        place = "centralized" if self.centralized else "distributed"
        return f"{scope} {place} interrupt-based receiver-initiated DLB"

    def with_group_size(self, k: int) -> "StrategySpec":
        return StrategySpec(code=self.code, name=self.name,
                            centralized=self.centralized,
                            global_scope=self.global_scope, group_size=k)
