"""Robustness experiment: completion rate and slowdown under faults.

The paper's experiments assume a reliable network of workstations; this
module measures what the reproduction's hardened runtime (see
``docs/FAULT_MODEL.md``) pays when that assumption breaks.  For every
strategy and fault scenario it runs seeded fault injections and reports

* **completion rate** — the fraction of runs that finished with the
  exactly-once coverage invariant intact (a run that loses or
  duplicates iterations, or dies on an unrecoverable fault, counts as
  failed), and
* **slowdown** — completed-run duration divided by the same seed's
  fault-free duration (detection timeouts, retries and reclaimed-work
  re-execution all show up here).

Usage::

    from repro.experiments.faults import fault_sweep, render_fault_sweep
    result = fault_sweep(seeds=(1000, 1001, 1002))
    print(render_fault_sweep(result))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..apps.workload import LoopSpec
from ..faults import (
    CrashFault,
    FaultPlan,
    MessageDropFault,
    SlowdownFault,
)
from ..machine.cluster import ClusterSpec
from ..runtime.executor import CoverageError, run_loop
from ..runtime.options import FaultToleranceConfig, RunOptions
from ..simulation import FaultError, SimulationError
from .config import TABLE_SCHEMES

__all__ = [
    "FaultCell",
    "FaultScenario",
    "FaultSweepResult",
    "fault_sweep",
    "render_fault_sweep",
    "standard_scenarios",
]

#: plan factory signature: (baseline_duration, n_processors, seed) -> plan
PlanFactory = Callable[[float, int, int], FaultPlan]


@dataclass(frozen=True)
class FaultScenario:
    """One named fault regime, instantiated per seed against the
    measured fault-free duration of that seed's run."""

    name: str
    description: str
    make_plan: PlanFactory


def standard_scenarios() -> tuple[FaultScenario, ...]:
    """The default regimes of the robustness sweep."""

    def crash_mid(duration: float, n: int, seed: int) -> FaultPlan:
        victim = 1 + seed % (n - 1)
        return FaultPlan(
            crashes=(CrashFault(node=victim, time=0.4 * duration),),
            seed=seed)

    def crash_late(duration: float, n: int, seed: int) -> FaultPlan:
        victim = 1 + seed % (n - 1)
        return FaultPlan(
            crashes=(CrashFault(node=victim, time=0.8 * duration),),
            seed=seed)

    def drop_storm(duration: float, n: int, seed: int) -> FaultPlan:
        return FaultPlan(
            drops=(MessageDropFault(probability=0.3, max_drops=6),),
            seed=seed)

    def freeze(duration: float, n: int, seed: int) -> FaultPlan:
        victim = 1 + seed % (n - 1)
        return FaultPlan(
            slowdowns=(SlowdownFault(node=victim, time=0.3 * duration,
                                     duration=0.25 * duration),),
            seed=seed)

    return (
        FaultScenario("crash-mid", "one node dies at 40% of the run",
                      crash_mid),
        FaultScenario("crash-late", "one node dies at 80% of the run",
                      crash_late),
        FaultScenario("drop-storm", "30% drop chance on the next 6 messages",
                      drop_storm),
        FaultScenario("freeze", "one node frozen for 25% of the run",
                      freeze),
    )


@dataclass
class FaultCell:
    """Aggregated outcome of one (scenario, strategy) pair."""

    scenario: str
    scheme: str
    n_runs: int = 0
    n_completed: int = 0
    slowdowns: list[float] = field(default_factory=list)
    retries: int = 0
    reclaimed: int = 0
    salvaged: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        return self.n_completed / self.n_runs if self.n_runs else 0.0

    @property
    def mean_slowdown(self) -> float:
        if not self.slowdowns:
            return float("nan")
        return sum(self.slowdowns) / len(self.slowdowns)


@dataclass
class FaultSweepResult:
    """All cells of one robustness sweep."""

    loop_name: str
    n_processors: int
    schemes: tuple[str, ...]
    scenarios: tuple[str, ...]
    seeds: tuple[int, ...]
    cells: dict[tuple[str, str], FaultCell]

    def cell(self, scenario: str, scheme: str) -> FaultCell:
        return self.cells[(scenario, scheme)]


def _default_loop() -> LoopSpec:
    return LoopSpec(name="mxm-small", n_iterations=128,
                    iteration_time=0.008, dc_bytes=1600)


def fault_sweep(loop: Optional[LoopSpec] = None,
                n_processors: int = 4,
                schemes: Sequence[str] = TABLE_SCHEMES,
                scenarios: Optional[Sequence[FaultScenario]] = None,
                seeds: Sequence[int] = (1000, 1001, 1002),
                max_load: int = 3,
                persistence: float = 0.5,
                ft: Optional[FaultToleranceConfig] = None,
                options: Optional[RunOptions] = None) -> FaultSweepResult:
    """Run the robustness sweep: schemes x scenarios x seeds.

    Per seed, each scheme first runs fault-free (the slowdown baseline
    and the duration the scenario's fault times are anchored to), then
    once per scenario with that scenario's plan injected.
    """
    loop = loop or _default_loop()
    scenarios = tuple(scenarios if scenarios is not None
                      else standard_scenarios())
    options = options or RunOptions()
    if ft is None:
        # Detection knobs scaled to the workload: patience of a few
        # dozen iterations rather than the conservative library default.
        base = max(10.0 * loop.mean_iteration_time, 0.05)
        ft = FaultToleranceConfig(enabled=False, request_timeout=base,
                                  backoff=2.0, max_retries=4,
                                  liveness_timeout=3.0 * base)
    # Keep ``enabled`` as given (False = vanilla baseline runs): the
    # executor auto-enables fault tolerance for the injected runs while
    # reusing these timeout knobs.
    options = options.but(fault_tolerance=ft)
    cells = {(sc.name, scheme): FaultCell(scenario=sc.name, scheme=scheme)
             for sc in scenarios for scheme in schemes}

    for seed in seeds:
        cluster = ClusterSpec.homogeneous(
            n_processors, max_load=max_load, persistence=persistence,
            seed=seed)
        for scheme in schemes:
            baseline = run_loop(loop, cluster, scheme, options=options)
            for sc in scenarios:
                plan = sc.make_plan(baseline.duration, n_processors, seed)
                cell = cells[(sc.name, scheme)]
                cell.n_runs += 1
                try:
                    stats = run_loop(loop, cluster, scheme,
                                     options=options, fault_plan=plan)
                except (CoverageError, FaultError, SimulationError) as exc:
                    cell.failures.append(f"seed {seed}: {exc}")
                    continue
                cell.n_completed += 1
                cell.slowdowns.append(stats.duration / baseline.duration)
                cell.retries += stats.fault_retries
                cell.reclaimed += stats.reclaimed_iterations
                cell.salvaged += stats.salvaged_iterations

    return FaultSweepResult(
        loop_name=loop.name, n_processors=n_processors,
        schemes=tuple(schemes), scenarios=tuple(s.name for s in scenarios),
        seeds=tuple(seeds), cells=cells)


def render_fault_sweep(result: FaultSweepResult) -> str:
    """Completion-rate / slowdown table, scenarios down, schemes across."""
    width = 18
    head = f"{'scenario':<14s}" + "".join(
        f"{s:>{width}s}" for s in result.schemes)
    title = (f"== robustness: {result.loop_name} P={result.n_processors} "
             f"({len(result.seeds)} seed"
             f"{'s' if len(result.seeds) != 1 else ''}; "
             f"completion rate / mean slowdown) ==")
    lines = [title, head, "-" * len(head)]
    for scenario in result.scenarios:
        row = f"{scenario:<14s}"
        for scheme in result.schemes:
            cell = result.cell(scenario, scheme)
            if cell.n_completed:
                entry = (f"{cell.completion_rate:4.0%} /"
                         f"{cell.mean_slowdown:6.2f}x")
            else:
                entry = f"{cell.completion_rate:4.0%} /     -"
            row += f"{entry:>{width}s}"
        lines.append(row)
    lines.append("-" * len(head))
    lines.append("slowdown = faulted duration / same-seed fault-free "
                 "duration; only completed runs counted")
    failures = [f"  {scenario}/{scheme}: {msg}"
                for (scenario, scheme), cell in sorted(result.cells.items())
                for msg in cell.failures]
    if failures:
        lines.append("failures:")
        lines.extend(failures)
    return "\n".join(lines)
