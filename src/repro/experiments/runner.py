"""Multi-seed experiment execution: measured and predicted times.

One *measurement* is the mean loop execution time over the configured
load-realization seeds; one *prediction* evaluates the §4.2 model on
the same seeds.  Orders derived from both feed the paper's Tables 1–2;
normalized means feed Figures 5–8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..apps.workload import LoopSpec
from ..core.model.costs import default_comm_model
from ..core.model.predictor import predict_strategy
from ..core.strategies.registry import get_strategy
from ..machine.cluster import ClusterSpec
from ..network.topology import resolve_topology
from ..runtime.executor import run_loop
from ..runtime.options import RunOptions
from .config import ExperimentConfig, TABLE_SCHEMES

__all__ = ["Measurement", "measure_loop", "predict_loop",
            "measured_order", "predicted_order", "order_agreement"]


@dataclass
class Measurement:
    """Mean and per-seed samples of one (loop, P, scheme) cell."""

    scheme: str
    times: list[float] = field(default_factory=list)
    syncs: list[int] = field(default_factory=list)
    moves: list[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.times))

    @property
    def std(self) -> float:
        return float(np.std(self.times))

    @property
    def mean_syncs(self) -> float:
        return float(np.mean(self.syncs)) if self.syncs else 0.0


def _cluster(n_processors: int, seed: int,
             config: ExperimentConfig) -> ClusterSpec:
    return ClusterSpec.homogeneous(
        n_processors, max_load=config.max_load,
        persistence=config.persistence, seed=seed)


def measure_loop(loop: LoopSpec, n_processors: int, scheme: str,
                 config: ExperimentConfig,
                 seeds: Optional[Sequence[int]] = None,
                 topology: Optional[str] = None) -> Measurement:
    """Run the event simulation over all seeds for one scheme."""
    seeds = tuple(seeds) if seeds is not None else config.seeds
    options = RunOptions(policy=config.policy, network=config.network,
                         group_size=config.group_size(n_processors),
                         topology=topology)
    out = Measurement(scheme=scheme)
    for seed in seeds:
        stats = run_loop(loop, _cluster(n_processors, seed, config),
                         scheme, options=options)
        out.times.append(stats.duration)
        out.syncs.append(stats.n_syncs)
        out.moves.append(stats.n_redistributions)
    return out


def predict_loop(loop: LoopSpec, n_processors: int, scheme: str,
                 config: ExperimentConfig,
                 seeds: Optional[Sequence[int]] = None,
                 movement_model: str = "overlap",
                 topology: Optional[str] = None) -> Measurement:
    """Evaluate the §4.2 model over the same seeds for one scheme."""
    seeds = tuple(seeds) if seeds is not None else config.seeds
    resolved = None
    if topology is not None:
        resolved = resolve_topology(topology, n_processors)
        if resolved.shared_medium:
            resolved = None
    comm = default_comm_model(config.network, topology=resolved)
    spec = get_strategy(scheme)
    out = Measurement(scheme=scheme)
    for seed in seeds:
        pred = predict_strategy(
            loop, _cluster(n_processors, seed, config), spec,
            policy=config.policy, comm=comm,
            group_size=config.group_size(n_processors),
            movement_model=movement_model, topology=resolved)
        out.times.append(pred.total_time)
        out.syncs.append(pred.n_syncs)
        out.moves.append(pred.n_moves)
    return out


def measured_order(loop: LoopSpec, n_processors: int,
                   config: ExperimentConfig,
                   schemes: Sequence[str] = TABLE_SCHEMES
                   ) -> tuple[tuple[str, ...], dict[str, Measurement]]:
    """Rank schemes by mean simulated time (best first)."""
    cells = {s: measure_loop(loop, n_processors, s, config) for s in schemes}
    order = tuple(sorted(schemes, key=lambda s: cells[s].mean))
    return order, cells


def predicted_order(loop: LoopSpec, n_processors: int,
                    config: ExperimentConfig,
                    schemes: Sequence[str] = TABLE_SCHEMES,
                    movement_model: str = "overlap"
                    ) -> tuple[tuple[str, ...], dict[str, Measurement]]:
    """Rank schemes by mean model-predicted time (best first)."""
    cells = {s: predict_loop(loop, n_processors, s, config,
                             movement_model=movement_model)
             for s in schemes}
    order = tuple(sorted(schemes, key=lambda s: cells[s].mean))
    return order, cells


def order_agreement(actual: Sequence[str], predicted: Sequence[str]) -> float:
    """Fraction of scheme pairs ranked identically (Kendall-style).

    1.0 = identical orders; 0.0 = fully reversed.  The paper claims the
    predicted orders match "very closely" (MXM) / "reasonably" (TRFD).
    """
    if set(actual) != set(predicted):
        raise ValueError("orders rank different scheme sets")
    rank_a = {s: i for i, s in enumerate(actual)}
    rank_p = {s: i for i, s in enumerate(predicted)}
    schemes = list(actual)
    agree = total = 0
    for i in range(len(schemes)):
        for j in range(i + 1, len(schemes)):
            a, b = schemes[i], schemes[j]
            same = ((rank_a[a] - rank_a[b]) * (rank_p[a] - rank_p[b])) > 0
            agree += 1 if same else 0
            total += 1
    return agree / total if total else 1.0
