"""Generic parameter sweeps over the DLB system.

A sweep varies one knob (persistence, group size, improvement
threshold, sync period, ...) across a value grid, runs every strategy
of interest at every point over the configured seeds, and returns a
:class:`SweepResult` that renders as a table or exports through
:mod:`repro.experiments.export`-compatible CSV.

The ablation benchmarks are hand-written for their specific claims;
this module is the general tool a user reaches for when exploring a
new regime ("where exactly does LD overtake GD as I shrink the
iteration size?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..apps.workload import LoopSpec
from ..machine.cluster import ClusterSpec
from ..runtime.executor import run_loop
from ..runtime.options import RunOptions
from .config import ExperimentConfig

__all__ = ["SweepPoint", "SweepResult", "sweep", "topology_sweep", "KNOBS"]


def _set_persistence(config, options, value):
    from dataclasses import replace
    return replace(config, persistence=float(value)), options


def _set_group_size(config, options, value):
    return config, options.but(group_size=int(value))


def _set_improvement(config, options, value):
    return config, options.but(
        policy=options.policy.but(improvement_threshold=float(value)))


def _set_sync_period(config, options, value):
    return config, options.but(sync_mode="periodic",
                               sync_period=float(value))


def _set_max_load(config, options, value):
    from dataclasses import replace
    return replace(config, max_load=int(value)), options


#: Knob name -> (config, options, value) -> (config, options)
KNOBS: dict[str, Callable] = {
    "persistence": _set_persistence,
    "group_size": _set_group_size,
    "improvement_threshold": _set_improvement,
    "sync_period": _set_sync_period,
    "max_load": _set_max_load,
}


@dataclass
class SweepPoint:
    value: float
    means: dict[str, float]
    stds: dict[str, float] = field(default_factory=dict)
    #: Display label for non-numeric axes (e.g. a topology name);
    #: rendered instead of ``value`` when set.
    label: str = ""

    def best(self) -> str:
        return min(self.means, key=self.means.get)


@dataclass
class SweepResult:
    knob: str
    schemes: tuple[str, ...]
    points: list[SweepPoint]

    def render(self) -> str:
        head = f"{self.knob:>22s}" + "".join(f"{s:>10s}"
                                             for s in self.schemes)
        lines = [head, "-" * len(head)]
        for p in self.points:
            axis = p.label or format(p.value, "g")
            lines.append(f"{axis:>22s}" + "".join(
                f"{p.means[s]:>10.3f}" for s in self.schemes))
        return "\n".join(lines)

    def crossover(self, a: str, b: str) -> float | None:
        """First knob value at which scheme ``b`` overtakes ``a``."""
        for p in self.points:
            if p.means[b] < p.means[a]:
                return p.value
        return None


def sweep(loop: LoopSpec, n_processors: int, knob: str,
          values: Sequence[float],
          schemes: Sequence[str] = ("GC", "GD", "LC", "LD"),
          config: ExperimentConfig | None = None,
          options: RunOptions | None = None) -> SweepResult:
    """Run the sweep.  See module docstring."""
    if knob not in KNOBS:
        raise KeyError(f"unknown knob {knob!r}; known: {sorted(KNOBS)}")
    base_config = config or ExperimentConfig()
    base_options = options or RunOptions(policy=base_config.policy,
                                         network=base_config.network)
    apply_knob = KNOBS[knob]
    points = []
    for value in values:
        cfg, opts = apply_knob(base_config, base_options, value)
        if not opts.group_size:
            opts = opts.but(group_size=cfg.group_size(n_processors))
        means = {}
        stds = {}
        for scheme in schemes:
            times = []
            for seed in cfg.seeds:
                cluster = ClusterSpec.homogeneous(
                    n_processors, max_load=cfg.max_load,
                    persistence=cfg.persistence, seed=seed)
                times.append(run_loop(loop, cluster, scheme,
                                      options=opts).duration)
            means[scheme] = float(np.mean(times))
            stds[scheme] = float(np.std(times))
        points.append(SweepPoint(value=float(value), means=means,
                                 stds=stds))
    return SweepResult(knob=knob, schemes=tuple(schemes), points=points)


def topology_sweep(loop: LoopSpec, n_processors: int,
                   topologies: Sequence[str] = ("bus", "ring", "mesh",
                                                "torus"),
                   schemes: Sequence[str] = ("GD", "LD", "DIFF"),
                   config: ExperimentConfig | None = None,
                   options: RunOptions | None = None) -> SweepResult:
    """Sweep the network graph instead of a numeric knob.

    Every scheme runs on every topology over the configured seeds — the
    experiment behind the topology figure/table: how much the winning
    strategy (and diffusion's competitiveness) depends on the wiring.
    ``DIFF`` on ``bus`` runs on the complete adjacency, its degenerate
    shared-medium case.
    """
    cfg = config or ExperimentConfig()
    base_options = options or RunOptions(policy=cfg.policy,
                                         network=cfg.network)
    points = []
    for i, topology in enumerate(topologies):
        opts = base_options.but(topology=topology)
        if not opts.group_size:
            opts = opts.but(group_size=cfg.group_size(n_processors))
        means = {}
        stds = {}
        for scheme in schemes:
            times = []
            for seed in cfg.seeds:
                cluster = ClusterSpec.homogeneous(
                    n_processors, max_load=cfg.max_load,
                    persistence=cfg.persistence, seed=seed)
                times.append(run_loop(loop, cluster, scheme,
                                      options=opts).duration)
            means[scheme] = float(np.mean(times))
            stds[scheme] = float(np.std(times))
        points.append(SweepPoint(value=float(i), means=means, stds=stds,
                                 label=str(topology)))
    return SweepResult(knob="topology", schemes=tuple(schemes),
                       points=points)
