"""Regeneration of the paper's figures (data series, not pixels).

* :func:`figure4` — communication cost characterization: measured points
  and polynomial fits for OA / AO / AA over 2..16 processors.
* :func:`figure5` / :func:`figure6` — MXM normalized execution time on
  4 / 16 processors over the paper's data sizes.
* :func:`figure7` / :func:`figure8` — TRFD normalized execution time on
  4 / 16 processors for N = 30, 40, 50.

Bars are normalized to the *no-DLB* run of the same configuration
(no-DLB ≡ 1.0); the paper's claims — which scheme wins, by roughly what
factor, and where the order flips — are invariant to the normalization
reference (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..apps.mxm import MxmConfig, mxm_loop
from ..apps.trfd import TrfdConfig, trfd_loop1, trfd_loop2
from ..apps.workload import LoopSpec
from ..network.characterization import characterize_network
from .config import DEFAULT_CONFIG, ExperimentConfig, FIGURE_SCHEMES, \
    MXM_SIZES, TRFD_SIZES
from .runner import Measurement, measure_loop

__all__ = ["FigureRow", "FigureResult", "figure2", "figure4", "figure5",
           "figure6", "figure7", "figure8", "figure_topology",
           "mxm_figure", "trfd_figure"]


@dataclass
class FigureRow:
    """One group of bars: a configuration and its per-scheme values."""

    label: str
    normalized: dict[str, float]
    raw: dict[str, Measurement] = field(default_factory=dict)

    def best(self) -> str:
        dlb = {k: v for k, v in self.normalized.items() if k != "NONE"}
        return min(dlb, key=dlb.get)


@dataclass
class FigureResult:
    """All the data needed to redraw one figure."""

    figure_id: str
    title: str
    rows: list[FigureRow]
    meta: dict = field(default_factory=dict)

    def scheme_means(self, scheme: str) -> list[float]:
        return [row.normalized[scheme] for row in self.rows]


def _figure_rows(loops: list[tuple[str, LoopSpec]], n_processors: int,
                 config: ExperimentConfig) -> list[FigureRow]:
    rows = []
    for label, loop in loops:
        cells = {s: measure_loop(loop, n_processors, s, config)
                 for s in FIGURE_SCHEMES}
        base = cells["NONE"].mean
        rows.append(FigureRow(
            label=label,
            normalized={s: cells[s].mean / base for s in FIGURE_SCHEMES},
            raw=cells))
    return rows


def mxm_figure(n_processors: int,
               config: Optional[ExperimentConfig] = None,
               sizes: Optional[tuple[MxmConfig, ...]] = None) -> FigureResult:
    """MXM normalized execution time for one processor count."""
    config = config or DEFAULT_CONFIG
    sizes = sizes or MXM_SIZES[n_processors]
    loops = [(cfg.label, mxm_loop(cfg, op_seconds=config.mxm_op_seconds))
             for cfg in sizes]
    fig_id = "5" if n_processors == 4 else "6"
    return FigureResult(
        figure_id=f"figure{fig_id}",
        title=f"Matrix multiplication (P={n_processors})",
        rows=_figure_rows(loops, n_processors, config),
        meta=dict(n_processors=n_processors, seeds=config.seeds))


def trfd_figure(n_processors: int,
                config: Optional[ExperimentConfig] = None,
                n_values: tuple[int, ...] = TRFD_SIZES) -> FigureResult:
    """TRFD normalized *total loop* execution time (L1 + L2).

    The intervening transpose is sequential and identical across
    schemes; the paper's bars compare the load-balanced portions.
    """
    config = config or DEFAULT_CONFIG
    rows = []
    for n in n_values:
        cfg = TrfdConfig(n)
        l1 = trfd_loop1(cfg, op_seconds=config.trfd_op_seconds)
        l2 = trfd_loop2(cfg, op_seconds=config.trfd_op_seconds)
        cells: dict[str, Measurement] = {}
        for scheme in FIGURE_SCHEMES:
            m1 = measure_loop(l1, n_processors, scheme, config)
            m2 = measure_loop(l2, n_processors, scheme, config)
            combined = Measurement(scheme=scheme,
                                   times=[a + b for a, b in
                                          zip(m1.times, m2.times)],
                                   syncs=[a + b for a, b in
                                          zip(m1.syncs, m2.syncs)])
            cells[scheme] = combined
        base = cells["NONE"].mean
        rows.append(FigureRow(
            label=cfg.label,
            normalized={s: cells[s].mean / base for s in FIGURE_SCHEMES},
            raw=cells))
    fig_id = "7" if n_processors == 4 else "8"
    return FigureResult(
        figure_id=f"figure{fig_id}",
        title=f"TRFD (P={n_processors})",
        rows=rows,
        meta=dict(n_processors=n_processors, seeds=config.seeds))


def figure2(config: Optional[ExperimentConfig] = None,
            seed: int = 0, n_windows: int = 24) -> FigureResult:
    """The paper's Figure 2: one realization of the discrete random
    load function (levels per persistence window)."""
    from ..machine.load import DiscreteRandomLoad
    config = config or DEFAULT_CONFIG
    load = DiscreteRandomLoad(max_load=config.max_load,
                              persistence=config.persistence, seed=seed)
    rows = [FigureRow(label=f"t={k * config.persistence:g}s",
                      normalized={"level": float(load.window_level(k))})
            for k in range(n_windows)]
    return FigureResult(
        figure_id="figure2",
        title=f"Load function (m_l={config.max_load}, "
              f"t_l={config.persistence}s, seed={seed})",
        rows=rows,
        meta=dict(max_load=config.max_load,
                  persistence=config.persistence, seed=seed))


def figure4(config: Optional[ExperimentConfig] = None,
            proc_counts: tuple[int, ...] = tuple(range(2, 17)),
            probe_bytes: int = 64) -> FigureResult:
    """Communication cost: measured + polyfit for AA, AO, OA (§6.1)."""
    config = config or DEFAULT_CONFIG
    model = characterize_network(config.network, proc_counts=proc_counts,
                                 probe_bytes=probe_bytes)
    rows = []
    for p in proc_counts:
        normalized = {}
        raw = {}
        for pattern in ("AA", "AO", "OA"):
            fit = model.fits[pattern]
            measured = dict(fit.samples)[p]
            normalized[f"{pattern}(exp)"] = measured
            normalized[f"{pattern}(polyfit)"] = fit(p)
        rows.append(FigureRow(label=f"P={p}", normalized=normalized, raw=raw))
    return FigureResult(
        figure_id="figure4",
        title="Communication cost (measured vs polynomial fit)",
        rows=rows,
        meta=dict(latency=model.latency, bandwidth=model.bandwidth,
                  probe_bytes=probe_bytes,
                  coefficients={k: f.coefficients
                                for k, f in model.fits.items()}))


def figure_topology(config: Optional[ExperimentConfig] = None,
                    n_processors: int = 8,
                    topologies: tuple[str, ...] = ("bus", "ring", "mesh",
                                                   "torus"),
                    size: Optional[MxmConfig] = None) -> FigureResult:
    """Strategy cost across network graphs (the topology extension).

    One row per topology; bars are GD / LD / DIFF normalized to the
    static no-DLB run *on the same topology*, so each row isolates the
    balancing benefit from the raw transport cost of its graph.  This is
    the experiment the generalized substrate exists for: on the bus the
    eq.-3 global schemes win (the paper's result, unchanged), while on
    sparse graphs nearest-neighbor diffusion becomes competitive because
    its transfers never cross more than one link.
    """
    config = config or DEFAULT_CONFIG
    size = size or MxmConfig(240, 200, 200)
    loop = mxm_loop(size, op_seconds=config.mxm_op_seconds)
    schemes = ("NONE", "GD", "LD", "DIFF")
    rows = []
    for topology in topologies:
        cells = {s: measure_loop(loop, n_processors, s, config,
                                 topology=topology)
                 for s in schemes}
        base = cells["NONE"].mean
        rows.append(FigureRow(
            label=topology,
            normalized={s: cells[s].mean / base for s in schemes},
            raw=cells))
    return FigureResult(
        figure_id="figure_topology",
        title=f"Strategies across topologies (MXM {size.label}, "
              f"P={n_processors})",
        rows=rows,
        meta=dict(n_processors=n_processors, seeds=config.seeds,
                  topologies=topologies))


def figure5(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """MXM, P=4 (paper Figure 5)."""
    return mxm_figure(4, config)


def figure6(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """MXM, P=16 (paper Figure 6)."""
    return mxm_figure(16, config)


def figure7(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """TRFD, P=4 (paper Figure 7)."""
    return trfd_figure(4, config)


def figure8(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """TRFD, P=16 (paper Figure 8)."""
    return trfd_figure(16, config)
