"""Export figure/table results to CSV and JSON.

Downstream plotting (matplotlib, gnuplot, a spreadsheet) should not
have to parse our ASCII reports; these writers emit the structured
data.  Everything is plain-stdlib (csv, json) so the library's numpy-
only dependency footprint stays intact.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Union

from ..runtime.stats import LoopRunStats
from .figures import FigureResult
from .tables import TableResult

__all__ = ["figure_to_csv", "table_to_csv", "run_to_csv", "run_to_json",
           "result_to_json", "write_result"]


def figure_to_csv(result: FigureResult) -> str:
    """One row per configuration, one column per scheme/series."""
    schemes = list(result.rows[0].normalized)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["config"] + schemes)
    for row in result.rows:
        writer.writerow([row.label] + [f"{row.normalized[s]:.6g}"
                                       for s in schemes])
    return buf.getvalue()


def table_to_csv(result: TableResult) -> str:
    """One row per parameter set with both orders and the agreement."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["parameters", "actual_order", "predicted_order",
                     "agreement", "best_match"])
    for row in result.rows:
        writer.writerow([row.label, " ".join(row.actual),
                         " ".join(row.predicted),
                         f"{row.agreement:.4f}", row.best_match])
    return buf.getvalue()


#: Scalar columns of one loop run.  ``backend`` distinguishes simulated
#: (virtual-second) runs from thread-backend (wall-clock) runs post-hoc.
_RUN_FIELDS = ("loop_name", "strategy", "backend", "n_processors",
               "group_size", "duration", "n_syncs", "n_redistributions",
               "total_work_moved", "network_messages", "network_bytes",
               "transport_payload_bytes", "payload_by_frame",
               "shm_data_bytes", "selected_scheme", "fault_retries",
               "reclaimed_iterations", "salvaged_iterations",
               "environment")


def _kv_column(mapping: dict) -> str:
    """Flatten a small mapping into one CSV cell (``K=V;K=V``): used for
    the socket backend's per-frame-type byte ledger and the run's
    environment fingerprint; empty when the mapping is."""
    return ";".join(f"{name}={value}"
                    for name, value in sorted(mapping.items()))


#: Backwards-compatible alias (the frame ledger predates the helper).
_frame_column = _kv_column


def _run_row(stats: LoopRunStats) -> dict:
    row = {}
    for name in _RUN_FIELDS:
        value = getattr(stats, name)
        if name in ("payload_by_frame", "environment"):
            value = _kv_column(value)
        row[name] = value.item() if hasattr(value, "item") else value
    return row


def run_to_csv(runs: Union[LoopRunStats, list[LoopRunStats]]) -> str:
    """One row per loop run, including the producing backend."""
    if isinstance(runs, LoopRunStats):
        runs = [runs]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(_RUN_FIELDS))
    writer.writeheader()
    for stats in runs:
        writer.writerow(_run_row(stats))
    return buf.getvalue()


def run_to_json(stats: LoopRunStats) -> str:
    """One run as a JSON document with per-sync and per-node detail."""
    doc = _run_row(stats)
    doc["kind"] = "run"
    doc["node_finish_times"] = {
        str(k): _jsonable(v) for k, v in stats.node_finish_times.items()}
    doc["messages_by_tag"] = dict(stats.messages_by_tag)
    # JSON keeps the per-frame-type transport split and the environment
    # fingerprint structured (the CSV cells flatten them).
    doc["payload_by_frame"] = dict(stats.payload_by_frame)
    doc["environment"] = dict(stats.environment)
    doc["joined_nodes"] = list(stats.joined_nodes)
    doc["left_nodes"] = list(stats.left_nodes)
    doc["syncs"] = [
        {"time": s.time, "group": s.group, "epoch": s.epoch,
         "reason": s.reason, "moved_work": s.moved_work,
         "n_transfers": s.n_transfers, "retired": list(s.retired)}
        for s in stats.syncs]
    return json.dumps(_jsonable(doc), indent=2, sort_keys=True)


def result_to_json(result: Union[FigureResult, TableResult]) -> str:
    """A JSON document with full per-seed raw data where available."""
    if isinstance(result, FigureResult):
        doc = {
            "kind": "figure",
            "id": result.figure_id,
            "title": result.title,
            "meta": _jsonable(result.meta),
            "rows": [
                {
                    "label": row.label,
                    "normalized": {k: float(v)
                                   for k, v in row.normalized.items()},
                    "raw_times": {k: [float(t) for t in m.times]
                                  for k, m in row.raw.items()},
                }
                for row in result.rows
            ],
        }
    elif isinstance(result, TableResult):
        doc = {
            "kind": "table",
            "id": result.table_id,
            "title": result.title,
            "mean_agreement": result.mean_agreement,
            "best_match_rate": result.best_match_rate,
            "rows": [
                {
                    "label": row.label,
                    "actual": list(row.actual),
                    "predicted": list(row.predicted),
                    "agreement": row.agreement,
                    "actual_means": {k: float(v) for k, v
                                     in row.actual_means.items()},
                    "predicted_means": {k: float(v) for k, v
                                        in row.predicted_means.items()},
                }
                for row in result.rows
            ],
        }
    else:
        raise TypeError(f"cannot export {type(result)!r}")
    return json.dumps(doc, indent=2, sort_keys=True)


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def write_result(result: Union[FigureResult, TableResult, LoopRunStats],
                 path: str) -> None:
    """Write ``result`` to ``path``; format chosen by extension
    (.csv or .json)."""
    if path.endswith(".json"):
        text = (run_to_json(result) if isinstance(result, LoopRunStats)
                else result_to_json(result))
    elif path.endswith(".csv"):
        if isinstance(result, LoopRunStats):
            text = run_to_csv(result)
        else:
            text = (figure_to_csv(result) if isinstance(result, FigureResult)
                    else table_to_csv(result))
    else:
        raise ValueError(f"unsupported extension on {path!r} "
                         "(use .csv or .json)")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
