"""Export figure/table results to CSV and JSON.

Downstream plotting (matplotlib, gnuplot, a spreadsheet) should not
have to parse our ASCII reports; these writers emit the structured
data.  Everything is plain-stdlib (csv, json) so the library's numpy-
only dependency footprint stays intact.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Union

from .figures import FigureResult
from .tables import TableResult

__all__ = ["figure_to_csv", "table_to_csv", "result_to_json",
           "write_result"]


def figure_to_csv(result: FigureResult) -> str:
    """One row per configuration, one column per scheme/series."""
    schemes = list(result.rows[0].normalized)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["config"] + schemes)
    for row in result.rows:
        writer.writerow([row.label] + [f"{row.normalized[s]:.6g}"
                                       for s in schemes])
    return buf.getvalue()


def table_to_csv(result: TableResult) -> str:
    """One row per parameter set with both orders and the agreement."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["parameters", "actual_order", "predicted_order",
                     "agreement", "best_match"])
    for row in result.rows:
        writer.writerow([row.label, " ".join(row.actual),
                         " ".join(row.predicted),
                         f"{row.agreement:.4f}", row.best_match])
    return buf.getvalue()


def result_to_json(result: Union[FigureResult, TableResult]) -> str:
    """A JSON document with full per-seed raw data where available."""
    if isinstance(result, FigureResult):
        doc = {
            "kind": "figure",
            "id": result.figure_id,
            "title": result.title,
            "meta": _jsonable(result.meta),
            "rows": [
                {
                    "label": row.label,
                    "normalized": {k: float(v)
                                   for k, v in row.normalized.items()},
                    "raw_times": {k: [float(t) for t in m.times]
                                  for k, m in row.raw.items()},
                }
                for row in result.rows
            ],
        }
    elif isinstance(result, TableResult):
        doc = {
            "kind": "table",
            "id": result.table_id,
            "title": result.title,
            "mean_agreement": result.mean_agreement,
            "best_match_rate": result.best_match_rate,
            "rows": [
                {
                    "label": row.label,
                    "actual": list(row.actual),
                    "predicted": list(row.predicted),
                    "agreement": row.agreement,
                    "actual_means": {k: float(v) for k, v
                                     in row.actual_means.items()},
                    "predicted_means": {k: float(v) for k, v
                                        in row.predicted_means.items()},
                }
                for row in result.rows
            ],
        }
    else:
        raise TypeError(f"cannot export {type(result)!r}")
    return json.dumps(doc, indent=2, sort_keys=True)


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def write_result(result: Union[FigureResult, TableResult], path: str
                 ) -> None:
    """Write ``result`` to ``path``; format chosen by extension
    (.csv or .json)."""
    if path.endswith(".json"):
        text = result_to_json(result)
    elif path.endswith(".csv"):
        text = (figure_to_csv(result) if isinstance(result, FigureResult)
                else table_to_csv(result))
    else:
        raise ValueError(f"unsupported extension on {path!r} "
                         "(use .csv or .json)")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
