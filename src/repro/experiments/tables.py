"""Regeneration of the paper's Tables 1 and 2: actual vs predicted order.

Each row ranks the four DLB schemes twice — by mean *measured* time
(event simulation) and by mean *model-predicted* time (§4.2 recurrences)
— over the same set of load-realization seeds, exactly the comparison
the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..apps.mxm import MxmConfig, mxm_loop
from ..apps.trfd import TrfdConfig, trfd_loop1, trfd_loop2
from .config import DEFAULT_CONFIG, ExperimentConfig, MXM_SIZES, \
    TABLE_SCHEMES, TRFD_SIZES
from .runner import measure_loop, measured_order, order_agreement, \
    predict_loop, predicted_order

__all__ = ["OrderRow", "TableResult", "table1", "table2",
           "table_topology"]


@dataclass
class OrderRow:
    """One parameter row: both rankings plus the agreement score."""

    label: str
    actual: tuple[str, ...]
    predicted: tuple[str, ...]
    agreement: float
    actual_means: dict[str, float] = field(default_factory=dict)
    predicted_means: dict[str, float] = field(default_factory=dict)

    @property
    def best_match(self) -> bool:
        """Did the model pick the actually-best scheme? (What the
        customized selection needs.)"""
        return self.actual[0] == self.predicted[0]


@dataclass
class TableResult:
    table_id: str
    title: str
    rows: list[OrderRow]

    @property
    def mean_agreement(self) -> float:
        return sum(r.agreement for r in self.rows) / len(self.rows)

    @property
    def best_match_rate(self) -> float:
        return sum(1 for r in self.rows if r.best_match) / len(self.rows)


def _order_row(label: str, loop, n_processors: int,
               config: ExperimentConfig) -> OrderRow:
    actual, acells = measured_order(loop, n_processors, config,
                                    TABLE_SCHEMES)
    predicted, pcells = predicted_order(loop, n_processors, config,
                                        TABLE_SCHEMES)
    return OrderRow(
        label=label, actual=actual, predicted=predicted,
        agreement=order_agreement(actual, predicted),
        actual_means={s: acells[s].mean for s in TABLE_SCHEMES},
        predicted_means={s: pcells[s].mean for s in TABLE_SCHEMES})


def table1(config: Optional[ExperimentConfig] = None) -> TableResult:
    """MXM actual vs predicted order (paper Table 1: 8 rows)."""
    config = config or DEFAULT_CONFIG
    rows = []
    for n_processors in (4, 16):
        for size in MXM_SIZES[n_processors]:
            loop = mxm_loop(size, op_seconds=config.mxm_op_seconds)
            rows.append(_order_row(f"P={n_processors} {size.label}",
                                   loop, n_processors, config))
    return TableResult(table_id="table1",
                       title="MXM: actual vs. predicted order", rows=rows)


def table2(config: Optional[ExperimentConfig] = None) -> TableResult:
    """TRFD per-loop actual vs predicted order (paper Table 2: 12 rows)."""
    config = config or DEFAULT_CONFIG
    rows = []
    for n_processors in (4, 16):
        for n in TRFD_SIZES:
            cfg = TrfdConfig(n)
            for loop_name, loop in (
                    ("L1", trfd_loop1(cfg, op_seconds=config.trfd_op_seconds)),
                    ("L2", trfd_loop2(cfg, op_seconds=config.trfd_op_seconds))):
                rows.append(_order_row(
                    f"P={n_processors} {cfg.label} {loop_name}",
                    loop, n_processors, config))
    return TableResult(table_id="table2",
                       title="TRFD: actual vs. predicted order", rows=rows)


def table_topology(config: Optional[ExperimentConfig] = None,
                   n_processors: int = 8,
                   topologies: tuple[str, ...] = ("bus", "ring", "mesh",
                                                  "torus"),
                   size: Optional[MxmConfig] = None) -> TableResult:
    """Actual vs predicted order across network graphs.

    Extends the paper's Table 1 methodology with a topology axis: each
    row ranks the global schemes plus diffusion on one graph, both by
    simulation and by the §4.2 model evaluated with that graph's
    characterization — the evidence that the customization decision
    stays sound off the shared bus.
    """
    config = config or DEFAULT_CONFIG
    size = size or MxmConfig(240, 200, 200)
    loop = mxm_loop(size, op_seconds=config.mxm_op_seconds)
    schemes = ("GC", "GD", "LD", "DIFF")
    rows = []
    for topology in topologies:
        acells = {s: measure_loop(loop, n_processors, s, config,
                                  topology=topology) for s in schemes}
        pcells = {s: predict_loop(loop, n_processors, s, config,
                                  topology=topology) for s in schemes}
        actual = tuple(sorted(schemes, key=lambda s: acells[s].mean))
        predicted = tuple(sorted(schemes, key=lambda s: pcells[s].mean))
        rows.append(OrderRow(
            label=f"P={n_processors} {topology}",
            actual=actual, predicted=predicted,
            agreement=order_agreement(actual, predicted),
            actual_means={s: acells[s].mean for s in schemes},
            predicted_means={s: pcells[s].mean for s in schemes}))
    return TableResult(table_id="table_topology",
                       title="Topologies: actual vs. predicted order",
                       rows=rows)
