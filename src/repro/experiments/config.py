"""Experiment configuration: the paper's parameter grid plus our
calibration choices (documented in EXPERIMENTS.md).

Calibration notes
-----------------
* ``max_load = 5`` is the paper's setting (§4.1).
* ``persistence`` (``t_l``) is not reported by the paper; 5 seconds
  relative to run lengths of tens of seconds gives load that is stable
  enough for measurement-based redistribution to pay off but transient
  enough that static scheduling loses badly — the regime the paper
  describes.
* ``op_seconds = 1e-7`` (10 M basic ops/s) models the SPARC LX-class
  base processor; only ratios matter for the reproduced claims.
* Each data point is the mean over ``seeds`` independent load
  realizations (the paper averages repeated runs; it does not state how
  many).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..apps.mxm import MxmConfig, PAPER_MXM_P16, PAPER_MXM_P4
from ..apps.trfd import PAPER_TRFD_N
from ..core.policy import DlbPolicy
from ..network.parameters import NetworkParameters

__all__ = ["ExperimentConfig", "DEFAULT_CONFIG", "default_seed_count"]

#: All five bars of the paper's figures, in presentation order.
FIGURE_SCHEMES = ("NONE", "GC", "GD", "LC", "LD")
#: The four DLB schemes ranked in the tables.
TABLE_SCHEMES = ("GC", "GD", "LC", "LD")


def default_seed_count(fallback: int = 10) -> int:
    """Seeds per data point; override with ``REPRO_SEEDS`` for speed."""
    value = os.environ.get("REPRO_SEEDS", "")
    try:
        return max(1, int(value))
    except ValueError:
        return fallback


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the reproduction experiments."""

    max_load: int = 5
    persistence: float = 5.0
    op_seconds: float = 1.0e-7
    # Per-application base-processor calibration (see EXPERIMENTS.md):
    # the paper's "basic operation" counts undercount real memory-bound
    # iteration cost; these rates land each application in the paper's
    # computation/communication regime.
    mxm_op_seconds: float = 4.0e-7
    trfd_op_seconds: float = 3.0e-7
    n_seeds: int = field(default_factory=default_seed_count)
    base_seed: int = 1000
    group_count: int = 2   # the paper's local strategies use two groups
    policy: DlbPolicy = field(default_factory=DlbPolicy)
    network: NetworkParameters = field(default_factory=NetworkParameters)

    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(self.base_seed + i for i in range(self.n_seeds))

    def group_size(self, n_processors: int) -> int:
        """K for the local strategies: P split into ``group_count`` groups."""
        return max(1, (n_processors + self.group_count - 1)
                   // self.group_count)

    def with_seeds(self, n: int) -> "ExperimentConfig":
        from dataclasses import replace
        return replace(self, n_seeds=n)


DEFAULT_CONFIG = ExperimentConfig()

#: MXM data sizes per processor count (paper Figures 5 and 6).
MXM_SIZES: dict[int, tuple[MxmConfig, ...]] = {
    4: PAPER_MXM_P4,
    16: PAPER_MXM_P16,
}

#: TRFD input parameters (paper Figures 7 and 8).
TRFD_SIZES: tuple[int, ...] = PAPER_TRFD_N
