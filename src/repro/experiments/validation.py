"""Programmatic validation of the paper's claims.

Each :class:`Claim` states one falsifiable sentence from the paper,
runs the experiment behind it, and reports PASS/FAIL with the measured
evidence.  ``python -m repro validate`` runs the whole checklist — the
executable version of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .config import ExperimentConfig
from .figures import figure4, mxm_figure, trfd_figure
from .tables import table1, table2

__all__ = ["Claim", "ClaimResult", "ALL_CLAIMS", "validate",
           "render_validation"]


@dataclass(frozen=True)
class Claim:
    claim_id: str
    source: str      # paper section
    statement: str
    check: Callable[[ExperimentConfig], tuple[bool, str]]


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    passed: bool
    evidence: str


# -- individual checks -----------------------------------------------------

def _check_fig4_shape(config: ExperimentConfig) -> tuple[bool, str]:
    result = figure4(config)
    ordered = all(row.normalized["AA(exp)"] >= row.normalized["AO(exp)"]
                  >= row.normalized["OA(exp)"] for row in result.rows)
    first, last = result.rows[0], result.rows[-1]
    p_ratio = 16 / 2
    aa_growth = last.normalized["AA(exp)"] / first.normalized["AA(exp)"]
    oa_growth = last.normalized["OA(exp)"] / first.normalized["OA(exp)"]
    superlinear = aa_growth > 1.5 * oa_growth and aa_growth > p_ratio
    return (ordered and superlinear,
            f"AA>=AO>=OA at every P: {ordered}; AA grows {aa_growth:.1f}x "
            f"from P=2 to 16 vs OA {oa_growth:.1f}x")


def _check_mxm_p4_order(config: ExperimentConfig) -> tuple[bool, str]:
    result = mxm_figure(4, config)
    ok_rows = 0
    for row in result.rows:
        n = row.normalized
        if (max(n["GC"], n["GD"]) < min(n["LC"], n["LD"])
                and max(n.values()) <= 1.0 + 1e-9):
            ok_rows += 1
    return (ok_rows == len(result.rows),
            f"globals beat locals and DLB beats static in "
            f"{ok_rows}/{len(result.rows)} configurations")


def _check_mxm_p16_gap_narrows(config: ExperimentConfig) -> tuple[bool, str]:
    p4 = mxm_figure(4, config)
    p16 = mxm_figure(16, config)

    def gap(result):
        gaps = []
        for row in result.rows:
            n = row.normalized
            gaps.append(min(n["LC"], n["LD"]) - min(n["GC"], n["GD"]))
        return sum(gaps) / len(gaps)

    g4, g16 = gap(p4), gap(p16)
    return (g16 < g4,
            f"mean local-global gap: {g4:.3f} at P=4 vs {g16:.3f} at P=16")


def _check_trfd_p16_ld_best(config: ExperimentConfig) -> tuple[bool, str]:
    result = trfd_figure(16, config)
    means = {s: sum(r.normalized[s] for r in result.rows)
             / len(result.rows) for s in ("GC", "GD", "LC", "LD")}
    best = min(means, key=means.get)
    return (best == "LD",
            "mean normalized times: "
            + ", ".join(f"{s}={v:.3f}" for s, v in sorted(means.items())))


def _check_distributed_beats_centralized(config: ExperimentConfig
                                         ) -> tuple[bool, str]:
    wins = total = 0
    for builder, p in ((mxm_figure, 4), (mxm_figure, 16),
                       (trfd_figure, 4), (trfd_figure, 16)):
        result = builder(p, config)
        for row in result.rows:
            n = row.normalized
            total += 2
            wins += 1 if n["GD"] <= n["GC"] * 1.01 else 0
            wins += 1 if n["LD"] <= n["LC"] * 1.01 else 0
    return (wins >= 0.85 * total,
            f"distributed <= centralized (1% tolerance) in "
            f"{wins}/{total} scheme pairs")


def _check_different_winners(config: ExperimentConfig) -> tuple[bool, str]:
    """The headline: no single strategy is best everywhere."""
    winners = set()
    for builder, p in ((mxm_figure, 4), (trfd_figure, 16)):
        result = builder(p, config)
        for row in result.rows:
            winners.add(row.best())
    return (len(winners) >= 2,
            f"winning schemes across MXM-P4 and TRFD-P16: "
            f"{sorted(winners)}")


def _check_table1_agreement(config: ExperimentConfig) -> tuple[bool, str]:
    result = table1(config)
    return (result.mean_agreement >= 0.70,
            f"mean pairwise agreement {result.mean_agreement:.2f} "
            f"(best-scheme match {result.best_match_rate:.2f})")


def _check_table2_agreement(config: ExperimentConfig) -> tuple[bool, str]:
    result = table2(config)
    return (result.mean_agreement >= 0.55,
            f"mean pairwise agreement {result.mean_agreement:.2f} "
            f"(best-scheme match {result.best_match_rate:.2f})")


ALL_CLAIMS: tuple[Claim, ...] = (
    Claim("fig4-shape", "§6.1",
          "Communication cost: AA > AO > OA, with AA super-linear in P",
          _check_fig4_shape),
    Claim("mxm-p4-globals", "§6.2 / Fig 5",
          "MXM on 4 processors: every DLB scheme beats no-DLB and the "
          "global schemes beat the local schemes",
          _check_mxm_p4_order),
    Claim("mxm-p16-gap", "§6.2 / Fig 6",
          "On 16 processors the gap between globals and locals narrows",
          _check_mxm_p16_gap_narrows),
    Claim("trfd-p16-ld", "§6.3 / Fig 8",
          "TRFD on 16 processors: the local distributed strategy is best",
          _check_trfd_p16_ld_best),
    Claim("dist-beats-central", "§6.2–6.3",
          "Distributed schemes beat their centralized counterparts",
          _check_distributed_beats_centralized),
    Claim("different-winners", "§1 / §6",
          "Different strategies are best for different applications "
          "under varying parameters",
          _check_different_winners),
    Claim("table1-match", "§6.2 / Table 1",
          "The model's predicted MXM strategy order matches the actual "
          "order very closely",
          _check_table1_agreement),
    Claim("table2-match", "§6.3 / Table 2",
          "The model's predicted TRFD strategy order is reasonably "
          "accurate",
          _check_table2_agreement),
)


def validate(config: Optional[ExperimentConfig] = None,
             claims: tuple[Claim, ...] = ALL_CLAIMS) -> list[ClaimResult]:
    """Run every claim check; returns results in claim order."""
    config = config or ExperimentConfig()
    out = []
    for claim in claims:
        passed, evidence = claim.check(config)
        out.append(ClaimResult(claim=claim, passed=passed,
                               evidence=evidence))
    return out


def render_validation(results: list[ClaimResult]) -> str:
    lines = ["== paper claim validation =="]
    for r in results:
        flag = "PASS" if r.passed else "FAIL"
        lines.append(f"[{flag}] {r.claim.claim_id} ({r.claim.source})")
        lines.append(f"       {r.claim.statement}")
        lines.append(f"       evidence: {r.evidence}")
    n_pass = sum(1 for r in results if r.passed)
    lines.append(f"-- {n_pass}/{len(results)} claims reproduced")
    return "\n".join(lines)
