"""ASCII rendering of figure and table results.

The benches print these so a terminal run of the harness shows the same
rows/series the paper reports.
"""

from __future__ import annotations

from .figures import FigureResult
from .tables import TableResult

__all__ = ["render_figure", "render_table", "render_bars"]

_BAR_WIDTH = 40


def render_bars(result: FigureResult) -> str:
    """Horizontal bar chart of normalized execution times."""
    lines = [f"== {result.title} ({result.figure_id}) =="]
    scale = max(max(row.normalized.values()) for row in result.rows)
    for row in result.rows:
        lines.append(f"-- {row.label}")
        for scheme, value in row.normalized.items():
            bar = "#" * max(1, int(round(value / scale * _BAR_WIDTH)))
            lines.append(f"  {scheme:>10s} {value:7.3f} |{bar}")
    return "\n".join(lines)


def render_figure(result: FigureResult) -> str:
    """Table of normalized values, one row per configuration."""
    schemes = list(result.rows[0].normalized)
    head = f"{'config':<28s}" + "".join(f"{s:>14s}" for s in schemes)
    lines = [f"== {result.title} ({result.figure_id}) ==", head,
             "-" * len(head)]
    for row in result.rows:
        line = f"{row.label:<28s}" + "".join(
            f"{row.normalized[s]:>14.4f}" for s in schemes)
        lines.append(line)
    if "coefficients" in result.meta:
        lines.append("")
        for pattern, coeffs in result.meta["coefficients"].items():
            poly = " + ".join(f"{c:.3e}*P^{len(coeffs) - 1 - i}"
                              for i, c in enumerate(coeffs))
            lines.append(f"  fit {pattern}: {poly}")
    return "\n".join(lines)


def render_table(result: TableResult) -> str:
    """The paper's actual-vs-predicted order table."""
    head = (f"{'parameters':<28s} {'actual order':<22s} "
            f"{'predicted order':<22s} {'agree':>6s}")
    lines = [f"== {result.title} ({result.table_id}) ==", head,
             "-" * len(head)]
    for row in result.rows:
        lines.append(
            f"{row.label:<28s} {' '.join(row.actual):<22s} "
            f"{' '.join(row.predicted):<22s} {row.agreement:>6.2f}")
    lines.append("-" * len(head))
    lines.append(f"mean pairwise agreement: {result.mean_agreement:.2f}; "
                 f"best-scheme match rate: {result.best_match_rate:.2f}")
    return "\n".join(lines)
