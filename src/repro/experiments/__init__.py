"""Experiment harness (S12): every table and figure of the paper."""

from .config import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    FIGURE_SCHEMES,
    MXM_SIZES,
    TABLE_SCHEMES,
    TRFD_SIZES,
    default_seed_count,
)
from .export import figure_to_csv, result_to_json, table_to_csv, write_result
from .figures import (
    FigureResult,
    FigureRow,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    mxm_figure,
    trfd_figure,
)
from .report import render_bars, render_figure, render_table
from .sweeps import KNOBS, SweepPoint, SweepResult, sweep
from .runner import (
    Measurement,
    measure_loop,
    measured_order,
    order_agreement,
    predict_loop,
    predicted_order,
)
from .tables import OrderRow, TableResult, table1, table2
from .validation import ALL_CLAIMS, Claim, ClaimResult, render_validation, validate

__all__ = [
    "ALL_CLAIMS",
    "Claim",
    "ClaimResult",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "FIGURE_SCHEMES",
    "FigureResult",
    "FigureRow",
    "MXM_SIZES",
    "Measurement",
    "OrderRow",
    "TABLE_SCHEMES",
    "TRFD_SIZES",
    "TableResult",
    "default_seed_count",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "measure_loop",
    "measured_order",
    "mxm_figure",
    "order_agreement",
    "predict_loop",
    "predicted_order",
    "render_bars",
    "render_figure",
    "KNOBS",
    "SweepPoint",
    "SweepResult",
    "figure_to_csv",
    "render_table",
    "result_to_json",
    "table1",
    "table2",
    "sweep",
    "table_to_csv",
    "trfd_figure",
    "validate",
    "write_result",
]
