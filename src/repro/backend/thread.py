"""Real-time execution backend: threads, queues, wall-clock time.

``ThreadBackend`` drives the *same* protocol state machines as the
simulator — :class:`~repro.protocol.worker.WorkerProtocol` and
:class:`~repro.protocol.balancer.BalancerProtocol` — but interprets
their commands against reality instead of an event heap:

* **clock** — ``time.perf_counter()``; durations in the returned stats
  are wall-clock seconds,
* **timers** — condition-variable waits with timeouts,
* **transport** — per-node in-process mailboxes (lock + condition);
  a ``Send`` is an append to the destination's queue,
* **compute** — synthetic CPU-burn kernels: each iteration spins the
  CPU for its :class:`~repro.apps.workload.WorkTable` cost (scaled by
  ``time_scale``), and synchronization interrupts are honored at
  iteration boundaries exactly as in the paper's Figure 3 loop.

What carries over for free — because it lives in the protocol layer —
is the whole §3 semantics: receiver-initiated interrupts, epochs,
profile exchange, the redistribution planner, retirement, and the
exactly-once coverage invariant (verified after every run).

Deliberate non-goals of this backend (raise :class:`BackendError`):

* the simulated external-load model — on real threads the "external
  load" is whatever your machine is actually doing;
* the CUSTOM model-based selection and the WS baseline (both reach
  into simulation-only machinery);
* fault injection / the hardened protocol (crashing a thread cannot be
  done safely from outside; the protocol transitions exist and are
  exercised by the scripted ``tests/protocol`` suite);
* periodic (Dome-style) synchronization and staged scatter/gather.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..apps.workload import LoopSpec
from ..core.diffusion import make_diffusion_planner
from ..core.redistribution import (
    make_movement_cost_estimator,
    make_topology_movement_cost_estimator,
)
from ..core.strategies.base import StrategySpec
from ..core.strategies.registry import get_strategy
from ..faults.plan import FaultPlan
from ..machine.cluster import ClusterSpec, build_groups
from ..message.messages import Message, Tag
from ..protocol import (
    AwaitMessage,
    BalancerProtocol,
    Charge,
    ComputeDone,
    DeclareDead,
    Done,
    MessageReceived,
    RecordSync,
    Send,
    Start,
    StartCompute,
    TimerFired,
    WorkerProtocol,
)
from ..network.topology import Topology, resolve_topology
from ..obs.metrics import CounterDict, MetricsRegistry
from ..obs.trace import NULL_RECORDER
from ..protocol.commands import Emit
from ..runtime.assignment import equal_block_partition, merge_ranges
from ..runtime.options import RunOptions
from ..runtime.stats import LoopRunStats, SyncRecord, environment_fingerprint
from .base import (
    BackendError,
    ExecutionBackend,
    StrategyLike,
    join_or_terminate,
)
from .kernels import (
    HAVE_NUMPY,
    KERNELS,
    burn_ops,
    burn_vec,
    burn_wall,
    calibrate_ops_rate,
    calibrate_vec_rate,
)

__all__ = ["ThreadBackend"]

#: Safety net: no single blocking wait may exceed this many wall
#: seconds.  The fault-free protocol never waits unboundedly unless a
#: peer thread died with an exception; this converts such a hang into a
#: diagnosable error.
WATCHDOG_SECONDS = 120.0


class _Mailbox:
    """One node's inbox: a queue plus the interrupt-epoch flags.

    INTERRUPT messages never enter the queue — the transport folds them
    into a set of epochs that the compute kernel polls at iteration
    boundaries, mirroring the simulator's mailbox ``notify`` hook.
    """

    def __init__(self, abort: threading.Event) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: list[Message] = []
        self._interrupts: set[int] = set()
        self._abort = abort

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def post(self, msg: Message) -> None:
        with self._cond:
            if msg.tag is Tag.INTERRUPT:
                self._interrupts.add(msg.epoch)
            else:
                self._queue.append(msg)
            self._cond.notify_all()

    def has_interrupt(self, epoch: int) -> bool:
        with self._lock:
            return epoch in self._interrupts

    def drain_interrupts(self, up_to_epoch: int) -> None:
        """Forget interrupt flags for ``up_to_epoch`` and older."""
        with self._lock:
            self._interrupts = {e for e in self._interrupts
                                if e > up_to_epoch}

    def get(self, spec: AwaitMessage) -> Optional[Message]:
        """Block until a message matches ``spec``; None on timeout."""

        def matches(msg: Message) -> bool:
            if spec.tags is not None and msg.tag not in spec.tags:
                return False
            if spec.epoch is not None and msg.epoch != spec.epoch:
                return False
            if spec.srcs is not None and msg.src not in spec.srcs:
                return False
            return True

        deadline = time.perf_counter() + (
            spec.timeout if spec.timeout is not None else WATCHDOG_SECONDS)
        with self._cond:
            while True:
                if self._abort.is_set():
                    raise BackendError("aborted: a peer thread failed")
                for i, msg in enumerate(self._queue):
                    if matches(msg):
                        return self._queue.pop(i)
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    if spec.timeout is None:
                        raise BackendError(
                            f"watchdog: no message matching {spec} within "
                            f"{WATCHDOG_SECONDS}s — a peer thread likely "
                            "died; see the first reported error")
                    return None
                self._cond.wait(remaining)


class _Transport:
    """Routes messages between mailboxes; counts traffic."""

    def __init__(self, n: int,
                 by_tag: Optional[CounterDict] = None) -> None:
        self.abort = threading.Event()
        self.mailboxes = [_Mailbox(self.abort) for _ in range(n)]
        self._lock = threading.Lock()
        self.messages = 0
        self.bytes = 0
        # A registry-owned counter when the caller wires one in, so the
        # final stats field is a live view over the same storage.
        self.by_tag: CounterDict = by_tag if by_tag is not None \
            else CounterDict()

    def post(self, msg: Message) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += msg.nbytes
            self.by_tag.inc(msg.tag.value)
        self.mailboxes[msg.dst].post(msg)


class _SharedStats:
    """Thread-safe sink for executed ranges and sync records."""

    def __init__(self, stats: LoopRunStats, trace: bool,
                 recorder=NULL_RECORDER) -> None:
        self.stats = stats
        self.trace = trace
        self.recorder = recorder
        self._lock = threading.Lock()
        self._recorded: set[tuple[int, int]] = set()
        self.t0 = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self.t0

    def record_executed(self, node: int, ranges) -> None:
        with self._lock:
            self.stats.executed_by_node.setdefault(node, []).extend(ranges)

    def record_sync(self, group: int, epoch: int, plan) -> None:
        key = (group, epoch)
        with self._lock:
            if key in self._recorded or not self.trace:
                return
            self._recorded.add(key)
            self.stats.record_sync(SyncRecord(
                time=self.now(), group=group, epoch=epoch,
                reason=plan.reason,
                moved_work=plan.work_to_move if plan.move else 0.0,
                n_transfers=len(plan.transfers), retired=plan.retire,
                predicted_current=plan.predicted_current,
                predicted_balanced=plan.predicted_balanced))

    def record_finish(self, node: int) -> None:
        with self._lock:
            self.stats.node_finish_times[node] = self.now()


class ThreadBackend(ExecutionBackend):
    """Execute the DLB protocol on real threads in wall-clock time."""

    name = "thread"

    def __init__(self, *, time_scale: float = 1.0,
                 kernel: str = "wall") -> None:
        #: Multiplier applied to every iteration's nominal cost before
        #: burning CPU; < 1 shrinks wall time without changing the work
        #: *ratios* the balancer sees.
        if time_scale <= 0:
            raise BackendError("time_scale must be positive")
        if kernel not in KERNELS:
            raise BackendError(
                f"unknown kernel {kernel!r} (expected one of "
                f"{', '.join(repr(k) for k in KERNELS)})")
        if kernel == "numpy" and not HAVE_NUMPY:
            raise BackendError(
                "the 'numpy' kernel needs numpy installed; "
                "use 'wall' or 'ops'")
        self.time_scale = time_scale
        #: ``"wall"`` spins each iteration to a wall-clock deadline
        #: (exact timing, but GIL threads overlap "for free");
        #: ``"ops"`` executes a calibrated op count (real CPU work that
        #: GIL threads must serialize — the honest baseline for
        #: thread-vs-process speedup comparisons; see kernels.py);
        #: ``"numpy"`` executes the same op count as vectorized passes
        #: that release the GIL, so threads overlap on real cores.
        self.kernel = kernel
        self._ops_rate: Optional[float] = None

    # -- validation ---------------------------------------------------------
    def _validate(self, spec: StrategySpec, n: int, options: RunOptions,
                  selector, fault_plan: Optional[FaultPlan]) -> None:
        if spec.code == "WS":
            raise BackendError(
                "the work-stealing baseline is simulation-only")
        if spec.code == "CUSTOM" or selector is not None:
            raise BackendError(
                "the CUSTOM model-based selection consults the simulated "
                "load model; pick a concrete strategy for --backend thread")
        if fault_plan is not None and not fault_plan.empty:
            raise BackendError(
                "fault injection is simulation-only (threads cannot be "
                "crashed safely from outside)")
        if options.fault_tolerance.enabled:
            raise BackendError(
                "the hardened protocol needs injectable faults; run it on "
                "the sim backend (tests/protocol exercises the transitions)")
        if options.sync_mode != "interrupt":
            raise BackendError(
                "periodic synchronization is simulation-only")
        if options.include_staging:
            raise BackendError("staged scatter/gather is simulation-only")
        if spec.is_dlb and spec.code != "NONE" and n < 2:
            raise ValueError(
                "dynamic load balancing needs at least 2 processors")

    # -- entry point --------------------------------------------------------
    def run_loop(self, loop: LoopSpec, cluster: ClusterSpec,
                 strategy: StrategyLike,
                 options: Optional[RunOptions] = None,
                 selector: Optional[Callable] = None,
                 fault_plan: Optional[FaultPlan] = None) -> LoopRunStats:
        options = options or RunOptions()
        spec = strategy if isinstance(strategy, StrategySpec) \
            else get_strategy(strategy)
        n = cluster.n_processors
        self._validate(spec, n, options, selector, fault_plan)

        table = loop.work_table()
        mean_iteration_time = table.total_work / table.n
        k = options.effective_group_size(n, spec.group_size)
        if spec.global_scope or not spec.is_dlb:
            groups: list[list[int]] = [list(range(n))]
        else:
            groups = build_groups(n, k, formation=options.group_formation,
                                  seed=options.group_seed)
        group_of = {node: g for g, members in enumerate(groups)
                    for node in members}
        # Threads share one address space, so the topology is *logical*
        # here: it shapes the planner (where work may flow) and the
        # movement-cost estimate, not the transport.
        topology = None
        if options.topology is not None:
            topology = resolve_topology(options.topology, n)
        movement_cost_fn = None
        if options.policy.include_movement_cost:
            if topology is not None and not topology.shared_medium:
                movement_cost_fn = make_topology_movement_cost_estimator(
                    options.network, topology,
                    dc_bytes=loop.dc_bytes,
                    mean_iteration_time=mean_iteration_time)
            else:
                movement_cost_fn = make_movement_cost_estimator(
                    latency=options.network.latency,
                    bandwidth=options.network.bandwidth,
                    dc_bytes=loop.dc_bytes,
                    mean_iteration_time=mean_iteration_time)
        planner = None
        if spec.code == "DIFF":
            planner = make_diffusion_planner(
                topology if topology is not None else Topology.bus(n),
                options.policy, mean_iteration_time, movement_cost_fn)

        stats = LoopRunStats(loop_name=loop.name, strategy=spec.name,
                             n_processors=n, group_size=k,
                             backend=self.name)
        stats.environment = environment_fingerprint(kernel=self.kernel)
        recorder = options.recorder or NULL_RECORDER
        registry = MetricsRegistry()
        shared = _SharedStats(stats, options.trace, recorder)
        transport = _Transport(n, registry.counter("messages_by_tag"))
        parts = equal_block_partition(loop.n_iterations, n)

        workers = []
        for node in range(n):
            gid = group_of[node]
            workers.append(WorkerProtocol(
                node, groups[gid], group=gid,
                centralized=spec.centralized,
                lb_host=0,
                policy=options.policy,
                table=table,
                mean_iteration_time=mean_iteration_time,
                dc_bytes=loop.dc_bytes,
                movement_cost_fn=movement_cost_fn,
                planner=planner,
                profile_window_reset=options.profile_window_reset,
                assignment=parts[node],
                is_dlb=spec.is_dlb))
            workers[-1].emit_trace = recorder.enabled

        errors: list[BaseException] = []
        err_lock = threading.Lock()

        def guarded(fn, *args):
            def runner():
                try:
                    fn(*args)
                except BaseException as exc:  # noqa: BLE001 - reported below
                    with err_lock:
                        errors.append(exc)
                    # Unblock every waiter: peers abort instead of
                    # hanging until the watchdog.
                    transport.abort.set()
                    for box in transport.mailboxes:
                        box.wake()
            return runner

        threads = [threading.Thread(
            target=guarded(self._drive_worker, workers[node],
                           transport, shared, errors),
            name=f"dlb-node{node}", daemon=True)
            for node in range(n)]
        balancer_thread = None
        if spec.is_dlb and spec.centralized:
            balancer = BalancerProtocol(
                0, groups, policy=options.policy,
                mean_iteration_time=mean_iteration_time,
                movement_cost_fn=movement_cost_fn,
                planner=planner)
            balancer.emit_trace = recorder.enabled
            balancer_thread = threading.Thread(
                target=guarded(self._drive_balancer, balancer,
                               transport, shared, errors),
                name="dlb-balancer", daemon=True)

        all_threads = threads + ([balancer_thread]
                                 if balancer_thread is not None else [])
        if self.kernel == "ops":
            self._ops_rate = calibrate_ops_rate()
        elif self.kernel == "numpy":
            self._ops_rate = calibrate_vec_rate()
        stats.start_time = 0.0
        # All trace timestamps on this backend share one zero-based
        # perf_counter domain anchored just before the threads start.
        shared.t0 = time.perf_counter()
        if recorder.enabled:
            recorder.set_clock(shared.now)
        try:
            if balancer_thread is not None:
                balancer_thread.start()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=WATCHDOG_SECONDS * 2)
                if t.is_alive():
                    raise BackendError(
                        f"{t.name} did not finish (deadlock?)")
            if balancer_thread is not None:
                balancer_thread.join(timeout=WATCHDOG_SECONDS)
                if balancer_thread.is_alive():
                    raise BackendError("balancer thread did not finish")
            stats.end_time = shared.now()
            if errors:
                raise errors[0]
        except BaseException:
            # Shutdown contract: never leave dlb-* threads running —
            # CI hangs on orphans.  Abort unblocks every mailbox wait
            # and stops every compute loop at its next poll.
            transport.abort.set()
            for box in transport.mailboxes:
                box.wake()
            join_or_terminate(all_threads, timeout=5.0)
            raise

        # The registry's counter *is* the stats field (a live view).
        stats.messages_by_tag = transport.by_tag
        stats.network_messages = transport.messages
        stats.network_bytes = transport.bytes
        self._verify_coverage(stats, loop)
        return stats

    @staticmethod
    def _verify_coverage(stats: LoopRunStats, loop: LoopSpec) -> None:
        all_ranges = [r for ranges in stats.executed_by_node.values()
                      for r in ranges]
        merged = merge_ranges(all_ranges)  # raises on overlap (duplicates)
        expected = [(0, loop.n_iterations)]
        if merged != expected:
            raise AssertionError(
                f"lost iterations: executed {merged}, expected {expected}")

    # -- drivers ------------------------------------------------------------
    def _drive_worker(self, proto: WorkerProtocol, transport: _Transport,
                      shared: _SharedStats,
                      errors: list[BaseException]) -> None:
        mailbox = transport.mailboxes[proto.me]
        abort = transport.abort
        commands = proto.on_event(Start())
        while True:
            await_spec: Optional[AwaitMessage] = None
            next_event = None
            for cmd in commands:
                if isinstance(cmd, Send):
                    transport.post(cmd.msg)
                elif isinstance(cmd, StartCompute):
                    status = self._compute(proto, mailbox, shared, abort)
                    next_event = ComputeDone(status)
                elif isinstance(cmd, AwaitMessage):
                    await_spec = cmd
                elif isinstance(cmd, RecordSync):
                    shared.record_sync(cmd.group, cmd.epoch, cmd.plan)
                elif isinstance(cmd, Charge):
                    pass  # wall-clock time is charged by reality
                elif isinstance(cmd, Emit):
                    shared.recorder.event(cmd.name,
                                          track=f"node{proto.me}",
                                          **cmd.args())
                elif isinstance(cmd, Done):
                    shared.record_finish(proto.me)
                    return
                elif isinstance(cmd, DeclareDead):  # pragma: no cover
                    raise BackendError(
                        "DeclareDead without fault tolerance")
                else:  # pragma: no cover - defensive
                    raise BackendError(f"unhandled command {cmd!r}")
            if next_event is None:
                if await_spec is None:  # pragma: no cover - defensive
                    raise BackendError(
                        "protocol yielded neither wait nor compute")
                if errors:
                    return  # a peer died; stop pumping
                msg = mailbox.get(await_spec)
                next_event = (TimerFired() if msg is None
                              else MessageReceived(msg))
            commands = proto.on_event(next_event)

    def _drive_balancer(self, proto: BalancerProtocol,
                        transport: _Transport, shared: _SharedStats,
                        errors: list[BaseException]) -> None:
        mailbox = transport.mailboxes[proto.host]
        commands = proto.on_event(Start())
        while True:
            await_spec = None
            for cmd in commands:
                if isinstance(cmd, Send):
                    transport.post(cmd.msg)
                elif isinstance(cmd, AwaitMessage):
                    await_spec = cmd
                elif isinstance(cmd, RecordSync):
                    shared.record_sync(cmd.group, cmd.epoch, cmd.plan)
                elif isinstance(cmd, Charge):
                    pass
                elif isinstance(cmd, Emit):
                    shared.recorder.event(cmd.name, track="balancer",
                                          **cmd.args())
                elif isinstance(cmd, Done):
                    return
                else:  # pragma: no cover - defensive
                    raise BackendError(f"unhandled command {cmd!r}")
            if await_spec is None:  # pragma: no cover - defensive
                raise BackendError("balancer yielded no wait")
            if errors:
                return
            # The balancer's mailbox also receives PROFILEs addressed to
            # node 0's *worker* in distributed mode — cannot happen here
            # (centralized only), so a plain filtered get is correct.
            msg = mailbox.get(await_spec)
            commands = proto.on_event(TimerFired() if msg is None
                                      else MessageReceived(msg))

    # -- compute ------------------------------------------------------------
    def _compute(self, proto: WorkerProtocol, mailbox: _Mailbox,
                 shared: _SharedStats, abort: threading.Event) -> str:
        """Burn CPU through the assignment, iteration by iteration.

        Honors synchronization interrupts at iteration boundaries (the
        paper's ``DLB_slave_sync`` poll) and books the performance
        window so measured rates feed the §3.2 profiles.
        """
        assignment = proto.assignment
        table = proto.table
        mailbox.drain_interrupts(proto.epoch - 1)
        if assignment.empty:
            return "finished"
        while not assignment.empty:
            if abort.is_set():
                raise BackendError("aborted: a peer thread failed")
            if proto.is_dlb and mailbox.has_interrupt(proto.epoch):
                return "interrupted"
            taken = assignment.take_head(1)
            start, _end = taken[0]
            cost = table.range_work(start, start + 1)
            t0 = time.perf_counter()
            if self.kernel == "ops":
                burn_ops(cost * self.time_scale * self._ops_rate,
                         should_abort=abort.is_set)
            elif self.kernel == "numpy":
                burn_vec(cost * self.time_scale * self._ops_rate,
                         should_abort=abort.is_set)
            else:
                burn_wall(cost * self.time_scale,
                          should_abort=abort.is_set)
            t1 = time.perf_counter()
            proto.note_busy(t1 - t0)
            shared.recorder.complete("compute", t0 - shared.t0, t1 - t0,
                                     track=f"node{proto.me}",
                                     iteration=start)
            proto.note_work(cost)
            shared.record_executed(proto.me, taken)
        return "finished"
