"""Real-TCP execution backend: the DLB protocol over sockets.

``SocketBackend`` runs the same pure state machines as every other
backend — :class:`~repro.protocol.worker.WorkerProtocol` in each worker,
:class:`~repro.protocol.balancer.BalancerProtocol` for the centralized
strategies — but its participants are genuine network peers: asyncio
TCP clients connected to a hub, exchanging the length-prefixed JSON
frames of :mod:`repro.message.frames` (documented byte-for-byte in
``docs/WIRE_PROTOCOL.md``).

Topology is a star.  The **hub** owns the listening socket, assigns
node ids at registration (HELLO/WELCOME), routes every worker↔worker
protocol message (MSG frames), hosts the balancer state machine
in-process for the centralized strategies, probes idle peers
(PING/PONG via :class:`~repro.faults.liveness.HeartbeatMonitor`), and
collects the run statistics from each worker's STAT stream.  A
**worker** is a small asyncio client: a reader task that sorts frames
into a mailbox, and a driver that pumps the protocol exactly like the
thread/process backends — compute is a wall-clock delay at iteration
granularity (the socket backend measures *protocol behavior over a
real transport*, not CPU speedup; see the backend map in
``docs/ARCHITECTURE.md``).

Elastic membership
------------------
Beyond the fixed rosters of the other backends, peers may come and go:

* **join** — a worker registering after the initial roster is admitted
  mid-run.  Centralized: the balancer's quorum grows immediately and
  the joiner's natural flow (empty assignment → "finished" → interrupt
  + profile) *is* the paper's §3.1 receiver-initiated sync, so the very
  next plan reshapes the iterations onto the new member set.
  Distributed: the hub broadcasts an epoch-fenced MEMBER announcement
  (effective epoch = latest profile epoch seen + 2) and existing
  members admit the joiner once their own epoch reaches the fence —
  per-stream TCP ordering guarantees nobody can complete the fenced
  epoch's gather without having seen the announcement first.
* **leave** — a planned departure (CTRL ``leave`` or the CLI's
  ``--leave-after``).  Honored at an iteration boundary: the worker
  ships everything still assigned back to the hub in a LEAVE frame and
  exits; the hub re-grants those ranges to a surviving group member
  (GRANT frame, applied at the receiver's next iteration boundary) and
  announces the departure as a *planned* DEATH.
* **crash** — a scheduled fail-stop (fault plan or CTRL ``die``) aborts
  the TCP connection; the hub's failure detector (EOF/reset, or
  heartbeat silence) broadcasts an *unplanned* DEATH and the hardened
  protocol reshapes exactly as on the process backend.

Exactly-once is preserved across all three: grants are issued at most
once, leaves happen only between iterations, and at completion the hub
salvages any coverage gap (crash orphans, grants dropped by a retiring
receiver) by re-executing it and crediting the lowest finished
survivor, then audits the merged coverage ledger.

Deliberate non-goals (raise :class:`BackendError`), as for processes:
the simulated load model, CUSTOM selection, the WS baseline, periodic
synchronization, staged scatter/gather, and non-crash fault kinds.
"""

from __future__ import annotations

import asyncio
import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from ..apps.workload import LoopSpec, WorkTable
from ..core.redistribution import make_movement_cost_estimator
from ..core.strategies.base import StrategySpec
from ..core.strategies.registry import get_strategy
from ..faults.liveness import HeartbeatMonitor
from ..faults.plan import FaultPlan
from ..machine.cluster import ClusterSpec, build_groups
from ..message.frames import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    FrameType,
    encode_frame,
    ft_from_wire,
    ft_to_wire,
    message_from_wire,
    message_to_wire,
    policy_from_wire,
    policy_to_wire,
)
from ..message.messages import ControlMsg, Message, Tag
from ..obs.metrics import CounterDict, MetricsRegistry
from ..obs.trace import NULL_RECORDER, TraceRecorder
from ..protocol import (
    AwaitMessage,
    BalancerProtocol,
    Charge,
    ComputeDone,
    DeclareDead,
    Done,
    Emit,
    LeaveRequested,
    MessageReceived,
    PeerDead,
    PeerJoined,
    PeerLeft,
    RecordSync,
    Send,
    Start,
    StartCompute,
    TimerFired,
    WorkerProtocol,
)
from ..runtime.assignment import Assignment, equal_block_partition, merge_ranges
from ..runtime.options import FaultToleranceConfig, RunOptions
from ..runtime.stats import LoopRunStats, SyncRecord, environment_fingerprint
from .base import (
    BackendError,
    ExecutionBackend,
    StrategyLike,
    join_or_terminate,
)

__all__ = ["SocketBackend", "JoinEvent", "LeaveEvent", "KillEvent",
           "run_worker"]

Range = tuple[int, int]

#: Safety net on every blocking wait, as in the thread/process backends.
WATCHDOG_SECONDS = 120.0

#: Exit code of a fail-stopped worker subprocess (same value as the
#: process backend's, so tooling treats scheduled crashes uniformly).
CRASH_EXIT_CODE = 17

#: Hub poll granularity (completion monitor, liveness loop).
POLL_SECONDS = 0.02

#: Grace between coverage completion and dismissing stragglers, and for
#: a terminal worker's last frames to drain.
DRAIN_GRACE_SECONDS = 2.0

#: Distributed join fence: the announcement becomes effective this many
#: epochs past the newest profile the hub has routed, so no member can
#: complete the fenced gather without having seen the MEMBER frame.
JOIN_EPOCH_SLACK = 2


# ---------------------------------------------------------------------------
# Script events (test/orchestration hooks fired by executed-iteration count).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JoinEvent:
    """Spawn one extra worker once ``after_iterations`` have executed."""

    after_iterations: int


@dataclass(frozen=True)
class LeaveEvent:
    """Ask ``node`` to depart (planned) after ``after_iterations``."""

    node: int
    after_iterations: int


@dataclass(frozen=True)
class KillEvent:
    """Fail-stop ``node`` (connection aborted) after ``after_iterations``.

    Unlike :class:`~repro.faults.plan.CrashFault` this may target node
    0: over sockets the balancer lives at the hub, not on a worker, so
    the paper's reliable-master assumption pins the *hub*, not node 0.
    """

    node: int
    after_iterations: int


class _AbruptStop(Exception):
    """Internal: a scheduled fail-stop fired on this worker."""


class _Dismissed(Exception):
    """Internal: the hub ended the run (BYE) while this worker waited."""


def _pairs(value) -> tuple[Range, ...]:
    return tuple((int(s), int(e)) for s, e in value or ())


def _movement_fn(movement: Optional[tuple[float, float]], dc_bytes: int,
                 mean_iteration_time: float):
    if movement is None:
        return None
    latency, bandwidth = movement
    return make_movement_cost_estimator(
        latency=latency, bandwidth=bandwidth, dc_bytes=dc_bytes,
        mean_iteration_time=mean_iteration_time)


# ---------------------------------------------------------------------------
# Worker client.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ClientConfig:
    """One worker's run configuration, as decoded from WELCOME."""

    node: int
    members: tuple[int, ...]
    group: int
    centralized: bool
    lb_host: int
    policy: object
    table: WorkTable
    mean_iteration_time: float
    dc_bytes: int
    movement: Optional[tuple[float, float]]
    ft: FaultToleranceConfig
    profile_window_reset: bool
    ranges: tuple[Range, ...]
    is_dlb: bool
    epoch: int
    time_scale: float
    crash_at: Optional[float]
    leave_after: Optional[int]
    trace_events: bool


def _config_from_welcome(body: dict,
                         leave_after: Optional[int]) -> _ClientConfig:
    run = body["run"]
    it = run["iteration_time"]
    table = (WorkTable(float(it), int(run["n_iterations"]))
             if not isinstance(it, list) else WorkTable(it))
    movement = tuple(run["movement"]) if run.get("movement") else None
    return _ClientConfig(
        node=int(body["node"]),
        members=tuple(int(m) for m in run["members"]),
        group=int(run["group"]),
        centralized=bool(run["centralized"]),
        lb_host=int(run["lb_host"]),
        policy=policy_from_wire(run["policy"]),
        table=table,
        mean_iteration_time=float(run["mean_iteration_time"]),
        dc_bytes=int(run["dc_bytes"]),
        movement=movement,
        ft=ft_from_wire(run["ft"]),
        profile_window_reset=bool(run["profile_window_reset"]),
        ranges=_pairs(run["ranges"]),
        is_dlb=bool(run["is_dlb"]),
        epoch=int(run["epoch"]),
        time_scale=float(run["time_scale"]),
        crash_at=run.get("crash_at"),
        leave_after=leave_after,
        # Absent from a pre-tracing hub's WELCOME: default off.
        trace_events=bool(run.get("trace_events", False)))


class _ClientReporter:
    """Worker-side sink: writes frames, counts both measurement layers.

    ``messages``/``bytes``/``by_tag`` are the *modeled* counters (the
    paper's message economy, identical across backends); ``frames`` is
    the *transport* layer — bytes actually written per frame type,
    length prefix included.
    """

    def __init__(self, writer: asyncio.StreamWriter, me: int) -> None:
        self.writer = writer
        self.me = me
        self.messages = 0
        self.bytes = 0
        self.by_tag = CounterDict()
        self.retries = 0
        self.frames = CounterDict()
        self.executed_total = 0
        self.t0 = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self.t0

    def write(self, ftype: FrameType, body: Optional[dict] = None) -> None:
        data = encode_frame(ftype, body)
        self.frames.inc(ftype.name, len(data))
        if not self.writer.is_closing():
            self.writer.write(data)

    def send(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.nbytes
        self.by_tag.inc(msg.tag.value)
        self.write(FrameType.MSG, message_to_wire(msg))

    def send_leave(self, msg: ControlMsg) -> None:
        """The protocol's ``leave`` control rides a LEAVE frame."""
        self.messages += 1
        self.bytes += msg.nbytes
        self.by_tag.inc(msg.tag.value)
        self.write(FrameType.LEAVE, {
            "node": self.me,
            "ranges": [[s, e] for s, e in (msg.payload or ())]})

    # -- stats stream ----------------------------------------------------
    def executed(self, ranges: Sequence[Range]) -> None:
        self.executed_total += sum(e - s for s, e in ranges)
        self.write(FrameType.STAT,
                   {"k": "exec", "ranges": [[s, e] for s, e in ranges]})

    def sync(self, group: int, epoch: int, plan) -> None:
        self.write(FrameType.STAT, {
            "k": "sync", "group": group, "epoch": epoch,
            "row": {"time": self.now(), "reason": plan.reason,
                    "moved_work": plan.work_to_move if plan.move else 0.0,
                    "n_transfers": len(plan.transfers),
                    "retired": list(plan.retire),
                    "predicted_current": plan.predicted_current,
                    "predicted_balanced": plan.predicted_balanced}})

    def declared(self, peer: int) -> None:
        self.write(FrameType.STAT, {"k": "declared", "peer": peer})

    def finish(self, reason: str) -> None:
        self.write(FrameType.STAT, {
            "k": "finish", "reason": reason,
            "counters": {"messages": self.messages, "bytes": self.bytes,
                         "by_tag": dict(self.by_tag),
                         "retries": self.retries,
                         "frames": dict(self.frames)}})

    def error(self, text: str) -> None:
        self.write(FrameType.STAT, {"k": "error", "text": text})

    async def drain(self) -> None:
        try:
            await self.writer.drain()
        except (ConnectionError, OSError) as exc:
            raise _Dismissed() from exc


class _ClientMailbox:
    """Worker-side inbox: the reader task sorts frames in here.

    Protocol messages buffer until an :class:`AwaitMessage` matches;
    INTERRUPTs fold into per-epoch flags polled at iteration boundaries
    (the same contract as the other backends' mailboxes); DEATH notices
    pre-empt any wait; MEMBER announcements and GRANTs apply at epoch /
    iteration boundaries; resend requests are answered from the
    protocol caches without waking the driver's state machine.
    """

    def __init__(self) -> None:
        self.buffer: list[Message] = []
        self.interrupts: set[int] = set()
        self.notices: list[tuple[str, int]] = []   # ("dead"|"left", node)
        self.requests: list[ControlMsg] = []
        self.grants: list[tuple[Range, ...]] = []
        self.admits: list[tuple[int, int]] = []    # (node, effective epoch)
        self.leave = False
        self.die = False
        self.closed = False
        self.error_text: Optional[str] = None
        self.bye = asyncio.Event()
        self.wake = asyncio.Event()
        self.answer: Optional[Callable[[ControlMsg], None]] = None
        self.crash_due: Optional[Callable[[], bool]] = None

    # -- interrupt flags -------------------------------------------------
    def has_interrupt(self, epoch: int) -> bool:
        return epoch in self.interrupts

    def drain_interrupts(self, up_to_epoch: int) -> None:
        self.interrupts = {e for e in self.interrupts if e > up_to_epoch}

    # -- elastic bookkeeping ---------------------------------------------
    def pop_due_admit(self, epoch: int) -> Optional[int]:
        for i, (node, eff) in enumerate(self.admits):
            if epoch >= eff:
                self.admits.pop(i)
                return node
        return None

    def pop_notice(self) -> Optional[tuple[str, int]]:
        return self.notices.pop(0) if self.notices else None

    def check_stop(self) -> None:
        if self.die or (self.crash_due is not None and self.crash_due()):
            raise _AbruptStop()

    # -- filtered receive ------------------------------------------------
    @staticmethod
    def _matches(msg: Message, spec: AwaitMessage) -> bool:
        if spec.tags is not None and msg.tag not in spec.tags:
            return False
        if spec.epoch is not None and msg.epoch != spec.epoch:
            return False
        if spec.srcs is not None and msg.src not in spec.srcs:
            return False
        return True

    async def get(self, spec: AwaitMessage):
        """Next notice tuple or matching message; ``None`` on timeout."""
        deadline = time.perf_counter() + (
            spec.timeout if spec.timeout is not None else WATCHDOG_SECONDS)
        while True:
            self.check_stop()
            while self.requests and self.answer is not None:
                self.answer(self.requests.pop(0))
            if self.notices:
                return self.notices.pop(0)
            for i, msg in enumerate(self.buffer):
                if self._matches(msg, spec):
                    return self.buffer.pop(i)
            if self.bye.is_set():
                raise _Dismissed()
            if self.closed:
                raise BackendError(
                    "connection to the hub lost" +
                    (f": {self.error_text}" if self.error_text else ""))
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                if spec.timeout is None:
                    raise BackendError(
                        f"watchdog: no message matching {spec} within "
                        f"{WATCHDOG_SECONDS}s — the hub or a peer likely "
                        "died; see the first reported error")
                return None
            self.wake.clear()
            try:
                await asyncio.wait_for(self.wake.wait(),
                                       min(remaining, 0.05))
            except asyncio.TimeoutError:
                pass


async def _client_reader(mbox: _ClientMailbox, reporter: _ClientReporter,
                         reader: asyncio.StreamReader, dec: FrameDecoder,
                         pending: list) -> None:
    """Sort incoming frames into the mailbox until EOF."""
    def dispatch(ftype: FrameType, body: dict) -> None:
        if ftype is FrameType.MSG:
            msg = message_from_wire(body)
            if msg.tag is Tag.INTERRUPT:
                mbox.interrupts.add(msg.epoch)
            elif (msg.tag is Tag.CONTROL
                  and msg.kind in ("resend-profile", "resend-work")):
                mbox.requests.append(msg)
            else:
                mbox.buffer.append(msg)
        elif ftype is FrameType.PING:
            reporter.write(FrameType.PONG, {"t": body.get("t")})
        elif ftype is FrameType.MEMBER:
            mbox.admits.append((int(body["node"]), int(body["epoch"])))
        elif ftype is FrameType.DEATH:
            mbox.notices.append(
                ("left" if body.get("planned") else "dead",
                 int(body["node"])))
        elif ftype is FrameType.GRANT:
            mbox.grants.append(_pairs(body.get("ranges")))
        elif ftype is FrameType.CTRL:
            op = body.get("op")
            if op == "leave":
                mbox.leave = True
            elif op == "die":
                mbox.die = True
        elif ftype is FrameType.BYE:
            mbox.bye.set()
        elif ftype is FrameType.ERR:
            mbox.error_text = body.get("text")
            mbox.bye.set()
        # Unknown-to-this-role frames are ignored (forward compatibility).

    try:
        for ftype, body in pending:
            dispatch(ftype, body)
        mbox.wake.set()
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            for ftype, body in dec.feed(chunk):
                dispatch(ftype, body)
            mbox.wake.set()
    except (ConnectionError, OSError, FrameError):
        pass
    finally:
        mbox.closed = True
        mbox.bye.set()
        mbox.wake.set()


async def _client_burn(seconds: float, mbox: _ClientMailbox) -> None:
    """Wall-clock compute stand-in, sliced so fail-stops land mid-burn."""
    end = time.perf_counter() + seconds
    while True:
        remaining = end - time.perf_counter()
        if remaining <= 0:
            return
        mbox.check_stop()
        await asyncio.sleep(min(remaining, 0.02))


async def _client_compute(proto: WorkerProtocol, cfg: _ClientConfig,
                          mbox: _ClientMailbox, reporter: _ClientReporter,
                          rec=NULL_RECORDER) -> str:
    """Run the assignment an iteration at a time; all the elastic hooks
    (admits, grants, leave, fail-stop) apply at iteration boundaries."""
    mbox.drain_interrupts(proto.epoch - 1)
    while True:
        mbox.check_stop()
        while True:
            joiner = mbox.pop_due_admit(proto.epoch)
            if joiner is None:
                break
            proto.on_event(PeerJoined(joiner))
        while mbox.grants:
            granted = mbox.grants.pop(0)
            if granted:
                proto.assignment.add(granted)
        if mbox.leave or (cfg.leave_after is not None
                          and reporter.executed_total >= cfg.leave_after):
            return "leave"
        if proto.assignment.empty:
            return "finished"
        if proto.is_dlb and mbox.has_interrupt(proto.epoch):
            return "interrupted"
        taken = proto.assignment.take_head(1)
        start, _end = taken[0]
        cost = proto.table.range_work(start, start + 1)
        t0 = time.perf_counter()
        await _client_burn(cost * cfg.time_scale, mbox)
        mbox.check_stop()  # fail-stop before the iteration is recorded
        t1 = time.perf_counter()
        proto.note_busy(t1 - t0)
        rec.complete("compute", t0 - reporter.t0, t1 - t0,
                     track=f"node{cfg.node}", iteration=start)
        proto.note_work(cost)
        reporter.executed(taken)
        await reporter.drain()


def _answer_resend(proto: WorkerProtocol, reporter: _ClientReporter,
                   req: ControlMsg) -> None:
    """Serve a peer's recovery request from the protocol caches."""
    if req.kind == "resend-profile":
        reply = proto.profile_reply(req.epoch, req.src)
        if reply is not None:
            reporter.send(reply)
    else:
        reply = proto.work_reply(req.src, req.epoch)
        if reply is None:
            # We never owed this parcel (plan divergence): say so, at
            # the requester's epoch so its timed receive consumes it.
            reporter.send(proto.stamp(ControlMsg, dst=req.src,
                                      epoch=req.epoch, kind="no-work"))
        else:
            reporter.send(reply)


async def _client_drive(proto: WorkerProtocol, cfg: _ClientConfig,
                        mbox: _ClientMailbox, reporter: _ClientReporter,
                        rec=NULL_RECORDER) -> str:
    """The worker event pump; mirrors the process backend's driver."""
    last_await: Optional[AwaitMessage] = None
    commands = proto.on_event(Start())
    while True:
        await_spec: Optional[AwaitMessage] = None
        next_event = None
        for cmd in commands:
            if isinstance(cmd, Send):
                if isinstance(cmd.msg, ControlMsg) and cmd.msg.kind == "leave":
                    reporter.send_leave(cmd.msg)
                else:
                    reporter.send(cmd.msg)
            elif isinstance(cmd, StartCompute):
                status = await _client_compute(proto, cfg, mbox, reporter,
                                               rec)
                if status == "leave":
                    next_event = LeaveRequested()
                else:
                    next_event = ComputeDone(status)
            elif isinstance(cmd, AwaitMessage):
                await_spec = cmd
                last_await = cmd
            elif isinstance(cmd, RecordSync):
                reporter.sync(cmd.group, cmd.epoch, cmd.plan)
            elif isinstance(cmd, Charge):
                pass  # planning costs real time on a real backend
            elif isinstance(cmd, DeclareDead):
                reporter.declared(cmd.peer)
            elif isinstance(cmd, Emit):
                rec.event(cmd.name, track=f"node{proto.me}", **cmd.args())
            elif isinstance(cmd, Done):
                if rec.enabled:
                    # Ship the trace buffer ahead of the finish record so
                    # the hub merges it before the peer turns terminal.
                    reporter.write(FrameType.TRACE,
                                   {"node": proto.me, **rec.to_payload()})
                reporter.finish(cmd.reason)
                await reporter.drain()
                try:
                    await asyncio.wait_for(mbox.bye.wait(), WATCHDOG_SECONDS)
                except asyncio.TimeoutError:
                    pass
                return cmd.reason
            else:  # pragma: no cover - defensive
                raise BackendError(f"unhandled command {cmd!r}")
        await reporter.drain()
        if next_event is None:
            joiner = mbox.pop_due_admit(proto.epoch)
            notice = None if joiner is not None else mbox.pop_notice()
            if joiner is not None:
                next_event = PeerJoined(joiner)
            elif notice is not None:
                kind, who = notice
                next_event = PeerDead(who) if kind == "dead" \
                    else PeerLeft(who)
            else:
                if await_spec is None:
                    # A membership pump can return no commands: keep the
                    # previous wait armed.
                    await_spec = last_await
                if await_spec is None:  # pragma: no cover - defensive
                    raise BackendError(
                        "protocol yielded neither wait nor compute")
                got = await mbox.get(await_spec)
                if got is None:
                    reporter.retries += 1
                    next_event = TimerFired()
                elif isinstance(got, tuple):
                    kind, who = got
                    next_event = PeerDead(who) if kind == "dead" \
                        else PeerLeft(who)
                else:
                    next_event = MessageReceived(got)
        commands = proto.on_event(next_event)


async def _connect(host: str, port: int, *, attempts: int = 40,
                   delay: float = 0.25):
    """Dial the hub, retrying while it is still coming up."""
    last: Optional[Exception] = None
    for _ in range(max(1, attempts)):
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as exc:
            last = exc
            await asyncio.sleep(delay)
    raise BackendError(f"cannot reach hub at {host}:{port}: {last}")


async def _run_client(host: str, port: int, *,
                      leave_after: Optional[int] = None) -> str:
    """One worker, HELLO to BYE.  Returns the terminal reason."""
    reader, writer = await _connect(host, port)
    dec = FrameDecoder()
    try:
        writer.write(encode_frame(FrameType.HELLO, {"v": PROTOCOL_VERSION}))
        await writer.drain()
        pending: list = []
        while not pending:
            chunk = await reader.read(65536)
            if not chunk:
                raise BackendError("hub closed the connection before "
                                   "answering HELLO")
            pending = list(dec.feed(chunk))
        ftype, body = pending.pop(0)
        if ftype is FrameType.BYE:
            return "dismissed"
        if ftype is FrameType.ERR:
            raise BackendError(
                f"hub refused registration: {body.get('text')}")
        if ftype is not FrameType.WELCOME:
            raise BackendError(f"expected WELCOME, got {ftype.name}")
        cfg = _config_from_welcome(body, leave_after)

        reporter = _ClientReporter(writer, cfg.node)
        # HELLO went out before the reporter existed; count it by hand.
        hello_len = len(encode_frame(FrameType.HELLO,
                                     {"v": PROTOCOL_VERSION}))
        reporter.frames[FrameType.HELLO.name] = hello_len
        mbox = _ClientMailbox()
        proto = WorkerProtocol(
            cfg.node, cfg.members, group=cfg.group,
            centralized=cfg.centralized, lb_host=cfg.lb_host,
            policy=cfg.policy, table=cfg.table,
            mean_iteration_time=cfg.mean_iteration_time,
            dc_bytes=cfg.dc_bytes,
            movement_cost_fn=_movement_fn(cfg.movement, cfg.dc_bytes,
                                          cfg.mean_iteration_time),
            ft=cfg.ft, profile_window_reset=cfg.profile_window_reset,
            assignment=Assignment(cfg.ranges), is_dlb=cfg.is_dlb,
            initial_epoch=cfg.epoch)
        mbox.answer = lambda req: _answer_resend(proto, reporter, req)
        proto.emit_trace = cfg.trace_events
        rec = (TraceRecorder(clock=reporter.now) if cfg.trace_events
               else NULL_RECORDER)
        if cfg.crash_at is not None:
            t0 = time.perf_counter()
            mbox.crash_due = \
                lambda: time.perf_counter() - t0 >= cfg.crash_at
        reader_task = asyncio.create_task(
            _client_reader(mbox, reporter, reader, dec, pending))
        try:
            return await _client_drive(proto, cfg, mbox, reporter, rec)
        except _AbruptStop:
            writer.transport.abort()
            return "crashed"
        except _Dismissed:
            return "dismissed"
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):
                pass
    finally:
        try:
            writer.close()
        except Exception:  # pragma: no cover - transport already aborted
            pass


def run_worker(host: str, port: int, *,
               leave_after: Optional[int] = None) -> str:
    """Blocking entry point for ``python -m repro worker``."""
    return asyncio.run(_run_client(host, port, leave_after=leave_after))


def _worker_proc_entry(host: str, port: int) -> None:
    """Subprocess entry (module-level so spawn contexts can import it)."""
    try:
        status = asyncio.run(_run_client(host, port))
    except BaseException:
        traceback.print_exc()
        os._exit(1)
    if status == "crashed":
        os._exit(CRASH_EXIT_CODE)


# ---------------------------------------------------------------------------
# Hub.
# ---------------------------------------------------------------------------
class _Peer:
    """Hub-side connection state of one registered worker."""

    __slots__ = ("node", "writer", "group", "status")

    def __init__(self, node: int, writer: asyncio.StreamWriter,
                 group: int) -> None:
        self.node = node
        self.writer = writer
        self.group = group
        #: "active" | "finished" | "departed" | "crashed" | "dismissed"
        self.status = "active"


class _Hub:
    """Listener, router, registrar, failure detector, stats collector."""

    def __init__(self, *, loop_spec: LoopSpec, table: WorkTable,
                 spec: StrategySpec, options: RunOptions,
                 ft: FaultToleranceConfig, groups: list[list[int]],
                 parts: Sequence[Assignment], time_scale: float,
                 crash_at: dict[int, float],
                 script: Sequence[object], stats: LoopRunStats,
                 strict: bool, recorder=NULL_RECORDER) -> None:
        self.loop_spec = loop_spec
        self.table = table
        self.spec = spec
        self.options = options
        self.ft = ft
        self.time_scale = time_scale
        self.crash_at = dict(crash_at)
        self.script = list(script)
        self.stats = stats
        self.strict = strict
        self.recorder = recorder

        self.n = sum(len(g) for g in groups)
        self.group_members = {g: list(m) for g, m in enumerate(groups)}
        self.group_of = {node: g for g, members in enumerate(groups)
                         for node in members}
        self.centralized = bool(spec.is_dlb and spec.centralized)
        self.parts = [tuple(p.ranges) for p in parts]
        self.balancer: Optional[BalancerProtocol] = None
        if self.centralized:
            movement = None
            if options.policy.include_movement_cost:
                movement = (options.network.latency,
                            options.network.bandwidth)
            self.balancer = BalancerProtocol(
                0, [list(g) for g in groups], policy=options.policy,
                mean_iteration_time=table.total_work / table.n,
                movement_cost_fn=_movement_fn(
                    movement, 0, table.total_work / table.n),
                ft=ft)
            self.balancer.emit_trace = recorder.enabled
        self.bal_done = not self.centralized

        self.peers: dict[int, _Peer] = {}
        self.frames = CounterDict()
        self.expected_crashes: set[int] = set(self.crash_at)
        self.declared: set[int] = set()
        self.crashed: list[int] = []
        self.left: list[int] = []
        self.joined: list[int] = []
        self.group_profile_epoch: dict[int, int] = {}
        self.exec_total = 0
        self.errors: list[str] = []
        self.done = asyncio.Event()
        self.spawner: Optional[Callable[[], None]] = None
        self.monitor = HeartbeatMonitor.from_ft(ft) if ft.enabled else None
        self._fired: set[int] = set()
        self._sync_seen: set[tuple[int, int]] = set()
        self._next_initial = 0
        self._next_node = self.n
        self._server: Optional[asyncio.AbstractServer] = None
        self._t0 = time.perf_counter()

    # -- lifecycle -------------------------------------------------------
    async def start(self, host: str, port: int) -> int:
        self._server = await asyncio.start_server(self._serve_conn,
                                                  host, port)
        self._t0 = time.perf_counter()
        if self.recorder.enabled:
            # Clock rebinds before the first balancer event so every
            # hub-side trace timestamp is hub-relative seconds.
            self.recorder.set_clock(self.now)
        if self.balancer is not None:
            self._run_balancer_cmds(self.balancer.on_event(Start()))
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def now(self) -> float:
        return time.perf_counter() - self._t0

    # -- frame output ----------------------------------------------------
    def _write(self, peer: _Peer, ftype: FrameType,
               body: Optional[dict] = None) -> None:
        if peer.writer.is_closing():
            return
        data = encode_frame(ftype, body)
        self.frames.inc(ftype.name, len(data))
        try:
            peer.writer.write(data)
        except (ConnectionError, RuntimeError, OSError):
            pass

    # -- registration ----------------------------------------------------
    def _welcome_body(self, node: int, gid: int,
                      ranges: tuple[Range, ...], epoch: int,
                      members: Sequence[int]) -> dict:
        movement = None
        if self.options.policy.include_movement_cost:
            movement = [self.options.network.latency,
                        self.options.network.bandwidth]
        it = self.loop_spec.iteration_time
        return {"v": PROTOCOL_VERSION, "node": node, "run": {
            "members": sorted(members),
            "group": gid,
            "centralized": self.centralized,
            "lb_host": 0,
            "policy": policy_to_wire(self.options.policy),
            "n_iterations": self.loop_spec.n_iterations,
            "iteration_time": (float(it) if not isinstance(it, tuple)
                               else list(it)),
            "dc_bytes": self.loop_spec.dc_bytes,
            "mean_iteration_time": self.table.total_work / self.table.n,
            "movement": movement,
            "ft": ft_to_wire(self.ft),
            "profile_window_reset": self.options.profile_window_reset,
            "ranges": [[s, e] for s, e in ranges],
            "is_dlb": bool(self.spec.is_dlb),
            "epoch": epoch,
            "time_scale": self.time_scale,
            "crash_at": self.crash_at.get(node),
            "trace_events": self.recorder.enabled}}

    def _active_members(self, gid: int) -> list[int]:
        out = []
        for node in self.group_members.get(gid, []):
            peer = self.peers.get(node)
            if peer is None:
                out.append(node)  # expected but not yet connected
            elif peer.status == "active":
                out.append(node)
        return out

    def _register(self, hello: dict):
        """Assign a node id; returns (node, gid, ranges, epoch) or an
        ERR/BYE marker string."""
        if int(hello.get("v", -1)) != PROTOCOL_VERSION:
            return "version"
        if self.done.is_set():
            return "over"
        if self._next_initial < self.n:
            node = self._next_initial
            self._next_initial += 1
            gid = self.group_of[node]
            return (node, gid, self.parts[node], 0,
                    self.group_members[gid])
        # Elastic join: new node id, group 0 by convention.
        node = self._next_node
        self._next_node += 1
        gid = 0
        if self.balancer is not None:
            try:
                self._run_balancer_cmds(
                    self.balancer.on_event(PeerJoined(node, gid)))
            except Exception:
                return "over"
            epoch = self.balancer.group_epoch.get(gid, 0)
            members = sorted(self.balancer.group_active[gid] | {node})
        else:
            epoch = self.group_profile_epoch.get(gid, 0) + JOIN_EPOCH_SLACK
            members = sorted(set(self._active_members(gid)) | {node})
            for other in self._active_members(gid):
                peer = self.peers.get(other)
                if peer is not None:
                    self._write(peer, FrameType.MEMBER,
                                {"node": node, "epoch": epoch})
        self.group_members.setdefault(gid, []).append(node)
        self.group_of[node] = gid
        self.joined.append(node)
        return (node, gid, (), epoch, members)

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        peer: Optional[_Peer] = None
        dec = FrameDecoder()
        try:
            pending: list = []
            while not pending:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                pending = list(dec.feed(chunk))
            ftype, body = pending.pop(0)
            if ftype is not FrameType.HELLO:
                writer.write(encode_frame(
                    FrameType.ERR, {"text": f"expected HELLO, "
                                            f"got {ftype.name}"}))
                await writer.drain()
                return
            assigned = self._register(body)
            if assigned == "version":
                writer.write(encode_frame(FrameType.ERR, {
                    "text": f"protocol version {body.get('v')!r} "
                            f"unsupported (hub speaks "
                            f"{PROTOCOL_VERSION})"}))
                await writer.drain()
                return
            if assigned == "over":
                writer.write(encode_frame(FrameType.BYE))
                await writer.drain()
                return
            node, gid, ranges, epoch, members = assigned
            peer = _Peer(node, writer, gid)
            self.peers[node] = peer
            if self.monitor is not None:
                self.monitor.watch(node, time.perf_counter())
            self._write(peer, FrameType.WELCOME,
                        self._welcome_body(node, gid, tuple(ranges),
                                           epoch, members))
            for ftype, body in pending:  # pipelined after HELLO
                self._on_frame(peer, ftype, body)
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for ftype, body in dec.feed(chunk):
                    self._on_frame(peer, ftype, body)
        except asyncio.CancelledError:
            # Event-loop teardown at run end: the run is already over,
            # so a cancelled handler is not a peer failure.
            return
        except (ConnectionError, OSError):
            pass
        except FrameError as exc:
            if peer is not None:
                self._write(peer, FrameType.ERR, {"text": str(exc)})
        finally:
            if peer is not None and peer.status == "active":
                # EOF/reset while active: the kernel's failure signal.
                self._mark_crashed(peer,
                                   expected=peer.node
                                   in self.expected_crashes)
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    # -- frame input -----------------------------------------------------
    def _on_frame(self, peer: _Peer, ftype: FrameType, body: dict) -> None:
        if self.monitor is not None:
            self.monitor.note_alive(peer.node, time.perf_counter())
        if ftype is FrameType.MSG:
            self._route(peer, body)
        elif ftype is FrameType.PONG:
            pass  # note_alive above is the whole point
        elif ftype is FrameType.LEAVE:
            self._on_leave(peer, body)
        elif ftype is FrameType.STAT:
            self._on_stat(peer, body)
        elif ftype is FrameType.TRACE:
            # Only sent when our WELCOME asked for it; merge the worker's
            # ring buffer into the hub's run-wide recorder.
            self.recorder.merge_payload(body)
        elif ftype is FrameType.ERR:
            self.errors.append(
                f"worker {peer.node} reported: {body.get('text')}")
        # Unknown-to-this-role frames are ignored (forward compatibility).

    def _route(self, peer: _Peer, body: dict) -> None:
        try:
            dst = int(body["dst"])
            tag = body.get("tag")
            epoch = int(body.get("epoch", 0))
        except (KeyError, TypeError, ValueError):
            self.errors.append(f"malformed MSG frame from {peer.node}")
            return
        if tag == "profile":
            gid = self.group_of.get(int(body.get("src", peer.node)),
                                    peer.group)
            self.group_profile_epoch[gid] = max(
                self.group_profile_epoch.get(gid, 0), epoch)
        if self.balancer is not None and tag == "profile" and dst == 0:
            # Centralized strategies: profiles addressed to the lb host
            # feed the hub-resident balancer, as on the other backends.
            try:
                msg = message_from_wire(body)
            except FrameError as exc:
                self.errors.append(
                    f"undecodable profile from {peer.node}: {exc}")
                return
            self._run_balancer_cmds(
                self.balancer.on_event(MessageReceived(msg)))
            return
        target = self.peers.get(dst)
        if target is not None and target.status == "active":
            self._write(target, FrameType.MSG, body)
        # Traffic to terminal/unknown peers is stale; drop it.

    def _run_balancer_cmds(self, cmds) -> None:
        for cmd in cmds:
            if isinstance(cmd, Send):
                msg = cmd.msg
                self.stats.network_messages += 1
                self.stats.network_bytes += msg.nbytes
                self.stats.messages_by_tag.inc(msg.tag.value)
                target = self.peers.get(msg.dst)
                if target is not None and target.status == "active":
                    self._write(target, FrameType.MSG,
                                message_to_wire(msg))
            elif isinstance(cmd, RecordSync):
                self._record_sync(cmd.group, cmd.epoch, {
                    "time": self.now(), "reason": cmd.plan.reason,
                    "moved_work": cmd.plan.work_to_move
                    if cmd.plan.move else 0.0,
                    "n_transfers": len(cmd.plan.transfers),
                    "retired": list(cmd.plan.retire),
                    "predicted_current": cmd.plan.predicted_current,
                    "predicted_balanced": cmd.plan.predicted_balanced})
            elif isinstance(cmd, Emit):
                self.recorder.event(cmd.name, track="balancer",
                                    **cmd.args())
            elif isinstance(cmd, (AwaitMessage, Charge)):
                pass  # the hub is event-driven; planning costs real time
            elif isinstance(cmd, Done):
                self.bal_done = True
            else:  # pragma: no cover - defensive
                raise BackendError(f"unhandled balancer command {cmd!r}")

    def _record_sync(self, group: int, epoch: int, row: dict) -> None:
        if not self.options.trace or (group, epoch) in self._sync_seen:
            return
        self._sync_seen.add((group, epoch))
        self.stats.record_sync(SyncRecord(
            time=float(row["time"]), group=group, epoch=epoch,
            reason=row["reason"], moved_work=float(row["moved_work"]),
            n_transfers=int(row["n_transfers"]),
            retired=tuple(int(n) for n in row["retired"]),
            predicted_current=float(row["predicted_current"]),
            predicted_balanced=float(row["predicted_balanced"])))

    def _on_stat(self, peer: _Peer, body: dict) -> None:
        kind = body.get("k")
        if kind == "exec":
            ranges = _pairs(body.get("ranges"))
            self.stats.executed_by_node.setdefault(
                peer.node, []).extend(ranges)
            self.exec_total += sum(e - s for s, e in ranges)
            self._fire_script()
        elif kind == "sync":
            self._record_sync(int(body["group"]), int(body["epoch"]),
                              body["row"])
        elif kind == "declared":
            self.declared.add(int(body["peer"]))
        elif kind == "finish":
            was_active = peer.status == "active"
            if was_active:
                peer.status = "finished"
            self.stats.node_finish_times[peer.node] = self.now()
            counters = body.get("counters", {})
            self.stats.network_messages += counters.get("messages", 0)
            self.stats.network_bytes += counters.get("bytes", 0)
            self.stats.fault_retries += counters.get("retries", 0)
            self.stats.messages_by_tag.merge(counters.get("by_tag", {}))
            self.frames.merge(counters.get("frames", {}))
            if was_active:
                if self.monitor is not None:
                    self.monitor.forget(peer.node)
                # A retired peer can no longer answer profiles: announce
                # it so late joiners never gather on it.  (Live peers
                # already learned the retirement from the plan's active
                # set; a leaver/crasher was announced at that event.)
                self._broadcast_death(peer.node, planned=True)
        elif kind == "error":
            self.errors.append(
                f"worker {peer.node} failed:\n{body.get('text')}")
        else:
            self.errors.append(
                f"unknown stats record {body!r} from {peer.node}")

    # -- membership transitions ------------------------------------------
    def _broadcast_death(self, node: int, *, planned: bool) -> None:
        for other in self.peers.values():
            if other.node != node and other.status == "active":
                self._write(other, FrameType.DEATH,
                            {"node": node, "planned": planned})

    def _on_leave(self, peer: _Peer, body: dict) -> None:
        if peer.status != "active":
            return
        peer.status = "departed"
        self.left.append(peer.node)
        if self.monitor is not None:
            self.monitor.forget(peer.node)
        self._broadcast_death(peer.node, planned=True)
        if self.balancer is not None:
            self._run_balancer_cmds(
                self.balancer.on_event(PeerLeft(peer.node)))
        ranges = _pairs(body.get("ranges"))
        if ranges:
            self._grant(peer, ranges)

    def _grant(self, leaver: _Peer, ranges: tuple[Range, ...]) -> None:
        """Re-grant a departed worker's residual ranges — exactly once.

        Lowest active node in the leaver's group, else lowest active
        anywhere, else nobody (the end-of-run salvage covers the gap).
        """
        same_group = [p.node for p in self.peers.values()
                      if p.status == "active" and p.group == leaver.group]
        anyone = [p.node for p in self.peers.values()
                  if p.status == "active"]
        pool = same_group or anyone
        if not pool:
            return
        target = self.peers[min(pool)]
        self._write(target, FrameType.GRANT,
                    {"ranges": [[s, e] for s, e in ranges]})

    def _mark_crashed(self, peer: _Peer, *, expected: bool) -> None:
        if peer.status != "active":
            return
        peer.status = "crashed"
        self.crashed.append(peer.node)
        # A crashed worker never ships its TRACE frame: mark the loss
        # explicitly instead of letting the gap pass silently.
        self.recorder.event("trace_truncated", track=f"node{peer.node}",
                            reason="crashed")
        if self.monitor is not None:
            self.monitor.forget(peer.node)
        if not expected and self.strict:
            self.errors.append(
                f"worker {peer.node} disconnected outside the fault plan")
        self._broadcast_death(peer.node, planned=False)
        if self.balancer is not None:
            self._run_balancer_cmds(
                self.balancer.on_event(PeerDead(peer.node)))

    # -- scripted orchestration ------------------------------------------
    def _fire_script(self) -> None:
        for event in self.script:
            if id(event) in self._fired:
                continue
            if self.exec_total < event.after_iterations:
                continue
            self._fired.add(id(event))
            if isinstance(event, JoinEvent):
                if self.spawner is not None:
                    self.spawner()
            elif isinstance(event, LeaveEvent):
                peer = self.peers.get(event.node)
                if peer is not None and peer.status == "active":
                    self._write(peer, FrameType.CTRL, {"op": "leave"})
            elif isinstance(event, KillEvent):
                peer = self.peers.get(event.node)
                if peer is not None and peer.status == "active":
                    self.expected_crashes.add(event.node)
                    self._write(peer, FrameType.CTRL, {"op": "die"})

    # -- background tasks ------------------------------------------------
    async def run_liveness(self) -> None:
        assert self.monitor is not None
        while not self.done.is_set():
            await asyncio.sleep(max(self.monitor.interval / 2.0,
                                    POLL_SECONDS))
            now = time.perf_counter()
            for node in self.monitor.due_probes(now):
                peer = self.peers.get(node)
                if peer is not None and peer.status == "active":
                    self._write(peer, FrameType.PING,
                                {"t": round(self.now(), 6)})
            for node in self.monitor.overdue(now):
                peer = self.peers.get(node)
                if peer is not None:
                    self._mark_crashed(
                        peer, expected=node in self.expected_crashes)

    def _coverage_complete(self) -> Optional[bool]:
        """True when every iteration is covered; None on overlap."""
        all_ranges = [r for ranges in self.stats.executed_by_node.values()
                      for r in ranges]
        try:
            merged = merge_ranges(all_ranges)
        except ValueError as exc:
            self.errors.append(f"duplicated iterations: {exc}")
            return None
        return merged == [(0, self.loop_spec.n_iterations)]

    async def run_completion(self) -> None:
        """Declare the run over; dismiss stragglers once coverage holds."""
        deadline = time.perf_counter() + WATCHDOG_SECONDS * 2
        grace_start: Optional[float] = None
        while True:
            await asyncio.sleep(POLL_SECONDS)
            if self.errors:
                break
            started = self._next_initial >= self.n
            active = [p for p in self.peers.values()
                      if p.status == "active"]
            if started and not active and (
                    self.bal_done
                    or (self.balancer is not None
                        and self.balancer.all_done)):
                break
            if started and active:
                covered = self._coverage_complete()
                if covered is None:
                    break
                if covered:
                    now = time.perf_counter()
                    if grace_start is None:
                        grace_start = now
                    elif now - grace_start >= DRAIN_GRACE_SECONDS:
                        # Every iteration is accounted for; whoever is
                        # still waiting (e.g. a joiner whose fence was
                        # never reached) is no longer needed.
                        for peer in active:
                            peer.status = "dismissed"
                            self.recorder.event(
                                "trace_truncated",
                                track=f"node{peer.node}",
                                reason="dismissed")
                            self._write(peer, FrameType.BYE)
                        break
                else:
                    grace_start = None
            if time.perf_counter() > deadline:
                self.errors.append(
                    "hub watchdog: run never completed "
                    f"(active={[p.node for p in active]})")
                break
        await self._finish_run()
        self.done.set()

    async def _finish_run(self) -> None:
        self.stats.salvaged_iterations = await self._salvage()
        for peer in self.peers.values():
            self._write(peer, FrameType.BYE)
        for peer in self.peers.values():
            try:
                await peer.writer.drain()
            except (ConnectionError, OSError):
                pass
        self.stats.end_time = self.now()
        self.stats.crashed_nodes = tuple(sorted(self.crashed))
        self.stats.declared_dead = tuple(sorted(self.declared))
        self.stats.joined_nodes = tuple(sorted(self.joined))
        self.stats.left_nodes = tuple(sorted(self.left))
        self.stats.payload_by_frame = dict(sorted(self.frames.items()))
        self.stats.transport_payload_bytes = sum(self.frames.values())
        if not self.errors:
            all_ranges = [r for rs in self.stats.executed_by_node.values()
                          for r in rs]
            try:
                merged = merge_ranges(all_ranges)
            except ValueError as exc:
                self.errors.append(f"duplicated iterations: {exc}")
                return
            expected = [(0, self.loop_spec.n_iterations)]
            if merged != expected:
                self.errors.append(
                    f"lost iterations: executed {merged}, "
                    f"expected {expected}")

    async def _salvage(self) -> int:
        """Re-execute orphaned iterations; credit the lowest survivor."""
        if self.errors:
            return 0
        try:
            executed = merge_ranges(
                [r for ranges in self.stats.executed_by_node.values()
                 for r in ranges])
        except ValueError as exc:
            self.errors.append(f"duplicated iterations: {exc}")
            return 0
        orphans: list[Range] = []
        cursor = 0
        n_iter = self.loop_spec.n_iterations
        for start, end in executed + [(n_iter, n_iter)]:
            if cursor < start:
                orphans.append((cursor, start))
            cursor = max(cursor, end)
        if not orphans:
            return 0
        survivors = [p.node for p in self.peers.values()
                     if p.status == "finished"] or \
                    [p.node for p in self.peers.values()
                     if p.status != "crashed"]
        if not survivors:
            self.errors.append(
                f"orphaned iterations {orphans} with no survivor "
                "to credit")
            return 0
        survivor = min(survivors)
        count = 0
        for start, end in orphans:
            work = self.table.range_work(start, end)
            await asyncio.sleep(work * self.time_scale)
            count += end - start
        self.stats.executed_by_node.setdefault(
            survivor, []).extend(orphans)
        return count


# ---------------------------------------------------------------------------
# The backend proper.
# ---------------------------------------------------------------------------
class SocketBackend(ExecutionBackend):
    """Execute the DLB protocol over real TCP sockets (localhost hub)."""

    name = "socket"

    def __init__(self, *, time_scale: float = 1.0,
                 workers: str = "tasks",
                 start_method: Optional[str] = None,
                 host: str = "127.0.0.1",
                 script: Sequence[object] = ()) -> None:
        if time_scale <= 0:
            raise BackendError("time_scale must be positive")
        if workers not in ("tasks", "procs"):
            raise BackendError(
                f"workers must be 'tasks' or 'procs', not {workers!r}")
        self.time_scale = time_scale
        self.workers = workers
        self.start_method = start_method
        self.host = host
        #: Membership script: JoinEvent / LeaveEvent / KillEvent, fired
        #: by cumulative executed-iteration count.
        self.script = tuple(script)

    def _context(self):
        import multiprocessing
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
        try:
            return multiprocessing.get_context(method)
        except ValueError as exc:
            raise BackendError(f"unknown start method {method!r}") from exc

    # -- validation ------------------------------------------------------
    def _validate(self, spec: StrategySpec, n: int, options: RunOptions,
                  selector, fault_plan: Optional[FaultPlan]) -> None:
        if spec.code == "WS":
            raise BackendError(
                "the work-stealing baseline is simulation-only")
        if spec.code == "CUSTOM" or selector is not None:
            raise BackendError(
                "the CUSTOM model-based selection consults the simulated "
                "load model; pick a concrete strategy for "
                "--backend socket")
        if fault_plan is not None and not fault_plan.empty:
            if fault_plan.slowdowns or fault_plan.drops or fault_plan.delays:
                raise BackendError(
                    "the socket backend lifts crash faults only; "
                    "slowdowns, drops and delays remain simulation-only")
        if options.sync_mode != "interrupt":
            raise BackendError(
                "periodic synchronization is simulation-only")
        if options.include_staging:
            raise BackendError("staged scatter/gather is simulation-only")
        if options.topology is not None or spec.code == "DIFF":
            raise BackendError(
                "graph topologies (and the diffusion strategy) run on the "
                "sim and thread backends; the socket transport is a flat "
                "TCP mesh")
        if spec.is_dlb and spec.code != "NONE" and n < 2:
            raise ValueError(
                "dynamic load balancing needs at least 2 processors")

    # -- entry points ----------------------------------------------------
    def run_loop(self, loop: LoopSpec, cluster: ClusterSpec,
                 strategy: StrategyLike,
                 options: Optional[RunOptions] = None,
                 selector: Optional[Callable] = None,
                 fault_plan: Optional[FaultPlan] = None) -> LoopRunStats:
        hub, stats = self._prepare(loop, cluster, strategy, options,
                                   selector, fault_plan, strict=True)
        procs: list = []
        try:
            asyncio.run(self._run_async(hub, procs))
        finally:
            if procs:
                join_or_terminate(procs, timeout=5.0,
                                  terminate=lambda p: p.terminate(),
                                  kill=lambda p: p.kill())
        if hub.errors:
            raise BackendError("; ".join(hub.errors))
        return stats

    def serve(self, loop: LoopSpec, cluster: ClusterSpec,
              strategy: StrategyLike,
              options: Optional[RunOptions] = None,
              fault_plan: Optional[FaultPlan] = None, *,
              port: int = 7070,
              on_ready: Optional[Callable[[int], None]] = None
              ) -> LoopRunStats:
        """Balancer mode for the CLI: listen and wait for real workers.

        No workers are spawned — they connect from other terminals (or
        hosts) via ``python -m repro worker``.  Unexpected disconnects
        are tolerated (marked crashed, salvaged), not errors.
        """
        hub, stats = self._prepare(loop, cluster, strategy, options,
                                   None, fault_plan, strict=False)
        asyncio.run(self._serve_async(hub, port, on_ready))
        if hub.errors:
            raise BackendError("; ".join(hub.errors))
        return stats

    def _prepare(self, loop: LoopSpec, cluster: ClusterSpec,
                 strategy: StrategyLike, options: Optional[RunOptions],
                 selector, fault_plan: Optional[FaultPlan],
                 *, strict: bool) -> tuple[_Hub, LoopRunStats]:
        options = options or RunOptions()
        spec = strategy if isinstance(strategy, StrategySpec) \
            else get_strategy(strategy)
        n = cluster.n_processors
        if fault_plan is not None and fault_plan.empty:
            fault_plan = None
        self._validate(spec, n, options, selector, fault_plan)
        ft = options.fault_tolerance
        kills = [ev for ev in self.script if isinstance(ev, KillEvent)]
        if fault_plan is not None:
            fault_plan.validate_for(n)
        if (fault_plan is not None and fault_plan.crashes) or kills:
            if not ft.enabled:
                ft = replace(ft, enabled=True)

        table = loop.work_table()
        k = options.effective_group_size(n, spec.group_size)
        if spec.global_scope or not spec.is_dlb:
            groups: list[list[int]] = [list(range(n))]
        else:
            groups = build_groups(n, k, formation=options.group_formation,
                                  seed=options.group_seed)
        stats = LoopRunStats(loop_name=loop.name, strategy=spec.name,
                             n_processors=n, group_size=k,
                             backend=self.name)
        registry = MetricsRegistry()
        # The stats field holds the registry's own storage: every bump
        # through the registry is immediately visible in the stats.
        stats.messages_by_tag = registry.counter("messages_by_tag")
        stats.environment = environment_fingerprint(workers=self.workers)
        recorder = options.recorder or NULL_RECORDER
        parts = equal_block_partition(loop.n_iterations, n)
        crash_at = {c.node: c.time * self.time_scale
                    for c in fault_plan.crashes} if fault_plan else {}
        hub = _Hub(loop_spec=loop, table=table, spec=spec,
                   options=options, ft=ft, groups=groups, parts=parts,
                   time_scale=self.time_scale, crash_at=crash_at,
                   script=self.script, stats=stats, strict=strict,
                   recorder=recorder)
        return hub, stats

    async def _run_async(self, hub: _Hub, procs: list) -> None:
        port = await hub.start(self.host, 0)
        worker_tasks: list[asyncio.Task] = []
        ctx = self._context() if self.workers == "procs" else None

        def spawn() -> None:
            if ctx is not None:
                p = ctx.Process(target=_worker_proc_entry,
                                args=(self.host, port),
                                name=f"dlb-sock{len(procs)}", daemon=True)
                procs.append(p)
                p.start()
            else:
                worker_tasks.append(asyncio.create_task(
                    _run_client(self.host, port)))

        hub.spawner = spawn
        for _ in range(hub.n):
            spawn()
        background = [asyncio.create_task(hub.run_completion())]
        if hub.monitor is not None:
            background.append(asyncio.create_task(hub.run_liveness()))
        try:
            await asyncio.wait_for(hub.done.wait(),
                                   WATCHDOG_SECONDS * 2 + 30.0)
        except asyncio.TimeoutError:
            hub.errors.append("hub watchdog: completion monitor stalled")
        finally:
            for task in background:
                task.cancel()
            await hub.close()
            if worker_tasks:
                done, still = await asyncio.wait(worker_tasks, timeout=5.0)
                for task in still:
                    task.cancel()
                for task in done:
                    exc = task.exception()
                    if exc is not None and not isinstance(
                            exc, (_AbruptStop, _Dismissed)):
                        hub.errors.append(
                            f"worker task failed: {exc!r}")

    async def _serve_async(self, hub: _Hub, port: int,
                           on_ready: Optional[Callable[[int], None]]
                           ) -> None:
        bound = await hub.start(self.host, port)
        if on_ready is not None:
            on_ready(bound)
        background = [asyncio.create_task(hub.run_completion())]
        if hub.monitor is not None:
            background.append(asyncio.create_task(hub.run_liveness()))
        try:
            await asyncio.wait_for(hub.done.wait(),
                                   WATCHDOG_SECONDS * 4)
        except asyncio.TimeoutError:
            hub.errors.append("hub watchdog: no run completed")
        finally:
            for task in background:
                task.cancel()
            await hub.close()
