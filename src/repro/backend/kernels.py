"""Synthetic CPU-burn kernels shared by the real-time backends.

Two kernels realize a "compute this iteration" request:

* **wall** — spin until a wall-clock deadline.  Cheap and exact, but it
  measures *elapsed time*, not *CPU work*: N GIL-sharing threads each
  spinning to their own deadline all finish "on time" while doing 1/N
  of the arithmetic.  Fine for protocol exercise; useless for speedup
  claims.
* **ops** — execute a fixed number of floating-point operations,
  calibrated once against this host (:func:`calibrate_ops_rate`).  This
  is real work: N threads contending for the GIL serialize, N processes
  on N cores do not — which is exactly the thread-vs-process speedup
  story the paper's Figures 5–8 tell on physical workstations.

Both kernels honor an optional ``should_abort`` probe between chunks so
a failing run can tear its workers down instead of spinning until the
watchdog (see the shutdown contract in ``thread.py``/``process.py``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["burn_ops", "burn_wall", "calibrate_ops_rate"]

#: Operations between abort probes; small enough that aborts land within
#: tens of microseconds, large enough that the probe cost is noise.
CHUNK_OPS = 1024


def burn_ops(n_ops: float,
             should_abort: Optional[Callable[[], bool]] = None) -> float:
    """Execute ``n_ops`` floating-point multiply-adds; return the sink.

    Stops early (returning the partial sink) when ``should_abort``
    fires between chunks.
    """
    x = 1.0
    remaining = int(n_ops)
    while remaining > 0:
        if should_abort is not None and should_abort():
            break
        step = CHUNK_OPS if remaining > CHUNK_OPS else remaining
        for _ in range(step):
            x = x * 1.0000001 + 1e-9
        remaining -= step
    return x


def burn_wall(seconds: float,
              should_abort: Optional[Callable[[], bool]] = None) -> None:
    """Spin until ``seconds`` of wall time elapsed (or abort fires)."""
    if seconds <= 0:
        return
    end = time.perf_counter() + seconds
    x = 1.0
    while time.perf_counter() < end:
        if should_abort is not None and should_abort():
            return
        for _ in range(64):
            x = x * 1.0000001 + 1e-9


_cached_rate: Optional[float] = None


def calibrate_ops_rate(sample_ops: int = 200_000, repeats: int = 3,
                       fresh: bool = False) -> float:
    """Measured multiply-adds per second of :func:`burn_ops` on this host.

    Takes the best of ``repeats`` short samples (minimizing scheduler
    noise) and caches the result for the life of the process; forked
    workers inherit the cache, so one calibration prices every backend
    in a comparison identically — which is what makes thread-vs-process
    wall-clock ratios meaningful even if the absolute rate drifts.
    """
    global _cached_rate
    if _cached_rate is not None and not fresh:
        return _cached_rate
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        burn_ops(sample_ops)
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, sample_ops / elapsed)
    if best <= 0:  # pragma: no cover - perf_counter would have to stall
        best = 1e7
    _cached_rate = best
    return best
