"""Synthetic CPU-burn kernels shared by the real-time backends.

Three kernels realize a "compute this iteration" request:

* **wall** — spin until a wall-clock deadline.  Cheap and exact, but it
  measures *elapsed time*, not *CPU work*: N GIL-sharing threads each
  spinning to their own deadline all finish "on time" while doing 1/N
  of the arithmetic.  Fine for protocol exercise; useless for speedup
  claims.
* **ops** — execute a fixed number of floating-point operations,
  calibrated once against this host (:func:`calibrate_ops_rate`).  This
  is real work: N threads contending for the GIL serialize, N processes
  on N cores do not — which is exactly the thread-vs-process speedup
  story the paper's Figures 5–8 tell on physical workstations.
* **numpy** — the same fixed op count executed as vectorized
  multiply-adds (:func:`burn_vec`), calibrated separately
  (:func:`calibrate_vec_rate`).  Two properties matter: numpy releases
  the GIL inside a ufunc, so even *threads* overlap on real cores; and
  the kernel can compute **in place on a caller-supplied float64 view**
  — the process backend hands it a window of its
  ``multiprocessing.shared_memory`` block (:func:`shm_row_view`), so
  the arithmetic touches the iteration's actual data rows with zero
  copies (not just zero-copy transport).

All kernels honor an optional ``should_abort`` probe between chunks so
a failing run can tear its workers down instead of spinning until the
watchdog (see the shutdown contract in ``thread.py``/``process.py``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

try:  # numpy is optional: the 'numpy' kernel degrades to unavailable.
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None  # type: ignore[assignment]

__all__ = [
    "HAVE_NUMPY",
    "KERNELS",
    "burn_ops",
    "burn_vec",
    "burn_wall",
    "calibrate_ops_rate",
    "calibrate_vec_rate",
    "shm_row_view",
]

#: Whether the vectorized kernel can run at all on this host.
HAVE_NUMPY = _np is not None

#: Every kernel name a backend may accept.
KERNELS = ("wall", "ops", "numpy")

#: Operations between abort probes; small enough that aborts land within
#: tens of microseconds, large enough that the probe cost is noise.
CHUNK_OPS = 1024


def burn_ops(n_ops: float,
             should_abort: Optional[Callable[[], bool]] = None) -> float:
    """Execute ``n_ops`` floating-point multiply-adds; return the sink.

    Stops early (returning the partial sink) when ``should_abort``
    fires between chunks.
    """
    x = 1.0
    remaining = int(n_ops)
    while remaining > 0:
        if should_abort is not None and should_abort():
            break
        step = CHUNK_OPS if remaining > CHUNK_OPS else remaining
        for _ in range(step):
            x = x * 1.0000001 + 1e-9
        remaining -= step
    return x


def burn_wall(seconds: float,
              should_abort: Optional[Callable[[], bool]] = None) -> None:
    """Spin until ``seconds`` of wall time elapsed (or abort fires)."""
    if seconds <= 0:
        return
    end = time.perf_counter() + seconds
    x = 1.0
    while time.perf_counter() < end:
        if should_abort is not None and should_abort():
            return
        for _ in range(64):
            x = x * 1.0000001 + 1e-9


#: Float64 elements of the fallback scratch vector used when the caller
#: supplies no data view (thread backend, tiny rows).  Big enough that
#: numpy's per-ufunc dispatch overhead amortizes; small enough to stay
#: resident in L1/L2.
VEC_CHUNK = 4096

#: Below this many float64 elements a view is not worth vectorizing
#: over — per-pass dispatch overhead would dominate and the calibrated
#: rate would misprice the iteration.  Callers fall back to scratch.
MIN_VEC_ELEMS = 8

#: Multiply-adds per element per pass of :func:`burn_vec` (one fused
#: ``x = x * a + b`` counts 2, matching :func:`burn_ops` accounting).
_VEC_OPS_PER_ELEM = 2


def burn_vec(n_ops: float, out: Optional["_np.ndarray"] = None,
             should_abort: Optional[Callable[[], bool]] = None) -> float:
    """Execute ``n_ops`` multiply-adds as vectorized numpy passes.

    Operates **in place** on ``out`` when given — typically a zero-copy
    float64 view of a shared-memory iteration row
    (:func:`shm_row_view`) — otherwise on a private scratch vector of
    :data:`VEC_CHUNK` elements.  The contraction multiplier (< 1) keeps
    values bounded however many passes run, so repeated in-place burns
    over the same row never overflow.

    Returns the first element as a sink.  Stops early when
    ``should_abort`` fires between passes.
    """
    if _np is None:
        raise RuntimeError("numpy is not available; use the 'ops' kernel")
    x = out
    if x is None or x.size < MIN_VEC_ELEMS:
        x = _np.full(VEC_CHUNK, 0.5)
    ops_per_pass = _VEC_OPS_PER_ELEM * x.size
    remaining = int(n_ops)
    while remaining > 0:
        if should_abort is not None and should_abort():
            break
        _np.multiply(x, 0.999999, out=x)
        _np.add(x, 1e-9, out=x)
        remaining -= ops_per_pass
    return float(x[0])


def shm_row_view(buf, offset: int, nbytes: int) -> Optional["_np.ndarray"]:
    """Zero-copy float64 view over ``nbytes`` bytes of ``buf`` at ``offset``.

    ``buf`` is any writable buffer (``shared_memory.SharedMemory.buf``);
    the view aliases it, so :func:`burn_vec` writing through the view
    mutates the shared block directly.  Returns ``None`` when the
    window is too small to vectorize over (:data:`MIN_VEC_ELEMS`).
    """
    if _np is None:
        return None
    elems = nbytes // 8
    if elems < MIN_VEC_ELEMS:
        return None
    return _np.frombuffer(buf, dtype=_np.float64, count=elems,
                          offset=offset)


_cached_rate: Optional[float] = None


def calibrate_ops_rate(sample_ops: int = 200_000, repeats: int = 3,
                       fresh: bool = False) -> float:
    """Measured multiply-adds per second of :func:`burn_ops` on this host.

    Takes the best of ``repeats`` short samples (minimizing scheduler
    noise) and caches the result for the life of the process; forked
    workers inherit the cache, so one calibration prices every backend
    in a comparison identically — which is what makes thread-vs-process
    wall-clock ratios meaningful even if the absolute rate drifts.
    """
    global _cached_rate
    if _cached_rate is not None and not fresh:
        return _cached_rate
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        burn_ops(sample_ops)
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, sample_ops / elapsed)
    if best <= 0:  # pragma: no cover - perf_counter would have to stall
        best = 1e7
    _cached_rate = best
    return best


_cached_vec_rates: dict[int, float] = {}


def calibrate_vec_rate(elems: Optional[int] = None,
                       sample_ops: int = 50_000_000, repeats: int = 3,
                       fresh: bool = False) -> float:
    """Measured multiply-adds per second of :func:`burn_vec` on this host.

    The rate depends on the working vector's size (per-pass dispatch
    overhead amortizes over more elements), so it is calibrated — and
    cached — **per element count**: pass the same ``elems`` the run
    will actually burn over (``None`` means the :data:`VEC_CHUNK`
    scratch fallback) and wall time per iteration stays faithful to
    ``cost * time_scale`` whatever the row width.

    The sample must run tens of milliseconds: vectorized rates are high
    enough that a short sample measures the CPU's burst behavior, not
    the sustained throughput the run will actually see.
    """
    if _np is None:
        raise RuntimeError("numpy is not available; use the 'ops' kernel")
    if elems is None or elems < MIN_VEC_ELEMS:
        elems = VEC_CHUNK
    rate = _cached_vec_rates.get(elems)
    if rate is not None and not fresh:
        return rate
    x = _np.full(elems, 0.5)
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        burn_vec(sample_ops, out=x)
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, sample_ops / elapsed)
    if best <= 0:  # pragma: no cover - perf_counter would have to stall
        best = 1e8
    _cached_vec_rates[elems] = best
    return best
