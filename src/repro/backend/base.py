"""The ``ExecutionBackend`` seam.

A backend supplies the four execution facets the protocol layer
(:mod:`repro.protocol`) deliberately knows nothing about:

* **clock** — what "now" means (virtual event time vs. wall clock),
* **timers** — how an :class:`~repro.protocol.commands.AwaitMessage`
  timeout is realized (event-heap entry vs. condition-variable wait),
* **transport** — how a :class:`~repro.protocol.commands.Send` reaches
  the peer (simulated shared-bus Ethernet vs. in-process queues),
* **compute** — how a compute slice burns "work" (simulated load-model
  time vs. synthetic CPU-burn kernels).

The protocol objects emit commands; the backend interprets them.  Two
interpreters ship today: :class:`~repro.backend.sim.SimBackend` (the
original discrete-event kernel, bit-identical to the pre-seam runtime)
and :class:`~repro.backend.thread.ThreadBackend` (real threads, real
queues, wall-clock time).  Future backends (async, multiprocess,
sharded balancers) implement this same interface without touching
protocol logic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..apps.workload import LoopSpec
    from ..core.strategies.base import StrategySpec
    from ..faults.plan import FaultPlan
    from ..machine.cluster import ClusterSpec
    from ..runtime.options import RunOptions
    from ..runtime.stats import LoopRunStats

__all__ = ["ExecutionBackend", "BackendError", "get_backend",
           "join_or_terminate"]

StrategyLike = Union[str, "StrategySpec"]


class BackendError(ValueError):
    """A run was requested that this backend cannot execute."""


class ExecutionBackend(ABC):
    """One way of executing the DLB protocol (see module docstring).

    ``name`` is recorded into :attr:`LoopRunStats.backend` so runs stay
    distinguishable post-hoc (CSV/JSON exports include it).
    """

    #: Stable identifier, also the CLI ``--backend`` value.
    name: str = "?"

    @abstractmethod
    def run_loop(self, loop: "LoopSpec", cluster: "ClusterSpec",
                 strategy: StrategyLike,
                 options: Optional["RunOptions"] = None,
                 selector: Optional[Callable] = None,
                 fault_plan: Optional["FaultPlan"] = None) -> "LoopRunStats":
        """Execute one load-balanced loop; return its statistics.

        Implementations must uphold the exactly-once invariant (every
        iteration executed once across all nodes) or raise; they must
        raise :class:`BackendError` for configurations they do not
        support rather than silently degrading.
        """


def get_backend(backend: Union[str, ExecutionBackend, None]
                ) -> ExecutionBackend:
    """Resolve a backend name or instance.

    Known names: ``"sim"``, ``"thread"``, ``"process"``, ``"socket"``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None or backend == "sim":
        from .sim import SimBackend
        return SimBackend()
    if backend == "thread":
        from .thread import ThreadBackend
        return ThreadBackend()
    if backend == "process":
        from .process import ProcessBackend
        return ProcessBackend()
    if backend == "socket":
        from .socket import SocketBackend
        return SocketBackend()
    raise BackendError(f"unknown backend {backend!r} "
                       "(expected 'sim', 'thread', 'process' or 'socket')")


def join_or_terminate(participants: Iterable, *, timeout: float = 5.0,
                      terminate: Optional[Callable] = None,
                      kill: Optional[Callable] = None) -> list[str]:
    """Join every still-live participant, escalating stragglers.

    The one shutdown path shared by the real-time backends: threads
    (no ``terminate``/``kill`` — they stop at their next abort poll),
    worker processes (``terminate`` then ``kill``), and socket worker
    subprocesses.  A participant is anything with ``is_alive()`` and
    ``join(timeout)``.  Escalation per participant: optional
    ``terminate``, join, optional ``kill``, join again.  Returns the
    names of participants that survived everything — the caller decides
    whether leftovers are an error; an empty list is a clean shutdown.
    """
    stragglers: list[str] = []
    for p in participants:
        if not p.is_alive():
            continue
        if terminate is not None:
            terminate(p)
        p.join(timeout)
        if p.is_alive() and kill is not None:
            kill(p)
            p.join(timeout)
        if p.is_alive():
            stragglers.append(getattr(p, "name", None) or repr(p))
    return stragglers
