"""Execution backends for the DLB protocol core.

The protocol layer (:mod:`repro.protocol`) is pure; a backend decides
what clock, timers, transport, and compute mean:

* :class:`SimBackend` — the deterministic discrete-event kernel
  (default; bit-identical to the pre-seam runtime on seeded runs).
* :class:`ThreadBackend` — real threads, in-process queues, wall-clock
  time, synthetic CPU-burn kernels.
* :class:`ProcessBackend` — one OS process per worker plus a balancer
  process: queue mailboxes for control traffic, a shared-memory block
  for iteration data (redistribution ships offsets, not arrays), true
  multi-core parallelism, and liftable crash-fault injection.
* :class:`SocketBackend` — the protocol over real TCP: a hub routes
  length-prefixed JSON frames (docs/WIRE_PROTOCOL.md) between asyncio
  worker peers, with elastic membership (join / planned leave / crash)
  and ping/pong liveness feeding the death-declaration path.

Select one via ``run_loop(..., backend="process")`` or the CLI's
``python -m repro run --backend process``.
"""

from .base import BackendError, ExecutionBackend, get_backend
from .process import ProcessBackend
from .sim import SimBackend
from .socket import SocketBackend
from .thread import ThreadBackend

__all__ = [
    "BackendError",
    "ExecutionBackend",
    "ProcessBackend",
    "SimBackend",
    "SocketBackend",
    "ThreadBackend",
    "get_backend",
]
