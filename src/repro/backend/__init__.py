"""Execution backends for the DLB protocol core.

The protocol layer (:mod:`repro.protocol`) is pure; a backend decides
what clock, timers, transport, and compute mean:

* :class:`SimBackend` — the deterministic discrete-event kernel
  (default; bit-identical to the pre-seam runtime on seeded runs).
* :class:`ThreadBackend` — real threads, in-process queues, wall-clock
  time, synthetic CPU-burn kernels.

Select one via ``run_loop(..., backend="thread")`` or the CLI's
``python -m repro run --backend thread``.
"""

from .base import BackendError, ExecutionBackend, get_backend
from .sim import SimBackend
from .thread import ThreadBackend

__all__ = [
    "BackendError",
    "ExecutionBackend",
    "SimBackend",
    "ThreadBackend",
    "get_backend",
]
