"""True-parallel execution backend: one OS process per worker.

``ProcessBackend`` drives the same protocol state machines as the
simulator and :class:`~repro.backend.thread.ThreadBackend` —
:class:`~repro.protocol.worker.WorkerProtocol` in each worker process,
:class:`~repro.protocol.balancer.BalancerProtocol` in a dedicated
balancer process — but interprets their commands against genuinely
parallel hardware:

* **clock** — ``time.perf_counter()`` (CLOCK_MONOTONIC: comparable
  across processes on every supported platform), measured from a common
  origin the parent stamps just before forking;
* **timers** — bounded ``Queue.get`` polls, so fault-tolerance
  timeouts and crash schedules fire even while blocked;
* **transport** — one ``multiprocessing`` queue per participant.
  Control traffic (profiles, instructions, interrupts, work *orders*)
  crosses the pipe pickled; iteration **data** does not — see below;
* **compute** — calibrated CPU-burn op kernels
  (:mod:`~repro.backend.kernels`): each iteration executes a fixed
  number of floating-point operations, so — unlike GIL-sharing threads
  — P workers on a P-core host really do run P× as much arithmetic per
  wall second.

Data movement over shared memory
--------------------------------
The paper's §4 cost model charges redistribution for moving each
iteration's ``DC`` bytes of array data.  Here the whole iteration-data
array lives in one ``multiprocessing.shared_memory`` block (one
``dc_bytes`` row per iteration) that every worker maps.  A
redistribution ships only a :class:`~repro.message.messages.WorkMsg`
with *iteration ranges* — offsets into the block — while the rows
themselves never touch a pipe.  Both sides are measured:
``LoopRunStats.transport_payload_bytes`` counts the bytes actually
pickled onto queues and ``LoopRunStats.shm_data_bytes`` the iteration
data that moved by remapping instead of copying.  After every run the
parent audits the block: each executed iteration's row must carry the
stamp of exactly the node the coverage ledger credits.

Fault injection
---------------
Crash faults from a :class:`~repro.faults.plan.FaultPlan` are *lifted*
(ThreadBackend rejects them): the victim process fail-stops via
``os._exit`` once its wall clock passes ``time * time_scale`` — also
mid-iteration, between op chunks — so it reports nothing further.  The
parent detects the distinctive exit code, broadcasts peer-death notices
(the backend's failure detector), and the surviving workers' hardened
protocol (timed receives, resends, death declarations) reshapes the
group exactly as on the other backends.  Iterations the victim executed
but never reported — and those still in its assignment — are salvaged:
re-executed by the parent and credited to the lowest-numbered survivor,
so exactly-once coverage holds for every crash plan.  Slowdown, drop,
and delay faults remain simulation-only (:class:`BackendError`).

Deliberate non-goals (raise :class:`BackendError`), as for threads:
the simulated external-load model, CUSTOM selection, the WS baseline,
periodic synchronization, and staged scatter/gather.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import struct
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..apps.workload import LoopSpec, WorkTable
from ..core.policy import DlbPolicy
from ..core.redistribution import make_movement_cost_estimator
from ..core.strategies.base import StrategySpec
from ..core.strategies.registry import get_strategy
from ..faults.plan import FaultPlan
from ..machine.cluster import ClusterSpec, build_groups
from ..message.messages import Message, Tag
from ..protocol import (
    AwaitMessage,
    BalancerProtocol,
    Charge,
    ComputeDone,
    DeclareDead,
    Done,
    MessageReceived,
    PeerDead,
    RecordSync,
    Send,
    Start,
    StartCompute,
    TimerFired,
    WorkerProtocol,
)
from ..obs.metrics import CounterDict, MetricsRegistry
from ..obs.trace import NULL_RECORDER, TraceRecorder
from ..protocol.commands import Emit
from ..runtime.assignment import (
    Assignment,
    equal_block_partition,
    merge_ranges,
)
from ..runtime.options import FaultToleranceConfig, RunOptions
from ..runtime.stats import LoopRunStats, SyncRecord, environment_fingerprint
from .base import (
    BackendError,
    ExecutionBackend,
    StrategyLike,
    join_or_terminate,
)
from .kernels import (
    HAVE_NUMPY,
    burn_ops,
    burn_vec,
    calibrate_ops_rate,
    calibrate_vec_rate,
    shm_row_view,
)

__all__ = ["ProcessBackend"]

Range = tuple[int, int]

#: Safety net on every blocking wait, as in the thread backend.
WATCHDOG_SECONDS = 120.0

#: Exit code of a fault-injected fail-stop; distinguishes a scheduled
#: crash from a worker that died of a bug.
CRASH_EXIT_CODE = 17

#: Bytes of the per-iteration ownership stamp at the head of each row.
STAMP_BYTES = 8

#: Parent poll granularity while supervising children.
POLL_SECONDS = 0.02

#: Grace for a dead child's last queue records to drain before the
#: parent gives up waiting for an explanation.
DRAIN_GRACE_SECONDS = 2.0


@dataclass(frozen=True)
class _PeerDeadNotice:
    """Parent-injected failure notice, delivered through a mailbox."""

    node: int


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything one worker process needs, in picklable form.

    Protocol objects are built *inside* the child from this config, so
    nothing with lambdas or thread state ever crosses the spawn
    boundary.
    """

    node: int
    members: tuple[int, ...]
    group: int
    centralized: bool
    lb_host: int
    policy: DlbPolicy
    table: WorkTable
    mean_iteration_time: float
    dc_bytes: int
    movement: Optional[tuple[float, float]]  # (latency, bandwidth)
    ft: FaultToleranceConfig
    profile_window_reset: bool
    ranges: tuple[Range, ...]
    is_dlb: bool
    time_scale: float
    kernel: str  # "ops" (scalar burn) or "numpy" (vectorized, in-row)
    ops_rate: float  # calibrated rate of the chosen kernel
    shm_name: Optional[str]
    row_bytes: int
    crash_at: Optional[float]  # wall seconds after t0; None = reliable
    stream_records: bool  # per-iteration exec records (fault runs)
    fail_after: Optional[int]  # test hook: raise after N iterations
    trace_events: bool  # build a child TraceRecorder; ship it at exit


@dataclass(frozen=True)
class _BalancerConfig:
    """Picklable constructor arguments of the balancer process."""

    host: int
    groups: tuple[tuple[int, ...], ...]
    policy: DlbPolicy
    mean_iteration_time: float
    movement: Optional[tuple[float, float]]
    ft: FaultToleranceConfig
    trace_events: bool


class _CrashClock:
    """The child-local realization of a scheduled fail-stop."""

    def __init__(self, crash_at: Optional[float], t0: float) -> None:
        self.crash_at = crash_at
        self.t0 = t0

    @property
    def armed(self) -> bool:
        return self.crash_at is not None

    def due(self) -> bool:
        return (self.crash_at is not None
                and time.perf_counter() - self.t0 >= self.crash_at)

    def check(self) -> None:
        """Fail-stop right now if the schedule says so."""
        if self.due():
            os._exit(CRASH_EXIT_CODE)


def _attach_shm(name: str):
    """Attach to a named shared-memory block without tracker handover.

    A child that merely *attaches* must not let its resource tracker
    unlink the block when the child exits; only the creating parent
    unlinks.  Under ``fork`` the child shares the parent's tracker
    process, whose registry is a set — the duplicate register from the
    attach collapses and nothing need be done (unregistering here would
    strip the *parent's* entry).  Under ``spawn``/``forkserver`` the
    attach spins up a child-owned tracker that would unlink the segment
    at child exit (the bpo-39959 footgun), so there the registration
    must be withdrawn.
    """
    from multiprocessing import resource_tracker, shared_memory
    tracker_preexisting = getattr(
        resource_tracker._resource_tracker, "_fd", None) is not None
    shm = shared_memory.SharedMemory(name=name)
    if not tracker_preexisting:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return shm


class _ChildMailbox:
    """One process's inbox over its ``multiprocessing`` queue.

    Messages that do not match the current :class:`AwaitMessage` are
    buffered; INTERRUPTs never surface — they fold into an epoch set
    polled at iteration boundaries (same contract as the simulator's
    mailbox hook and the thread backend's flags).  Parent-injected
    :class:`_PeerDeadNotice` objects pre-empt any wait.
    """

    def __init__(self, q, crash: _CrashClock) -> None:
        self._q = q
        self._crash = crash
        self._buffer: list[Message] = []
        self._interrupts: set[int] = set()
        self._notices: list[_PeerDeadNotice] = []

    # -- queue intake ----------------------------------------------------
    def _absorb(self, item) -> None:
        if isinstance(item, _PeerDeadNotice):
            self._notices.append(item)
        elif item.tag is Tag.INTERRUPT:
            self._interrupts.add(item.epoch)
        else:
            self._buffer.append(item)

    def poll(self) -> None:
        """Drain everything currently queued, without blocking."""
        while True:
            try:
                self._absorb(self._q.get_nowait())
            except queue_mod.Empty:
                return

    def take_notices(self) -> list[_PeerDeadNotice]:
        self.poll()
        notices, self._notices = self._notices, []
        return notices

    # -- interrupt flags -------------------------------------------------
    def has_interrupt(self, epoch: int) -> bool:
        return epoch in self._interrupts

    def drain_interrupts(self, up_to_epoch: int) -> None:
        self._interrupts = {e for e in self._interrupts if e > up_to_epoch}

    # -- filtered receive ------------------------------------------------
    @staticmethod
    def _matches(msg: Message, spec: AwaitMessage) -> bool:
        if spec.tags is not None and msg.tag not in spec.tags:
            return False
        if spec.epoch is not None and msg.epoch != spec.epoch:
            return False
        if spec.srcs is not None and msg.src not in spec.srcs:
            return False
        return True

    def get(self, spec: AwaitMessage):
        """Next notice or matching message; ``None`` on spec timeout.

        Raises :class:`BackendError` when an untimed wait outlives the
        watchdog (a peer process most likely died without notice).
        """
        deadline = time.perf_counter() + (
            spec.timeout if spec.timeout is not None else WATCHDOG_SECONDS)
        while True:
            if self._notices:
                return self._notices.pop(0)
            for i, msg in enumerate(self._buffer):
                if self._matches(msg, spec):
                    return self._buffer.pop(i)
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                if spec.timeout is None:
                    raise BackendError(
                        f"watchdog: no message matching {spec} within "
                        f"{WATCHDOG_SECONDS}s — a peer process likely "
                        "died; see the first reported error")
                return None
            self._crash.check()
            try:
                self._absorb(self._q.get(timeout=min(remaining,
                                                     POLL_SECONDS * 2.5)))
            except queue_mod.Empty:
                continue


class _ChildReporter:
    """Child-side sink: routes messages, counts traffic, streams stats."""

    def __init__(self, me, queues, balancer_q, stats_q, *,
                 centralized: bool, lb_host: int, t0: float) -> None:
        self.me = me
        self._queues = queues
        self._balancer_q = balancer_q
        self._stats_q = stats_q
        self._centralized = centralized
        self._lb_host = lb_host
        self._t0 = t0
        self.messages = 0
        self.bytes = 0
        self.payload_bytes = 0
        self.shm_bytes = 0
        self.retries = 0
        self.by_tag = CounterDict()

    def now(self) -> float:
        return time.perf_counter() - self._t0

    def send(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.nbytes
        self.by_tag.inc(msg.tag.value)
        self.payload_bytes += len(pickle.dumps(msg, pickle.HIGHEST_PROTOCOL))
        if msg.tag is Tag.WORK:
            # The ranges ride the pipe; the data rows stay in shm.
            self.shm_bytes += msg.data_bytes
        if (self._centralized and msg.tag is Tag.PROFILE
                and msg.dst == self._lb_host):
            self._balancer_q.put(msg)
        else:
            self._queues[msg.dst].put(msg)

    # -- stats stream ----------------------------------------------------
    def executed(self, ranges: Sequence[Range]) -> None:
        self._stats_q.put(("exec", self.me, tuple(ranges)))

    def sync(self, group: int, epoch: int, plan) -> None:
        self._stats_q.put(("sync", group, epoch, {
            "time": self.now(), "reason": plan.reason,
            "moved_work": plan.work_to_move if plan.move else 0.0,
            "n_transfers": len(plan.transfers),
            "retired": tuple(plan.retire),
            "predicted_current": plan.predicted_current,
            "predicted_balanced": plan.predicted_balanced}))

    def declared(self, peer: int) -> None:
        self._stats_q.put(("declared", self.me, peer))

    def trace(self, payload: dict) -> None:
        """Ship this child's trace buffer to the parent (pre-finish)."""
        self._stats_q.put(("trace", self.me, payload))

    def counters(self) -> dict:
        return {"messages": self.messages, "bytes": self.bytes,
                "by_tag": dict(self.by_tag),
                "payload_bytes": self.payload_bytes,
                "shm_bytes": self.shm_bytes, "retries": self.retries}

    def finish(self, kind: str = "finish") -> None:
        self._stats_q.put((kind, self.me, self.now(), self.counters()))

    def error(self, text: str) -> None:
        self._stats_q.put(("error", self.me, text))

    def flush(self) -> None:
        """Block until the stats queue's feeder drained (pre-exit)."""
        self._stats_q.close()
        self._stats_q.join_thread()


# ---------------------------------------------------------------------------
# Child entry points (module-level: spawn start methods must import them).
# ---------------------------------------------------------------------------
def _compute_slice(proto: WorkerProtocol, cfg: _WorkerConfig,
                   mailbox: _ChildMailbox, reporter: _ChildReporter,
                   crash: _CrashClock, shm, row_pattern: bytes,
                   rec=NULL_RECORDER) -> str:
    """Burn real CPU through the assignment, iteration by iteration."""
    assignment = proto.assignment
    table = proto.table
    mailbox.drain_interrupts(proto.epoch - 1)
    if assignment.empty:
        return "finished"
    probe = crash.due if crash.armed else None
    done_batch: list[Range] = []
    executed = 0
    vectorized = cfg.kernel == "numpy"
    try:
        while not assignment.empty:
            crash.check()
            mailbox.poll()
            if proto.is_dlb and mailbox.has_interrupt(proto.epoch):
                return "interrupted"
            taken = assignment.take_head(1)
            start, _end = taken[0]
            cost = table.range_work(start, start + 1)
            t0 = time.perf_counter()
            if vectorized:
                # Compute *in* the iteration's own data row: a zero-copy
                # float64 view of the shared block past the ownership
                # stamp (None when the row payload is too small — the
                # kernel then burns on private scratch instead).
                view = None
                if shm is not None:
                    view = shm_row_view(
                        shm.buf, start * cfg.row_bytes + STAMP_BYTES,
                        cfg.row_bytes - STAMP_BYTES)
                burn_vec(cost * cfg.time_scale * cfg.ops_rate,
                         out=view, should_abort=probe)
            else:
                burn_ops(cost * cfg.time_scale * cfg.ops_rate,
                         should_abort=probe)
            crash.check()  # fail-stop before the iteration is recorded
            t1 = time.perf_counter()
            proto.note_busy(t1 - t0)
            rec.complete("compute", t0 - crash.t0, t1 - t0,
                         track=f"node{cfg.node}", iteration=start)
            proto.note_work(cost)
            if shm is not None:
                off = start * cfg.row_bytes
                shm.buf[off:off + len(row_pattern)] = row_pattern
            executed += 1
            if cfg.fail_after is not None and executed >= cfg.fail_after:
                raise RuntimeError(
                    f"injected test failure on node {cfg.node} "
                    f"after {executed} iterations")
            if cfg.stream_records:
                reporter.executed(taken)
            else:
                done_batch.extend(taken)
        return "finished"
    finally:
        if done_batch:
            reporter.executed(merge_ranges(done_batch))


def _drive_worker(proto: WorkerProtocol, cfg: _WorkerConfig,
                  mailbox: _ChildMailbox, reporter: _ChildReporter,
                  crash: _CrashClock, shm, row_pattern: bytes,
                  rec=NULL_RECORDER) -> None:
    last_await: Optional[AwaitMessage] = None
    commands = proto.on_event(Start())
    while True:
        await_spec: Optional[AwaitMessage] = None
        next_event = None
        for cmd in commands:
            if isinstance(cmd, Send):
                crash.check()
                reporter.send(cmd.msg)
            elif isinstance(cmd, StartCompute):
                status = _compute_slice(proto, cfg, mailbox, reporter,
                                        crash, shm, row_pattern, rec)
                next_event = ComputeDone(status)
            elif isinstance(cmd, AwaitMessage):
                await_spec = cmd
                last_await = cmd
            elif isinstance(cmd, RecordSync):
                reporter.sync(cmd.group, cmd.epoch, cmd.plan)
            elif isinstance(cmd, Charge):
                pass  # planning costs real time on a real backend
            elif isinstance(cmd, DeclareDead):
                reporter.declared(cmd.peer)
            elif isinstance(cmd, Emit):
                rec.event(cmd.name, track=f"node{cfg.node}", **cmd.args())
            elif isinstance(cmd, Done):
                if rec.enabled:
                    # Ship the trace buffer before the finish record so
                    # the parent merges it ahead of run teardown.
                    reporter.trace(rec.to_payload())
                reporter.finish()
                return
            else:  # pragma: no cover - defensive
                raise BackendError(f"unhandled command {cmd!r}")
        if next_event is None:
            notices = mailbox.take_notices()
            if notices:
                next_event = PeerDead(notices[0].node)
                for late in notices[1:]:
                    mailbox._notices.append(late)
            else:
                if await_spec is None:
                    # A PeerDead pump can return no commands (the death
                    # was irrelevant to the current phase): keep the
                    # previous wait armed.
                    await_spec = last_await
                if await_spec is None:  # pragma: no cover - defensive
                    raise BackendError(
                        "protocol yielded neither wait nor compute")
                got = mailbox.get(await_spec)
                if got is None:
                    reporter.retries += 1
                    next_event = TimerFired()
                elif isinstance(got, _PeerDeadNotice):
                    next_event = PeerDead(got.node)
                else:
                    next_event = MessageReceived(got)
        commands = proto.on_event(next_event)


def _movement_fn(movement: Optional[tuple[float, float]], dc_bytes: int,
                 mean_iteration_time: float):
    if movement is None:
        return None
    latency, bandwidth = movement
    return make_movement_cost_estimator(
        latency=latency, bandwidth=bandwidth, dc_bytes=dc_bytes,
        mean_iteration_time=mean_iteration_time)


def _worker_main(cfg: _WorkerConfig, queues, balancer_q, stats_q,
                 t0: float) -> None:
    crash = _CrashClock(cfg.crash_at, t0)
    reporter = _ChildReporter(cfg.node, queues, balancer_q, stats_q,
                              centralized=cfg.centralized,
                              lb_host=cfg.lb_host, t0=t0)
    shm = None
    try:
        if cfg.shm_name is not None:
            shm = _attach_shm(cfg.shm_name)
        row_pattern = struct.pack("<Q", cfg.node + 1)
        if cfg.kernel != "numpy":
            # The scalar kernels never touch the row payload, so stamp
            # the whole row; the numpy kernel computed *into* it, so
            # write only the ownership stamp and keep the results.
            row_pattern += b"\x5a" * (cfg.row_bytes - STAMP_BYTES)
        proto = WorkerProtocol(
            cfg.node, cfg.members, group=cfg.group,
            centralized=cfg.centralized, lb_host=cfg.lb_host,
            policy=cfg.policy, table=cfg.table,
            mean_iteration_time=cfg.mean_iteration_time,
            dc_bytes=cfg.dc_bytes,
            movement_cost_fn=_movement_fn(cfg.movement, cfg.dc_bytes,
                                          cfg.mean_iteration_time),
            ft=cfg.ft, profile_window_reset=cfg.profile_window_reset,
            assignment=Assignment(cfg.ranges), is_dlb=cfg.is_dlb)
        proto.emit_trace = cfg.trace_events
        rec = TraceRecorder(clock=reporter.now) if cfg.trace_events \
            else NULL_RECORDER
        mailbox = _ChildMailbox(queues[cfg.node], crash)
        _drive_worker(proto, cfg, mailbox, reporter, crash, shm,
                      row_pattern, rec)
    except BaseException:
        reporter.error(traceback.format_exc())
        reporter.flush()  # os._exit skips the feeder's atexit flush
        os._exit(1)
    finally:
        if shm is not None:
            shm.close()


def _balancer_main(cfg: _BalancerConfig, queues, balancer_q, stats_q,
                   t0: float) -> None:
    crash = _CrashClock(None, t0)
    reporter = _ChildReporter(-1, queues, balancer_q, stats_q,
                              centralized=True, lb_host=cfg.host, t0=t0)
    try:
        proto = BalancerProtocol(
            cfg.host, [list(g) for g in cfg.groups], policy=cfg.policy,
            mean_iteration_time=cfg.mean_iteration_time,
            movement_cost_fn=_movement_fn(
                cfg.movement, 0, cfg.mean_iteration_time),
            ft=cfg.ft)
        proto.emit_trace = cfg.trace_events
        rec = TraceRecorder(clock=reporter.now) if cfg.trace_events \
            else NULL_RECORDER
        mailbox = _ChildMailbox(balancer_q, crash)
        commands = proto.on_event(Start())
        while True:
            await_spec = None
            for cmd in commands:
                if isinstance(cmd, Send):
                    reporter.send(cmd.msg)
                elif isinstance(cmd, AwaitMessage):
                    await_spec = cmd
                elif isinstance(cmd, RecordSync):
                    reporter.sync(cmd.group, cmd.epoch, cmd.plan)
                elif isinstance(cmd, Charge):
                    pass
                elif isinstance(cmd, Emit):
                    rec.event(cmd.name, track="balancer", **cmd.args())
                elif isinstance(cmd, Done):
                    if rec.enabled:
                        reporter.trace(rec.to_payload())
                    reporter.finish(kind="bfinish")
                    return
                else:  # pragma: no cover - defensive
                    raise BackendError(f"unhandled command {cmd!r}")
            if await_spec is None:  # pragma: no cover - defensive
                raise BackendError("balancer yielded no wait")
            got = mailbox.get(await_spec)
            if isinstance(got, _PeerDeadNotice):
                commands = proto.on_event(PeerDead(got.node))
            else:
                commands = proto.on_event(MessageReceived(got))
    except BaseException:
        reporter.error(traceback.format_exc())
        reporter.flush()
        os._exit(1)


# ---------------------------------------------------------------------------
# The backend proper (parent side).
# ---------------------------------------------------------------------------
class ProcessBackend(ExecutionBackend):
    """Execute the DLB protocol on real processes with shared memory."""

    name = "process"

    def __init__(self, *, time_scale: float = 1.0,
                 start_method: Optional[str] = None,
                 kernel: str = "ops") -> None:
        if time_scale <= 0:
            raise BackendError("time_scale must be positive")
        if kernel not in ("ops", "numpy"):
            raise BackendError(
                f"unknown kernel {kernel!r} (the process backend burns "
                "real CPU work: 'ops' or 'numpy'; 'wall' is thread-only)")
        if kernel == "numpy" and not HAVE_NUMPY:
            raise BackendError(
                "the 'numpy' kernel needs numpy installed; use 'ops'")
        self.time_scale = time_scale
        self.start_method = start_method
        #: ``"ops"`` burns scalar multiply-adds; ``"numpy"`` burns the
        #: same calibrated op counts as vectorized passes computing
        #: in place on the shared-memory data rows (see kernels.py).
        self.kernel = kernel
        #: Test hook: ``{node: n_iterations}`` after which the worker
        #: raises, exercising the shutdown/teardown path.
        self._fail_after: dict[int, int] = {}

    def _context(self):
        import multiprocessing
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
        try:
            return multiprocessing.get_context(method)
        except ValueError as exc:
            raise BackendError(f"unknown start method {method!r}") from exc

    # -- validation ------------------------------------------------------
    def _validate(self, spec: StrategySpec, n: int, options: RunOptions,
                  selector, fault_plan: Optional[FaultPlan]) -> None:
        if spec.code == "WS":
            raise BackendError(
                "the work-stealing baseline is simulation-only")
        if spec.code == "CUSTOM" or selector is not None:
            raise BackendError(
                "the CUSTOM model-based selection consults the simulated "
                "load model; pick a concrete strategy for "
                "--backend process")
        if fault_plan is not None and not fault_plan.empty:
            if fault_plan.slowdowns or fault_plan.drops or fault_plan.delays:
                raise BackendError(
                    "the process backend lifts crash faults only; "
                    "slowdowns, drops and delays remain simulation-only")
        if options.sync_mode != "interrupt":
            raise BackendError(
                "periodic synchronization is simulation-only")
        if options.include_staging:
            raise BackendError("staged scatter/gather is simulation-only")
        if options.topology is not None or spec.code == "DIFF":
            raise BackendError(
                "graph topologies (and the diffusion strategy) run on the "
                "sim and thread backends; the process transport is a flat "
                "shared-memory mesh")
        if spec.is_dlb and spec.code != "NONE" and n < 2:
            raise ValueError(
                "dynamic load balancing needs at least 2 processors")

    # -- entry point -----------------------------------------------------
    def run_loop(self, loop: LoopSpec, cluster: ClusterSpec,
                 strategy: StrategyLike,
                 options: Optional[RunOptions] = None,
                 selector: Optional[Callable] = None,
                 fault_plan: Optional[FaultPlan] = None) -> LoopRunStats:
        options = options or RunOptions()
        spec = strategy if isinstance(strategy, StrategySpec) \
            else get_strategy(strategy)
        n = cluster.n_processors
        if fault_plan is not None and fault_plan.empty:
            fault_plan = None
        self._validate(spec, n, options, selector, fault_plan)
        ft = options.fault_tolerance
        if fault_plan is not None:
            fault_plan.validate_for(n)
            if not ft.enabled:
                from dataclasses import replace
                ft = replace(ft, enabled=True)

        table = loop.work_table()
        mean_iteration_time = table.total_work / table.n
        k = options.effective_group_size(n, spec.group_size)
        if spec.global_scope or not spec.is_dlb:
            groups: list[list[int]] = [list(range(n))]
        else:
            groups = build_groups(n, k, formation=options.group_formation,
                                  seed=options.group_seed)
        group_of = {node: g for g, members in enumerate(groups)
                    for node in members}
        movement = None
        if options.policy.include_movement_cost:
            movement = (options.network.latency, options.network.bandwidth)

        stats = LoopRunStats(loop_name=loop.name, strategy=spec.name,
                             n_processors=n, group_size=k,
                             backend=self.name)
        registry = MetricsRegistry()
        # A live view: _supervise merges each child's counters into the
        # registry's storage, which *is* this stats field.
        stats.messages_by_tag = registry.counter("messages_by_tag")
        recorder = options.recorder or NULL_RECORDER
        parts = equal_block_partition(loop.n_iterations, n)
        row_bytes = max(STAMP_BYTES, loop.dc_bytes)
        if self.kernel == "numpy":
            # Calibrate at the element count the workers actually burn
            # over (the row payload), so per-iteration wall time stays
            # cost * time_scale whatever the row width.
            ops_rate = calibrate_vec_rate((row_bytes - STAMP_BYTES) // 8)
        else:
            ops_rate = calibrate_ops_rate()
        crash_at = {c.node: c.time * self.time_scale
                    for c in fault_plan.crashes} if fault_plan else {}

        ctx = self._context()
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, loop.n_iterations * row_bytes))
        queues = [ctx.Queue() for _ in range(n)]
        balancer_q = ctx.Queue()
        stats_q = ctx.Queue()
        centralized = bool(spec.is_dlb and spec.centralized)

        t0 = time.perf_counter()
        stats.start_time = 0.0
        ctx_method = getattr(ctx, "_name", None) or self.start_method
        stats.environment = environment_fingerprint(
            start_method=ctx_method, kernel=self.kernel)
        if recorder.enabled:
            # Children timestamp against the same parent-stamped origin
            # (perf_counter is CLOCK_MONOTONIC: comparable across
            # processes), so merged buffers share one time domain.
            recorder.set_clock(lambda: time.perf_counter() - t0)
        procs: dict[object, object] = {}
        try:
            for node in range(n):
                gid = group_of[node]
                cfg = _WorkerConfig(
                    node=node, members=tuple(groups[gid]), group=gid,
                    centralized=centralized, lb_host=0,
                    policy=options.policy, table=table,
                    mean_iteration_time=mean_iteration_time,
                    dc_bytes=loop.dc_bytes, movement=movement, ft=ft,
                    profile_window_reset=options.profile_window_reset,
                    ranges=tuple(parts[node].ranges), is_dlb=spec.is_dlb,
                    time_scale=self.time_scale, kernel=self.kernel,
                    ops_rate=ops_rate,
                    shm_name=shm.name, row_bytes=row_bytes,
                    crash_at=crash_at.get(node),
                    stream_records=bool(fault_plan),
                    fail_after=self._fail_after.get(node),
                    trace_events=recorder.enabled)
                p = ctx.Process(target=_worker_main,
                                args=(cfg, queues, balancer_q, stats_q, t0),
                                name=f"dlb-node{node}", daemon=True)
                procs[node] = p
            if centralized:
                bcfg = _BalancerConfig(
                    host=0,
                    groups=tuple(tuple(g) for g in groups),
                    policy=options.policy,
                    mean_iteration_time=mean_iteration_time,
                    movement=movement, ft=ft,
                    trace_events=recorder.enabled)
                procs["balancer"] = ctx.Process(
                    target=_balancer_main,
                    args=(bcfg, queues, balancer_q, stats_q, t0),
                    name="dlb-balancer", daemon=True)
            for p in procs.values():
                p.start()

            crashed, declared = self._supervise(
                stats, procs, queues, balancer_q, stats_q,
                expected_crashes=set(crash_at), options=options,
                recorder=recorder)
            for node in sorted(crashed):
                # A crashed child's buffer died with it (os._exit ships
                # nothing): mark the truncation explicitly rather than
                # dropping the node silently.
                recorder.event("trace_truncated", track=f"node{node}",
                               reason="crashed")

            for p in procs.values():
                p.join(timeout=5.0)
            salvaged = self._salvage(stats, loop, table, crashed,
                                     ops_rate, shm, row_bytes)
            stats.end_time = time.perf_counter() - t0
            stats.crashed_nodes = tuple(sorted(crashed))
            stats.declared_dead = tuple(sorted(declared))
            stats.salvaged_iterations = salvaged
            self._verify_coverage(stats, loop)
            self._verify_shm(stats, shm, row_bytes)
            return stats
        finally:
            join_or_terminate(procs.values(), timeout=2.0,
                              terminate=lambda p: p.terminate(),
                              kill=lambda p: p.kill())
            for q in (*queues, balancer_q, stats_q):
                q.cancel_join_thread()
                q.close()
            shm.close()
            shm.unlink()

    # -- supervision -----------------------------------------------------
    def _supervise(self, stats: LoopRunStats, procs, queues, balancer_q,
                   stats_q, *, expected_crashes: set[int],
                   options: RunOptions,
                   recorder=NULL_RECORDER) -> tuple[set[int], set[int]]:
        """Drain the stats stream and police child liveness.

        Returns ``(crashed, declared_dead)``.  Raises
        :class:`BackendError` when a child dies outside the fault plan.
        """
        sync_seen: set[tuple[int, int]] = set()
        crashed: set[int] = set()
        declared: set[int] = set()
        finished: set = set()
        suspect_since: dict = {}
        pending = set(procs)
        deadline = time.perf_counter() + WATCHDOG_SECONDS * 2

        def handle(rec) -> None:
            kind = rec[0]
            if kind == "exec":
                _, node, ranges = rec
                stats.executed_by_node.setdefault(node, []).extend(ranges)
            elif kind == "sync":
                _, group, epoch, row = rec
                if options.trace and (group, epoch) not in sync_seen:
                    sync_seen.add((group, epoch))
                    stats.record_sync(SyncRecord(
                        time=row["time"], group=group, epoch=epoch,
                        reason=row["reason"],
                        moved_work=row["moved_work"],
                        n_transfers=row["n_transfers"],
                        retired=row["retired"],
                        predicted_current=row["predicted_current"],
                        predicted_balanced=row["predicted_balanced"]))
            elif kind == "declared":
                declared.add(rec[2])
            elif kind == "trace":
                recorder.merge_payload(rec[2])
            elif kind in ("finish", "bfinish"):
                _, node, now, counters = rec
                key = "balancer" if kind == "bfinish" else node
                finished.add(key)
                pending.discard(key)
                if kind == "finish":
                    stats.node_finish_times[node] = now
                stats.network_messages += counters["messages"]
                stats.network_bytes += counters["bytes"]
                stats.transport_payload_bytes += counters["payload_bytes"]
                stats.shm_data_bytes += counters["shm_bytes"]
                stats.fault_retries += counters["retries"]
                stats.messages_by_tag.merge(counters["by_tag"])
            elif kind == "error":
                raise BackendError(
                    f"worker {rec[1]} failed:\n{rec[2]}")
            else:  # pragma: no cover - defensive
                raise BackendError(f"unknown stats record {rec!r}")

        while pending:
            try:
                handle(stats_q.get(timeout=POLL_SECONDS))
                continue
            except queue_mod.Empty:
                pass
            now = time.perf_counter()
            if now > deadline:
                raise BackendError(
                    f"supervision watchdog: {sorted(map(str, pending))} "
                    "never finished")
            for key in list(pending):
                p = procs[key]
                if p.is_alive() or key in finished:
                    continue
                code = p.exitcode
                if code == CRASH_EXIT_CODE and key in expected_crashes:
                    crashed.add(key)
                    pending.discard(key)
                    notice = _PeerDeadNotice(key)
                    for node, q in enumerate(queues):
                        if node != key and node not in crashed:
                            q.put(notice)
                    if "balancer" in procs:
                        balancer_q.put(notice)
                elif code == 0:
                    # Clean exit: its finish record is still draining.
                    continue
                else:
                    # Errored children report through the stats queue;
                    # give the record a moment to surface.
                    since = suspect_since.setdefault(key, now)
                    if now - since > DRAIN_GRACE_SECONDS:
                        raise BackendError(
                            f"worker {key} died unexpectedly "
                            f"(exit code {code})")
        while True:  # trailing records flushed at child exit
            try:
                handle(stats_q.get_nowait())
            except queue_mod.Empty:
                return crashed, declared

    # -- salvage / verification -----------------------------------------
    def _salvage(self, stats: LoopRunStats, loop: LoopSpec,
                 table: WorkTable, crashed: set[int], ops_rate: float,
                 shm, row_bytes: int) -> int:
        """Re-execute orphaned iterations; credit the lowest survivor."""
        if not crashed:
            return 0
        executed = merge_ranges(
            [r for ranges in stats.executed_by_node.values()
             for r in ranges])
        orphans: list[Range] = []
        cursor = 0
        for start, end in executed + [(loop.n_iterations,
                                       loop.n_iterations)]:
            if cursor < start:
                orphans.append((cursor, start))
            cursor = max(cursor, end)
        if not orphans:
            return 0
        survivor = min(node for node in range(stats.n_processors)
                       if node not in crashed)
        pattern = (struct.pack("<Q", survivor + 1)
                   + b"\x5a" * (row_bytes - STAMP_BYTES))
        count = 0
        for start, end in orphans:
            work = table.range_work(start, end)
            if self.kernel == "numpy":
                # Burn over the first orphaned row's payload — the same
                # element count the rate was calibrated at.
                view = shm_row_view(shm.buf,
                                    start * row_bytes + STAMP_BYTES,
                                    row_bytes - STAMP_BYTES)
                burn_vec(work * self.time_scale * ops_rate, out=view)
            else:
                burn_ops(work * self.time_scale * ops_rate)
            for i in range(start, end):
                off = i * row_bytes
                shm.buf[off:off + len(pattern)] = pattern
            count += end - start
        stats.executed_by_node.setdefault(survivor, []).extend(orphans)
        return count

    @staticmethod
    def _verify_coverage(stats: LoopRunStats, loop: LoopSpec) -> None:
        all_ranges = [r for ranges in stats.executed_by_node.values()
                      for r in ranges]
        merged = merge_ranges(all_ranges)  # raises on overlap (duplicates)
        expected = [(0, loop.n_iterations)]
        if merged != expected:
            raise AssertionError(
                f"lost iterations: executed {merged}, expected {expected}")

    @staticmethod
    def _verify_shm(stats: LoopRunStats, shm, row_bytes: int) -> None:
        """Audit the data block: every executed row stamped by its owner."""
        for node, ranges in stats.executed_by_node.items():
            for start, end in ranges:
                for i in range(start, end):
                    off = i * row_bytes
                    stamp = struct.unpack_from("<Q", shm.buf, off)[0]
                    if stamp != node + 1:
                        raise AssertionError(
                            f"shared-memory row {i} stamped by "
                            f"{stamp - 1}, but the coverage ledger "
                            f"credits node {node}")
