"""The discrete-event simulation backend (the original kernel).

``SimBackend`` is a thin wrapper over :func:`repro.runtime.executor`'s
loop driver: virtual clock and timers from
:class:`~repro.simulation.Environment`, transport from the PVM-flavored
:class:`~repro.message.pvm.VirtualMachine` over the shared-bus Ethernet
model, compute from the workstations' load model.  It is **bit-identical**
to the pre-seam runtime on seeded runs — the protocol extraction moved
state behind :mod:`repro.protocol` objects but left the simulation's
event ordering untouched (``tests/protocol/test_cross_backend.py``
pins this with reference stats).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..apps.workload import LoopSpec
from ..faults.plan import FaultPlan
from ..machine.cluster import ClusterSpec
from ..runtime.options import RunOptions
from ..runtime.stats import LoopRunStats
from .base import ExecutionBackend, StrategyLike

__all__ = ["SimBackend"]


class SimBackend(ExecutionBackend):
    """Deterministic discrete-event execution (the default backend)."""

    name = "sim"

    def run_loop(self, loop: LoopSpec, cluster: ClusterSpec,
                 strategy: StrategyLike,
                 options: Optional[RunOptions] = None,
                 selector: Optional[Callable] = None,
                 fault_plan: Optional[FaultPlan] = None) -> LoopRunStats:
        # Imported here: executor routes to backends, so a module-level
        # import would be circular.
        from ..runtime import executor
        stats = executor.run_loop(loop, cluster, strategy, options,
                                  selector, fault_plan=fault_plan)
        stats.backend = self.name
        return stats
