"""Collective communication patterns and their measured cost (§6.1).

The paper characterizes three patterns off-line — one-to-all (OA),
all-to-one (AO) and all-to-all (AA) — and fits polynomials to the
measured times (Figure 4).  :func:`measure_pattern` reproduces the
measurement side on the simulated shared bus: it builds a fresh network,
runs the pattern with ``P`` hosts and a given message size, and reports
the completion time (all messages delivered).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simulation import Environment, Event
from .bus import SharedBusNetwork
from .parameters import NetworkParameters

__all__ = ["PATTERNS", "measure_pattern", "one_to_all", "all_to_one",
           "all_to_all"]

PATTERNS = ("OA", "AO", "AA")


def one_to_all(net: SharedBusNetwork, root: int, nbytes: int
               ) -> Generator[Event, None, None]:
    """Root sends one message to every other host; waits for deliveries."""
    deliveries = []
    for dst in range(net.n_hosts):
        if dst == root:
            continue
        ev = yield from net.transmit(root, dst, nbytes)
        deliveries.append(ev)
    if deliveries:
        yield net.env.all_of(deliveries)


def all_to_one(net: SharedBusNetwork, root: int, nbytes: int
               ) -> Generator[Event, None, None]:
    """Every other host sends to root concurrently; waits for deliveries."""
    env = net.env
    deliveries: list[Event] = []

    def sender(src: int) -> Generator[Event, None, None]:
        ev = yield from net.transmit(src, root, nbytes)
        yield ev

    procs = [env.process(sender(src), name=f"ao:{src}")
             for src in range(net.n_hosts) if src != root]
    if procs:
        yield env.all_of(procs)


def all_to_all(net: SharedBusNetwork, nbytes: int
               ) -> Generator[Event, None, None]:
    """Every host sends to every other host; waits for all deliveries."""
    env = net.env

    def sender(src: int) -> Generator[Event, None, None]:
        deliveries = []
        for dst in range(net.n_hosts):
            if dst == src:
                continue
            ev = yield from net.transmit(src, dst, nbytes)
            deliveries.append(ev)
        if deliveries:
            yield env.all_of(deliveries)

    procs = [env.process(sender(src), name=f"aa:{src}")
             for src in range(net.n_hosts)]
    yield env.all_of(procs)


def measure_pattern(pattern: str, n_hosts: int, nbytes: int,
                    params: Optional[NetworkParameters] = None) -> float:
    """Completion time (seconds) of ``pattern`` on a fresh simulated bus.

    Parameters mirror the paper's off-line characterization: ``pattern``
    is one of ``"OA"``, ``"AO"``, ``"AA"``; ``n_hosts`` is the processor
    count; ``nbytes`` the per-message payload.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; expected {PATTERNS}")
    if n_hosts < 2:
        raise ValueError("patterns need at least two hosts")
    env = Environment()
    net = SharedBusNetwork(env, n_hosts, params)
    if pattern == "OA":
        proc = env.process(one_to_all(net, 0, nbytes), name="OA")
    elif pattern == "AO":
        proc = env.process(all_to_one(net, 0, nbytes), name="AO")
    else:
        proc = env.process(all_to_all(net, nbytes), name="AA")
    env.run(proc)
    return env.now
