"""Collective communication patterns and their measured cost (§6.1).

The paper characterizes three patterns off-line — one-to-all (OA),
all-to-one (AO) and all-to-all (AA) — and fits polynomials to the
measured times (Figure 4).  :func:`measure_pattern` reproduces the
measurement side on the simulated network: it builds a fresh transport
for the requested topology (the shared bus by default), runs the
pattern with ``P`` hosts and a given message size, and reports the
completion time (all messages delivered).

The topology generalization adds a fourth pattern, neighbor exchange
(NX): every host sends to each of its topology neighbors concurrently.
It is the synchronization pattern of diffusion-based balancing; on the
bus (complete adjacency) it degenerates to all-to-all exactly.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simulation import Environment, Event
from .graph import GraphNetwork, build_network
from .parameters import NetworkParameters
from .topology import TopologySpec

__all__ = ["PATTERNS", "NEIGHBOR_PATTERN", "measure_pattern", "one_to_all",
           "all_to_one", "all_to_all", "neighbor_exchange"]

PATTERNS = ("OA", "AO", "AA")
#: Neighbor exchange: measured only when a topology is given (on the bus
#: it is identical to AA), so it is not part of the base PATTERNS sweep.
NEIGHBOR_PATTERN = "NX"


def one_to_all(net: GraphNetwork, root: int, nbytes: int
               ) -> Generator[Event, None, None]:
    """Root sends one message to every other host; waits for deliveries."""
    deliveries = []
    for dst in range(net.n_hosts):
        if dst == root:
            continue
        ev = yield from net.transmit(root, dst, nbytes)
        deliveries.append(ev)
    if deliveries:
        yield net.env.all_of(deliveries)


def all_to_one(net: GraphNetwork, root: int, nbytes: int
               ) -> Generator[Event, None, None]:
    """Every other host sends to root concurrently; waits for deliveries."""
    env = net.env
    deliveries: list[Event] = []

    def sender(src: int) -> Generator[Event, None, None]:
        ev = yield from net.transmit(src, root, nbytes)
        yield ev

    procs = [env.process(sender(src), name=f"ao:{src}")
             for src in range(net.n_hosts) if src != root]
    if procs:
        yield env.all_of(procs)


def all_to_all(net: GraphNetwork, nbytes: int
               ) -> Generator[Event, None, None]:
    """Every host sends to every other host; waits for all deliveries."""
    env = net.env

    def sender(src: int) -> Generator[Event, None, None]:
        deliveries = []
        for dst in range(net.n_hosts):
            if dst == src:
                continue
            ev = yield from net.transmit(src, dst, nbytes)
            deliveries.append(ev)
        if deliveries:
            yield env.all_of(deliveries)

    procs = [env.process(sender(src), name=f"aa:{src}")
             for src in range(net.n_hosts)]
    yield env.all_of(procs)


def neighbor_exchange(net: GraphNetwork, nbytes: int
                      ) -> Generator[Event, None, None]:
    """Every host sends to each topology neighbor; waits for deliveries.

    The synchronization pattern of diffusion balancing: profile exchange
    is restricted to graph edges, so the cost scales with degree rather
    than P on sparse topologies.
    """
    env = net.env
    topo = net.topology

    def sender(src: int) -> Generator[Event, None, None]:
        deliveries = []
        for dst in topo.neighbors(src):
            ev = yield from net.transmit(src, dst, nbytes)
            deliveries.append(ev)
        if deliveries:
            yield env.all_of(deliveries)

    procs = [env.process(sender(src), name=f"nx:{src}")
             for src in range(net.n_hosts)]
    yield env.all_of(procs)


def measure_pattern(pattern: str, n_hosts: int, nbytes: int,
                    params: Optional[NetworkParameters] = None,
                    topology: TopologySpec = None) -> float:
    """Completion time (seconds) of ``pattern`` on a fresh simulated net.

    Parameters mirror the paper's off-line characterization: ``pattern``
    is one of ``"OA"``, ``"AO"``, ``"AA"`` (or ``"NX"`` — neighbor
    exchange); ``n_hosts`` is the processor count; ``nbytes`` the
    per-message payload; ``topology`` the graph to measure on (``None``
    = the paper's shared bus).
    """
    if pattern not in PATTERNS and pattern != NEIGHBOR_PATTERN:
        raise ValueError(f"unknown pattern {pattern!r}; expected "
                         f"{PATTERNS + (NEIGHBOR_PATTERN,)}")
    if n_hosts < 2:
        raise ValueError("patterns need at least two hosts")
    env = Environment()
    net = build_network(env, topology, n_hosts, params)
    if pattern == "OA":
        proc = env.process(one_to_all(net, 0, nbytes), name="OA")
    elif pattern == "AO":
        proc = env.process(all_to_one(net, 0, nbytes), name="AO")
    elif pattern == "AA":
        proc = env.process(all_to_all(net, nbytes), name="AA")
    else:
        proc = env.process(neighbor_exchange(net, nbytes), name="NX")
    env.run(proc)
    return env.now
