"""Shared-bus (Ethernet-like) network transport (substrate S3).

The paper's network is a single 10 Mbit Ethernet segment: every host
reaches every other host, and all frames serialize through one wire.
Since the topology generalization, that is no longer a special
implementation — :class:`SharedBusNetwork` is the *complete graph
through one resource* instance of :class:`~repro.network.graph.GraphNetwork`:
``Topology.bus(P)`` makes every pair of hosts adjacent (all routes are
one hop) and ``shared_medium=True`` maps every edge onto the single
``ethernet-bus`` resource.

Every message still crosses three serialization points, mirroring PVM
over the shared segment:

1. the **sender's NIC/protocol stack** (one outgoing message at a time,
   ``send_overhead`` each — a one-to-all broadcast therefore serializes
   at the sender);
2. the **shared bus** (one frame on the wire at a time,
   ``wire_latency + nbytes/bandwidth`` each — all-to-all traffic becomes
   quadratic here);
3. the **receiver's NIC/protocol stack** (``recv_overhead`` each — an
   all-to-one gather serializes at the receiver).

Same-host transfers (the co-located central load balancer) skip the bus
and cost only ``local_overhead``.

The caller-facing entry point is :meth:`GraphNetwork.transmit`: a
generator the sending process ``yield from``-s.  It returns — after the
*sender-side* cost only, modelling PVM's asynchronous sends — an event
that fires when the message is delivered.
"""

from __future__ import annotations

from typing import Optional

from ..simulation import Environment
from .graph import GraphNetwork, NetworkStats
from .parameters import NetworkParameters
from .topology import Topology

__all__ = ["SharedBusNetwork", "NetworkStats"]


class SharedBusNetwork(GraphNetwork):
    """A fully connected set of hosts sharing one Ethernet-like bus."""

    def __init__(self, env: Environment, n_hosts: int,
                 params: Optional[NetworkParameters] = None) -> None:
        super().__init__(env, Topology.bus(n_hosts), params)
