"""Off-line network characterization with polynomial fits (Figure 4).

``characterize_network`` measures each communication pattern for a range
of processor counts on the simulated bus and fits a low-degree polynomial
with ``numpy.polyfit`` — exactly the paper's "poly fit" curves.  The
resulting :class:`CommCostModel` is what the analytical strategy model
(§4.2) queries for its synchronization-cost terms
``one-to-all(P)``, ``all-to-one(P)`` and ``all-to-all(P)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .parameters import NetworkParameters
from .patterns import PATTERNS, measure_pattern

__all__ = ["PatternFit", "CommCostModel", "characterize_network",
           "DEFAULT_PROBE_BYTES"]

#: Default probe message size: a DLB profile message (§3.2) is a handful
#: of doubles; 64 bytes matches the run-time system's profile payload.
DEFAULT_PROBE_BYTES = 64


@dataclass(frozen=True)
class PatternFit:
    """A fitted polynomial cost curve for one pattern.

    ``coefficients`` are in :func:`numpy.polyval` order (highest degree
    first); ``samples`` holds the measured ``(P, seconds)`` points the
    fit was derived from, so Figure 4 can plot both.
    """

    pattern: str
    coefficients: tuple[float, ...]
    samples: tuple[tuple[int, float], ...]
    probe_bytes: int

    def __call__(self, n_procs: float) -> float:
        value = float(np.polyval(self.coefficients, n_procs))
        return max(value, 0.0)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def residual_rms(self) -> float:
        """RMS error of the fit over its own samples."""
        ps = np.array([p for p, _ in self.samples], dtype=float)
        ts = np.array([t for _, t in self.samples])
        return float(np.sqrt(np.mean((np.polyval(self.coefficients, ps)
                                      - ts) ** 2)))


@dataclass
class CommCostModel:
    """Fitted cost functions for the three collective patterns.

    This is the off-line product the compile-time model consumes; it also
    carries the raw latency/bandwidth for the point-to-point terms of
    eq. (5).
    """

    params: NetworkParameters
    fits: dict[str, PatternFit] = field(default_factory=dict)

    def one_to_all(self, n_procs: int) -> float:
        return self._eval("OA", n_procs)

    def all_to_one(self, n_procs: int) -> float:
        return self._eval("AO", n_procs)

    def all_to_all(self, n_procs: int) -> float:
        return self._eval("AA", n_procs)

    def _eval(self, pattern: str, n_procs: int) -> float:
        if n_procs <= 1:
            return 0.0
        fit = self.fits.get(pattern)
        if fit is None:
            raise KeyError(f"pattern {pattern!r} not characterized")
        return fit(n_procs)

    @property
    def latency(self) -> float:
        """Point-to-point latency ``L`` (paper eq. 5)."""
        return self.params.latency

    @property
    def bandwidth(self) -> float:
        """Bandwidth ``B`` in bytes/second (paper eq. 5)."""
        return self.params.bandwidth

    def point_to_point(self, nbytes: int) -> float:
        """One message of ``nbytes``: ``L + nbytes / B``."""
        return self.params.transfer_time(nbytes)

    @staticmethod
    def analytic(params: Optional[NetworkParameters] = None) -> "CommCostModel":
        """Closed-form fallback (no measurement): linear/quadratic shapes.

        Useful when a quick model evaluation is needed without paying for
        the off-line characterization; the fitted version is preferred.
        """
        p = params or NetworkParameters()
        msg = p.transfer_time(DEFAULT_PROBE_BYTES)
        model = CommCostModel(params=p)
        # One-to-all serializes at the sender; all-to-one at the receiver
        # (receive overhead dominates); all-to-all is quadratic on the bus.
        wire = p.wire_latency + DEFAULT_PROBE_BYTES / p.bandwidth
        model.fits["OA"] = PatternFit(
            "OA", (p.send_overhead + wire, p.recv_overhead - wire), (),
            DEFAULT_PROBE_BYTES)
        model.fits["AO"] = PatternFit(
            "AO", (max(p.recv_overhead, wire), msg), (), DEFAULT_PROBE_BYTES)
        model.fits["AA"] = PatternFit(
            "AA", (wire, max(p.recv_overhead, wire), msg), (),
            DEFAULT_PROBE_BYTES)
        return model


def characterize_network(params: Optional[NetworkParameters] = None,
                         proc_counts: Sequence[int] = tuple(range(2, 17)),
                         probe_bytes: int = DEFAULT_PROBE_BYTES,
                         degree: int = 2) -> CommCostModel:
    """Measure OA/AO/AA on the simulated bus and polyfit each (Figure 4).

    Parameters
    ----------
    params:
        Transport parameters; defaults to the paper's measured values.
    proc_counts:
        Processor counts to measure; the paper sweeps 2..16.
    probe_bytes:
        Per-message payload used for the probes.
    degree:
        Polynomial degree for the fit (2, matching the visible curvature
        of the paper's AA curve).
    """
    params = params or NetworkParameters()
    if len(proc_counts) < degree + 1:
        raise ValueError("need more sample points than the fit degree")
    model = CommCostModel(params=params)
    for pattern in PATTERNS:
        samples = [(p, measure_pattern(pattern, p, probe_bytes, params))
                   for p in proc_counts]
        ps = np.array([p for p, _ in samples], dtype=float)
        ts = np.array([t for _, t in samples])
        coeffs = np.polyfit(ps, ts, deg=degree)
        model.fits[pattern] = PatternFit(
            pattern=pattern,
            coefficients=tuple(float(c) for c in coeffs),
            samples=tuple(samples),
            probe_bytes=probe_bytes)
    return model
