"""Off-line network characterization with polynomial fits (Figure 4).

``characterize_network`` measures each communication pattern for a range
of processor counts on the simulated network and fits a low-degree
polynomial with ``numpy.polyfit`` — exactly the paper's "poly fit"
curves.  The resulting :class:`CommCostModel` is what the analytical
strategy model (§4.2) queries for its synchronization-cost terms
``one-to-all(P)``, ``all-to-one(P)``, ``all-to-all(P)`` and — on graph
topologies — ``neighbor-exchange(P)`` for diffusion balancing.

Characterization defaults to the shared bus; pass ``topology`` (a CLI
spec string like ``"ring"``, or a concrete
:class:`~repro.network.topology.Topology`) to measure on that graph
instead.  :func:`probe_link_parameters` is the complementary *on-line*
estimator: seeded random point-to-point probes whose least-squares fit
recovers effective latency and bandwidth.  It takes an explicit ``seed``
and is bit-stable for a given seed — a regression test pins its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from .parameters import NetworkParameters, transfer_seconds
from .patterns import NEIGHBOR_PATTERN, PATTERNS, measure_pattern
from .topology import Topology, TopologySpec, resolve_topology

__all__ = ["PatternFit", "CommCostModel", "characterize_network",
           "probe_link_parameters", "ProbeEstimate", "DEFAULT_PROBE_BYTES"]

#: Default probe message size: a DLB profile message (§3.2) is a handful
#: of doubles; 64 bytes matches the run-time system's profile payload.
DEFAULT_PROBE_BYTES = 64


@dataclass(frozen=True)
class PatternFit:
    """A fitted polynomial cost curve for one pattern.

    ``coefficients`` are in :func:`numpy.polyval` order (highest degree
    first); ``samples`` holds the measured ``(P, seconds)`` points the
    fit was derived from, so Figure 4 can plot both.
    """

    pattern: str
    coefficients: tuple[float, ...]
    samples: tuple[tuple[int, float], ...]
    probe_bytes: int

    def __call__(self, n_procs: float) -> float:
        value = float(np.polyval(self.coefficients, n_procs))
        return max(value, 0.0)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def residual_rms(self) -> float:
        """RMS error of the fit over its own samples."""
        ps = np.array([p for p, _ in self.samples], dtype=float)
        ts = np.array([t for _, t in self.samples])
        return float(np.sqrt(np.mean((np.polyval(self.coefficients, ps)
                                      - ts) ** 2)))


@dataclass
class CommCostModel:
    """Fitted cost functions for the collective patterns.

    This is the off-line product the compile-time model consumes; it also
    carries the raw latency/bandwidth for the point-to-point terms of
    eq. (5), and the topology it was measured on (``None`` = shared bus).
    """

    params: NetworkParameters
    fits: dict[str, PatternFit] = field(default_factory=dict)
    topology: Optional[Topology] = None

    def one_to_all(self, n_procs: int) -> float:
        return self._eval("OA", n_procs)

    def all_to_one(self, n_procs: int) -> float:
        return self._eval("AO", n_procs)

    def all_to_all(self, n_procs: int) -> float:
        return self._eval("AA", n_procs)

    def neighbor_exchange(self, n_procs: int) -> float:
        """Per-sweep diffusion sync cost: each host exchanges profiles
        with its topology neighbors.  Falls back to all-to-all when no
        NX fit exists — exact on the bus, where adjacency is complete."""
        if n_procs <= 1:
            return 0.0
        fit = self.fits.get(NEIGHBOR_PATTERN)
        if fit is not None:
            return fit(n_procs)
        return self._eval("AA", n_procs)

    def _eval(self, pattern: str, n_procs: int) -> float:
        if n_procs <= 1:
            return 0.0
        fit = self.fits.get(pattern)
        if fit is None:
            raise KeyError(f"pattern {pattern!r} not characterized")
        return fit(n_procs)

    @property
    def latency(self) -> float:
        """Point-to-point latency ``L`` (paper eq. 5)."""
        return self.params.latency

    @property
    def bandwidth(self) -> float:
        """Bandwidth ``B`` in bytes/second (paper eq. 5)."""
        return self.params.bandwidth

    def point_to_point(self, nbytes: int) -> float:
        """One message of ``nbytes``: ``L + nbytes / B``."""
        return self.params.transfer_time(nbytes)

    def movement_time(self, nbytes: float, n_messages: int = 1) -> float:
        """Data-movement term of eq. (5): ``n_messages * L + nbytes / B``."""
        return transfer_seconds(self.latency, self.bandwidth, nbytes,
                                n_messages)

    @staticmethod
    def analytic(params: Optional[NetworkParameters] = None) -> "CommCostModel":
        """Closed-form fallback (no measurement): linear/quadratic shapes.

        Useful when a quick model evaluation is needed without paying for
        the off-line characterization; the fitted version is preferred.
        """
        p = params or NetworkParameters()
        msg = p.transfer_time(DEFAULT_PROBE_BYTES)
        model = CommCostModel(params=p)
        # One-to-all serializes at the sender; all-to-one at the receiver
        # (receive overhead dominates); all-to-all is quadratic on the bus.
        wire = p.wire_time(DEFAULT_PROBE_BYTES)
        model.fits["OA"] = PatternFit(
            "OA", (p.send_overhead + wire, p.recv_overhead - wire), (),
            DEFAULT_PROBE_BYTES)
        model.fits["AO"] = PatternFit(
            "AO", (max(p.recv_overhead, wire), msg), (), DEFAULT_PROBE_BYTES)
        model.fits["AA"] = PatternFit(
            "AA", (wire, max(p.recv_overhead, wire), msg), (),
            DEFAULT_PROBE_BYTES)
        return model


def characterize_network(params: Optional[NetworkParameters] = None,
                         proc_counts: Sequence[int] = tuple(range(2, 17)),
                         probe_bytes: int = DEFAULT_PROBE_BYTES,
                         degree: int = 2,
                         topology: TopologySpec = None) -> CommCostModel:
    """Measure the collective patterns and polyfit each (Figure 4).

    Parameters
    ----------
    params:
        Transport parameters; defaults to the paper's measured values.
    proc_counts:
        Processor counts to measure; the paper sweeps 2..16.
    probe_bytes:
        Per-message payload used for the probes.
    degree:
        Polynomial degree for the fit (2, matching the visible curvature
        of the paper's AA curve).
    topology:
        ``None`` measures the paper's shared bus (and fits only
        OA/AO/AA, exactly the seed behavior).  A family spec
        (``"ring"``, ``"torus"``, ...) builds that family at each
        processor count and additionally fits the neighbor-exchange
        pattern.  A concrete :class:`Topology` is measured at its own
        host count only, with a constant (degree-0) fit — the predictor
        only ever evaluates the model at the run's P.
    """
    params = params or NetworkParameters()
    resolved: Optional[Topology] = None
    if isinstance(topology, Topology):
        resolved = topology
        proc_counts = (topology.n_hosts,)
        degree = 0
    elif topology is not None:
        resolved = resolve_topology(topology, max(proc_counts))
    if len(proc_counts) < degree + 1:
        raise ValueError("need more sample points than the fit degree")
    model = CommCostModel(params=params, topology=resolved)
    patterns = PATTERNS if topology is None else PATTERNS + (NEIGHBOR_PATTERN,)
    for pattern in patterns:
        samples = [(p, measure_pattern(pattern, p, probe_bytes, params,
                                       topology=topology))
                   for p in proc_counts]
        ps = np.array([p for p, _ in samples], dtype=float)
        ts = np.array([t for _, t in samples])
        coeffs = np.polyfit(ps, ts, deg=degree)
        model.fits[pattern] = PatternFit(
            pattern=pattern,
            coefficients=tuple(float(c) for c in coeffs),
            samples=tuple(samples),
            probe_bytes=probe_bytes)
    return model


@dataclass(frozen=True)
class ProbeEstimate:
    """Least-squares estimate of effective network parameters.

    Produced by :func:`probe_link_parameters` from seeded random
    point-to-point probes.  ``latency``/``bandwidth`` are the intercept
    and inverse slope of the time-vs-bytes fit; ``mean_hops`` reports
    the average route length of the probed pairs (1.0 on the bus).
    """

    latency: float
    bandwidth: float
    mean_hops: float
    seed: int
    samples: tuple[tuple[int, int, int, float], ...]  # (src, dst, nbytes, s)


def _measure_point_to_point(src: int, dst: int, nbytes: int,
                            params: Optional[NetworkParameters],
                            topology: TopologySpec, n_hosts: int) -> float:
    from ..simulation import Environment
    from .graph import build_network

    env = Environment()
    net = build_network(env, topology, n_hosts, params)

    def run():
        ev = yield from net.transmit(src, dst, nbytes)
        yield ev

    proc = env.process(run(), name=f"probe:{src}->{dst}")
    env.run(proc)
    return env.now


def probe_link_parameters(params: Optional[NetworkParameters] = None,
                          topology: TopologySpec = None,
                          n_hosts: int = 8,
                          n_probes: int = 8,
                          probe_sizes: Sequence[int] = (DEFAULT_PROBE_BYTES,
                                                        4096),
                          seed: Union[int, None] = 0) -> ProbeEstimate:
    """Estimate effective latency/bandwidth from random one-shot probes.

    Probe pairs are drawn with ``numpy.random.default_rng(seed)`` — the
    estimate is a pure function of its arguments, never of global RNG
    state, so results are reproducible and pinnable in tests.  Each
    probe runs on a *fresh* uncontended network, measuring the delivery
    time of a single message; the least-squares line through
    ``(nbytes, seconds)`` yields intercept = effective latency (route
    overheads included) and slope = 1/bandwidth.
    """
    if n_hosts < 2:
        raise ValueError("need at least two hosts to probe")
    if n_probes < 1:
        raise ValueError("need at least one probe pair")
    if len(probe_sizes) < 2 or len(set(probe_sizes)) < 2:
        raise ValueError("need two distinct probe sizes to fit a line")
    rng = np.random.default_rng(seed)
    topo = resolve_topology(topology, n_hosts)
    samples: list[tuple[int, int, int, float]] = []
    hops_total = 0
    for _ in range(n_probes):
        src = int(rng.integers(0, n_hosts))
        dst = int(rng.integers(0, n_hosts - 1))
        if dst >= src:
            dst += 1
        hops_total += topo.hops(src, dst)
        for nbytes in probe_sizes:
            seconds = _measure_point_to_point(src, dst, int(nbytes), params,
                                              topo, n_hosts)
            samples.append((src, dst, int(nbytes), seconds))
    xs = np.array([nb for _, _, nb, _ in samples], dtype=float)
    ts = np.array([t for _, _, _, t in samples])
    slope, intercept = np.polyfit(xs, ts, 1)
    bandwidth = float(1.0 / slope) if slope > 0 else float("inf")
    return ProbeEstimate(latency=float(intercept),
                         bandwidth=bandwidth,
                         mean_hops=hops_total / n_probes,
                         seed=seed if seed is not None else -1,
                         samples=tuple(samples))
