"""Graph-topology network transport: the generalized substrate S3.

:class:`GraphNetwork` carries messages over an explicit
:class:`~repro.network.topology.Topology` instead of assuming the
paper's shared Ethernet bus.  Every message still crosses the same three
serialization points as the original bus model:

1. the **sender's NIC/protocol stack** (``send_overhead``, one outgoing
   message at a time);
2. the **wire** — but now one :class:`~repro.simulation.Resource` *per
   link*, traversed store-and-forward along the deterministic
   shortest-path route, each hop costing that link's
   ``wire_latency + nbytes/bandwidth``.  A ``shared_medium`` topology
   (the bus) maps every link onto a single wire resource, so all frames
   serialize globally exactly as before;
3. the **receiver's NIC/protocol stack** (``recv_overhead``, paid once
   at the final destination).

Intermediate hops model cut-through switch ports: they hold the link,
not the forwarding host, so a relay host's NICs (and its crash state —
see docs/TOPOLOGY.md for the fault-model consequences) never gate
traffic passing through it.

For a ``shared_medium`` complete graph this reduces to *exactly* the
resource-acquisition sequence of the original ``SharedBusNetwork``
(same resources, created in the same order, held for the same times),
which is what keeps the seed oracles bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Protocol

from ..obs.trace import NULL_RECORDER
from ..simulation import PRIORITY_URGENT, Environment, Event, Resource
from .parameters import NetworkParameters
from .topology import Topology, TopologySpec, resolve_topology

__all__ = ["GraphNetwork", "NetworkModel", "NetworkStats", "build_network"]


@dataclass
class NetworkStats:
    """Aggregate transport statistics for a run."""

    messages: int = 0
    bytes: int = 0
    local_messages: int = 0
    dropped_messages: int = 0
    delayed_messages: int = 0
    per_host_sent: dict[int, int] = field(default_factory=dict)
    per_host_received: dict[int, int] = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int, local: bool) -> None:
        self.messages += 1
        self.bytes += nbytes
        if local:
            self.local_messages += 1
        self.per_host_sent[src] = self.per_host_sent.get(src, 0) + 1
        self.per_host_received[dst] = self.per_host_received.get(dst, 0) + 1


class NetworkModel(Protocol):
    """What the message layer and fault controller require of a network.

    Any transport with this surface can back a
    :class:`~repro.message.VirtualMachine`: :meth:`transmit` is the
    sender-side generator returning a delivery event, and the three
    hooks are the observation/fault-injection points.
    """

    env: Environment
    n_hosts: int
    params: NetworkParameters
    stats: NetworkStats
    on_deliver: Optional[Callable[[int, Any], None]]
    fault_hook: Optional[Callable[[int, int, int, Any], "None | str | float"]]
    on_drop: Optional[Callable[[int, int, Any], None]]

    def transmit(self, src: int, dst: int, nbytes: int,
                 item: Any = None) -> Generator[Event, None, Event]: ...

    def post(self, src: int, dst: int, nbytes: int,
             item: Any = None) -> Event: ...


class _Carry:
    """Callback-driven store-and-forward carry of one message.

    Replays exactly the event sequence of the generator-based carry
    process it replaced — a start event at URGENT priority standing in
    for the Process ``Initialize``, then per stage: resource request →
    hold timeout → release — without a generator frame, a Process
    object, or the termination event nobody ever waited on.  That drops
    roughly a third of the scheduled events behind every network message
    on the DES hot path.  The replacement must stay *schedule-identical*
    to the generator: the seed oracles
    (tests/protocol/test_scale_seed_identity.py) pin it event-for-event.
    """

    __slots__ = ("net", "src", "dst", "nbytes", "item", "delivered",
                 "extra_delay", "route", "stage", "res", "req", "hold",
                 "link_track", "t_req")

    def __init__(self, net: "GraphNetwork", src: int, dst: int, nbytes: int,
                 item: Any, delivered: Event, extra_delay: float) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.item = item
        self.delivered = delivered
        self.extra_delay = extra_delay
        self.route: tuple[tuple[int, int], ...] = ()
        self.stage = 0
        self.res: Optional[Resource] = None
        self.req: Optional[Event] = None
        self.hold = 0.0
        self.link_track: Optional[str] = None
        self.t_req = 0.0
        # Mirrors Process.Initialize: the carry starts at the current
        # instant but *after* everything already scheduled at it.
        start = Event(net.env)
        start.callbacks.append(self._start)
        net.env.schedule(start, PRIORITY_URGENT, 0.0)

    def _start(self, event: Event) -> None:
        if self.extra_delay > 0:
            delay = self.net.env.timeout(self.extra_delay)
            delay.callbacks.append(self._begin)
        else:
            self._begin(event)

    def _begin(self, _event: Event) -> None:
        self.route = self.net.topology.route(self.src, self.dst)
        self._next_stage()

    def _next_stage(self) -> None:
        net = self.net
        stage = self.stage
        if stage < len(self.route):
            u, v = self.route[stage]
            res = net.link(u, v)
            hold = net.link_params(u, v).wire_time(self.nbytes)
            self.link_track = "link:bus" if net._shared \
                else f"link:{min(u, v)}-{max(u, v)}"
        elif stage == len(self.route):
            res = net.recv_nic[self.dst]
            hold = net.params.recv_overhead
            self.link_track = None
        else:
            net.stats.record(self.src, self.dst, self.nbytes, local=False)
            net._deliver(self.dst, self.item, self.delivered)
            return
        self.stage = stage + 1
        self.res = res
        self.hold = hold
        self.t_req = net.env.now
        req = res.request()
        self.req = req
        req.callbacks.append(self._acquired)

    def _acquired(self, _event: Event) -> None:
        held = self.net.env.timeout(self.hold)
        held.callbacks.append(self._release)

    def _release(self, _event: Event) -> None:
        self.res.release(self.req)
        if self.link_track is not None:
            # Wire occupancy (plus queueing behind earlier frames, as an
            # arg): recorded inside the existing release callback, so no
            # extra DES events — the seed oracles stay bit-identical.
            now = self.net.env.now
            self.net.recorder.complete(
                "transfer", now - self.hold, self.hold,
                track=self.link_track, src=self.src, dst=self.dst,
                nbytes=self.nbytes,
                queued=max(now - self.hold - self.t_req, 0.0))
        self._next_stage()


class GraphNetwork:
    """Hosts connected by an arbitrary graph of point-to-point links."""

    def __init__(self, env: Environment, topology: Topology,
                 params: Optional[NetworkParameters] = None) -> None:
        if topology.n_hosts < 1:
            raise ValueError("need at least one host")
        self.env = env
        self.topology = topology
        self.n_hosts = topology.n_hosts
        self.params = params or NetworkParameters()
        # Resource creation order matters for event-queue tie-breaking:
        # wire(s) first, then send NICs, then recv NICs — the exact order
        # the original SharedBusNetwork used.
        self._links: dict[tuple[int, int], Resource] = {}
        self._shared = topology.shared_medium
        if topology.shared_medium:
            # One wire for every edge; no per-edge dict (the bus edge set
            # is O(P^2) — link() special-cases the shared medium).
            self.bus = Resource(env, capacity=1, name="ethernet-bus")
        else:
            for u, v in topology.edges:
                self._links[(u, v)] = Resource(env, capacity=1,
                                               name=f"link{u}-{v}")
        self.send_nic = [Resource(env, name=f"send-nic{i}")
                         for i in range(self.n_hosts)]
        self.recv_nic = [Resource(env, name=f"recv-nic{i}")
                         for i in range(self.n_hosts)]
        self.stats = NetworkStats()
        #: Optional hook called as ``on_deliver(dst, item)`` at delivery time.
        self.on_deliver: Optional[Callable[[int, Any], None]] = None
        #: Optional fault hook consulted per transfer *before* it enters
        #: the wire: ``fault_hook(src, dst, nbytes, item)`` returns
        #: ``None`` (deliver normally), ``"drop"`` (the message vanishes
        #: after the sender-side cost — PVM reports no error to the
        #: sender), or a positive float (extra seconds of delay on the
        #: wire).  Installed by :class:`repro.faults.FaultController`.
        self.fault_hook: Optional[Callable[[int, int, int, Any],
                                           "None | str | float"]] = None
        #: Optional observer for dropped messages: ``on_drop(src, dst, item)``.
        self.on_drop: Optional[Callable[[int, int, Any], None]] = None
        #: Trace sink for per-link transfer spans; the executor swaps in
        #: the run's recorder when tracing is enabled.
        self.recorder = NULL_RECORDER

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host {host} out of range 0..{self.n_hosts - 1}")

    def link(self, u: int, v: int) -> Resource:
        """The wire resource for the (undirected) edge ``u - v``."""
        if self._shared:
            return self.bus
        return self._links[(u, v) if u < v else (v, u)]

    def link_params(self, u: int, v: int) -> NetworkParameters:
        """Effective parameters on edge ``u - v`` (override or default)."""
        return self.topology.params_for(u, v) or self.params

    def transmit(self, src: int, dst: int, nbytes: int,
                 item: Any = None) -> Generator[Event, None, Event]:
        """Send ``nbytes`` (+ payload ``item``) from ``src`` to ``dst``.

        A generator to ``yield from`` inside a simulated process.  It
        completes once the sender-side overhead has been paid and returns
        a *delivery event* that fires (with ``item`` as its value) when
        the message reaches ``dst``.
        """
        self._check_host(src)
        self._check_host(dst)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        delivered = self.env.event()
        if src == dst:
            # Same-host transfers never touch the wire; local delivery is
            # assumed reliable (no fault hook consultation).
            yield from self.send_nic[src].use(self.params.local_overhead)
            self.stats.record(src, dst, nbytes, local=True)
            self._deliver(dst, item, delivered)
            return delivered
        verdict = None
        if self.fault_hook is not None:
            verdict = self.fault_hook(src, dst, nbytes, item)
        yield from self.send_nic[src].use(self.params.send_overhead)
        if verdict == "drop":
            # The frame is lost on the wire: the sender has paid its NIC
            # cost (asynchronous sends report no error) and the delivery
            # event simply never fires.
            self.stats.dropped_messages += 1
            if self.on_drop is not None:
                self.on_drop(src, dst, item)
            return delivered
        extra = float(verdict) if isinstance(verdict, (int, float)) else 0.0
        if extra > 0:
            self.stats.delayed_messages += 1
        _Carry(self, src, dst, nbytes, item, delivered, extra)
        return delivered

    def _deliver(self, dst: int, item: Any, delivered: Event) -> None:
        if self.on_deliver is not None:
            self.on_deliver(dst, item)
        delivered.succeed(item)

    # -- convenience: fire-and-forget send -------------------------------
    def post(self, src: int, dst: int, nbytes: int, item: Any = None) -> Event:
        """Spawn a detached process performing :meth:`transmit`.

        Returns the delivery event.  Used when the sender should not be
        charged in-line (e.g. test harnesses); protocol code should
        prefer ``yield from transmit(...)`` so sender cost is modeled.
        """
        delivered = self.env.event()

        def runner() -> Generator[Event, None, None]:
            inner = yield from self.transmit(src, dst, nbytes, item)
            value = yield inner
            if not delivered.triggered:
                delivered.succeed(value)

        self.env.process(runner(), name=f"post:{src}->{dst}")
        return delivered


def build_network(env: Environment, spec: TopologySpec, n_hosts: int,
                  params: Optional[NetworkParameters] = None) -> GraphNetwork:
    """Build the transport for a topology spec (``None`` => shared bus)."""
    return GraphNetwork(env, resolve_topology(spec, n_hosts), params)
