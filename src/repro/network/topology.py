"""Graph topologies for the network substrate.

The paper's transport (§4.1) is a single shared Ethernet bus: every
host can reach every other host, and all frames serialize through one
wire.  This module generalizes that into an explicit :class:`Topology`
— an undirected graph of hosts with optional per-edge
:class:`~repro.network.parameters.NetworkParameters` overrides — so the
same DES transmit path can model rings, meshes, tori, and arbitrary
adjacency files, with contention per link instead of per bus.

The shared bus is recovered exactly as the *complete graph through one
resource*: every pair of hosts is adjacent (all routes are one hop) and
``shared_medium=True`` maps every edge onto a single wire
:class:`~repro.simulation.Resource`.  That construction is what keeps
the seed results bit-identical after the refactor.

Routing is deterministic shortest-path: a BFS next-hop table with
lowest-neighbor-id tie-breaking, computed once per topology and cached.
Messages are carried store-and-forward, paying each link's wire time in
sequence (see :mod:`repro.network.graph`).
"""

from __future__ import annotations

import json
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping, Optional, Sequence, Union

from .parameters import NetworkParameters

__all__ = [
    "Topology",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "mesh_dims",
    "parse_topology_spec",
    "resolve_topology",
]

#: Topology families accepted by the CLI ``--topology`` flag (plus
#: ``file:<adjacency.json>`` for arbitrary graphs).
TOPOLOGY_KINDS = ("bus", "complete", "ring", "mesh", "torus")

#: Anything `resolve_topology` accepts: ``None`` (bus), a spec string
#: (``"ring"``, ``"file:net.json"``), or an explicit Topology.
TopologySpec = Union[None, str, "Topology"]


def _normalize_edge(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


class _AllPairs(_SequenceABC):
    """Lazy complete-graph edge sequence: every ``(u, v)`` with u < v.

    ``Topology.bus(P)`` / ``complete(P)`` at P=4096 would otherwise
    materialize ~8.4M edge tuples just for the network layer to map them
    all onto one wire resource.  This mimics the sorted tuple of all
    pairs — identical iteration order, length, membership, and indexing
    — in O(1) memory, with O(1) hashing so topology-keyed caches stay
    cheap.  Comparison against a real tuple of the same pairs is
    supported (element-wise) for compatibility, though the O(1) hash
    deliberately does not match ``hash`` of that tuple.
    """

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __len__(self) -> int:
        return self.n * (self.n - 1) // 2

    def __iter__(self):
        n = self.n
        return ((u, v) for u in range(n) for v in range(u + 1, n))

    def __contains__(self, edge: object) -> bool:
        try:
            u, v = edge  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        return isinstance(u, int) and isinstance(v, int) and 0 <= u < v < self.n

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return tuple(self)[idx]
        total = len(self)
        if idx < 0:
            idx += total
        if not 0 <= idx < total:
            raise IndexError("edge index out of range")
        u, row = 0, self.n - 1
        while idx >= row:
            idx -= row
            u += 1
            row -= 1
        return (u, u + 1 + idx)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _AllPairs):
            return self.n == other.n
        if isinstance(other, (tuple, list)):
            return len(other) == len(self) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("repro.network.topology._AllPairs", self.n))

    def __reduce__(self):
        return (_AllPairs, (self.n,))

    def __repr__(self) -> str:
        return f"_AllPairs(n={self.n})"


def mesh_dims(n_hosts: int) -> tuple[int, int]:
    """Grid dimensions for an ``n_hosts`` mesh/torus: the most nearly
    square ``rows x cols`` factorization (rows <= cols)."""
    best = (1, n_hosts)
    r = 1
    while r * r <= n_hosts:
        if n_hosts % r == 0:
            best = (r, n_hosts // r)
        r += 1
    return best


@dataclass(frozen=True)
class Topology:
    """An undirected host graph with optional per-edge link parameters.

    Frozen and hashable so it can key caches (the characterization layer
    memoizes cost models per ``(params, topology)``).  ``edges`` holds
    normalized ``(u, v)`` pairs with ``u < v``; ``link_params`` holds
    per-edge :class:`NetworkParameters` overrides for heterogeneous
    links (a slow WAN hop inside a fast cluster, say).
    """

    kind: str
    n_hosts: int
    #: Normalized (u < v) edge pairs — a real tuple, or an
    #: :class:`_AllPairs` lazy view for complete graphs at scale.
    edges: Sequence[tuple[int, int]]
    #: When true, every edge shares one wire resource (Ethernet bus
    #: semantics): frames serialize globally, not per link.
    shared_medium: bool = False
    link_params: tuple[tuple[tuple[int, int], NetworkParameters], ...] = \
        field(default=())

    def __post_init__(self) -> None:
        if self.n_hosts < 1:
            raise ValueError("need at least one host")
        if isinstance(self.edges, _AllPairs):
            # Complete graph by construction: valid by definition, and
            # per-edge validation would be O(P^2).
            if self.edges.n != self.n_hosts:
                raise ValueError("complete edge set does not match host count")
            seen: "set[tuple[int, int]] | _AllPairs" = self.edges
        else:
            seen = set()
            for u, v in self.edges:
                if not (0 <= u < self.n_hosts and 0 <= v < self.n_hosts):
                    raise ValueError(f"edge ({u},{v}) out of range "
                                     f"0..{self.n_hosts - 1}")
                if u == v:
                    raise ValueError(f"self-edge ({u},{v}) not allowed")
                if (u, v) != _normalize_edge(u, v):
                    raise ValueError(f"edge ({u},{v}) not normalized (u < v)")
                if (u, v) in seen:
                    raise ValueError(f"duplicate edge ({u},{v})")
                seen.add((u, v))
        for (u, v), _params in self.link_params:
            if _normalize_edge(u, v) not in seen:
                raise ValueError(f"link_params for non-edge ({u},{v})")
        if self.n_hosts > 1 and not self.is_connected:
            raise ValueError("topology must be connected")

    # -- structure -------------------------------------------------------

    @cached_property
    def adjacency(self) -> tuple[tuple[int, ...], ...]:
        """Sorted neighbor tuple per host (index = host id)."""
        nbrs: list[list[int]] = [[] for _ in range(self.n_hosts)]
        for u, v in self.edges:
            nbrs[u].append(v)
            nbrs[v].append(u)
        return tuple(tuple(sorted(ns)) for ns in nbrs)

    def neighbors(self, host: int) -> tuple[int, ...]:
        return self.adjacency[host]

    def degree(self, host: int) -> int:
        return len(self.adjacency[host])

    @cached_property
    def max_degree(self) -> int:
        if isinstance(self.edges, _AllPairs):
            return self.n_hosts - 1 if self.n_hosts > 1 else 0
        return max((len(ns) for ns in self.adjacency), default=0)

    @cached_property
    def is_connected(self) -> bool:
        if self.n_hosts <= 1 or isinstance(self.edges, _AllPairs):
            return True
        nbrs: list[list[int]] = [[] for _ in range(self.n_hosts)]
        for u, v in self.edges:
            nbrs[u].append(v)
            nbrs[v].append(u)
        seen = {0}
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for other in nbrs[node]:
                    if other not in seen:
                        seen.add(other)
                        nxt.append(other)
            frontier = nxt
        return len(seen) == self.n_hosts

    @cached_property
    def _link_param_map(self) -> dict[tuple[int, int], NetworkParameters]:
        return {_normalize_edge(u, v): p for (u, v), p in self.link_params}

    def params_for(self, u: int, v: int) -> Optional[NetworkParameters]:
        """Per-edge parameter override, or ``None`` for the default."""
        return self._link_param_map.get(_normalize_edge(u, v))

    # -- routing ---------------------------------------------------------

    @cached_property
    def _next_hop(self) -> tuple[tuple[int, ...], ...]:
        """``_next_hop[dst][src]`` = first hop on the shortest src->dst
        path (BFS from each destination, lowest-id tie-break)."""
        table: list[tuple[int, ...]] = []
        for dst in range(self.n_hosts):
            hop = [-1] * self.n_hosts
            hop[dst] = dst
            frontier = [dst]
            while frontier:
                nxt: list[int] = []
                for node in frontier:
                    # Sorted neighbors => the lowest-id parent claims a
                    # host first, making routes deterministic.
                    for other in self.adjacency[node]:
                        if hop[other] == -1:
                            hop[other] = node
                            nxt.append(other)
                frontier = sorted(nxt)
            table.append(tuple(hop))
        return tuple(table)

    def route(self, src: int, dst: int) -> tuple[tuple[int, int], ...]:
        """Shortest path as a tuple of directed hop pairs.

        ``route(0, 3)`` on a 4-ring is ``((0, 3),)``; on a 4-line it is
        ``((0, 1), (1, 2), (2, 3))``.  Empty for ``src == dst``.
        """
        if src == dst:
            return ()
        if isinstance(self.edges, _AllPairs):
            # Complete graph: every pair is adjacent.  Skipping the BFS
            # table matters at scale — it is O(P^2) time and memory.
            return ((src, dst),)
        hops: list[tuple[int, int]] = []
        here = src
        while here != dst:
            there = self._next_hop[dst][here]
            if there < 0:  # pragma: no cover - guarded by is_connected
                raise ValueError(f"no route {src}->{dst}")
            hops.append((here, there))
            here = there
        return tuple(hops)

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path length in links (0 for same host)."""
        return len(self.route(src, dst))

    @cached_property
    def diameter(self) -> int:
        if isinstance(self.edges, _AllPairs):
            return 1 if self.n_hosts > 1 else 0
        return max(self.hops(s, d)
                   for s in range(self.n_hosts)
                   for d in range(self.n_hosts))

    def laplacian(self) -> list[list[float]]:
        """Graph Laplacian ``L = D - A`` as nested lists (numpy-free so
        the analytics layer decides how to consume it)."""
        lap = [[0.0] * self.n_hosts for _ in range(self.n_hosts)]
        for u, v in self.edges:
            lap[u][u] += 1.0
            lap[v][v] += 1.0
            lap[u][v] -= 1.0
            lap[v][u] -= 1.0
        return lap

    def describe(self) -> str:
        medium = "shared" if self.shared_medium else "switched"
        return (f"{self.kind}(P={self.n_hosts}, links={len(self.edges)}, "
                f"{medium}, max_degree={self.max_degree})")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def bus(n_hosts: int) -> "Topology":
        """The paper's shared Ethernet segment: complete graph, one wire."""
        return Topology("bus", n_hosts, _AllPairs(n_hosts),
                        shared_medium=True)

    @staticmethod
    def complete(n_hosts: int) -> "Topology":
        """Fully switched crossbar: complete graph, one wire per pair."""
        return Topology("complete", n_hosts, _AllPairs(n_hosts))

    @staticmethod
    def ring(n_hosts: int) -> "Topology":
        if n_hosts == 1:
            return Topology("ring", 1, ())
        if n_hosts == 2:
            return Topology("ring", 2, ((0, 1),))
        edges = tuple(sorted(_normalize_edge(i, (i + 1) % n_hosts)
                             for i in range(n_hosts)))
        return Topology("ring", n_hosts, edges)

    @staticmethod
    def mesh(n_hosts: int) -> "Topology":
        """2D grid, most-nearly-square ``rows x cols`` factorization."""
        rows, cols = mesh_dims(n_hosts)
        return Topology("mesh", n_hosts, _grid_edges(rows, cols, wrap=False))

    @staticmethod
    def torus(n_hosts: int) -> "Topology":
        """2D grid with wraparound links in both dimensions."""
        rows, cols = mesh_dims(n_hosts)
        return Topology("torus", n_hosts, _grid_edges(rows, cols, wrap=True))

    @staticmethod
    def random_graph(n_hosts: int, extra_edges: int = 0,
                     seed: int = 0) -> "Topology":
        """Seeded random connected graph: a random spanning tree (so the
        result is always connected) plus ``extra_edges`` distinct chords.

        Uses a dedicated :mod:`random` instance — identical seeds give
        identical graphs regardless of global RNG state.
        """
        import random as _random
        rng = _random.Random(seed)
        order = list(range(n_hosts))
        rng.shuffle(order)
        edges = {_normalize_edge(order[i], rng.choice(order[:i]))
                 for i in range(1, n_hosts)}
        candidates = [(u, v) for u in range(n_hosts)
                      for v in range(u + 1, n_hosts)
                      if (u, v) not in edges]
        rng.shuffle(candidates)
        edges.update(candidates[:extra_edges])
        return Topology(f"random[{seed}]", n_hosts, tuple(sorted(edges)))

    @staticmethod
    def from_adjacency(adjacency: Mapping[Union[int, str], Iterable[int]],
                       kind: str = "custom") -> "Topology":
        """Build from an adjacency mapping ``{host: [neighbors...]}``.

        Hosts must be the contiguous range ``0..P-1``; missing entries
        are hosts with no listed neighbors (they must still be reachable
        via someone else's list — the graph is treated as undirected).
        """
        nodes: set[int] = set()
        pairs: set[tuple[int, int]] = set()
        for raw_u, nbrs in adjacency.items():
            u = int(raw_u)
            nodes.add(u)
            for raw_v in nbrs:
                v = int(raw_v)
                nodes.add(v)
                if u == v:
                    raise ValueError(f"self-edge at host {u}")
                pairs.add(_normalize_edge(u, v))
        if not nodes:
            raise ValueError("empty adjacency")
        n_hosts = max(nodes) + 1
        if nodes != set(range(n_hosts)):
            missing = sorted(set(range(n_hosts)) - nodes)
            raise ValueError(f"hosts must be contiguous 0..{n_hosts - 1}; "
                             f"missing {missing}")
        return Topology(kind, n_hosts, tuple(sorted(pairs)))

    @staticmethod
    def from_file(path: str) -> "Topology":
        """Load a topology from a JSON adjacency file.

        Two shapes are accepted (see docs/TOPOLOGY.md):

        * an adjacency object: ``{"0": [1, 2], "1": [0], "2": [0]}``
        * an edge-list object::

              {"n_hosts": 4,
               "edges": [[0, 1], [1, 2], [2, 3]],
               "links": [{"edge": [2, 3], "bandwidth": 120000.0}]}

          where each optional ``links`` entry overrides
          :class:`NetworkParameters` fields for one edge.
        """
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: expected a JSON object")
        if "edges" not in doc:
            return Topology.from_adjacency(doc, kind=f"file:{path}")
        n_hosts = int(doc.get("n_hosts", 0))
        edges = tuple(sorted(_normalize_edge(int(u), int(v))
                             for u, v in doc["edges"]))
        if not n_hosts:
            n_hosts = max((v for _, v in edges), default=0) + 1
        overrides: list[tuple[tuple[int, int], NetworkParameters]] = []
        base = NetworkParameters()
        for link in doc.get("links", ()):
            u, v = (int(x) for x in link["edge"])
            fields = {k: float(val) for k, val in link.items()
                      if k != "edge"}
            unknown = set(fields) - {
                "send_overhead", "recv_overhead", "wire_latency",
                "bandwidth", "local_overhead"}
            if unknown:
                raise ValueError(f"{path}: unknown link fields {sorted(unknown)}")
            merged = {f: fields.get(f, getattr(base, f))
                      for f in ("send_overhead", "recv_overhead",
                                "wire_latency", "bandwidth",
                                "local_overhead")}
            overrides.append((_normalize_edge(u, v),
                              NetworkParameters(**merged)))
        return Topology(f"file:{path}", n_hosts, edges,
                        link_params=tuple(sorted(overrides)))


def _grid_edges(rows: int, cols: int, wrap: bool) -> tuple[tuple[int, int], ...]:
    """Edges of a rows x cols grid (host id = r * cols + c)."""
    edges: set[tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            host = r * cols + c
            if cols > 1 and (wrap or c + 1 < cols):
                edges.add(_normalize_edge(host, r * cols + (c + 1) % cols))
            if rows > 1 and (wrap or r + 1 < rows):
                edges.add(_normalize_edge(host, ((r + 1) % rows) * cols + c))
    return tuple(sorted(edges))


def parse_topology_spec(spec: str) -> str:
    """Validate a CLI ``--topology`` value; returns the spec unchanged.

    Raises ``ValueError`` with a user-facing message for bad specs.  The
    actual graph is built later by :func:`resolve_topology`, once the
    host count is known.
    """
    if spec in TOPOLOGY_KINDS:
        return spec
    if spec.startswith("file:") and spec[len("file:"):]:
        return spec
    raise ValueError(
        f"bad --topology {spec!r}: expected one of "
        f"{', '.join(TOPOLOGY_KINDS)} or file:<adjacency.json>")


def resolve_topology(spec: TopologySpec, n_hosts: int) -> Topology:
    """Resolve a topology spec against a host count.

    ``None`` and ``"bus"`` give the paper's shared bus.  A ``file:``
    spec loads the adjacency file and checks its host count matches.
    An explicit :class:`Topology` is validated for size and returned.
    """
    if spec is None:
        return Topology.bus(n_hosts)
    if isinstance(spec, Topology):
        if spec.n_hosts != n_hosts:
            raise ValueError(f"topology is for {spec.n_hosts} hosts, "
                             f"run has {n_hosts}")
        return spec
    if spec.startswith("file:"):
        topo = Topology.from_file(spec[len("file:"):])
        if topo.n_hosts != n_hosts:
            raise ValueError(f"adjacency file has {topo.n_hosts} hosts, "
                             f"run has {n_hosts}")
        return topo
    builders = {
        "bus": Topology.bus,
        "complete": Topology.complete,
        "ring": Topology.ring,
        "mesh": Topology.mesh,
        "torus": Topology.torus,
    }
    try:
        builder = builders[spec]
    except KeyError:
        raise ValueError(f"unknown topology {spec!r}: expected one of "
                         f"{', '.join(TOPOLOGY_KINDS)} or "
                         f"file:<adjacency.json>") from None
    return builder(n_hosts)
