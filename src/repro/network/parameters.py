"""Network parameters (paper §4.1 and §6.1).

The paper measured PVM over Ethernet at a one-way latency of 2414.5 us
and a bandwidth of 0.96 MB/s.  The simulated transport splits that
latency into a sender-side software overhead, a wire/propagation term on
the shared bus, and a receiver-side software overhead (the paper notes
the bandwidth figure "includes the cost of packing, receiving, and the
real communication time").  The receive overhead is slightly larger than
the send overhead, which is what makes all-to-one more expensive than
one-to-all in Figure 4: the single receiver's protocol stack serializes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkParameters", "PAPER_LATENCY_S", "PAPER_BANDWIDTH_BPS",
           "transfer_seconds"]

#: Measured PVM latency from the paper (§6.1), seconds.
PAPER_LATENCY_S = 2414.5e-6
#: Measured PVM bandwidth from the paper (§6.1), bytes/second.
PAPER_BANDWIDTH_BPS = 0.96e6


def transfer_seconds(latency: float, bandwidth: float, nbytes: float,
                     n_messages: int = 1) -> float:
    """The one transfer-time formula: ``n_messages * L + nbytes / B``.

    Every latency/bandwidth cost in the repo routes through here — the
    DES wire time, the §4.2 data-movement term, the redistribution
    planner's movement-cost estimate — so the model cannot drift apart
    across layers.  Takes scalars (not a :class:`NetworkParameters`)
    because the process/socket backends ship ``(L, B)`` pairs over the
    wire to workers that never see a parameters object.
    """
    return n_messages * latency + nbytes / bandwidth


@dataclass(frozen=True)
class NetworkParameters:
    """Transport cost parameters for the shared-bus network.

    ``send_overhead + wire_latency + recv_overhead`` is the one-way
    single-byte message latency ``L`` of the paper's model; the defaults
    reproduce the measured 2414.5 us.
    """

    send_overhead: float = 1000.0e-6
    recv_overhead: float = 1200.0e-6
    wire_latency: float = 214.5e-6
    bandwidth: float = PAPER_BANDWIDTH_BPS
    local_overhead: float = 50.0e-6  # same-host delivery (LB co-located)

    def __post_init__(self) -> None:
        if min(self.send_overhead, self.recv_overhead, self.wire_latency,
               self.local_overhead) < 0:
            raise ValueError("overheads must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def latency(self) -> float:
        """End-to-end one-way latency ``L`` (seconds) for a tiny message."""
        return self.send_overhead + self.wire_latency + self.recv_overhead

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended one-way time for an ``nbytes`` message: L + n/B."""
        return transfer_seconds(self.latency, self.bandwidth, nbytes)

    def wire_time(self, nbytes: int) -> float:
        """Time a frame occupies one wire/link: wire_latency + n/B
        (excludes both endpoints' NIC overheads)."""
        return transfer_seconds(self.wire_latency, self.bandwidth, nbytes)

    @staticmethod
    def paper_defaults() -> "NetworkParameters":
        """Parameters matching the paper's measured L and B."""
        return NetworkParameters()
