"""Network substrate (S3): shared-bus transport and Figure-4 costs."""

from .bus import NetworkStats, SharedBusNetwork
from .characterization import (
    CommCostModel,
    DEFAULT_PROBE_BYTES,
    PatternFit,
    characterize_network,
)
from .parameters import NetworkParameters, PAPER_BANDWIDTH_BPS, PAPER_LATENCY_S
from .patterns import PATTERNS, all_to_all, all_to_one, measure_pattern, one_to_all

__all__ = [
    "CommCostModel",
    "DEFAULT_PROBE_BYTES",
    "NetworkParameters",
    "NetworkStats",
    "PATTERNS",
    "PAPER_BANDWIDTH_BPS",
    "PAPER_LATENCY_S",
    "PatternFit",
    "SharedBusNetwork",
    "all_to_all",
    "all_to_one",
    "characterize_network",
    "measure_pattern",
    "one_to_all",
]
