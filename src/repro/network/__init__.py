"""Network substrate (S3): graph-topology transport and Figure-4 costs."""

from .bus import NetworkStats, SharedBusNetwork
from .characterization import (
    CommCostModel,
    DEFAULT_PROBE_BYTES,
    PatternFit,
    ProbeEstimate,
    characterize_network,
    probe_link_parameters,
)
from .graph import GraphNetwork, NetworkModel, build_network
from .parameters import (
    NetworkParameters,
    PAPER_BANDWIDTH_BPS,
    PAPER_LATENCY_S,
    transfer_seconds,
)
from .patterns import PATTERNS, all_to_all, all_to_one, measure_pattern, one_to_all
from .topology import (
    TOPOLOGY_KINDS,
    Topology,
    TopologySpec,
    parse_topology_spec,
    resolve_topology,
)

__all__ = [
    "CommCostModel",
    "DEFAULT_PROBE_BYTES",
    "GraphNetwork",
    "NetworkModel",
    "NetworkParameters",
    "NetworkStats",
    "PATTERNS",
    "PAPER_BANDWIDTH_BPS",
    "PAPER_LATENCY_S",
    "PatternFit",
    "ProbeEstimate",
    "SharedBusNetwork",
    "TOPOLOGY_KINDS",
    "Topology",
    "TopologySpec",
    "all_to_all",
    "all_to_one",
    "build_network",
    "characterize_network",
    "measure_pattern",
    "one_to_all",
    "parse_topology_spec",
    "probe_link_parameters",
    "resolve_topology",
    "transfer_seconds",
]
