"""Trace exporters and renderers.

Two on-disk formats, chosen by file extension in :func:`write_trace`:

* ``.ndjson`` — one internal event dict per line, the streaming format
  ROADMAP's job server will emit per job.
* anything else (``.json`` by convention) — the Chrome trace-event
  JSON object format, loadable in Perfetto (https://ui.perfetto.dev)
  and ``chrome://tracing``.  One *thread* per track: the balancer
  first, then one per workstation, then one per network link.
  Timestamps are exported in microseconds as the format requires; for
  simulation traces that means 1 virtual second = 1 exported second
  (shown as 10⁶ µs) — relative layout is what matters.

:func:`read_trace` loads either format back into the internal event
shape (see :mod:`repro.obs.trace`), so ``repro trace`` renders a
summary or ASCII Gantt from any file this module wrote.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Optional

__all__ = ["events_to_ndjson", "events_to_chrome", "write_trace",
           "read_trace", "render_trace_summary", "render_trace_gantt"]

_US = 1e6  # seconds -> Chrome trace-event microseconds


def _track_sort_key(track: str) -> tuple:
    """Balancer first, then nodes in numeric order, then links, then
    everything else alphabetically."""
    if track == "balancer":
        return (0, 0, track)
    match = re.fullmatch(r"node(\d+)", track)
    if match:
        return (1, int(match.group(1)), track)
    if track.startswith("link:"):
        return (2, 0, track)
    return (3, 0, track)


def sorted_tracks(events: Iterable[dict]) -> list[str]:
    return sorted({e.get("track", "run") for e in events},
                  key=_track_sort_key)


# ---------------------------------------------------------------------------
# Writers.
# ---------------------------------------------------------------------------
def events_to_ndjson(events: Iterable[dict]) -> str:
    """One canonical-JSON event per line, in timestamp order."""
    lines = [json.dumps(e, sort_keys=True, separators=(",", ":"))
             for e in sorted(events, key=lambda e: e.get("ts", 0.0))]
    return "\n".join(lines) + ("\n" if lines else "")


def events_to_chrome(events: Iterable[dict], *, dropped: int = 0,
                     meta: Optional[dict] = None) -> dict:
    """The Chrome trace-event JSON object format (Perfetto-loadable)."""
    events = list(events)
    tids = {track: tid
            for tid, track in enumerate(sorted_tracks(events))}
    trace_events: list[dict] = []
    for track, tid in tids.items():
        trace_events.append({"name": "thread_name", "ph": "M", "pid": 0,
                             "tid": tid, "args": {"name": track}})
        trace_events.append({"name": "thread_sort_index", "ph": "M",
                             "pid": 0, "tid": tid,
                             "args": {"sort_index": tid}})
    for e in sorted(events, key=lambda e: e.get("ts", 0.0)):
        out = {"name": e.get("name", "?"), "ph": e.get("ph", "i"),
               "ts": e.get("ts", 0.0) * _US, "pid": 0,
               "tid": tids[e.get("track", "run")],
               "args": e.get("args", {})}
        if e.get("ph") == "X":
            out["dur"] = e.get("dur", 0.0) * _US
        else:
            out["s"] = "t"  # instant scope: one thread/track
        trace_events.append(out)
    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms",
           "otherData": {"dropped_events": dropped, **(meta or {})}}
    return doc


def write_trace(path: str, events: Iterable[dict], *, dropped: int = 0,
                meta: Optional[dict] = None) -> None:
    """Write a trace file; ``.ndjson`` streams events, anything else
    gets the Chrome/Perfetto JSON object."""
    if path.endswith(".ndjson"):
        text = events_to_ndjson(events)
    else:
        text = json.dumps(events_to_chrome(events, dropped=dropped,
                                           meta=meta))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


# ---------------------------------------------------------------------------
# Reader.
# ---------------------------------------------------------------------------
def read_trace(path: str) -> list[dict]:
    """Load either trace format back into internal events (seconds)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Both formats start with "{": a Chrome trace is one JSON object,
    # ndjson is many — only the whole-text parse tells them apart.
    doc = None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        pass
    if isinstance(doc, dict) and "traceEvents" in doc:
        names = {}
        for e in doc.get("traceEvents", ()):
            if e.get("ph") == "M" and e.get("name") == "thread_name":
                names[e.get("tid")] = e.get("args", {}).get("name", "run")
        events = []
        for e in doc.get("traceEvents", ()):
            if e.get("ph") == "M":
                continue
            event = {"name": e.get("name", "?"), "ph": e.get("ph", "i"),
                     "ts": e.get("ts", 0.0) / _US,
                     "track": names.get(e.get("tid"), "run"),
                     "args": e.get("args", {})}
            if e.get("ph") == "X":
                event["dur"] = e.get("dur", 0.0) / _US
            events.append(event)
        return events
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# ---------------------------------------------------------------------------
# Text renderers (the ``repro trace`` subcommand).
# ---------------------------------------------------------------------------
def _extent(events: list[dict]) -> tuple[float, float]:
    t0 = min((e.get("ts", 0.0) for e in events), default=0.0)
    t1 = max((e.get("ts", 0.0) + e.get("dur", 0.0) for e in events),
             default=0.0)
    return t0, max(t1, t0)


def render_trace_summary(events: list[dict], *, limit: int = 12) -> str:
    """Per-track event counts, busy time, and the busiest event names."""
    if not events:
        return "(empty trace)"
    t0, t1 = _extent(events)
    lines = [f"== trace: {len(events)} events over "
             f"{t1 - t0:.3f}s, {len(sorted_tracks(events))} tracks =="]
    by_name: dict[str, int] = {}
    for track in sorted_tracks(events):
        rows = [e for e in events if e.get("track", "run") == track]
        busy = sum(e.get("dur", 0.0) for e in rows if e.get("ph") == "X")
        spans = sum(1 for e in rows if e.get("ph") == "X")
        lines.append(f"  {track:<12s} {len(rows):6d} events "
                     f"({spans} spans, busy {busy:8.3f}s)")
        for e in rows:
            by_name[e.get("name", "?")] = by_name.get(e.get("name", "?"),
                                                      0) + 1
    top = sorted(by_name.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    lines.append("  by name: " + ", ".join(f"{n}={c}" for n, c in top))
    return "\n".join(lines)


def render_trace_gantt(events: list[dict], width: int = 64) -> str:
    """ASCII Gantt straight from trace events: one row per track, ``#``
    for span coverage, ``|`` sync instants, ``!`` fault instants."""
    if not events:
        return "(empty trace)"
    t0, t1 = _extent(events)
    span = max(t1 - t0, 1e-12)
    scale = span / width

    def col(ts: float) -> int:
        return min(int((ts - t0) / scale), width - 1)

    lines = [f"== trace gantt: {span:.3f}s ({len(events)} events) =="]
    for track in sorted_tracks(events):
        row = [" "] * width
        for e in events:
            if e.get("track", "run") != track:
                continue
            if e.get("ph") == "X":
                lo = col(e.get("ts", 0.0))
                hi = col(e.get("ts", 0.0) + e.get("dur", 0.0))
                for c in range(lo, hi + 1):
                    if row[c] == " ":
                        row[c] = "#"
        for e in events:  # instants overwrite spans so they stay visible
            if e.get("track", "run") != track or e.get("ph") == "X":
                continue
            name = e.get("name", "")
            mark = ("!" if name in ("crash", "declare_dead", "fence",
                                    "trace_truncated") else
                    "|" if name in ("sync", "decision") else "*")
            row[col(e.get("ts", 0.0))] = mark
        lines.append(f"{track:<12s}|{''.join(row)}|")
    lines.append(f"{'':<12s} {t0:<.2f}{'':{max(width - 14, 0)}}{t1:8.2f}s")
    return "\n".join(lines)
