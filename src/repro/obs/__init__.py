"""Observability: structured tracing and metrics for every backend.

The run-time statistics of :mod:`repro.runtime.stats` summarize a run
after the fact; this package records what happened *while* it happened:

* :class:`~repro.obs.trace.TraceRecorder` — a ring-buffered span /
  instant-event recorder.  Timestamps come from a pluggable clock, so
  the simulation backend records in virtual seconds (``env.now``) and
  the thread/process/socket backends in ``perf_counter`` wall seconds.
  The disabled default, :data:`~repro.obs.trace.NULL_RECORDER`, costs
  one attribute load and a no-op call — benchmarked in
  ``benchmarks/test_bench_obs.py`` and gated in CI.
* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges and histograms.  Its :class:`~repro.obs.metrics.CounterDict`
  is a plain ``dict`` subclass, so ``LoopRunStats.messages_by_tag`` and
  friends become live views over the registry without breaking any
  exporter or test.
* :mod:`~repro.obs.export` — NDJSON and Chrome trace-event JSON
  writers (the latter loads in Perfetto / ``chrome://tracing``), plus
  the text summary and ASCII Gantt behind ``repro trace``.

See docs/OBSERVABILITY.md for the event taxonomy and per-backend clock
domains.
"""

from .metrics import CounterDict, Histogram, MetricsRegistry
from .trace import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "CounterDict",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
]
