"""Metrics registry: labelled counters, gauges and histograms.

The backends used to bump ad-hoc dicts (``d[k] = d.get(k, 0) + n``) in
half a dozen places; the registry centralizes that pattern:

* :class:`CounterDict` — a ``dict`` subclass whose keys are the labels
  (a message tag, a frame-type name) and whose values are the counts,
  with :meth:`~CounterDict.inc` and :meth:`~CounterDict.merge`
  replacing the hand-rolled bumps.  Because it *is* a dict, a stats
  field like ``LoopRunStats.messages_by_tag`` can simply hold the
  registry's counter — the field becomes a live view and every existing
  exporter and test keeps working unchanged.
* :class:`Histogram` — fixed-bound bucket counts plus sum/count, for
  distributions (message sizes, per-sync planning times).
* :class:`MetricsRegistry` — the named collection of all three, with a
  JSON-clean :meth:`~MetricsRegistry.snapshot`.

Everything is plain-stdlib and GIL-atomic enough for the thread
backend's use (single ``dict.__setitem__`` per bump under its existing
transport lock).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["CounterDict", "Histogram", "MetricsRegistry"]


class CounterDict(dict):
    """A labelled counter that is also an ordinary ``dict``."""

    __slots__ = ()

    def inc(self, key, n: int = 1) -> None:
        """Add ``n`` to the count under ``key`` (creating it at 0)."""
        self[key] = self.get(key, 0) + n

    def merge(self, other: Mapping) -> "CounterDict":
        """Fold another mapping of counts into this one."""
        for key, n in other.items():
            self[key] = self.get(key, 0) + n
        return self


#: Power-of-two-ish default bounds (seconds or bytes both read fine).
_DEFAULT_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Histogram:
    """Fixed-bound bucket counts with a running sum."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = _DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bound")
        # One bucket per bound (value <= bound) plus the +inf overflow.
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        buckets = {f"le_{bound:g}": n
                   for bound, n in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.total,
                "buckets": buckets}


class MetricsRegistry:
    """Named counters, gauges and histograms for one run."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, CounterDict] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters --------------------------------------------------------
    def counter(self, name: str) -> CounterDict:
        """The labelled counter called ``name``, created on first use.

        The returned object is the registry's own storage: hand it to a
        stats field and the field stays a live view of the registry.
        """
        try:
            return self._counters[name]
        except KeyError:
            counter = self._counters[name] = CounterDict()
            return counter

    # -- gauges ----------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- histograms ------------------------------------------------------
    def histogram(self, name: str,
                  bounds: Optional[Iterable[float]] = None) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            histogram = self._histograms[name] = Histogram(
                tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS)
            return histogram

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-clean dump of everything recorded so far."""
        return {
            "counters": {name: dict(counter)
                         for name, counter in sorted(self._counters.items())},
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
        }
