"""Ring-buffered trace recording with a zero-cost disabled default.

Two recorder classes share one interface:

* :class:`NullRecorder` — every method is a no-op ``pass``.  The module
  singleton :data:`NULL_RECORDER` is what every instrumentation site
  holds by default, so a run that never asked for tracing pays one
  attribute load per *potential* event and nothing else
  (``benchmarks/test_bench_obs.py`` measures exactly this).
* :class:`TraceRecorder` — appends plain JSON-clean event dicts to a
  bounded ``collections.deque``.  Appends are atomic under the GIL, so
  one shared recorder serves all threads of the thread backend; the
  process and socket backends give each worker its own recorder and
  merge the buffers at shutdown (:meth:`TraceRecorder.to_payload` /
  :meth:`TraceRecorder.merge_payload`).

Clock domains
-------------
The recorder never reads a clock of its own choosing: the backend
injects one via ``set_clock`` (or the constructor).  The simulation
backend injects ``lambda: env.now`` — **virtual seconds**, so recording
cannot perturb the event schedule — while thread/process/socket inject
a zero-based ``perf_counter`` (measured from the same ``t0`` their
statistics already use).  Event timestamps are therefore always
"seconds since the run started" in the producing backend's own time
domain; see docs/OBSERVABILITY.md.

Event shape
-----------
Every event is a dict: ``{"name", "ph", "ts", "track", "args"}`` plus
``"dur"`` on complete spans.  ``ph`` follows the Chrome trace-event
phase letters the exporters emit verbatim: ``"X"`` (complete span) and
``"i"`` (instant).  ``track`` names the timeline row — ``node3``,
``balancer``, ``link:0-1``, ``faults`` — one Perfetto thread each.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional

__all__ = ["DEFAULT_CAPACITY", "NULL_RECORDER", "NullRecorder",
           "TraceRecorder"]

#: Ring-buffer size: events beyond this drop the oldest (counted in
#: ``dropped``, reported by the exporters — never a hard failure).
DEFAULT_CAPACITY = 65536


class _NullSpan:
    """Context manager that measures nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumentation sites test ``recorder.enabled`` before building
    event arguments that cost anything (string formatting, tuple
    copies); the methods themselves are safe to call unconditionally.
    """

    __slots__ = ()

    enabled = False
    dropped = 0

    def set_clock(self, clock: Callable[[], float]) -> None:
        pass

    def event(self, name: str, track: str = "run", **args) -> None:
        pass

    def complete(self, name: str, ts: float, dur: float,
                 track: str = "run", **args) -> None:
        pass

    def span(self, name: str, track: str = "run", **args) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> list:
        return []

    def to_payload(self) -> dict:
        return {"events": [], "dropped": 0}

    def merge_payload(self, payload: dict) -> None:
        pass


#: The shared disabled recorder every instrumentation point defaults to.
NULL_RECORDER = NullRecorder()


class _Span:
    """Measures one ``with recorder.span(...)`` block as a complete
    event; the timestamp/duration come from the recorder's clock."""

    __slots__ = ("_recorder", "_name", "_track", "_args", "_t0")

    def __init__(self, recorder: "TraceRecorder", name: str, track: str,
                 args: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._track = track
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = self._recorder._clock()
        return self

    def __exit__(self, *exc) -> bool:
        rec = self._recorder
        rec.complete(self._name, self._t0, rec._clock() - self._t0,
                     track=self._track, **self._args)
        return False


class TraceRecorder(NullRecorder):
    """Record spans and instants into a bounded ring buffer."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if clock is None:
            t0 = time.perf_counter()
            clock = lambda: time.perf_counter() - t0  # noqa: E731
        self._clock = clock
        self._buf: deque = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the time source (e.g. the sim's ``env.now``)."""
        self._clock = clock

    # -- recording -------------------------------------------------------
    def _push(self, event: dict) -> None:
        buf = self._buf
        if len(buf) == buf.maxlen:
            self.dropped += 1
        buf.append(event)

    def event(self, name: str, track: str = "run", **args) -> None:
        """One instant event at the current clock reading."""
        self._push({"name": name, "ph": "i", "ts": self._clock(),
                    "track": track, "args": args})

    def complete(self, name: str, ts: float, dur: float,
                 track: str = "run", **args) -> None:
        """One complete span with caller-supplied timestamps — the form
        the simulation uses, where start/end are already known from the
        event schedule and the recorder must not read any clock."""
        self._push({"name": name, "ph": "X", "ts": ts, "dur": dur,
                    "track": track, "args": args})

    def span(self, name: str, track: str = "run", **args) -> _Span:
        """Measure a ``with`` block against the recorder's clock."""
        return _Span(self, name, track, args)

    # -- reading / merging ----------------------------------------------
    def events(self) -> list:
        """All buffered events in timestamp order (merged buffers from
        several workers interleave, so insertion order is not enough)."""
        return sorted(self._buf, key=lambda e: e.get("ts", 0.0))

    def to_payload(self) -> dict:
        """JSON-clean snapshot for shipping over a queue or TRACE frame."""
        return {"events": list(self._buf), "dropped": self.dropped}

    def merge_payload(self, payload: dict) -> None:
        """Fold another recorder's :meth:`to_payload` into this buffer."""
        for event in payload.get("events", ()):
            self._push(event)
        self.dropped += int(payload.get("dropped", 0))
