"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure {4,5,6,7,8}``
    Regenerate one of the paper's figures and print its data table.
``table {1,2}``
    Regenerate one of the paper's actual-vs-predicted order tables.
``run``
    Run one loop (MXM or TRFD) under one strategy and print statistics.
``characterize``
    Run the off-line network characterization (§6.1).
``compile``
    Compile an annotated source file and print the analysis and the
    transformed listing.
``faults-demo``
    Seeded fault-injection demo: crash one of four nodes mid-loop under
    each strategy and report recovery; optionally the full robustness
    sweep (see docs/FAULT_MODEL.md).
``trace``
    Summarize a trace file written by ``run --trace`` (per-track event
    counts plus an ASCII Gantt; load the same file in Perfetto for the
    interactive view — see docs/OBSERVABILITY.md).
``balancer`` / ``worker``
    The socket backend's two halves as long-running commands: a hub
    that listens on a TCP port and waits for workers to register, and a
    worker that dials it.  Run them in separate terminals to watch the
    wire protocol (docs/WIRE_PROTOCOL.md) on localhost; late workers
    join mid-run, ``worker --leave-after N`` departs cleanly.

Examples
--------
::

    python -m repro figure 5 --seeds 5
    python -m repro table 1 --seeds 3
    python -m repro run --app mxm --size 400x400x400 -P 4 --strategy CUSTOM
    python -m repro run --app trfd --n 30 -P 16 --strategy LDDLB
    python -m repro run --app mxm -P 4 --strategy GDDLB --crash 2:1.5
    python -m repro run --app mxm -P 4 --strategy GCDLB --backend socket
    python -m repro run --app mxm -P 4 --strategy GDDLB --trace out.trace.json
    python -m repro trace out.trace.json
    python -m repro characterize --max-procs 16
    python -m repro compile examples_src/mxm.dlb
    python -m repro faults-demo --sweep
    python -m repro balancer -P 2 --strategy GCDLB --port 7070
    python -m repro worker --port 7070
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .apps.mxm import MxmConfig, mxm_loop
from .apps.trfd import TrfdConfig, trfd_application
from .experiments.config import ExperimentConfig
from .machine.cluster import ClusterSpec

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """The installed package version, or the source-tree default.

    Read from importlib.metadata so ``repro --version`` always matches
    what pip actually installed; a source checkout that was never
    installed falls back to the pyproject default.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
        try:
            return version("repro")
        except PackageNotFoundError:
            return "1.0.0"
    except Exception:  # pragma: no cover - stdlib always has it on 3.8+
        return "1.0.0"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Customized dynamic load balancing for a network of "
                    "workstations (HPDC'96 reproduction)",
        epilog=f"repro {package_version()}")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number",
                     choices=["2", "4", "5", "6", "7", "8", "topology"])
    fig.add_argument("--seeds", type=int, default=10,
                     help="load realizations per data point")
    fig.add_argument("--bars", action="store_true",
                     help="render ASCII bars instead of a table")

    tab = sub.add_parser("table", help="regenerate a paper table")
    tab.add_argument("number", choices=["1", "2"])
    tab.add_argument("--seeds", type=int, default=10)

    run = sub.add_parser("run", help="run one loop under one strategy")
    run.add_argument("--backend",
                     choices=["sim", "thread", "process", "socket"],
                     default="sim",
                     help="execution backend: 'sim' (deterministic "
                          "discrete-event simulation, default), 'thread' "
                          "(real threads, wall-clock time, CPU-burn "
                          "kernels), 'process' (one OS process per "
                          "worker, shared-memory data movement, true "
                          "multi-core parallelism) or 'socket' (the "
                          "protocol over real TCP on localhost; see "
                          "docs/WIRE_PROTOCOL.md)")
    run.add_argument("--kernel", choices=["wall", "ops", "numpy"],
                     default=None,
                     help="thread/process backends only: CPU-burn "
                          "kernel per iteration — 'wall' (spin to a "
                          "deadline; thread default), 'ops' (calibrated "
                          "scalar op count; process default) or 'numpy' "
                          "(same op count as vectorized passes that "
                          "release the GIL and, on the process backend, "
                          "compute in place on the shared-memory data "
                          "rows)")
    run.add_argument("--time-scale", type=float, default=1.0,
                     help="thread/process/socket backends only: scale "
                          "factor on every iteration's nominal cost "
                          "(e.g. 0.1 runs 10x faster without changing "
                          "work ratios)")
    run.add_argument("--start-method",
                     choices=["fork", "spawn", "forkserver"], default=None,
                     help="process/socket backends only: multiprocessing "
                          "start method (default: fork where available)")
    run.add_argument("--workers", choices=["tasks", "procs"],
                     default="tasks",
                     help="socket backend only: run workers as asyncio "
                          "tasks in-process (default) or as one OS "
                          "process per worker")
    run.add_argument("--app", choices=["mxm", "trfd"], default="mxm")
    run.add_argument("--size", default="400x400x400",
                     help="MXM RxCxR2 dimensions")
    run.add_argument("--n", type=int, default=30, help="TRFD parameter N")
    run.add_argument("-P", "--processors", type=int, default=4)
    run.add_argument("--strategy", default="CUSTOM",
                     help="NONE, GCDLB, GDDLB, LCDLB, LDDLB, WS, DIFF, "
                          "CUSTOM")
    run.add_argument("--topology", default=None, metavar="SPEC",
                     help="network graph: bus (default), complete, ring, "
                          "mesh, torus, or file:<adjacency.json> (see "
                          "docs/TOPOLOGY.md); sim and thread backends")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="record a structured event trace and write it "
                          "to PATH on completion: '.ndjson' streams one "
                          "event per line, any other extension gets "
                          "Chrome trace-event JSON loadable in Perfetto "
                          "(see docs/OBSERVABILITY.md)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-load", type=int, default=5)
    run.add_argument("--persistence", type=float, default=5.0)
    run.add_argument("--group-size", type=int, default=0)
    run.add_argument("--sync-mode", choices=["interrupt", "periodic"],
                     default="interrupt")
    run.add_argument("--sync-period", type=float, default=1.0)
    faults = run.add_argument_group(
        "fault injection (enables the hardened protocol; "
        "see docs/FAULT_MODEL.md)")
    faults.add_argument("--crash", action="append", default=[],
                        metavar="NODE:TIME",
                        help="crash NODE at TIME seconds (repeatable; "
                             "node 0 is the reliable master)")
    faults.add_argument("--freeze", action="append", default=[],
                        metavar="NODE:TIME:DURATION",
                        help="freeze NODE at TIME for DURATION seconds")
    faults.add_argument("--drop", type=float, default=0.0, metavar="PROB",
                        help="per-message drop probability")
    faults.add_argument("--max-drops", type=int, default=8)
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the plan's drop/delay coin flips")
    faults.add_argument("--ft-timeout", type=float, default=0.2,
                        help="base request timeout before the first retry")
    faults.add_argument("--ft-retries", type=int, default=5,
                        help="retries before a silent peer is declared dead")

    cha = sub.add_parser("characterize",
                         help="off-line network characterization (Fig 4)")
    cha.add_argument("--max-procs", type=int, default=16)
    cha.add_argument("--probe-bytes", type=int, default=64)
    cha.add_argument("--topology", default=None, metavar="SPEC",
                     help="characterize the patterns on a network graph "
                          "(adds the NX neighbor-exchange fit)")
    cha.add_argument("--probe", action="store_true",
                     help="also estimate per-link latency/bandwidth from "
                          "seeded point-to-point probes")
    cha.add_argument("--probe-seed", type=int, default=0)

    com = sub.add_parser("compile",
                         help="compile an annotated source file")
    com.add_argument("path", help="file with annotated loop nests")
    com.add_argument("--emit", choices=["analysis", "listing", "module"],
                     default="analysis")

    swp = sub.add_parser("sweep", help="sweep one knob over a value grid")
    swp.add_argument("knob",
                     choices=["persistence", "group_size",
                              "improvement_threshold", "sync_period",
                              "max_load"])
    swp.add_argument("values", nargs="+", type=float)
    swp.add_argument("-P", "--processors", type=int, default=4)
    swp.add_argument("--size", default="240x200x200",
                     help="MXM RxCxR2 dimensions for the swept loop")
    swp.add_argument("--seeds", type=int, default=5)
    swp.add_argument("--schemes", default="GC,GD,LC,LD")

    val = sub.add_parser("validate",
                         help="run the paper-claim checklist")
    val.add_argument("--seeds", type=int, default=10)

    fde = sub.add_parser("faults-demo",
                         help="seeded crash-recovery demo per strategy")
    fde.add_argument("--seed", type=int, default=42,
                     help="cluster load seed (also seeds the fault plan)")
    fde.add_argument("--victim", type=int, default=2,
                     help="node crashed mid-loop (1..P-1)")
    fde.add_argument("-P", "--processors", type=int, default=4)
    fde.add_argument("--sweep", action="store_true",
                     help="also run the full robustness sweep "
                          "(scenarios x strategies)")
    fde.add_argument("--sweep-seeds", type=int, default=1,
                     help="seeds per cell in the --sweep table")

    bal = sub.add_parser(
        "balancer",
        help="socket-backend hub: listen and wait for workers")
    bal.add_argument("-P", "--processors", type=int, default=2,
                     help="workers to wait for before the run starts "
                          "(later connections join mid-run)")
    bal.add_argument("--strategy", default="GCDLB",
                     help="NONE, GCDLB, GDDLB, LCDLB, LDDLB")
    bal.add_argument("--host", default="127.0.0.1")
    bal.add_argument("--port", type=int, default=7070)
    bal.add_argument("--size", default="200x200x200",
                     help="MXM RxCxR2 dimensions")
    bal.add_argument("--seed", type=int, default=0)
    bal.add_argument("--max-load", type=int, default=5)
    bal.add_argument("--persistence", type=float, default=5.0)
    bal.add_argument("--group-size", type=int, default=0)
    bal.add_argument("--time-scale", type=float, default=1.0)
    bal.add_argument("--ft-timeout", type=float, default=0.2,
                     help="base request timeout before the first retry")
    bal.add_argument("--ft-retries", type=int, default=5,
                     help="retries before a silent peer is declared dead")

    wrk = sub.add_parser(
        "worker",
        help="socket-backend worker: dial a balancer hub")
    wrk.add_argument("--host", default="127.0.0.1")
    wrk.add_argument("--port", type=int, default=7070)
    wrk.add_argument("--leave-after", type=int, default=None,
                     metavar="N",
                     help="depart cleanly after N iterations, handing "
                          "unfinished work back to the hub")

    trc = sub.add_parser(
        "trace",
        help="summarize a trace file written by 'run --trace'")
    trc.add_argument("path", help=".json (Chrome/Perfetto) or .ndjson "
                                  "trace file")
    trc.add_argument("--limit", type=int, default=12,
                     help="event names listed in the summary")
    trc.add_argument("--width", type=int, default=64,
                     help="columns in the ASCII gantt")
    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import figures as F
    from .experiments.report import render_bars, render_figure
    config = ExperimentConfig(n_seeds=args.seeds)
    fn = {"2": F.figure2, "4": F.figure4, "5": F.figure5,
          "6": F.figure6, "7": F.figure7, "8": F.figure8,
          "topology": F.figure_topology}[args.number]
    result = fn(config)
    print(render_bars(result) if args.bars else render_figure(result))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .experiments.report import render_table
    from .experiments.tables import table1, table2
    config = ExperimentConfig(n_seeds=args.seeds)
    result = (table1 if args.number == "1" else table2)(config)
    print(render_table(result))
    return 0


def _build_fault_plan(args: argparse.Namespace):
    """Translate the ``run`` command's fault flags into a FaultPlan.

    Returns ``None`` when no fault flag was given, so plain runs keep
    the vanilla (non-hardened) protocol.
    """
    from .faults import (CrashFault, FaultPlan, MessageDropFault,
                         SlowdownFault)
    crashes = []
    for spec in args.crash:
        node, time = spec.split(":")
        crashes.append(CrashFault(node=int(node), time=float(time)))
    slowdowns = []
    for spec in args.freeze:
        node, time, duration = spec.split(":")
        slowdowns.append(SlowdownFault(node=int(node), time=float(time),
                                       duration=float(duration)))
    drops = ()
    if args.drop > 0:
        drops = (MessageDropFault(probability=args.drop,
                                  max_drops=args.max_drops),)
    plan = FaultPlan(crashes=tuple(crashes), slowdowns=tuple(slowdowns),
                     drops=drops, seed=args.fault_seed)
    return None if plan.empty else plan


def _cmd_run(args: argparse.Namespace) -> int:
    from .backend.base import BackendError
    from .runtime.executor import run_application, run_loop
    from .runtime.options import FaultToleranceConfig, RunOptions
    cluster = ClusterSpec.homogeneous(
        args.processors, max_load=args.max_load,
        persistence=args.persistence, seed=args.seed)
    try:
        fault_plan = _build_fault_plan(args)
    except ValueError as exc:
        print(f"bad fault flag: {exc}", file=sys.stderr)
        return 2
    if fault_plan is not None and args.strategy == "WS":
        print("bad fault flag: the work-stealing baseline has no "
              "timeout/reclaim protocol; fault injection needs a DLB "
              "strategy", file=sys.stderr)
        return 2
    ft = FaultToleranceConfig(request_timeout=args.ft_timeout,
                              max_retries=args.ft_retries)
    recorder = None
    if args.trace:
        from .obs import TraceRecorder
        recorder = TraceRecorder()
    try:
        options = RunOptions(group_size=args.group_size,
                             topology=args.topology,
                             sync_mode=args.sync_mode,
                             sync_period=args.sync_period,
                             fault_tolerance=ft,
                             recorder=recorder)
    except ValueError as exc:
        print(f"bad --topology: {exc}", file=sys.stderr)
        return 2
    backend: object = args.backend
    if args.backend in ("thread", "process", "socket"):
        if args.app != "mxm":
            print(f"--backend {args.backend} supports single-loop apps "
                  "only (use --app mxm)", file=sys.stderr)
            return 2
        try:
            if args.backend == "thread":
                from .backend import ThreadBackend
                backend = ThreadBackend(time_scale=args.time_scale,
                                        kernel=args.kernel or "wall")
            elif args.backend == "process":
                from .backend import ProcessBackend
                backend = ProcessBackend(time_scale=args.time_scale,
                                         start_method=args.start_method,
                                         kernel=args.kernel or "ops")
            else:
                if args.kernel is not None:
                    print("--kernel applies to the thread and process "
                          "backends only", file=sys.stderr)
                    return 2
                from .backend import SocketBackend
                backend = SocketBackend(time_scale=args.time_scale,
                                        workers=args.workers,
                                        start_method=args.start_method)
        except BackendError as exc:
            print(f"backend error: {exc}", file=sys.stderr)
            return 2
    elif args.kernel is not None:
        print("--kernel applies to the thread and process backends only",
              file=sys.stderr)
        return 2
    if args.app == "mxm":
        try:
            r, c, r2 = (int(x) for x in args.size.lower().split("x"))
        except ValueError:
            print(f"bad --size {args.size!r}; expected RxCxR2",
                  file=sys.stderr)
            return 2
        loop = mxm_loop(MxmConfig(r, c, r2), op_seconds=4e-7)
        try:
            stats = run_loop(loop, cluster, args.strategy, options=options,
                             fault_plan=fault_plan, backend=backend)
        except BackendError as exc:
            print(f"backend error: {exc}", file=sys.stderr)
            return 2
        print(stats.summary())
        if args.topology:
            print(f"topology={args.topology}")
        if stats.selected_scheme:
            print(f"customized selection: {stats.selection_report.summary()}")
    else:
        app = trfd_application(TrfdConfig(args.n), op_seconds=3e-7)
        stats = run_application(app, cluster, args.strategy,
                                options=options, fault_plan=fault_plan)
        print(stats.summary())
        if args.topology:
            print(f"topology={args.topology}")
        for ls in stats.loop_stats:
            if ls.selected_scheme:
                print(f"{ls.loop_name} selection: "
                      f"{ls.selection_report.summary()}")
    if recorder is not None:
        from .obs.export import write_trace
        events = recorder.events()
        try:
            write_trace(args.trace, events, dropped=recorder.dropped,
                        meta={"backend": args.backend,
                              "strategy": args.strategy,
                              "app": args.app})
        except OSError as exc:
            print(f"cannot write trace {args.trace}: {exc}",
                  file=sys.stderr)
            return 2
        dropped = f" ({recorder.dropped} dropped)" if recorder.dropped \
            else ""
        print(f"trace: {len(events)} events{dropped} -> {args.trace}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .network import characterize_network, probe_link_parameters
    model = characterize_network(
        proc_counts=tuple(range(2, args.max_procs + 1)),
        probe_bytes=args.probe_bytes,
        topology=args.topology)
    print(f"latency {model.latency * 1e6:.1f} us, "
          f"bandwidth {model.bandwidth / 1e6:.2f} MB/s")
    for pattern in sorted(model.fits):
        fit = model.fits[pattern]
        coeffs = ", ".join(f"{c:.4e}" for c in fit.coefficients)
        print(f"{pattern}: fit [{coeffs}] over "
              f"P=2..{args.max_procs} (rms {fit.residual_rms():.2e} s)")
    if args.probe:
        est = probe_link_parameters(topology=args.topology,
                                    n_hosts=args.max_procs,
                                    seed=args.probe_seed)
        print(f"probe ({len(est.samples)} samples, seed {est.seed}): "
              f"latency {est.latency * 1e6:.1f} us, "
              f"bandwidth {est.bandwidth / 1e6:.2f} MB/s, "
              f"mean hops {est.mean_hops:.2f}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_source
    try:
        with open(args.path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    program = compile_source(source)
    if args.emit == "analysis":
        for analysis in program.analyses:
            print(analysis.describe())
    elif args.emit == "listing":
        print(program.transformed_source)
    else:
        print(program.module_source)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweeps import sweep
    try:
        r, c, r2 = (int(x) for x in args.size.lower().split("x"))
    except ValueError:
        print(f"bad --size {args.size!r}; expected RxCxR2", file=sys.stderr)
        return 2
    loop = mxm_loop(MxmConfig(r, c, r2), op_seconds=4e-7)
    config = ExperimentConfig(n_seeds=args.seeds)
    result = sweep(loop, args.processors, args.knob, args.values,
                   schemes=tuple(args.schemes.split(",")), config=config)
    print(result.render())
    return 0


def _cmd_faults_demo(args: argparse.Namespace) -> int:
    from .apps.workload import LoopSpec
    from .experiments.faults import fault_sweep, render_fault_sweep
    from .faults import FaultPlan
    from .runtime.executor import run_loop
    from .runtime.options import FaultToleranceConfig, RunOptions
    if not 1 <= args.victim < args.processors:
        print(f"--victim must be in 1..{args.processors - 1} "
              "(node 0 is the reliable master)", file=sys.stderr)
        return 2
    loop = LoopSpec(name="mxm-demo", n_iterations=96,
                    iteration_time=0.008, dc_bytes=1600)
    cluster = ClusterSpec.homogeneous(
        args.processors, max_load=3, persistence=0.5, seed=args.seed)
    ft = FaultToleranceConfig(enabled=False, request_timeout=0.08,
                              backoff=2.0, max_retries=4,
                              liveness_timeout=0.24)
    options = RunOptions(fault_tolerance=ft)
    print(f"== fault-injection demo: node {args.victim} of "
          f"{args.processors} crashes at 40% of each run ==")
    for scheme in ("GCDLB", "GDDLB", "LCDLB", "LDDLB"):
        baseline = run_loop(loop, cluster, scheme, options=options)
        plan = FaultPlan.single_crash(node=args.victim,
                                      time=0.4 * baseline.duration)
        stats = run_loop(loop, cluster, scheme, options=options,
                         fault_plan=plan)
        executed = sum(e - s for ranges in stats.executed_by_node.values()
                       for s, e in ranges)
        print(f"{scheme}: {baseline.duration:.3f}s -> "
              f"{stats.duration:.3f}s "
              f"({stats.duration / baseline.duration:.2f}x); "
              f"{executed}/{loop.n_iterations} iterations on survivors, "
              f"reclaimed={stats.reclaimed_iterations} "
              f"retries={stats.fault_retries} "
              f"salvaged={stats.salvaged_iterations} "
              f"declared_dead={list(stats.declared_dead)}")
    if args.sweep:
        seeds = tuple(1000 + i for i in range(args.sweep_seeds))
        result = fault_sweep(n_processors=args.processors, seeds=seeds)
        print()
        print(render_fault_sweep(result))
    return 0


def _cmd_balancer(args: argparse.Namespace) -> int:
    from .backend import SocketBackend
    from .backend.base import BackendError
    from .runtime.options import FaultToleranceConfig, RunOptions
    try:
        r, c, r2 = (int(x) for x in args.size.lower().split("x"))
    except ValueError:
        print(f"bad --size {args.size!r}; expected RxCxR2", file=sys.stderr)
        return 2
    loop = mxm_loop(MxmConfig(r, c, r2), op_seconds=4e-7)
    cluster = ClusterSpec.homogeneous(
        args.processors, max_load=args.max_load,
        persistence=args.persistence, seed=args.seed)
    ft = FaultToleranceConfig(request_timeout=args.ft_timeout,
                              max_retries=args.ft_retries)
    options = RunOptions(group_size=args.group_size, fault_tolerance=ft)
    backend = SocketBackend(time_scale=args.time_scale, host=args.host)

    def on_ready(port: int) -> None:
        print(f"balancer listening on {args.host}:{port}; waiting for "
              f"{args.processors} workers "
              f"(python -m repro worker --host {args.host} --port {port})",
              flush=True)

    try:
        stats = backend.serve(loop, cluster, args.strategy,
                              options=options, port=args.port,
                              on_ready=on_ready)
    except BackendError as exc:
        print(f"backend error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(stats.summary())
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .backend.base import BackendError
    from .backend.socket import run_worker
    try:
        reason = run_worker(args.host, args.port,
                            leave_after=args.leave_after)
    except BackendError as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 2
    except ConnectionError as exc:
        print(f"cannot reach balancer at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"worker done: {reason}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.export import (read_trace, render_trace_gantt,
                             render_trace_summary)
    try:
        events = read_trace(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # JSONDecodeError included
        print(f"not a trace file {args.path}: {exc}", file=sys.stderr)
        return 2
    print(render_trace_summary(events, limit=args.limit))
    print(render_trace_gantt(events, width=args.width))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.validation import render_validation, validate
    results = validate(ExperimentConfig(n_seeds=args.seeds))
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"figure": _cmd_figure, "table": _cmd_table,
               "run": _cmd_run, "characterize": _cmd_characterize,
               "compile": _cmd_compile, "sweep": _cmd_sweep,
               "validate": _cmd_validate,
               "faults-demo": _cmd_faults_demo,
               "balancer": _cmd_balancer,
               "worker": _cmd_worker,
               "trace": _cmd_trace}[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
