"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure {4,5,6,7,8}``
    Regenerate one of the paper's figures and print its data table.
``table {1,2}``
    Regenerate one of the paper's actual-vs-predicted order tables.
``run``
    Run one loop (MXM or TRFD) under one strategy and print statistics.
``characterize``
    Run the off-line network characterization (§6.1).
``compile``
    Compile an annotated source file and print the analysis and the
    transformed listing.

Examples
--------
::

    python -m repro figure 5 --seeds 5
    python -m repro table 1 --seeds 3
    python -m repro run --app mxm --size 400x400x400 -P 4 --strategy CUSTOM
    python -m repro run --app trfd --n 30 -P 16 --strategy LDDLB
    python -m repro characterize --max-procs 16
    python -m repro compile examples_src/mxm.dlb
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .apps.mxm import MxmConfig, mxm_loop
from .apps.trfd import TrfdConfig, trfd_application
from .experiments.config import ExperimentConfig
from .machine.cluster import ClusterSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Customized dynamic load balancing for a network of "
                    "workstations (HPDC'96 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", choices=["2", "4", "5", "6", "7", "8"])
    fig.add_argument("--seeds", type=int, default=10,
                     help="load realizations per data point")
    fig.add_argument("--bars", action="store_true",
                     help="render ASCII bars instead of a table")

    tab = sub.add_parser("table", help="regenerate a paper table")
    tab.add_argument("number", choices=["1", "2"])
    tab.add_argument("--seeds", type=int, default=10)

    run = sub.add_parser("run", help="run one loop under one strategy")
    run.add_argument("--app", choices=["mxm", "trfd"], default="mxm")
    run.add_argument("--size", default="400x400x400",
                     help="MXM RxCxR2 dimensions")
    run.add_argument("--n", type=int, default=30, help="TRFD parameter N")
    run.add_argument("-P", "--processors", type=int, default=4)
    run.add_argument("--strategy", default="CUSTOM",
                     help="NONE, GCDLB, GDDLB, LCDLB, LDDLB, WS, CUSTOM")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-load", type=int, default=5)
    run.add_argument("--persistence", type=float, default=5.0)
    run.add_argument("--group-size", type=int, default=0)
    run.add_argument("--sync-mode", choices=["interrupt", "periodic"],
                     default="interrupt")
    run.add_argument("--sync-period", type=float, default=1.0)

    cha = sub.add_parser("characterize",
                         help="off-line network characterization (Fig 4)")
    cha.add_argument("--max-procs", type=int, default=16)
    cha.add_argument("--probe-bytes", type=int, default=64)

    com = sub.add_parser("compile",
                         help="compile an annotated source file")
    com.add_argument("path", help="file with annotated loop nests")
    com.add_argument("--emit", choices=["analysis", "listing", "module"],
                     default="analysis")

    swp = sub.add_parser("sweep", help="sweep one knob over a value grid")
    swp.add_argument("knob",
                     choices=["persistence", "group_size",
                              "improvement_threshold", "sync_period",
                              "max_load"])
    swp.add_argument("values", nargs="+", type=float)
    swp.add_argument("-P", "--processors", type=int, default=4)
    swp.add_argument("--size", default="240x200x200",
                     help="MXM RxCxR2 dimensions for the swept loop")
    swp.add_argument("--seeds", type=int, default=5)
    swp.add_argument("--schemes", default="GC,GD,LC,LD")

    val = sub.add_parser("validate",
                         help="run the paper-claim checklist")
    val.add_argument("--seeds", type=int, default=10)
    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import figures as F
    from .experiments.report import render_bars, render_figure
    config = ExperimentConfig(n_seeds=args.seeds)
    fn = {"2": F.figure2, "4": F.figure4, "5": F.figure5,
          "6": F.figure6, "7": F.figure7, "8": F.figure8}[args.number]
    result = fn(config)
    print(render_bars(result) if args.bars else render_figure(result))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .experiments.report import render_table
    from .experiments.tables import table1, table2
    config = ExperimentConfig(n_seeds=args.seeds)
    result = (table1 if args.number == "1" else table2)(config)
    print(render_table(result))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .runtime.executor import run_application, run_loop
    from .runtime.options import RunOptions
    cluster = ClusterSpec.homogeneous(
        args.processors, max_load=args.max_load,
        persistence=args.persistence, seed=args.seed)
    options = RunOptions(group_size=args.group_size,
                         sync_mode=args.sync_mode,
                         sync_period=args.sync_period)
    if args.app == "mxm":
        try:
            r, c, r2 = (int(x) for x in args.size.lower().split("x"))
        except ValueError:
            print(f"bad --size {args.size!r}; expected RxCxR2",
                  file=sys.stderr)
            return 2
        loop = mxm_loop(MxmConfig(r, c, r2), op_seconds=4e-7)
        stats = run_loop(loop, cluster, args.strategy, options=options)
        print(stats.summary())
        if stats.selected_scheme:
            print(f"customized selection: {stats.selection_report.summary()}")
    else:
        app = trfd_application(TrfdConfig(args.n), op_seconds=3e-7)
        stats = run_application(app, cluster, args.strategy,
                                options=options)
        print(stats.summary())
        for ls in stats.loop_stats:
            if ls.selected_scheme:
                print(f"{ls.loop_name} selection: "
                      f"{ls.selection_report.summary()}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .network import characterize_network
    model = characterize_network(
        proc_counts=tuple(range(2, args.max_procs + 1)),
        probe_bytes=args.probe_bytes)
    print(f"latency {model.latency * 1e6:.1f} us, "
          f"bandwidth {model.bandwidth / 1e6:.2f} MB/s")
    for pattern in ("OA", "AO", "AA"):
        fit = model.fits[pattern]
        coeffs = ", ".join(f"{c:.4e}" for c in fit.coefficients)
        print(f"{pattern}: fit [{coeffs}] over "
              f"P=2..{args.max_procs} (rms {fit.residual_rms():.2e} s)")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_source
    try:
        with open(args.path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    program = compile_source(source)
    if args.emit == "analysis":
        for analysis in program.analyses:
            print(analysis.describe())
    elif args.emit == "listing":
        print(program.transformed_source)
    else:
        print(program.module_source)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweeps import sweep
    try:
        r, c, r2 = (int(x) for x in args.size.lower().split("x"))
    except ValueError:
        print(f"bad --size {args.size!r}; expected RxCxR2", file=sys.stderr)
        return 2
    loop = mxm_loop(MxmConfig(r, c, r2), op_seconds=4e-7)
    config = ExperimentConfig(n_seeds=args.seeds)
    result = sweep(loop, args.processors, args.knob, args.values,
                   schemes=tuple(args.schemes.split(",")), config=config)
    print(result.render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.validation import render_validation, validate
    results = validate(ExperimentConfig(n_seeds=args.seeds))
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"figure": _cmd_figure, "table": _cmd_table,
               "run": _cmd_run, "characterize": _cmd_characterize,
               "compile": _cmd_compile, "sweep": _cmd_sweep,
               "validate": _cmd_validate}[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
