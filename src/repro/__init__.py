"""repro — Customized Dynamic Load Balancing for a Network of Workstations.

A full reproduction of Zaki, Li & Parthasarathy (HPDC 1996 / Rochester
TR 602): four interrupt-based receiver-initiated dynamic load balancing
strategies (GCDLB, GDDLB, LCDLB, LDDLB) on a simulated multi-user
network of workstations, the analytical cost model that predicts their
relative performance, the hybrid compile/run-time *customization* that
commits to the best strategy at the first synchronization point, and a
source-to-source compiler that turns annotated sequential loop nests
into SPMD programs calling the DLB run-time library.

Quickstart::

    from repro import ClusterSpec, run_loop
    from repro.apps import MxmConfig, mxm_loop

    cluster = ClusterSpec.homogeneous(4, max_load=5, seed=7)
    stats = run_loop(mxm_loop(MxmConfig(400, 400, 400)), cluster, "GDDLB")
    print(stats.summary())
"""

from .apps import (
    ApplicationSpec,
    LoopSpec,
    MxmConfig,
    SequentialStage,
    TrfdConfig,
    WorkTable,
    mxm_application,
    mxm_loop,
    trfd_application,
)
from .core import (
    ALL_DLB_STRATEGIES,
    CUSTOMIZED,
    DIFFUSION,
    DlbPolicy,
    GCDLB,
    GDDLB,
    LCDLB,
    LDDLB,
    NO_DLB,
    STRATEGY_ORDER,
    StrategySpec,
    get_strategy,
    strategies_for_topology,
)
from .core.model import predict_strategy, rank_strategies
from .machine import ClusterSpec, DiscreteRandomLoad, Workstation
from .network import NetworkParameters, Topology, \
    characterize_network
from .runtime import RunOptions, run_application, run_loop

__version__ = "1.0.0"

__all__ = [
    "ALL_DLB_STRATEGIES",
    "ApplicationSpec",
    "CUSTOMIZED",
    "ClusterSpec",
    "DIFFUSION",
    "DiscreteRandomLoad",
    "DlbPolicy",
    "GCDLB",
    "GDDLB",
    "LCDLB",
    "LDDLB",
    "LoopSpec",
    "MxmConfig",
    "NO_DLB",
    "NetworkParameters",
    "RunOptions",
    "STRATEGY_ORDER",
    "SequentialStage",
    "StrategySpec",
    "Topology",
    "TrfdConfig",
    "WorkTable",
    "Workstation",
    "characterize_network",
    "get_strategy",
    "mxm_application",
    "mxm_loop",
    "predict_strategy",
    "rank_strategies",
    "run_application",
    "run_loop",
    "strategies_for_topology",
    "trfd_application",
]
