"""Code generation: annotated loop nests → executable SPMD artifacts.

Two artifacts are produced per compilation (paper §5.2, Figure 3):

1. **An executable Python module** (returned as source text and exec'd
   by the driver) containing, per load-balanced loop, a
   ``make_loop_spec_<name>`` builder that instantiates the symbolic
   cost functions for concrete sizes, and a ``make_kernel_<name>``
   factory whose kernel executes one (global) iteration of the loop
   body against NumPy arrays — used to validate that the transformed
   program computes exactly what the sequential program computes.
2. **A Figure-3 style transformed listing**: the C-like SPMD code with
   the DLB library calls (``DLB_init``, ``DLB_scatter_data``,
   ``DLB_master_sync``, ``DLB_slave_sync``, ``DLB_send_interrupt``,
   ``DLB_profile_send_move_work``, ``DLB_gather_data``) inserted, for
   inspection and documentation.
"""

from __future__ import annotations

from .analysis import LoopAnalysis
from .ast_nodes import ArrayRef, Assign, BinOp, Expr, ForLoop, Num, Program, Var
from .symbolic import Poly

__all__ = ["generate_module", "generate_transformed_listing",
           "poly_to_python", "expr_to_python"]


def poly_to_python(poly: Poly) -> str:
    """Render a polynomial as a Python expression string."""
    if not poly.terms:
        return "0"
    parts = []
    for mono, coeff in sorted(poly.terms.items()):
        factors = [f"{var}**{exp}" if exp > 1 else var for var, exp in mono]
        if not factors:
            parts.append(repr(coeff))
        else:
            prefix = "" if coeff == 1 else f"{coeff!r}*"
            parts.append(prefix + "*".join(factors))
    return "(" + " + ".join(parts) + ")"


def expr_to_python(expr: Expr) -> str:
    """Render a body expression as Python (NumPy indexing for arrays)."""
    if isinstance(expr, Num):
        v = expr.value
        return repr(int(v)) if float(v).is_integer() else repr(v)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayRef):
        idx = ", ".join(f"int({expr_to_python(i)})" for i in expr.indices)
        return f"{expr.name}[{idx}]"
    if isinstance(expr, BinOp):
        return (f"({expr_to_python(expr.left)} {expr.op} "
                f"{expr_to_python(expr.right)})")
    raise TypeError(f"unsupported expression {expr!r}")


def _emit_body(stmts: tuple, lines: list[str], indent: str) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            lines.append(f"{indent}{expr_to_python(stmt.target)} "
                         f"{stmt.op} {expr_to_python(stmt.expr)}")
        elif isinstance(stmt, ForLoop):
            lines.append(
                f"{indent}for {stmt.var} in range("
                f"int({expr_to_python(stmt.lower)}), "
                f"int({expr_to_python(stmt.upper)})):")
            _emit_body(stmt.body, lines, indent + "    ")
        else:  # pragma: no cover - parser produces only these
            raise TypeError(f"unsupported statement {stmt!r}")


def _collect_symbols(analysis: LoopAnalysis) -> list[str]:
    """Size symbols the generated functions must unpack from ``sizes``."""
    symbols = set(analysis.size_symbols())

    def scan(stmts: tuple, bound_vars: set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ForLoop):
                for bound in (stmt.lower, stmt.upper):
                    for node in _walk(bound):
                        if isinstance(node, Var) and node.name not in bound_vars:
                            symbols.add(node.name)
                scan(stmt.body, bound_vars | {stmt.var})
            elif isinstance(stmt, Assign):
                for node in list(_walk(stmt.expr)) + list(_walk(stmt.target)):
                    if isinstance(node, Var) and node.name not in bound_vars:
                        symbols.add(node.name)

    def _walk(expr: Expr):
        yield expr
        if isinstance(expr, BinOp):
            yield from _walk(expr.left)
            yield from _walk(expr.right)
        elif isinstance(expr, ArrayRef):
            for i in expr.indices:
                yield from _walk(i)

    loop = analysis.nest.loop
    for bound in (loop.lower, loop.upper):
        for node in _walk(bound):
            if isinstance(node, Var):
                symbols.add(node.name)
    scan(loop.body, {loop.var})
    return sorted(symbols)


def _unpack_sizes(symbols: list[str], indent: str) -> str:
    return "\n".join(f"{indent}{s} = int(sizes[{s!r}])" for s in symbols) \
        or f"{indent}pass"


def _spec_function(analysis: LoopAnalysis) -> str:
    name = analysis.name
    symbols = _collect_symbols(analysis)
    var = analysis.var
    lines = [f"def make_loop_spec_{name}(sizes, op_seconds=1.0e-07):",
             f"    \"\"\"LoopSpec for {name!r} at concrete sizes "
             f"(auto-generated).\"\"\"",
             _unpack_sizes(symbols, "    "),
             f"    lower = int({poly_to_python(analysis.lower)})",
             f"    n = int({poly_to_python(analysis.trip_count)})"]
    if analysis.uniform:
        lines += [
            f"    iteration_time = float({poly_to_python(analysis.work_per_iteration)}) * op_seconds",
        ]
    else:
        lines += [
            f"    {var} = np.arange(lower, lower + n, dtype=np.float64)",
            f"    _w = np.maximum({poly_to_python(analysis.work_per_iteration)}, 1.0) * op_seconds",
        ]
        if analysis.nest.bitonic:
            lines += ["    _w = bitonic_pair_costs(_w)",
                      "    n = int(_w.size)"]
        lines += ["    iteration_time = tuple(float(x) for x in _w)"]
    dc_factor = 2 if analysis.nest.bitonic else 1
    lines += [
        f"    dc = {dc_factor} * int({poly_to_python(analysis.dc_bytes)})",
        f"    return LoopSpec(name={name!r}, n_iterations=n,",
        "                    iteration_time=iteration_time, dc_bytes=dc,",
        f"                    ic_bytes=int({poly_to_python(analysis.ic_bytes)}),",
        f"                    input_bytes={dc_factor} * int({poly_to_python(analysis.input_bytes)}),",
        f"                    result_bytes={dc_factor} * int({poly_to_python(analysis.result_bytes)}),",
        f"                    replicated_bytes=int({poly_to_python(analysis.replicated_bytes)}))",
    ]
    return "\n".join(lines)


def _kernel_function(analysis: LoopAnalysis) -> str:
    name = analysis.name
    loop = analysis.nest.loop
    symbols = _collect_symbols(analysis)
    arrays = sorted(analysis.reads | analysis.writes)
    body_lines: list[str] = []
    _emit_body(loop.body, body_lines, "            ")
    body = "\n".join(body_lines) or "            pass"
    unpack_arrays = "\n".join(
        f"    {a} = arrays[{a!r}]" for a in arrays) or "    pass"
    lines = [f"def make_kernel_{name}(sizes, arrays):",
             f"    \"\"\"Kernel executing one global iteration of "
             f"{name!r} (auto-generated).\"\"\"",
             _unpack_sizes(symbols, "    "),
             unpack_arrays,
             f"    lower = int({poly_to_python(analysis.lower)})",
             f"    n = int({poly_to_python(analysis.trip_count)})"]
    if analysis.nest.bitonic:
        lines += [
            "    def kernel(s):",
            "        targets = [lower + s]",
            "        if s != n - 1 - s:",
            "            targets.append(lower + (n - 1 - s))",
            f"        for {loop.var} in targets:",
            body,
        ]
    else:
        lines += [
            "    def kernel(index):",
            f"        {loop.var} = lower + index",
            "        if True:",
            body,
        ]
    lines += ["    return kernel"]
    return "\n".join(lines)


def generate_module(program: Program, analyses: list[LoopAnalysis]) -> str:
    """Generate the executable Python module for a compiled program."""
    needs_bitonic = any(a.nest.bitonic for a in analyses)
    header = [
        '"""Auto-generated by repro.compiler — do not edit."""',
        "import numpy as np",
        "from repro.apps.workload import LoopSpec",
    ]
    if needs_bitonic:
        header.append("from repro.apps.trfd import bitonic_pair_costs")
    chunks = ["\n".join(header)]
    registry = []
    for a in analyses:
        chunks.append(_spec_function(a))
        chunks.append(_kernel_function(a))
        registry.append(
            f"    {a.name!r}: dict(spec=make_loop_spec_{a.name}, "
            f"kernel=make_kernel_{a.name}, uniform={a.uniform}, "
            f"bitonic={a.nest.bitonic}, var={a.var!r}),")
    chunks.append("LOOPS = {\n" + "\n".join(registry) + "\n}")
    return "\n\n\n".join(chunks) + "\n"


def generate_transformed_listing(program: Program,
                                 analyses: list[LoopAnalysis]) -> str:
    """The Figure-3 style C-like SPMD listing with DLB library calls."""
    arrays = ", ".join(f"&DLB_array_{a}" for a in program.arrays) or ""
    out = [
        "/* transformed by repro.compiler (cf. paper Figure 3) */",
        f"DLB_init(argcnt, &dlb, P, K, task_ids, master_tid{', ' + arrays if arrays else ''});",
        "DLB_scatter_data(&dlb);",
        "if (master)",
        "    DLB_master_sync(&dlb);   /* first sync, modeling, selection */",
        "else {",
    ]
    for a in analyses:
        loop = a.nest.loop
        out += [
            f"    /* {a.describe()} */",
            "    while (dlb.more_work) {",
            f"        for ({a.var} = dlb.start; {a.var} < dlb.end && "
            "dlb.more_work; "
            f"{a.var}++) {{",
        ]

        def emit_c(stmts: tuple, indent: str) -> None:
            for stmt in stmts:
                if isinstance(stmt, ForLoop):
                    out.append(f"{indent}for ({stmt.var} = {stmt.lower}; "
                               f"{stmt.var} < {stmt.upper}; {stmt.var}++)")
                    emit_c(stmt.body, indent + "    ")
                else:
                    out.append(f"{indent}{stmt}")

        emit_c(loop.body, "            ")
        out += [
            "            if (DLB_slave_sync(&dlb) && dlb.interrupt)",
            "                DLB_profile_send_move_work(&dlb);",
            "        }",
            "        if (dlb.more_work) {",
            "            DLB_send_interrupt(&dlb);",
            "            DLB_profile_send_move_work(&dlb);",
            "        }",
            "    }",
        ]
    out += ["}", "DLB_gather_data(&dlb);"]
    return "\n".join(out)
