"""Recursive-descent parser for the annotated loop-nest language.

Grammar (EBNF)::

    program    := (annotation* for_loop)* EOF
    for_loop   := "for" IDENT "=" expr "," expr "{" stmt* "}"
    stmt       := for_loop | assign
    assign     := target ("=" | "+=" | "-=" | "*=") expr ";"
    target     := IDENT ("[" expr "]")*
    expr       := term (("+" | "-") term)*
    term       := factor (("*" | "/") factor)*
    factor     := NUMBER | IDENT ("[" expr "]")* | "(" expr ")" | "-" factor

Annotations (``/* dlb: ... */``) are parsed by
:mod:`repro.compiler.annotations` and attach to the next loop (or the
whole program for ``processors`` / ``array`` directives).
"""

from __future__ import annotations

from .annotations import apply_annotations, parse_annotation
from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    LoopNest,
    Num,
    Program,
    Stmt,
    Var,
)
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse_program", "ParseError"]


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(
            f"{message} at line {token.line}, column {token.column} "
            f"(got {token.kind.name} {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind) -> Token:
        if self.current.kind is not kind:
            raise ParseError(f"expected {kind.name}", self.current)
        return self.advance()

    def accept(self, kind: TokenKind) -> Token | None:
        if self.current.kind is kind:
            return self.advance()
        return None

    # -- grammar ------------------------------------------------------------
    def program(self) -> Program:
        program = Program()
        pending: list = []
        loop_index = 0
        while self.current.kind is not TokenKind.EOF:
            if self.current.kind is TokenKind.ANNOTATION:
                pending.append(parse_annotation(self.advance().text))
                continue
            if self.current.kind is TokenKind.FOR:
                loop = self.for_loop()
                nest = LoopNest(loop=loop, name=f"loop{loop_index}")
                loop_index += 1
                nest = apply_annotations(program, nest, pending)
                pending = []
                program.nests.append(nest)
                continue
            raise ParseError("expected a for loop or annotation", self.current)
        if pending:
            # Trailing program-level annotations are fine; loop-level
            # ones have nothing to attach to.
            apply_annotations(program, None, pending)
        return program

    def for_loop(self) -> ForLoop:
        self.expect(TokenKind.FOR)
        var = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.ASSIGN)
        lower = self.expr()
        self.expect(TokenKind.COMMA)
        upper = self.expr()
        self.expect(TokenKind.LBRACE)
        body: list[Stmt] = []
        while self.current.kind is not TokenKind.RBRACE:
            body.append(self.statement())
        self.expect(TokenKind.RBRACE)
        return ForLoop(var=var, lower=lower, upper=upper, body=tuple(body))

    def statement(self) -> Stmt:
        if self.current.kind is TokenKind.FOR:
            return self.for_loop()
        return self.assign()

    def assign(self) -> Assign:
        target = self.reference()
        tok = self.current
        if tok.kind in (TokenKind.ASSIGN, TokenKind.PLUS_ASSIGN,
                        TokenKind.MINUS_ASSIGN, TokenKind.TIMES_ASSIGN):
            self.advance()
        else:
            raise ParseError("expected an assignment operator", tok)
        expr = self.expr()
        self.expect(TokenKind.SEMI)
        return Assign(target=target, op=tok.text, expr=expr)

    def reference(self) -> ArrayRef | Var:
        name = self.expect(TokenKind.IDENT).text
        indices: list[Expr] = []
        while self.accept(TokenKind.LBRACKET):
            indices.append(self.expr())
            self.expect(TokenKind.RBRACKET)
        if indices:
            return ArrayRef(name=name, indices=tuple(indices))
        return Var(name=name)

    def expr(self) -> Expr:
        node = self.term()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance().text
            node = BinOp(op=op, left=node, right=self.term())
        return node

    def term(self) -> Expr:
        node = self.factor()
        while self.current.kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self.advance().text
            node = BinOp(op=op, left=node, right=self.factor())
        return node

    def factor(self) -> Expr:
        tok = self.current
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            value = float(tok.text)
            return Num(value=value)
        if tok.kind is TokenKind.IDENT:
            return self.reference()
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            node = self.expr()
            self.expect(TokenKind.RPAREN)
            return node
        if tok.kind is TokenKind.MINUS:
            self.advance()
            return BinOp(op="-", left=Num(0.0), right=self.factor())
        raise ParseError("expected an expression", tok)


def parse_program(source: str) -> Program:
    """Parse annotated source into a :class:`Program`."""
    return _Parser(tokenize(source)).program()
