"""The compiler driver: source text → runnable compiled program.

``compile_source`` runs the full pipeline — lex, parse, annotate,
analyze, generate — and returns a :class:`CompiledProgram` that can:

* instantiate :class:`~repro.apps.workload.LoopSpec` objects for
  concrete sizes (the symbolic cost functions evaluated),
* allocate the declared arrays and execute the loops *sequentially*
  (the reference semantics),
* execute the loops *in parallel* on the simulated network of
  workstations under any DLB strategy, running the generated kernels
  as iterations complete — and verifying that the result matches the
  sequential run bit for bit (doall loops are order-independent).

This is the end-to-end path of the paper's §5: annotated sequential
code in, load-balanced SPMD execution out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import numpy as np

from ..apps.workload import LoopSpec
from ..core.strategies.base import StrategySpec
from ..machine.cluster import ClusterSpec
from ..runtime.executor import run_loop
from ..runtime.options import RunOptions
from ..runtime.stats import LoopRunStats
from .analysis import LoopAnalysis, analyze_program
from .ast_nodes import Program
from .codegen import generate_module, generate_transformed_listing
from .parser import parse_program

__all__ = ["CompiledLoop", "CompiledProgram", "compile_source"]

Sizes = Mapping[str, int]


@dataclass
class CompiledLoop:
    """One compiled load-balanced loop."""

    name: str
    analysis: LoopAnalysis
    spec_builder: Callable[..., LoopSpec]
    kernel_builder: Callable[[Sizes, dict[str, np.ndarray]], Callable[[int], None]]

    @property
    def uniform(self) -> bool:
        return self.analysis.uniform

    @property
    def bitonic(self) -> bool:
        return self.analysis.nest.bitonic

    def loop_spec(self, sizes: Sizes, op_seconds: float = 1.0e-7) -> LoopSpec:
        return self.spec_builder(sizes, op_seconds=op_seconds)

    def make_kernel(self, sizes: Sizes, arrays: dict[str, np.ndarray]
                    ) -> Callable[[int], None]:
        return self.kernel_builder(sizes, arrays)


class CompiledProgram:
    """The result of compiling an annotated source file."""

    def __init__(self, program: Program, analyses: list[LoopAnalysis],
                 module_source: str, transformed_source: str,
                 namespace: dict) -> None:
        self.program = program
        self.analyses = analyses
        self.module_source = module_source
        self.transformed_source = transformed_source
        self._namespace = namespace
        self.loops: dict[str, CompiledLoop] = {}
        registry = namespace["LOOPS"]
        for a in analyses:
            entry = registry[a.name]
            self.loops[a.name] = CompiledLoop(
                name=a.name, analysis=a,
                spec_builder=entry["spec"], kernel_builder=entry["kernel"])

    # -- arrays ------------------------------------------------------------
    def array_shape(self, name: str, sizes: Sizes) -> tuple[int, ...]:
        decl = self.program.arrays[name]
        return tuple(int(sizes[s]) if not s.isdigit() else int(s)
                     for s in decl.shape)

    def allocate_arrays(self, sizes: Sizes, seed: int = 0
                        ) -> dict[str, np.ndarray]:
        """Allocate declared arrays: read data random, outputs zero."""
        rng = np.random.default_rng(seed)
        reads = set().union(*(a.reads for a in self.analyses))
        writes = set().union(*(a.writes for a in self.analyses))
        out: dict[str, np.ndarray] = {}
        for name in self.program.arrays:
            shape = self.array_shape(name, sizes)
            if name in reads and name not in writes:
                out[name] = rng.standard_normal(shape)
            else:
                out[name] = np.zeros(shape)
        return out

    # -- execution ------------------------------------------------------------
    def run_sequential(self, sizes: Sizes,
                       arrays: Optional[dict[str, np.ndarray]] = None,
                       seed: int = 0,
                       op_seconds: float = 1.0e-7
                       ) -> dict[str, np.ndarray]:
        """Reference execution: every loop, in order, in iteration order."""
        arrays = arrays if arrays is not None else self.allocate_arrays(
            sizes, seed)
        for loop in self.loops.values():
            spec = loop.loop_spec(sizes, op_seconds)
            kernel = loop.make_kernel(sizes, arrays)
            for i in range(spec.n_iterations):
                kernel(i)
        return arrays

    def run_parallel(self, sizes: Sizes, cluster: ClusterSpec,
                     strategy: "str | StrategySpec",
                     options: Optional[RunOptions] = None,
                     seed: int = 0,
                     op_seconds: float = 1.0e-7
                     ) -> tuple[list[LoopRunStats], dict[str, np.ndarray]]:
        """Run every compiled loop under DLB on the simulated cluster.

        The generated kernels execute as nodes complete iterations, so
        the returned arrays hold the parallel program's actual output
        (compare against :meth:`run_sequential`).  Meant for modest
        sizes — kernels run real (interpreted) loop bodies.
        """
        arrays = self.allocate_arrays(sizes, seed)
        options = options or RunOptions()
        all_stats = []
        for loop in self.loops.values():
            spec = loop.loop_spec(sizes, op_seconds)
            kernel = loop.make_kernel(sizes, arrays)

            def on_execute(node: int, ranges: list[tuple[int, int]],
                           kernel=kernel) -> None:
                for start, end in ranges:
                    for i in range(start, end):
                        kernel(i)

            stats = run_loop(spec, cluster, strategy,
                             options=options.but(on_execute=on_execute))
            all_stats.append(stats)
        return all_stats, arrays


def compile_source(source: str) -> CompiledProgram:
    """Compile annotated sequential source (the §5 pipeline)."""
    program = parse_program(source)
    analyses = analyze_program(program)
    module_source = generate_module(program, analyses)
    transformed = generate_transformed_listing(program, analyses)
    namespace: dict = {}
    exec(compile(module_source, "<repro.compiler generated>", "exec"),
         namespace)
    return CompiledProgram(program, analyses, module_source, transformed,
                           namespace)
