"""Compiler substrate (S9, paper §5): annotated source → SPMD + DLB.

Pipeline: :mod:`lexer` → :mod:`parser` (+ :mod:`annotations`) →
:mod:`analysis` (symbolic costs via :mod:`symbolic`) → :mod:`codegen` →
:mod:`driver` (executable compiled programs).
"""

from .analysis import (
    AnalysisError,
    ELEMENT_BYTES,
    LoopAnalysis,
    analyze_nest,
    analyze_program,
    expr_to_poly,
)
from .annotations import Annotation, AnnotationError, parse_annotation
from .ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    ForLoop,
    LoopNest,
    Num,
    Program,
    Var,
)
from .codegen import (
    expr_to_python,
    generate_module,
    generate_transformed_listing,
    poly_to_python,
)
from .driver import CompiledLoop, CompiledProgram, compile_source
from .lexer import LexError, Token, TokenKind, tokenize
from .parser import ParseError, parse_program
from .symbolic import Poly, const, sym

__all__ = [
    "AnalysisError",
    "Annotation",
    "AnnotationError",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "BinOp",
    "CompiledLoop",
    "CompiledProgram",
    "ELEMENT_BYTES",
    "ForLoop",
    "LexError",
    "LoopAnalysis",
    "LoopNest",
    "Num",
    "ParseError",
    "Poly",
    "Program",
    "Token",
    "TokenKind",
    "Var",
    "analyze_nest",
    "analyze_program",
    "compile_source",
    "const",
    "expr_to_poly",
    "expr_to_python",
    "generate_module",
    "generate_transformed_listing",
    "parse_annotation",
    "parse_program",
    "poly_to_python",
    "sym",
    "tokenize",
]
