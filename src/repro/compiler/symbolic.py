"""Symbolic polynomial arithmetic for compile-time cost functions.

The compiler "helps to generate symbolic cost functions for the
iteration cost and communication cost" (paper §5.1): trip counts, work
per iteration and bytes per iteration are polynomials over size symbols
(``R``, ``C``, ``N`` ...) and, for non-uniform loops, over the
load-balanced loop variable itself.  This module implements the small
multivariate polynomial algebra those functions need — construction
from symbols and numbers, ``+ - *`` and integer powers, evaluation over
scalar or NumPy-array environments, and human-readable printing.
"""

from __future__ import annotations

from numbers import Real
from typing import Mapping, Union

import numpy as np

__all__ = ["Poly", "sym", "const"]

#: A monomial is a sorted tuple of (variable, exponent) pairs.
Monomial = tuple[tuple[str, int], ...]
Scalar = Union[int, float]


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: dict[str, int] = {}
    for var, exp in a + b:
        powers[var] = powers.get(var, 0) + exp
    return tuple(sorted((v, e) for v, e in powers.items() if e != 0))


class Poly:
    """An immutable multivariate polynomial with real coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[Monomial, Scalar] | None = None) -> None:
        clean: dict[Monomial, Scalar] = {}
        for mono, coeff in (terms or {}).items():
            if coeff != 0:
                clean[mono] = clean.get(mono, 0) + coeff
        self.terms: dict[Monomial, Scalar] = {
            m: c for m, c in clean.items() if c != 0}

    # -- constructors ------------------------------------------------------
    @staticmethod
    def number(value: Scalar) -> "Poly":
        return Poly({(): value} if value != 0 else {})

    @staticmethod
    def symbol(name: str) -> "Poly":
        if not name.isidentifier():
            raise ValueError(f"{name!r} is not a valid symbol name")
        return Poly({((name, 1),): 1})

    @staticmethod
    def coerce(value: "Poly | Scalar") -> "Poly":
        if isinstance(value, Poly):
            return value
        if isinstance(value, Real):
            return Poly.number(value)
        raise TypeError(f"cannot coerce {value!r} to Poly")

    # -- algebra ------------------------------------------------------------
    def __add__(self, other: "Poly | Scalar") -> "Poly":
        other = Poly.coerce(other)
        out = dict(self.terms)
        for mono, coeff in other.terms.items():
            out[mono] = out.get(mono, 0) + coeff
        return Poly(out)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Poly | Scalar") -> "Poly":
        return self + (-Poly.coerce(other))

    def __rsub__(self, other: "Poly | Scalar") -> "Poly":
        return Poly.coerce(other) - self

    def __mul__(self, other: "Poly | Scalar") -> "Poly":
        other = Poly.coerce(other)
        out: dict[Monomial, Scalar] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = _mono_mul(m1, m2)
                out[mono] = out.get(mono, 0) + c1 * c2
        return Poly(out)

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "Poly":
        if isinstance(other, Poly):
            if other.is_constant:
                other = other.constant_value
            else:
                raise TypeError("can only divide a Poly by a constant")
        if other == 0:
            raise ZeroDivisionError("division of Poly by zero")
        return Poly({m: c / other for m, c in self.terms.items()})

    def __pow__(self, exponent: int) -> "Poly":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("only non-negative integer powers")
        out = Poly.number(1)
        base = self
        e = exponent
        while e:
            if e & 1:
                out = out * base
            base = base * base
            e >>= 1
        return out

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Real):
            other = Poly.number(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    # -- queries ------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return all(m == () for m in self.terms)

    @property
    def constant_value(self) -> Scalar:
        if not self.is_constant:
            raise ValueError(f"{self} is not constant")
        return self.terms.get((), 0)

    def variables(self) -> set[str]:
        return {var for mono in self.terms for var, _ in mono}

    def degree(self, var: str | None = None) -> int:
        if not self.terms:
            return 0
        if var is None:
            return max(sum(e for _, e in mono) for mono in self.terms)
        return max((e for mono in self.terms for v, e in mono if v == var),
                   default=0)

    def depends_on(self, var: str) -> bool:
        return var in self.variables()

    # -- evaluation ------------------------------------------------------------
    def eval(self, env: Mapping[str, Union[Scalar, np.ndarray]]
             ) -> Union[Scalar, np.ndarray]:
        """Evaluate over scalars or NumPy arrays (vectorized)."""
        missing = self.variables() - set(env)
        if missing:
            raise KeyError(f"unbound symbols: {sorted(missing)}")
        total: Union[Scalar, np.ndarray] = 0
        for mono, coeff in self.terms.items():
            term: Union[Scalar, np.ndarray] = coeff
            for var, exp in mono:
                term = term * env[var] ** exp
            total = total + term
        return total

    def substitute(self, env: Mapping[str, "Poly | Scalar"]) -> "Poly":
        """Replace symbols with polynomials (partial substitution ok)."""
        out = Poly.number(0)
        for mono, coeff in self.terms.items():
            term = Poly.number(coeff)
            for var, exp in mono:
                repl = Poly.coerce(env[var]) if var in env else Poly.symbol(var)
                term = term * repl ** exp
            out = out + term
        return out

    # -- printing ------------------------------------------------------------
    def __str__(self) -> str:
        if not self.terms:
            return "0"
        def mono_key(item):
            mono, _ = item
            return (-sum(e for _, e in mono), mono)
        parts = []
        for mono, coeff in sorted(self.terms.items(), key=mono_key):
            factors = [f"{v}^{e}" if e > 1 else v for v, e in mono]
            if not factors:
                parts.append(f"{coeff:g}")
            elif coeff == 1:
                parts.append("*".join(factors))
            elif coeff == -1:
                parts.append("-" + "*".join(factors))
            else:
                parts.append(f"{coeff:g}*" + "*".join(factors))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Poly({self})"


def sym(name: str) -> Poly:
    """Shorthand for :meth:`Poly.symbol`."""
    return Poly.symbol(name)


def const(value: Scalar) -> Poly:
    """Shorthand for :meth:`Poly.number`."""
    return Poly.number(value)
