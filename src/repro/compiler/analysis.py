"""Compile-time analysis: symbolic work and communication costs (§5.1).

For each load-balanced loop nest the analysis derives:

* the **trip count** ``I(sizes)`` of the parallel loop,
* the **work per iteration** ``W`` as a polynomial over the size
  symbols *and possibly the loop variable itself* — a ``W`` that
  depends on the loop variable is a non-uniform (e.g. triangular) loop,
  which is what the bitonic transform targets;
* the **data communication** ``DC``: bytes that must migrate with an
  iteration — one "row" of every BLOCK/CYCLIC-distributed array that
  the body *reads* through the parallel index;
* result / replicated byte counts for gather and scatter sizing;
* the **intrinsic communication** ``IC``: accesses to distributed
  arrays through an index other than the parallel loop variable (zero
  for doall loops like MXM and TRFD).

Work is counted in *basic operations* (arithmetic nodes plus stores);
the constant factor w.r.t. the paper's informal counts folds into the
per-operation time calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast_nodes import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    LoopNest,
    Num,
    Program,
    Var,
    walk_expr,
)
from .symbolic import Poly, const, sym

__all__ = ["LoopAnalysis", "analyze_nest", "analyze_program",
           "expr_to_poly", "AnalysisError", "ELEMENT_BYTES"]

ELEMENT_BYTES = 8  # C doubles


class AnalysisError(ValueError):
    """The program cannot be analyzed (unsupported construct)."""


def expr_to_poly(expr: Expr) -> Poly:
    """Convert a bound/index expression to a polynomial."""
    if isinstance(expr, Num):
        return const(expr.value)
    if isinstance(expr, Var):
        return sym(expr.name)
    if isinstance(expr, ArrayRef):
        raise AnalysisError(f"array reference {expr} in a bound expression")
    if isinstance(expr, BinOp):
        left = expr_to_poly(expr.left)
        right = expr_to_poly(expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if not right.is_constant:
                raise AnalysisError(f"division by non-constant in {expr}")
            return left / right.constant_value
        raise AnalysisError(f"unsupported operator {expr.op!r}")
    raise AnalysisError(f"unsupported expression {expr!r}")


@dataclass
class LoopAnalysis:
    """Everything the run-time system needs to know about one loop."""

    nest: LoopNest
    var: str
    lower: Poly
    trip_count: Poly
    work_per_iteration: Poly
    uniform: bool
    dc_bytes: Poly = field(default_factory=lambda: const(0))
    ic_bytes: Poly = field(default_factory=lambda: const(0))
    input_bytes: Poly = field(default_factory=lambda: const(0))
    result_bytes: Poly = field(default_factory=lambda: const(0))
    replicated_bytes: Poly = field(default_factory=lambda: const(0))
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.nest.name

    def size_symbols(self) -> set[str]:
        out = (self.trip_count.variables()
               | self.work_per_iteration.variables()
               | self.dc_bytes.variables() | self.ic_bytes.variables()
               | self.result_bytes.variables()
               | self.replicated_bytes.variables())
        out.discard(self.var)
        return out

    def describe(self) -> str:
        kind = "uniform" if self.uniform else "non-uniform"
        return (f"{self.name}: parallel over {self.var}, "
                f"I = {self.trip_count}, W({self.var}) = "
                f"{self.work_per_iteration} ops ({kind}), "
                f"DC = {self.dc_bytes} bytes, IC = {self.ic_bytes} bytes")


def _statement_ops(stmt: Assign) -> int:
    """Basic operations of one assignment: arithmetic + the store."""
    arith = sum(1 for node in walk_expr(stmt.expr) if isinstance(node, BinOp))
    compound = 1 if stmt.op != "=" else 0
    return arith + compound + 1


def _body_work(stmts: tuple, inner_vars: set[str]) -> Poly:
    work = const(0)
    for stmt in stmts:
        if isinstance(stmt, Assign):
            work = work + const(_statement_ops(stmt))
        elif isinstance(stmt, ForLoop):
            trip = expr_to_poly(stmt.upper) - expr_to_poly(stmt.lower)
            inner = _body_work(stmt.body, inner_vars | {stmt.var})
            work = work + trip * inner
        else:  # pragma: no cover - parser produces only these
            raise AnalysisError(f"unsupported statement {stmt!r}")
    return work


def _collect_refs(stmts: tuple, reads: list[ArrayRef],
                  writes: list[ArrayRef]) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayRef):
                writes.append(stmt.target)
                if stmt.op != "=":
                    reads.append(stmt.target)
                for idx in stmt.target.indices:
                    reads.extend(n for n in walk_expr(idx)
                                 if isinstance(n, ArrayRef))
            for node in walk_expr(stmt.expr):
                if isinstance(node, ArrayRef):
                    reads.append(node)
        elif isinstance(stmt, ForLoop):
            _collect_refs(stmt.body, reads, writes)


def _row_bytes(decl: ArrayDecl, skip_dim: int) -> Poly:
    """Bytes of one slice of ``decl`` along ``skip_dim``."""
    out = const(ELEMENT_BYTES)
    for d, size in enumerate(decl.shape):
        if d == skip_dim:
            continue
        out = out * (const(int(size)) if size.isdigit() else sym(size))
    return out


def _total_bytes(decl: ArrayDecl) -> Poly:
    return _row_bytes(decl, skip_dim=-1)


def _is_parallel_index(expr: Expr, var: str) -> bool:
    return isinstance(expr, Var) and expr.name == var


def analyze_nest(program: Program, nest: LoopNest) -> LoopAnalysis:
    """Analyze one load-balanced loop nest."""
    loop = nest.loop
    var = loop.var
    lower = expr_to_poly(loop.lower)
    trip = expr_to_poly(loop.upper) - lower
    work = _body_work(loop.body, {var})
    uniform = not work.depends_on(var)

    analysis = LoopAnalysis(nest=nest, var=var, lower=lower, trip_count=trip,
                            work_per_iteration=work, uniform=uniform)

    reads: list[ArrayRef] = []
    writes: list[ArrayRef] = []
    _collect_refs(loop.body, reads, writes)
    read_names = {r.name for r in reads}
    write_names = {w.name for w in writes}
    analysis.reads = read_names
    analysis.writes = write_names

    seen_dc: set[str] = set()
    seen_result: set[str] = set()
    seen_repl: set[str] = set()
    for ref in reads + writes:
        decl = program.arrays.get(ref.name)
        if decl is None:
            raise AnalysisError(
                f"array {ref.name} used in {nest.name} but not declared "
                f"(add a '/* dlb: array ... */' annotation)")
        if len(ref.indices) != len(decl.shape):
            raise AnalysisError(
                f"array {ref.name}: {len(ref.indices)} indices for "
                f"{len(decl.shape)} dimensions")
        partitioned = [d for d, dist in enumerate(decl.distribution)
                       if dist in ("BLOCK", "CYCLIC")]
        if not partitioned:
            # Fully replicated array: counts once toward scatter volume.
            if ref.name in read_names and ref.name not in seen_repl:
                seen_repl.add(ref.name)
                analysis.replicated_bytes = (analysis.replicated_bytes
                                             + _total_bytes(decl))
            continue
        for d in partitioned:
            if _is_parallel_index(ref.indices[d], var):
                row = _row_bytes(decl, d)
                is_written = ref.name in write_names
                # Only pure inputs migrate with an iteration: a written
                # row is produced (or accumulated from zero) wherever
                # the iteration executes and gathered at the end — the
                # paper's "only the rows of array X need to be
                # communicated" (§6.2).
                is_input = ref.name in read_names and not is_written
                if is_input and ref.name not in seen_dc:
                    seen_dc.add(ref.name)
                    analysis.dc_bytes = analysis.dc_bytes + row
                    analysis.input_bytes = analysis.input_bytes + row
                if is_written and ref.name not in seen_result:
                    seen_result.add(ref.name)
                    analysis.result_bytes = analysis.result_bytes + row
            else:
                # Distributed array accessed through a non-parallel
                # index: every iteration may touch remote rows.
                analysis.ic_bytes = (analysis.ic_bytes
                                     + _row_bytes(decl, d))
    return analysis


def analyze_program(program: Program) -> list[LoopAnalysis]:
    """Analyze every load-balanced nest (in program order)."""
    balanced = program.balanced_nests()
    if not balanced:
        raise AnalysisError("no '/* dlb: loadbalance */' loop in the program")
    return [analyze_nest(program, nest) for nest in balanced]
