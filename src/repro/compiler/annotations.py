"""DLB annotation directives (paper §5.2).

"The input to the compiler consists of the sequential version of the
code, with annotations to indicate the data decomposition for the
shared arrays, and to indicate the loops which have to be load
balanced."  Supported directives, written as ``/* dlb: ... */``:

``processors <n>``
    Fix the processor count at compile time (optional — the number is
    normally a run-time parameter).
``array <Name>(<dim>, ...) distribute(<BLOCK|CYCLIC|WHOLE>, ...)``
    Declare a shared array's symbolic shape and per-dimension data
    distribution (the paper supports BLOCK, CYCLIC and WHOLE).
``loadbalance``
    Mark the next loop as a target for dynamic load balancing.
``bitonic``
    Apply the bitonic scheduling transform (§6.3) to the next loop
    (pairs iteration ``j`` with ``N - j + 1`` to even out triangular
    work).
``name <label>``
    Human-readable name for the next loop (used in statistics).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from .ast_nodes import ArrayDecl, LoopNest, Program

__all__ = ["Annotation", "parse_annotation", "apply_annotations",
           "AnnotationError"]


class AnnotationError(ValueError):
    """A malformed ``dlb:`` directive."""


@dataclass(frozen=True)
class Annotation:
    kind: str
    payload: object = None


_ARRAY_RE = re.compile(
    r"^array\s+(?P<name>\w+)\s*\((?P<shape>[^)]*)\)\s*"
    r"distribute\s*\((?P<dist>[^)]*)\)$", re.IGNORECASE)
_PROCS_RE = re.compile(r"^processors\s+(?P<n>\d+)$", re.IGNORECASE)
_NAME_RE = re.compile(r"^name\s+(?P<label>[\w.\-]+)$", re.IGNORECASE)


def parse_annotation(text: str) -> Annotation:
    """Parse the body of one ``/* dlb: ... */`` comment."""
    body = text.strip()
    lowered = body.lower()
    if lowered == "loadbalance":
        return Annotation(kind="loadbalance")
    if lowered == "bitonic":
        return Annotation(kind="bitonic")
    m = _PROCS_RE.match(body)
    if m:
        return Annotation(kind="processors", payload=int(m.group("n")))
    m = _NAME_RE.match(body)
    if m:
        return Annotation(kind="name", payload=m.group("label"))
    m = _ARRAY_RE.match(body)
    if m:
        shape = tuple(s.strip() for s in m.group("shape").split(",") if s.strip())
        dist = tuple(d.strip().upper()
                     for d in m.group("dist").split(",") if d.strip())
        if not shape:
            raise AnnotationError(f"array {m.group('name')}: empty shape")
        decl = ArrayDecl(name=m.group("name"), shape=shape, distribution=dist)
        return Annotation(kind="array", payload=decl)
    raise AnnotationError(f"unknown dlb directive: {body!r}")


def apply_annotations(program: Program, nest: Optional[LoopNest],
                      pending: Sequence[Annotation]) -> Optional[LoopNest]:
    """Attach parsed annotations to the program / the next loop nest.

    Program-level directives (``processors``, ``array``) update
    ``program`` regardless of position; loop-level directives
    (``loadbalance``, ``bitonic``, ``name``) require a following loop.
    """
    for ann in pending:
        if ann.kind == "processors":
            program.n_processors = int(ann.payload)  # type: ignore[arg-type]
        elif ann.kind == "array":
            decl: ArrayDecl = ann.payload  # type: ignore[assignment]
            if decl.name in program.arrays:
                raise AnnotationError(f"array {decl.name} declared twice")
            program.arrays[decl.name] = decl
        elif ann.kind in ("loadbalance", "bitonic", "name"):
            if nest is None:
                raise AnnotationError(
                    f"directive {ann.kind!r} has no following loop")
            if ann.kind == "loadbalance":
                nest = replace(nest, load_balance=True)
            elif ann.kind == "bitonic":
                nest = replace(nest, bitonic=True)
            else:
                nest = replace(nest, name=str(ann.payload))
        else:  # pragma: no cover - parse_annotation is exhaustive
            raise AnnotationError(f"unhandled annotation {ann.kind!r}")
    return nest
