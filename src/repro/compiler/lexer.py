"""Tokenizer for the annotated loop-nest language.

The source language is the C-like subset the paper's Figure 3 uses::

    /* dlb: array Z(R, C) distribute(BLOCK, WHOLE) */
    for i = 0, R {
        for j = 0, C { ... }
    }

``/* dlb: ... */`` comments are *annotations* and become ANNOTATION
tokens; other comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

__all__ = ["TokenKind", "Token", "tokenize", "LexError"]


class LexError(ValueError):
    """A character sequence that is not part of the language."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenKind(Enum):
    IDENT = "ident"
    NUMBER = "number"
    ANNOTATION = "annotation"
    FOR = "for"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    TIMES_ASSIGN = "*="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EOF = "eof"


_SINGLE = {
    "(": TokenKind.LPAREN, ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET, "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE, "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA, ";": TokenKind.SEMI,
    "+": TokenKind.PLUS, "-": TokenKind.MINUS,
    "*": TokenKind.STAR, "/": TokenKind.SLASH,
    "=": TokenKind.ASSIGN,
}

_COMPOUND = {"+=": TokenKind.PLUS_ASSIGN, "-=": TokenKind.MINUS_ASSIGN,
             "*=": TokenKind.TIMES_ASSIGN}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize the whole source; always ends with an EOF token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(text: str) -> None:
        nonlocal line, col
        for ch in text:
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = source[i]
        # -- whitespace ----------------------------------------------------
        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue
        # -- comments & annotations ------------------------------------------
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated comment", line, col)
            body = source[i + 2:end].strip()
            tok_line, tok_col = line, col
            advance(source[i:end + 2])
            i = end + 2
            if body.lower().startswith("dlb:"):
                yield Token(TokenKind.ANNOTATION, body[4:].strip(),
                            tok_line, tok_col)
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            end = n if end < 0 else end
            advance(source[i:end])
            i = end
            continue
        # -- compound operators ------------------------------------------------
        two = source[i:i + 2]
        if two in _COMPOUND:
            yield Token(_COMPOUND[two], two, line, col)
            advance(two)
            i += 2
            continue
        # -- numbers ------------------------------------------------------------
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            text = source[i:j]
            if text.count(".") > 1:
                raise LexError(f"bad number {text!r}", line, col)
            yield Token(TokenKind.NUMBER, text, line, col)
            advance(text)
            i = j
            continue
        # -- identifiers / keywords ---------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.FOR if text == "for" else TokenKind.IDENT
            yield Token(kind, text, line, col)
            advance(text)
            i = j
            continue
        # -- single-character tokens -----------------------------------------
        if ch in _SINGLE:
            yield Token(_SINGLE[ch], ch, line, col)
            advance(ch)
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenKind.EOF, "", line, col)
