"""Abstract syntax for the annotated loop-nest language (the mini-IR).

The compiler's intermediate form is deliberately small: expressions
over numbers, scalar variables and array references; assignment
statements (``=``, ``+=``, ``-=``, ``*=``); counted ``for`` loops
``for v = lo, hi`` iterating ``v`` over ``[lo, hi)``; and a program as
a sequence of annotated top-level loop nests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = ["Num", "Var", "ArrayRef", "BinOp", "Assign", "ForLoop",
           "LoopNest", "Program", "Expr", "Stmt", "walk_expr"]


@dataclass(frozen=True)
class Num:
    value: float

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    name: str
    indices: tuple["Expr", ...]

    def __str__(self) -> str:
        return self.name + "".join(f"[{i}]" for i in self.indices)


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Union[Num, Var, ArrayRef, BinOp]


@dataclass(frozen=True)
class Assign:
    """``target op expr;`` — target is an array reference or scalar."""

    target: Union[ArrayRef, Var]
    op: str  # "=", "+=", "-=", "*="
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} {self.op} {self.expr};"


@dataclass(frozen=True)
class ForLoop:
    """``for var = lower, upper { body }`` with ``var in [lower, upper)``."""

    var: str
    lower: Expr
    upper: Expr
    body: tuple["Stmt", ...]

    def __str__(self) -> str:
        inner = "\n".join("  " + line for stmt in self.body
                          for line in str(stmt).splitlines())
        return f"for {self.var} = {self.lower}, {self.upper} {{\n{inner}\n}}"


Stmt = Union[Assign, ForLoop]


@dataclass(frozen=True)
class ArrayDecl:
    """From ``/* dlb: array Z(R, C) distribute(BLOCK, WHOLE) */``."""

    name: str
    shape: tuple[str, ...]          # size symbols or integer literals
    distribution: tuple[str, ...]   # BLOCK | CYCLIC | WHOLE per dim

    def __post_init__(self) -> None:
        if len(self.shape) != len(self.distribution):
            raise ValueError(f"array {self.name}: shape/distribution "
                             "dimensionality mismatch")
        for d in self.distribution:
            if d not in ("BLOCK", "CYCLIC", "WHOLE"):
                raise ValueError(f"array {self.name}: bad distribution {d!r}")


@dataclass(frozen=True)
class LoopNest:
    """A top-level loop with its annotations."""

    loop: ForLoop
    load_balance: bool = False
    bitonic: bool = False
    name: str = ""


@dataclass
class Program:
    """A parsed compilation unit."""

    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    nests: list[LoopNest] = field(default_factory=list)
    n_processors: int = 0  # 0 = decided at run time

    def balanced_nests(self) -> list[LoopNest]:
        return [n for n in self.nests if n.load_balance]


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, ArrayRef):
        for idx in expr.indices:
            yield from walk_expr(idx)
