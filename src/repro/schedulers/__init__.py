"""Related-work loop schedulers (S11): the task-queue model of §2.2."""

from .affinity import run_affinity
from .policies import (
    ALL_POLICIES,
    Factoring,
    FixedSizeChunking,
    GuidedSelfScheduling,
    SafeSelfScheduling,
    SelfScheduling,
    StaticChunking,
    TrapezoidSelfScheduling,
)
from .taskqueue import ChunkPolicy, TaskQueueResult, run_task_queue

__all__ = [
    "ALL_POLICIES",
    "ChunkPolicy",
    "Factoring",
    "FixedSizeChunking",
    "GuidedSelfScheduling",
    "SafeSelfScheduling",
    "SelfScheduling",
    "StaticChunking",
    "TaskQueueResult",
    "TrapezoidSelfScheduling",
    "run_affinity",
    "run_task_queue",
]
