"""Affinity scheduling [Markatos & LeBlanc '94] (paper §2.2).

Unlike the central-queue rules, affinity scheduling keeps a per-
processor queue: everyone starts with an equal block (locality), and an
idle processor removes ``1/P`` of the iterations from the *most loaded*
processor's queue.  Grabs from the own queue are cheap; steals pay the
(remote) access cost.  Chronological simulation on the shared
workstation time math, like :func:`repro.schedulers.taskqueue.run_task_queue`.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Sequence

from ..apps.workload import LoopSpec, WorkTable
from ..machine.cluster import ClusterSpec
from ..machine.workstation import Workstation
from .taskqueue import TaskQueueResult

__all__ = ["run_affinity"]


def run_affinity(loop: LoopSpec, cluster: ClusterSpec,
                 local_fraction: float = 0.25,
                 access_cost: float = 0.0,
                 steal_cost: float = 0.0,
                 stations: Optional[Sequence[Workstation]] = None
                 ) -> TaskQueueResult:
    """Simulate affinity scheduling.

    ``local_fraction`` controls how much of the local queue a processor
    takes per grab (Markatos–LeBlanc take ``1/k`` pieces; 1.0 grabs the
    whole block at once and degenerates to a static schedule — exposed
    for the ablation).
    """
    if not 0 < local_fraction <= 1:
        raise ValueError("local_fraction must be in (0, 1]")
    if stations is None:
        stations = cluster.build()
    n = len(stations)
    table: WorkTable = loop.work_table()

    # Per-processor deques of (start, end) ranges.
    base, extra = divmod(loop.n_iterations, n)
    queues: list[list[tuple[int, int]]] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        queues.append([(start, start + size)] if size else [])
        start += size

    def queue_count(i: int) -> int:
        return sum(e - s for s, e in queues[i])

    def take(i: int, k: int, from_front: bool) -> int:
        """Remove up to ``k`` iterations from queue ``i``; return count."""
        out: list[tuple[int, int]] = []
        left = k
        while left > 0 and queues[i]:
            s, e = queues[i][0] if from_front else queues[i][-1]
            size = e - s
            if size <= left:
                out.append((s, e))
                queues[i].pop(0 if from_front else -1)
                left -= size
            else:
                if from_front:
                    out.append((s, s + left))
                    queues[i][0] = (s + left, e)
                else:
                    out.append((e - left, e))
                    queues[i][-1] = (s, e - left)
                left = 0
        return sum(e - s for s, e in out)

    result = TaskQueueResult(scheduler="affinity", finish_time=0.0,
                             n_chunks=0, queue_accesses=0)
    result.chunks_by_processor = {i: 0 for i in range(n)}
    result.iterations_by_processor = {i: 0 for i in range(n)}
    result.finish_by_processor = {i: 0.0 for i in range(n)}

    ready = [(0.0, i) for i in range(n)]
    heapq.heapify(ready)
    queue_free = 0.0
    while ready:
        t, proc = heapq.heappop(ready)
        if queue_count(proc) > 0:
            # Local grab.
            k = max(1, math.ceil(queue_count(proc) * local_fraction))
            grab_end = t + access_cost
            ranges_before = list(queues[proc])
            count = take(proc, k, from_front=True)
            work = (sum(table.range_work(s, e) for s, e in ranges_before)
                    - sum(table.range_work(s, e) for s, e in queues[proc]))
        else:
            # Steal 1/P of the most loaded processor's queue.
            victim = max(range(n), key=lambda j: (queue_count(j), -j))
            if queue_count(victim) == 0:
                result.finish_by_processor[proc] = max(
                    result.finish_by_processor[proc], t)
                continue
            grab_start = max(t, queue_free)
            grab_end = grab_start + access_cost + steal_cost
            queue_free = grab_end
            k = max(1, queue_count(victim) // n)
            ranges_before = list(queues[victim])
            count = take(victim, k, from_front=False)
            work = (sum(table.range_work(s, e) for s, e in ranges_before)
                    - sum(table.range_work(s, e) for s, e in queues[victim]))
        result.queue_accesses += 1
        done_at = stations[proc].time_to_complete(grab_end, work)
        result.n_chunks += 1
        result.chunks_by_processor[proc] += 1
        result.iterations_by_processor[proc] += count
        result.finish_by_processor[proc] = done_at
        heapq.heappush(ready, (done_at, proc))

    result.finish_time = max(result.finish_by_processor.values())
    return result
