"""Chunk-size rules from the loop-scheduling literature (paper §2.2).

Each class implements one published rule.  References follow the
paper's related-work section: self-scheduling [Tang & Yew '86],
fixed-size chunking [Kruskal & Weiss '85], guided self-scheduling
[Polychronopoulos & Kuck '87], factoring [Hummel, Schonberg & Flynn
'92], trapezoid self-scheduling [Tzen & Ni '93], and safe
self-scheduling [Liu et al. '92].
"""

from __future__ import annotations

import math

from .taskqueue import ChunkPolicy

__all__ = [
    "SelfScheduling",
    "FixedSizeChunking",
    "GuidedSelfScheduling",
    "Factoring",
    "TrapezoidSelfScheduling",
    "SafeSelfScheduling",
    "StaticChunking",
    "ALL_POLICIES",
]


class SelfScheduling(ChunkPolicy):
    """One iteration per grab: perfect balance, maximal synchronization."""

    name = "self-scheduling"

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        return 1

    def reset(self, n_iterations: int, n_processors: int) -> None:
        pass


class FixedSizeChunking(ChunkPolicy):
    """``K`` iterations per grab.

    With ``k=0`` the Kruskal–Weiss near-optimal size is used:
    ``K = ceil(N / (P * sqrt(P)))`` — a practical middle ground between
    the (environment-dependent) optimal formula and usability.
    """

    def __init__(self, k: int = 0) -> None:
        self.k = k
        self._k_eff = max(k, 1)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"chunking(K={self.k or 'auto'})"

    def reset(self, n_iterations: int, n_processors: int) -> None:
        if self.k > 0:
            self._k_eff = self.k
        else:
            self._k_eff = max(1, math.ceil(
                n_iterations / (n_processors * math.sqrt(n_processors))))

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        return self._k_eff


class GuidedSelfScheduling(ChunkPolicy):
    """``ceil(remaining / P)`` per grab — large chunks first, then tiny."""

    name = "gss"

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        return max(1, math.ceil(remaining / n_processors))

    def reset(self, n_iterations: int, n_processors: int) -> None:
        pass


class Factoring(ChunkPolicy):
    """Batched halving: each batch splits half the remaining work into
    ``P`` equal chunks."""

    name = "factoring"

    def __init__(self) -> None:
        self._in_batch = 0
        self._chunk = 1

    def reset(self, n_iterations: int, n_processors: int) -> None:
        self._in_batch = 0
        self._chunk = 1

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        if self._in_batch == 0:
            self._chunk = max(1, math.ceil(remaining / (2 * n_processors)))
            self._in_batch = n_processors
        self._in_batch -= 1
        return self._chunk


class TrapezoidSelfScheduling(ChunkPolicy):
    """Linearly decreasing chunks from ``f = N / (2P)`` down to ``l = 1``."""

    name = "tss"

    def __init__(self) -> None:
        self._first = 1.0
        self._decrement = 0.0
        self._current = 1.0

    def reset(self, n_iterations: int, n_processors: int) -> None:
        self._first = max(1.0, n_iterations / (2.0 * n_processors))
        last = 1.0
        n_steps = max(1, math.ceil(2.0 * n_iterations / (self._first + last)))
        self._decrement = (self._first - last) / max(n_steps - 1, 1)
        self._current = self._first

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        size = max(1, int(round(self._current)))
        self._current = max(1.0, self._current - self._decrement)
        return size


class SafeSelfScheduling(ChunkPolicy):
    """Static phase then dynamic: the first ``P`` grabs hand out a fixed
    ``alpha``-fraction block each; the rest self-schedule in halves."""

    name = "safe-ss"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._static = 1
        self._static_left = 0

    def reset(self, n_iterations: int, n_processors: int) -> None:
        self._static = max(1, int(self.alpha * n_iterations / n_processors))
        self._static_left = n_processors

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        if self._static_left > 0:
            self._static_left -= 1
            return self._static
        return max(1, math.ceil(remaining / (2 * n_processors)))


class StaticChunking(ChunkPolicy):
    """Equal blocks handed out once — the no-DLB baseline in queue form."""

    name = "static"

    def __init__(self) -> None:
        self._block = 1

    def reset(self, n_iterations: int, n_processors: int) -> None:
        self._block = max(1, math.ceil(n_iterations / n_processors))

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        return self._block


def ALL_POLICIES() -> list[ChunkPolicy]:
    """Fresh instances of every rule (policies are stateful)."""
    return [SelfScheduling(), FixedSizeChunking(), GuidedSelfScheduling(),
            Factoring(), TrapezoidSelfScheduling(), SafeSelfScheduling(),
            StaticChunking()]
