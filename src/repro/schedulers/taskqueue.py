"""Task-queue loop scheduling (the related work of paper §2.2).

The classic dynamic loop schedulers — self-scheduling, fixed-size
chunking, guided self-scheduling, factoring, trapezoid self-scheduling,
safe self-scheduling — all share one structure: a central queue of loop
iterations from which idle processors grab chunks; they differ only in
the chunk-size rule.  This module simulates that structure on the same
:class:`~repro.machine.workstation.Workstation` time math the DLB
system uses, so the ablation benches can compare the two models under
identical external load.

The queue is a serial resource with a per-access cost ``access_cost``:
on a shared-memory machine that is a cheap atomic operation, on a
network of workstations it is a message round-trip — which is exactly
why the paper moves away from the task-queue model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..apps.workload import LoopSpec, WorkTable
from ..machine.cluster import ClusterSpec
from ..machine.workstation import Workstation

__all__ = ["ChunkPolicy", "TaskQueueResult", "run_task_queue"]


class ChunkPolicy:
    """Chunk-size rule: how many iterations an idle processor grabs."""

    name = "abstract"

    def chunk(self, remaining: int, n_processors: int, step: int) -> int:
        """Chunk size given ``remaining`` iterations and grab count ``step``."""
        raise NotImplementedError

    def reset(self, n_iterations: int, n_processors: int) -> None:
        """Called once per run before the first grab."""


@dataclass
class TaskQueueResult:
    """Outcome of one task-queue schedule simulation."""

    scheduler: str
    finish_time: float
    n_chunks: int
    queue_accesses: int
    chunks_by_processor: dict[int, int] = field(default_factory=dict)
    iterations_by_processor: dict[int, int] = field(default_factory=dict)
    finish_by_processor: dict[int, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"{self.scheduler}: time={self.finish_time:.3f}s "
                f"chunks={self.n_chunks} accesses={self.queue_accesses}")


def run_task_queue(loop: LoopSpec, cluster: ClusterSpec,
                   policy: ChunkPolicy,
                   access_cost: float = 0.0,
                   stations: Optional[Sequence[Workstation]] = None
                   ) -> TaskQueueResult:
    """Simulate a central-queue schedule chronologically.

    Each grab serializes on the queue (cost ``access_cost``), then the
    processor computes the chunk at its load-modulated speed.  The
    simulation is exact: processors are advanced in completion-time
    order, so no events are needed.
    """
    if access_cost < 0:
        raise ValueError("access_cost must be non-negative")
    if stations is None:
        stations = cluster.build()
    n = len(stations)
    table: WorkTable = loop.work_table()
    policy.reset(loop.n_iterations, n)

    next_iter = 0                      # first unassigned iteration
    queue_free = 0.0                   # when the queue lock frees
    ready = [(0.0, i) for i in range(n)]  # (time processor becomes idle, id)
    step = 0
    result = TaskQueueResult(scheduler=policy.name, finish_time=0.0,
                             n_chunks=0, queue_accesses=0)
    result.chunks_by_processor = {i: 0 for i in range(n)}
    result.iterations_by_processor = {i: 0 for i in range(n)}
    result.finish_by_processor = {i: 0.0 for i in range(n)}

    import heapq
    heapq.heapify(ready)
    while ready:
        t, proc = heapq.heappop(ready)
        if next_iter >= loop.n_iterations:
            result.finish_by_processor[proc] = max(
                result.finish_by_processor[proc], t)
            continue
        # Serialize on the queue.
        grab_start = max(t, queue_free)
        grab_end = grab_start + access_cost
        queue_free = grab_end
        result.queue_accesses += 1
        remaining = loop.n_iterations - next_iter
        size = max(1, min(policy.chunk(remaining, n, step), remaining))
        step += 1
        start, next_iter = next_iter, next_iter + size
        work = table.range_work(start, start + size)
        done_at = stations[proc].time_to_complete(grab_end, work)
        result.n_chunks += 1
        result.chunks_by_processor[proc] += 1
        result.iterations_by_processor[proc] += size
        result.finish_by_processor[proc] = done_at
        heapq.heappush(ready, (done_at, proc))

    result.finish_time = max(result.finish_by_processor.values())
    return result
