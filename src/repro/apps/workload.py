"""Workload descriptions: the paper's *program parameters* (§4.1).

A :class:`LoopSpec` captures everything the run-time system and the
analytical model need to know about one parallel loop: the number of
iterations ``I``, the time per iteration on the base processor ``T_j``
(uniform scalar or per-iteration array), the per-iteration data
communication ``DC`` in bytes, and the intrinsic communication ``IC``
(zero for both of the paper's applications — they are doall loops).

:class:`WorkTable` is the prefix-sum machinery that converts between
iteration counts and work (base-processor seconds) for non-uniform
loops; the uniform case has O(1) fast paths.  :class:`ApplicationSpec`
groups the loops of a program with the sequential stages between them
(TRFD's transpose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["WorkTable", "LoopSpec", "SequentialStage", "ApplicationSpec"]


class WorkTable:
    """Iteration-cost table with count/work conversions.

    All costs are seconds on the base (speed 1, unloaded) processor.
    """

    def __init__(self, costs: Union[float, np.ndarray, Sequence[float]],
                 n_iterations: Optional[int] = None) -> None:
        if np.isscalar(costs):
            if n_iterations is None:
                raise ValueError("uniform cost needs n_iterations")
            if float(costs) <= 0:
                raise ValueError("iteration cost must be positive")
            if n_iterations < 1:
                raise ValueError("need at least one iteration")
            self.n = int(n_iterations)
            self.uniform_cost: Optional[float] = float(costs)
            self._cum: Optional[np.ndarray] = None
        else:
            arr = np.asarray(costs, dtype=np.float64)
            if arr.ndim != 1 or arr.size == 0:
                raise ValueError("costs must be a non-empty 1-D array")
            if (arr <= 0).any():
                raise ValueError("iteration costs must be positive")
            if n_iterations is not None and n_iterations != arr.size:
                raise ValueError("n_iterations disagrees with costs array")
            self.n = int(arr.size)
            self.uniform_cost = None
            self._cum = np.concatenate([[0.0], np.cumsum(arr)])

    @property
    def uniform(self) -> bool:
        return self.uniform_cost is not None

    @property
    def total_work(self) -> float:
        if self.uniform_cost is not None:
            return self.n * self.uniform_cost
        return float(self._cum[-1])

    def cost(self, j: int) -> float:
        """Cost of iteration ``j`` (0-based)."""
        if not 0 <= j < self.n:
            raise IndexError(f"iteration {j} out of range")
        if self.uniform_cost is not None:
            return self.uniform_cost
        return float(self._cum[j + 1] - self._cum[j])

    def range_work(self, start: int, end: int) -> float:
        """Work of iterations ``[start, end)``."""
        if not 0 <= start <= end <= self.n:
            raise IndexError(f"range [{start}, {end}) out of bounds")
        if self.uniform_cost is not None:
            return (end - start) * self.uniform_cost
        return float(self._cum[end] - self._cum[start])

    def count_for_work(self, start: int, work: float, end: Optional[int] = None,
                       round_up: bool = True) -> int:
        """Iterations from ``start`` covering ``work`` seconds of cost.

        With ``round_up`` (the default) the count is the smallest ``k``
        whose cumulative cost reaches ``work`` — the "finish the current
        iteration before responding to the interrupt" rule.  With
        ``round_up=False`` it is the largest ``k`` fully covered.
        The result is clipped to ``[0, (end or n) - start]``.
        """
        if end is None:
            end = self.n
        if not 0 <= start <= end <= self.n:
            raise IndexError("bad range")
        limit = end - start
        if work <= 0:
            return 0
        if self.uniform_cost is not None:
            if round_up:
                k = int(np.ceil(work / self.uniform_cost - 1e-12))
            else:
                k = int(np.floor(work / self.uniform_cost + 1e-12))
            return min(max(k, 0), limit)
        target = self._cum[start] + work
        eps = 1e-12 * max(1.0, abs(target))
        if round_up:
            idx = int(np.searchsorted(self._cum, target - eps, side="left"))
            k = idx - start
        else:
            idx = int(np.searchsorted(self._cum, target + eps, side="right"))
            k = idx - 1 - start
        return min(max(k, 0), limit)


@dataclass(frozen=True)
class LoopSpec:
    """One load-balanced parallel loop (the unit the DLB system schedules).

    Attributes
    ----------
    name:
        Identifier used in reports ("mxm", "trfd-L1", ...).
    n_iterations:
        ``I`` — iterations of the parallelized (outermost) loop.
    iteration_time:
        ``T_j`` in seconds on the base processor: a scalar for uniform
        loops or an array of length ``n_iterations``.
    dc_bytes:
        ``DC`` — bytes of array data that migrate with one iteration.
    ic_bytes:
        ``IC`` — intrinsic communication per iteration (0 for doall).
    input_bytes / result_bytes / replicated_bytes:
        Scatter / gather sizing: per-iteration input rows, per-iteration
        result rows, and per-processor replicated arrays.
    """

    name: str
    n_iterations: int
    iteration_time: Union[float, tuple[float, ...]]
    dc_bytes: int
    ic_bytes: int = 0
    input_bytes: int = 0
    result_bytes: int = 0
    replicated_bytes: int = 0

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ValueError("loop must have at least one iteration")
        if self.dc_bytes < 0 or self.ic_bytes < 0:
            raise ValueError("communication sizes must be non-negative")

    @property
    def uniform(self) -> bool:
        return np.isscalar(self.iteration_time)

    def work_table(self) -> WorkTable:
        if self.uniform:
            return WorkTable(float(self.iteration_time), self.n_iterations)
        return WorkTable(np.asarray(self.iteration_time, dtype=np.float64))

    @property
    def total_work(self) -> float:
        if self.uniform:
            return self.n_iterations * float(self.iteration_time)
        return float(np.sum(self.iteration_time))

    @property
    def mean_iteration_time(self) -> float:
        return self.total_work / self.n_iterations


@dataclass(frozen=True)
class SequentialStage:
    """A sequential (master-only) stage between loops, e.g. a transpose.

    ``compute_seconds`` is base-processor time on the master;
    ``gather_bytes``/``scatter_bytes`` are the data motion the stage
    implies when array staging is enabled.
    """

    name: str
    compute_seconds: float = 0.0
    gather_bytes: int = 0
    scatter_bytes: int = 0


@dataclass(frozen=True)
class ApplicationSpec:
    """A program: an alternating pipeline of loops and sequential stages."""

    name: str
    stages: tuple[Union[LoopSpec, SequentialStage], ...]
    description: str = ""

    def loops(self) -> list[LoopSpec]:
        return [s for s in self.stages if isinstance(s, LoopSpec)]

    def loop(self, name: str) -> LoopSpec:
        for s in self.stages:
            if isinstance(s, LoopSpec) and s.name == name:
                return s
        raise KeyError(f"no loop named {name!r} in {self.name}")
