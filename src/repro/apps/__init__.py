"""Applications (S10): workload specs for MXM, TRFD, and generic loops."""

from .mxm import (
    BASE_OP_SECONDS,
    ELEMENT_BYTES,
    MxmConfig,
    PAPER_MXM_P16,
    PAPER_MXM_P4,
    mxm_application,
    mxm_loop,
)
from .trfd import (
    PAPER_TRFD_N,
    TrfdConfig,
    bitonic_pair_costs,
    loop2_iteration_ops,
    transpose_stage,
    trfd_application,
    trfd_loop1,
    trfd_loop2,
)
from .workload import ApplicationSpec, LoopSpec, SequentialStage, WorkTable

__all__ = [
    "ApplicationSpec",
    "BASE_OP_SECONDS",
    "ELEMENT_BYTES",
    "LoopSpec",
    "MxmConfig",
    "PAPER_MXM_P16",
    "PAPER_MXM_P4",
    "PAPER_TRFD_N",
    "SequentialStage",
    "TrfdConfig",
    "WorkTable",
    "bitonic_pair_costs",
    "loop2_iteration_ops",
    "mxm_application",
    "mxm_loop",
    "transpose_stage",
    "trfd_application",
    "trfd_loop1",
    "trfd_loop2",
]
