"""TRFD workload (paper §6.3) — Perfect Benchmarks two-electron integral
transformation, reduced to the loop/work/data structure the paper gives.

Structure: two main computation loop nests with an intervening transpose
that is sequentialized on the master.  The single major array has size
``M x M`` with ``M = n(n+1)/2`` and is distributed in column blocks, so
the data communication per migrated iteration is one column — ``M``
elements ("DC is simply the row size").

* **Loop 1** is uniform: ``M`` iterations, each costing
  ``n^3 + 3n^2 + n`` basic operations.
* **Loop 2** is triangular: iteration ``j`` (1-based) costs
  ``n^3 + 3n^2 + n(1 + i/2 - i^2/2) + (i - i^2)`` operations with
  ``i = (1 + sqrt(8j - 7)) / 2``.  The paper transforms it into a
  (near-)uniform loop with the **bitonic scheduling** technique of
  Cierniak/Li/Zaki: iterations ``j`` and ``M - j + 1`` are combined, for
  ``ceil(M/2)`` scheduled iterations of roughly constant cost — loop 2
  then has almost double the per-iteration work of loop 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mxm import BASE_OP_SECONDS, ELEMENT_BYTES
from .workload import ApplicationSpec, LoopSpec, SequentialStage

__all__ = ["TrfdConfig", "trfd_loop1", "trfd_loop2", "trfd_application",
           "loop2_iteration_ops", "bitonic_pair_costs", "PAPER_TRFD_N"]

#: The paper's input parameter values (array sizes 465 / 820 / 1275).
PAPER_TRFD_N = (30, 40, 50)


@dataclass(frozen=True)
class TrfdConfig:
    """TRFD input parameter ``n`` and derived sizes."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("n must be at least 2")

    @property
    def m(self) -> int:
        """Array dimension ``M = n(n+1)/2`` (also loop-1 trip count)."""
        return self.n * (self.n + 1) // 2

    @property
    def label(self) -> str:
        return f"N={self.n} ({self.m})"

    @property
    def loop1_iteration_ops(self) -> int:
        """Uniform loop-1 work: ``n^3 + 3n^2 + n`` basic operations."""
        return self.n ** 3 + 3 * self.n ** 2 + self.n

    @property
    def dc_bytes(self) -> int:
        """One migrated column: ``M`` elements."""
        return self.m * ELEMENT_BYTES


def loop2_iteration_ops(config: TrfdConfig) -> np.ndarray:
    """Raw (untransformed) triangular loop-2 costs for ``j = 1..M``.

    Implements the paper's formula verbatim; the result is a decreasing
    sequence from the loop-1 cost down to roughly half of it.
    """
    n = config.n
    j = np.arange(1, config.m + 1, dtype=np.float64)
    i = (1.0 + np.sqrt(8.0 * j - 7.0)) / 2.0
    ops = (n ** 3 + 3.0 * n ** 2
           + n * (1.0 + i / 2.0 - i ** 2 / 2.0)
           + (i - i ** 2))
    return np.maximum(ops, 1.0)


def bitonic_pair_costs(costs: np.ndarray) -> np.ndarray:
    """Bitonic scheduling transform: combine iterations ``j`` and
    ``M - j + 1`` into one scheduled iteration (paper §6.3).

    For odd ``M`` the middle iteration stays unpaired, giving
    ``ceil(M/2)`` scheduled iterations (the paper's ``n(n+1)/4``).
    """
    m = costs.size
    half = m // 2
    paired = costs[:half] + costs[::-1][:half]
    if m % 2:
        paired = np.concatenate([paired, costs[half:half + 1]])
    return paired


def trfd_loop1(config: TrfdConfig,
               op_seconds: float = BASE_OP_SECONDS) -> LoopSpec:
    """Loop 1: uniform, ``M`` iterations."""
    return LoopSpec(
        name="trfd-L1",
        n_iterations=config.m,
        iteration_time=config.loop1_iteration_ops * op_seconds,
        dc_bytes=config.dc_bytes,
        ic_bytes=0,
        input_bytes=config.dc_bytes,
        result_bytes=config.dc_bytes,
    )


def trfd_loop2(config: TrfdConfig, op_seconds: float = BASE_OP_SECONDS,
               bitonic: bool = True) -> LoopSpec:
    """Loop 2: triangular; bitonic-transformed to near-uniform by default.

    ``bitonic=False`` keeps the raw decreasing costs — used by the
    ablation that measures what the transform buys.
    """
    raw = loop2_iteration_ops(config)
    if bitonic:
        costs = bitonic_pair_costs(raw) * op_seconds
        dc = 2 * config.dc_bytes  # a scheduled iteration carries two columns
    else:
        costs = raw * op_seconds
        dc = config.dc_bytes
    return LoopSpec(
        name="trfd-L2",
        n_iterations=costs.size,
        iteration_time=tuple(float(c) for c in costs),
        dc_bytes=dc,
        ic_bytes=0,
        input_bytes=dc,
        result_bytes=dc,
    )


def transpose_stage(config: TrfdConfig,
                    op_seconds: float = BASE_OP_SECONDS) -> SequentialStage:
    """The sequentialized transpose between the two loops.

    All processors send their column blocks to the master, the master
    transposes (``M^2`` element moves), then loop 2 starts from a fresh
    equal distribution.
    """
    m2 = config.m * config.m
    return SequentialStage(
        name="trfd-transpose",
        compute_seconds=0.5 * m2 * op_seconds,
        gather_bytes=m2 * ELEMENT_BYTES,
        scatter_bytes=m2 * ELEMENT_BYTES,
    )


def trfd_application(config: TrfdConfig,
                     op_seconds: float = BASE_OP_SECONDS,
                     bitonic: bool = True) -> ApplicationSpec:
    """The full TRFD pipeline: loop 1, transpose, loop 2."""
    return ApplicationSpec(
        name=f"TRFD({config.label})",
        stages=(
            trfd_loop1(config, op_seconds),
            transpose_stage(config, op_seconds),
            trfd_loop2(config, op_seconds, bitonic=bitonic),
        ),
        description="Two-electron integral transformation (Perfect suite)",
    )
