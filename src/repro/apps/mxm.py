"""Matrix multiplication workload (paper §6.2).

``Z = X * Y`` with ``Z = R x C``, ``X = R x R2``, ``Y = R2 x C``.  The
outermost loop over the ``R`` rows is parallelized: rows of ``Z`` and
``X`` are block-distributed, ``Y`` is replicated.  Per the paper:

* work per iteration is uniform, ``W = C * R2`` basic operations;
* only rows of ``X`` migrate on redistribution, and the paper gives the
  per-iteration data communication as ``DC = N_X2 = C`` elements;
* there is no intrinsic communication (``IC = 0``).

``BASE_OP_SECONDS`` calibrates one basic operation (a multiply-add with
its loads) on the base processor; the default models a mid-90s
workstation executing ~10 M basic ops/s, giving total runtimes of the
same order as the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .workload import ApplicationSpec, LoopSpec

__all__ = ["MxmConfig", "mxm_loop", "mxm_application", "BASE_OP_SECONDS",
           "ELEMENT_BYTES", "PAPER_MXM_P4", "PAPER_MXM_P16"]

#: Seconds per basic operation on the base processor (calibration).
BASE_OP_SECONDS = 1.0e-7
#: Array element size in bytes (C doubles).
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class MxmConfig:
    """Data-size parameters of one MXM experiment."""

    r: int
    c: int
    r2: int

    def __post_init__(self) -> None:
        if min(self.r, self.c, self.r2) < 1:
            raise ValueError("matrix dimensions must be positive")

    @property
    def label(self) -> str:
        return f"R={self.r},C={self.c},R2={self.r2}"

    @property
    def work_per_iteration_ops(self) -> int:
        """Basic operations per outer iteration: ``C * R2`` (§6.2)."""
        return self.c * self.r2

    @property
    def dc_bytes(self) -> int:
        """Bytes migrating with one iteration: ``DC = C`` elements (§6.2)."""
        return self.c * ELEMENT_BYTES


def mxm_loop(config: MxmConfig,
             op_seconds: float = BASE_OP_SECONDS) -> LoopSpec:
    """The single MXM computation loop as a :class:`LoopSpec`."""
    return LoopSpec(
        name="mxm",
        n_iterations=config.r,
        iteration_time=config.work_per_iteration_ops * op_seconds,
        dc_bytes=config.dc_bytes,
        ic_bytes=0,
        # A row of X (the migrating input) and a row of Z (the result).
        input_bytes=config.r2 * ELEMENT_BYTES,
        result_bytes=config.c * ELEMENT_BYTES,
        replicated_bytes=config.r2 * config.c * ELEMENT_BYTES,
    )


def mxm_application(config: MxmConfig,
                    op_seconds: float = BASE_OP_SECONDS) -> ApplicationSpec:
    """MXM as a one-stage application."""
    return ApplicationSpec(
        name=f"MXM({config.label})",
        stages=(mxm_loop(config, op_seconds),),
        description="Dense matrix multiply, outer loop parallelized",
    )


#: The paper's P=4 data sizes (Figure 5): R/proc of 100 and 200.
PAPER_MXM_P4 = (
    MxmConfig(400, 400, 400),
    MxmConfig(400, 800, 400),
    MxmConfig(800, 400, 400),
    MxmConfig(800, 800, 400),
)

#: The paper's P=16 data sizes (Figure 6).
PAPER_MXM_P16 = (
    MxmConfig(1600, 400, 400),
    MxmConfig(1600, 800, 400),
    MxmConfig(3200, 400, 400),
    MxmConfig(3200, 800, 400),
)
