"""Capacity-limited resources for the simulation kernel.

:class:`Resource` models mutual exclusion with FIFO queueing — used for
the shared Ethernet bus and per-host network interfaces.  Requests are
events; the canonical usage inside a simulated process is::

    req = bus.request()
    yield req
    yield env.timeout(transmit_time)
    bus.release(req)

or, equivalently, ``yield from bus.use(transmit_time)``.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from .engine import Environment, Event
from .errors import SimulationError

__all__ = ["Resource"]


class _Request(Event):
    __slots__ = ()


class Resource:
    """A FIFO resource with integer capacity (default: mutual exclusion)."""

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[_Request] = set()
        self._waiting: deque[_Request] = deque()
        # -- statistics (for contention analysis / tests) -----------------
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._request_times: dict[int, float] = {}

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires once the resource is acquired."""
        req = _Request(self.env)
        self.total_requests += 1
        if len(self._users) < self.capacity:
            # Granted at once: zero wait, so skip the timestamp churn —
            # this is the overwhelmingly common case on the hot path.
            self._users.add(req)
            req.succeed()
        else:
            self._request_times[id(req)] = self.env.now
            self._waiting.append(req)
        return req

    def release(self, request: Event) -> None:
        """Release a previously granted request."""
        if request in self._users:
            self._users.remove(request)
        else:
            # Allow cancelling a queued request.
            try:
                self._waiting.remove(request)  # type: ignore[arg-type]
                self._request_times.pop(id(request), None)
                return
            except ValueError:
                raise SimulationError("release of a request that was never granted")
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            self._account_wait(nxt)
            nxt.succeed()

    def _account_wait(self, req: _Request) -> None:
        start = self._request_times.pop(id(req), None)
        if start is not None:
            self.total_wait_time += self.env.now - start

    def use(self, hold_time: float) -> Generator[Event, None, None]:
        """Acquire, hold for ``hold_time`` simulated seconds, release."""
        req = self.request()
        yield req
        try:
            yield self.env.timeout(hold_time)
        finally:
            self.release(req)
