"""Discrete-event simulation kernel (substrate S1).

Everything in :mod:`repro` that "takes time" — loop iterations slowed by
external load, PVM messages crossing the Ethernet bus, the central load
balancer serving one group after another — runs as processes on this
kernel.  See :mod:`repro.simulation.engine` for the programming model.
"""

from .engine import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Process,
    Timeout,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from .errors import (
    FaultError,
    Interrupt,
    MessageLostError,
    NodeCrashedError,
    RetryExhaustedError,
    ScheduleInPastError,
    SimulationError,
    StopProcess,
    UnrecoverableFaultError,
)
from .mailbox import EpochBoundFilter, Mailbox, SlotFilter
from .resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "EpochBoundFilter",
    "Event",
    "FaultError",
    "Interrupt",
    "Mailbox",
    "MessageLostError",
    "NodeCrashedError",
    "Process",
    "Resource",
    "RetryExhaustedError",
    "ScheduleInPastError",
    "SimulationError",
    "SlotFilter",
    "StopProcess",
    "Timeout",
    "UnrecoverableFaultError",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
]
