"""FIFO mailboxes with predicate matching for simulated message passing.

A :class:`Mailbox` decouples senders from receivers: ``put`` never blocks
(workstation memory is not modeled as a bottleneck), while ``get`` returns
an event that fires when a matching item is available.  ``get`` accepts an
optional predicate so a receiver can wait for, e.g., only messages of a
given tag while unrelated traffic queues up — this is how the DLB
protocols wait for "the instruction for epoch j" while stray interrupts
for the same epoch sit in the box.

A ``notify`` hook fires on every deposit; the node runtime uses it to
interrupt a computing process when a synchronization interrupt arrives.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .engine import Environment, Event

__all__ = ["Mailbox"]

Predicate = Callable[[Any], bool]


class _GetRequest(Event):
    __slots__ = ("predicate",)

    def __init__(self, env: Environment, predicate: Optional[Predicate]) -> None:
        super().__init__(env)
        self.predicate = predicate


class Mailbox:
    """An unbounded FIFO store of items with predicate-filtered gets."""

    def __init__(self, env: Environment, name: str = "mailbox") -> None:
        self.env = env
        self.name = name
        self.items: deque[Any] = deque()
        self._getters: list[_GetRequest] = []
        self.notify: Optional[Callable[[Any], None]] = None
        self.put_count = 0
        self.got_count = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the first matching waiter, if any."""
        self.put_count += 1
        for idx, getter in enumerate(self._getters):
            if getter.predicate is None or getter.predicate(item):
                del self._getters[idx]
                self.got_count += 1
                getter.succeed(item)
                break
        else:
            self.items.append(item)
        if self.notify is not None:
            self.notify(item)

    def get(self, predicate: Optional[Predicate] = None) -> Event:
        """Return an event that fires with the first matching item.

        Items are matched in FIFO order; a matched item is removed from
        the box.  If no item currently matches, the request queues until
        a matching ``put``.
        """
        request = _GetRequest(self.env, predicate)
        for idx, item in enumerate(self.items):
            if predicate is None or predicate(item):
                del self.items[idx]
                self.got_count += 1
                request.succeed(item)
                return request
        self._getters.append(request)
        return request

    def cancel(self, request: Event) -> None:
        """Withdraw a pending :meth:`get` request.

        Used by timed receives: when the timeout wins the race, the
        getter must be removed so it does not silently consume a later
        matching deposit.  Cancelling a request that already matched (or
        was never queued) is a no-op.
        """
        for idx, getter in enumerate(self._getters):
            if getter is request:
                del self._getters[idx]
                return

    def cancel_all(self) -> None:
        """Withdraw every pending getter (the owner died mid-receive).

        Without this, a stopped process's queued get request would still
        match-and-consume the next deposit, delivering the item to a
        callback-less event — i.e. silently destroying it.
        """
        self._getters.clear()

    def peek(self, predicate: Optional[Predicate] = None) -> Optional[Any]:
        """Return (without removing) the first matching queued item."""
        for item in self.items:
            if predicate is None or predicate(item):
                return item
        return None

    def take(self, predicate: Optional[Predicate] = None) -> Optional[Any]:
        """Remove and return the first matching queued item, or ``None``.

        Unlike :meth:`get` this never blocks and never creates an event;
        it is the non-blocking poll used at iteration boundaries.
        """
        for idx, item in enumerate(self.items):
            if predicate is None or predicate(item):
                del self.items[idx]
                self.got_count += 1
                return item
        return None

    def drain(self, predicate: Optional[Predicate] = None) -> list[Any]:
        """Remove and return all currently queued matching items."""
        kept: deque[Any] = deque()
        out: list[Any] = []
        for item in self.items:
            if predicate is None or predicate(item):
                out.append(item)
            else:
                kept.append(item)
        self.items = kept
        self.got_count += len(out)
        return out
