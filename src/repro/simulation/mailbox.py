"""Slotted mailboxes with predicate matching for simulated message passing.

A :class:`Mailbox` decouples senders from receivers: ``put`` never blocks
(workstation memory is not modeled as a bottleneck), while ``get`` returns
an event that fires when a matching item is available.  ``get`` accepts an
optional predicate so a receiver can wait for, e.g., only messages of a
given tag while unrelated traffic queues up — this is how the DLB
protocols wait for "the instruction for epoch j" while stray interrupts
for the same epoch sit in the box.

Storage is *slotted*: queued items are bucketed by ``(tag, epoch)`` (both
read off the item, ``None`` when absent) with a global arrival sequence
number preserving FIFO order across slots.  A structured
:class:`SlotFilter` — what the message layer passes for tag/epoch
receives — resolves to a single slot, so the common protocol receive is
an O(1) deque pop instead of a predicate scan over every queued item.
An :class:`EpochBoundFilter` (what ``stale_predicate`` builds) matches
whole slots by key, so draining superseded-epoch traffic drops entire
buckets without touching individual items.  Plain callables still work
everywhere a predicate is accepted and fall back to a seq-ordered scan.

A ``notify`` hook fires on every deposit; the node runtime uses it to
interrupt a computing process when a synchronization interrupt arrives.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .engine import Environment, Event

__all__ = ["Mailbox", "SlotFilter", "EpochBoundFilter"]

Predicate = Callable[[Any], bool]


class SlotFilter:
    """Structured predicate: exact tag and/or epoch plus an optional match.

    Carrying ``(tag, epoch)`` as data instead of closing over them lets
    the mailbox jump straight to the matching slot rather than
    predicate-scanning every queued item.  Instances are callable with
    the same semantics as the closure they replace, so they behave as
    plain predicates anywhere one is expected (waiter wake-up on ``put``,
    the thread backend's lock-based mailboxes).
    """

    __slots__ = ("tag", "epoch", "match")

    def __init__(self, tag: Any = None, epoch: Optional[int] = None,
                 match: Optional[Predicate] = None) -> None:
        self.tag = tag
        self.epoch = epoch
        self.match = match

    def __call__(self, item: Any) -> bool:
        if self.tag is not None and getattr(item, "tag", None) is not self.tag:
            return False
        if self.epoch is not None and getattr(item, "epoch", None) != self.epoch:
            return False
        match = self.match
        return match is None or match(item)


class EpochBoundFilter:
    """Predicate matching items of the given tags below an epoch bound.

    The slot-level test :meth:`covers_slot` decides for a whole
    ``(tag, epoch)`` bucket at once, which is what makes stale-epoch
    drains O(slots) instead of O(items).
    """

    __slots__ = ("max_epoch", "tags", "inclusive")

    def __init__(self, max_epoch: int, tags: Optional[tuple] = None,
                 *, inclusive: bool = False) -> None:
        self.max_epoch = max_epoch
        self.tags = tags
        self.inclusive = inclusive

    def covers_slot(self, key: tuple) -> bool:
        tag, epoch = key
        if not isinstance(epoch, int):
            return False
        if self.tags is not None and tag not in self.tags:
            return False
        return epoch <= self.max_epoch if self.inclusive else epoch < self.max_epoch

    def __call__(self, item: Any) -> bool:
        if self.tags is not None and getattr(item, "tag", None) not in self.tags:
            return False
        epoch = getattr(item, "epoch", None)
        if not isinstance(epoch, int):
            return False
        return epoch <= self.max_epoch if self.inclusive else epoch < self.max_epoch


class _GetRequest(Event):
    __slots__ = ("predicate",)

    def __init__(self, env: Environment, predicate: Optional[Predicate]) -> None:
        super().__init__(env)
        self.predicate = predicate


def _slot_key(item: Any) -> tuple:
    return (getattr(item, "tag", None), getattr(item, "epoch", None))


class Mailbox:
    """An unbounded FIFO store of items with predicate-filtered gets."""

    def __init__(self, env: Environment, name: str = "mailbox") -> None:
        self.env = env
        self.name = name
        # (tag, epoch) -> deque[(seq, item)]; seq is a global arrival
        # counter, so merging slot heads by seq recovers overall FIFO.
        self._slots: dict[tuple, deque] = {}
        self._seq = 0
        self._count = 0
        self._getters: list[_GetRequest] = []
        self.notify: Optional[Callable[[Any], None]] = None
        self.put_count = 0
        self.got_count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def items(self) -> list[Any]:
        """Queued items in arrival order (a fresh list, not live storage)."""
        entries = [e for dq in self._slots.values() for e in dq]
        entries.sort()
        return [item for _seq, item in entries]

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the first matching waiter, if any."""
        self.put_count += 1
        for idx, getter in enumerate(self._getters):
            pred = getter.predicate
            if pred is None or pred(item):
                del self._getters[idx]
                self.got_count += 1
                getter.succeed(item)
                break
        else:
            self._seq = seq = self._seq + 1
            key = _slot_key(item)
            dq = self._slots.get(key)
            if dq is None:
                dq = self._slots[key] = deque()
            dq.append((seq, item))
            self._count += 1
        if self.notify is not None:
            self.notify(item)

    # -- matching core ---------------------------------------------------
    def _find(self, predicate: Optional[Predicate]):
        """Locate the seq-oldest matching item: (key, deque, index, item)."""
        slots = self._slots
        if type(predicate) is SlotFilter:
            tag, epoch, match = predicate.tag, predicate.epoch, predicate.match
            if tag is not None and epoch is not None:
                key = (tag, epoch)
                dq = slots.get(key)
                if dq is None:
                    return None
                if match is None:
                    return (key, dq, 0, dq[0][1])
                for idx, (_seq, item) in enumerate(dq):
                    if match(item):
                        return (key, dq, idx, item)
                return None
            candidates = [(k, dq) for k, dq in slots.items()
                          if (tag is None or k[0] is tag)
                          and (epoch is None or k[1] == epoch)]
            predicate = match
        else:
            candidates = slots.items()
        best = None  # (seq, key, deque, index, item)
        for key, dq in candidates:
            first_seq = dq[0][0]
            if best is not None and first_seq > best[0]:
                continue  # even the oldest entry here is newer
            if predicate is None:
                best = (first_seq, key, dq, 0, dq[0][1])
                continue
            for idx, (seq, item) in enumerate(dq):
                if best is not None and seq > best[0]:
                    break
                if predicate(item):
                    best = (seq, key, dq, idx, item)
                    break
        if best is None:
            return None
        return best[1:]

    def _remove(self, key: tuple, dq: deque, idx: int) -> None:
        if idx == 0:
            dq.popleft()
        else:
            del dq[idx]
        if not dq:
            del self._slots[key]
        self._count -= 1
        self.got_count += 1

    # -- receiving -------------------------------------------------------
    def get(self, predicate: Optional[Predicate] = None) -> Event:
        """Return an event that fires with the first matching item.

        Items are matched in FIFO order; a matched item is removed from
        the box.  If no item currently matches, the request queues until
        a matching ``put``.
        """
        request = _GetRequest(self.env, predicate)
        found = self._find(predicate)
        if found is not None:
            key, dq, idx, item = found
            self._remove(key, dq, idx)
            request.succeed(item)
            return request
        self._getters.append(request)
        return request

    def cancel(self, request: Event) -> None:
        """Withdraw a pending :meth:`get` request.

        Used by timed receives: when the timeout wins the race, the
        getter must be removed so it does not silently consume a later
        matching deposit.  Cancelling a request that already matched (or
        was never queued) is a no-op.
        """
        for idx, getter in enumerate(self._getters):
            if getter is request:
                del self._getters[idx]
                return

    def cancel_all(self) -> None:
        """Withdraw every pending getter (the owner died mid-receive).

        Without this, a stopped process's queued get request would still
        match-and-consume the next deposit, delivering the item to a
        callback-less event — i.e. silently destroying it.
        """
        self._getters.clear()

    def peek(self, predicate: Optional[Predicate] = None) -> Optional[Any]:
        """Return (without removing) the first matching queued item."""
        found = self._find(predicate)
        return found[3] if found is not None else None

    def take(self, predicate: Optional[Predicate] = None) -> Optional[Any]:
        """Remove and return the first matching queued item, or ``None``.

        Unlike :meth:`get` this never blocks and never creates an event;
        it is the non-blocking poll used at iteration boundaries.
        """
        found = self._find(predicate)
        if found is None:
            return None
        key, dq, idx, item = found
        self._remove(key, dq, idx)
        return item

    def drain(self, predicate: Optional[Predicate] = None) -> list[Any]:
        """Remove and return all currently queued matching items."""
        slots = self._slots
        removed: list[tuple] = []
        if predicate is None:
            for dq in slots.values():
                removed.extend(dq)
            slots.clear()
        elif isinstance(predicate, EpochBoundFilter):
            # The slot key decides for every item in the bucket at once.
            for key in [k for k in slots if predicate.covers_slot(k)]:
                removed.extend(slots.pop(key))
        else:
            for key in list(slots):
                dq = slots[key]
                kept: deque = deque()
                for entry in dq:
                    if predicate(entry[1]):
                        removed.append(entry)
                    else:
                        kept.append(entry)
                if len(kept) != len(dq):
                    if kept:
                        slots[key] = kept
                    else:
                        del slots[key]
        removed.sort()
        self._count -= len(removed)
        self.got_count += len(removed)
        return [item for _seq, item in removed]
