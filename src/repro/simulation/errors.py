"""Exception types raised by the discrete-event simulation kernel.

The kernel distinguishes three failure families:

* :class:`SimulationError` — programming errors in the use of the kernel
  (scheduling into the past, re-triggering events, ...).
* :class:`Interrupt` — thrown *into* a simulated process by
  :meth:`repro.simulation.engine.Process.interrupt`; carries an arbitrary
  ``cause`` so protocols can distinguish e.g. a DLB synchronization
  interrupt from a CPU-steal notification.
* :class:`StopProcess` — internal sentinel used to abort a process from
  the outside without treating it as a failure.
"""

from __future__ import annotations

from typing import Any

__all__ = ["SimulationError", "ScheduleInPastError", "Interrupt", "StopProcess"]


class SimulationError(RuntimeError):
    """A misuse of the simulation kernel (not a modeled failure)."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""

    def __init__(self, now: float, when: float) -> None:
        super().__init__(f"cannot schedule at t={when!r} before now={now!r}")
        self.now = now
        self.when = when


class Interrupt(Exception):
    """Thrown into a process by ``Process.interrupt(cause)``.

    Attributes
    ----------
    cause:
        The object passed to ``interrupt``; by convention a short string or
        a message instance describing why the process was interrupted.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class StopProcess(Exception):
    """Internal sentinel: terminate a process without error."""
