"""Exception types raised by the discrete-event simulation kernel.

The kernel distinguishes two *families* of exceptional condition:

* **Kernel-misuse errors** (:class:`SimulationError` and subclasses) —
  programming errors in the use of the kernel: scheduling into the
  past, re-triggering events, yielding non-events.  These indicate a
  bug in the caller and should never be caught by protocol code.
* **Modeled failures** (:class:`FaultError` and subclasses) — events
  that the simulation *deliberately models*: a workstation crashing, a
  message being lost, a peer exceeding its retry budget.  These are
  part of the fault model (see ``docs/FAULT_MODEL.md``) and are raised,
  caught and recovered from by the fault-tolerant runtime in
  :mod:`repro.faults` and :mod:`repro.runtime`.

Two further control-flow exceptions complete the picture:

* :class:`Interrupt` — thrown *into* a simulated process by
  :meth:`repro.simulation.engine.Process.interrupt`; carries an arbitrary
  ``cause`` so protocols can distinguish e.g. a DLB synchronization
  interrupt from a CPU-steal notification.
* :class:`StopProcess` — internal sentinel used to abort a process from
  the outside without treating it as a failure (this is also how an
  injected node crash halts the victim's generator).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SimulationError",
    "ScheduleInPastError",
    "Interrupt",
    "StopProcess",
    "FaultError",
    "NodeCrashedError",
    "MessageLostError",
    "RetryExhaustedError",
    "UnrecoverableFaultError",
]


class SimulationError(RuntimeError):
    """A misuse of the simulation kernel (not a modeled failure)."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""

    def __init__(self, now: float, when: float) -> None:
        super().__init__(f"cannot schedule at t={when!r} before now={now!r}")
        self.now = now
        self.when = when


class Interrupt(Exception):
    """Thrown into a process by ``Process.interrupt(cause)``.

    Attributes
    ----------
    cause:
        The object passed to ``interrupt``; by convention a short string or
        a message instance describing why the process was interrupted.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class StopProcess(Exception):
    """Internal sentinel: terminate a process without error."""


class FaultError(Exception):
    """Base of the *modeled-failure* family (see docs/FAULT_MODEL.md).

    Unlike :class:`SimulationError`, a :class:`FaultError` does not mean
    the simulation was misused — it means the simulated system hit a
    condition the fault model describes.  The fault-tolerant runtime
    catches and recovers from most of these; only
    :class:`UnrecoverableFaultError` is expected to escape to callers.
    """


class NodeCrashedError(FaultError):
    """An operation addressed a node that has (been) crashed or fenced."""

    def __init__(self, node: int, detail: str = "") -> None:
        super().__init__(f"node {node} is crashed{': ' + detail if detail else ''}")
        self.node = node


class MessageLostError(FaultError):
    """A message was dropped by the fault injector and will not arrive."""


class RetryExhaustedError(FaultError):
    """A timed request exceeded its bounded retry budget.

    The hardened protocol normally converts this into a dead-peer
    declaration rather than letting it propagate; it escapes only when
    the unreachable peer is one the fault model assumes reliable (the
    master).
    """

    def __init__(self, waiter: int, peer: int, what: str, attempts: int) -> None:
        super().__init__(
            f"node {waiter} gave up waiting for {what} from {peer} "
            f"after {attempts} attempts")
        self.waiter = waiter
        self.peer = peer
        self.what = what
        self.attempts = attempts


class UnrecoverableFaultError(FaultError):
    """The fault load exceeded what graceful degradation can absorb
    (e.g. every processor crashed, or the reliable master was lost)."""
