"""A compact discrete-event simulation kernel.

This is the substrate on which everything else in :mod:`repro` runs: the
network of workstations, the PVM-like message layer, and the dynamic load
balancing protocols are all simulated processes scheduled by the
:class:`Environment` defined here.

The design follows the classic process-interaction style (as popularized
by SimPy): simulated processes are Python generators that ``yield`` events
(:class:`Timeout`, :class:`Event`, other :class:`Process` instances, or
composites such as :class:`AnyOf`/:class:`AllOf`).  The kernel is
deterministic: events scheduled at equal times fire in (priority,
insertion-order) sequence, so simulations are exactly reproducible for a
given seed.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import Interrupt, ScheduleInPastError, SimulationError, StopProcess

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]

# Scheduling priorities: lower fires first among simultaneous events.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PENDING = object()  # sentinel: event value not yet decided


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules its callbacks to run at the current
    simulation time.  Processes waiting on the event are resumed with the
    event's value (or have the failure raised inside them).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, PRIORITY_NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carried by ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, PRIORITY_NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (processed) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ScheduleInPastError(env.now, env.now + delay)
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, PRIORITY_NORMAL, delay)


class Initialize(Event):
    """Internal: starts a process at the time it was created."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, PRIORITY_URGENT, 0.0)


class Process(Event):
    """A simulated process wrapping a generator.

    The process itself is an event that triggers when the generator
    returns (with its return value) or raises (with the exception).  Other
    processes may therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and must not interrupt itself.  The
        interrupt is delivered immediately (before any other scheduled
        event at this timestamp).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver through a throw-event so interrupts honor the event loop.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, PRIORITY_URGENT, 0.0)

    def stop(self) -> None:
        """Terminate the process without treating it as a failure."""
        if not self.is_alive:
            return
        event = Event(self.env)
        event._ok = False
        event._value = StopProcess()
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, PRIORITY_URGENT, 0.0)

    # -- generator driving ----------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        # Detach from the event we were waiting on (interrupts bypass it).
        if self._target is not None and self._target is not event:
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, StopProcess):
                        self._generator.close()
                        raise StopIteration(None)
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env._schedule(self, PRIORITY_NORMAL, 0.0)
                return
            except StopProcess:
                env._active_process = None
                self._ok = True
                self._value = None
                env._schedule(self, PRIORITY_NORMAL, 0.0)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                env._schedule(self, PRIORITY_NORMAL, 0.0)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}")
                self._ok = False
                self._value = error
                env._schedule(self, PRIORITY_NORMAL, 0.0)
                return

            if next_event.callbacks is None:
                # Already processed: resume immediately with its value.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            env._active_process = None
            return


class Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("events", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._fired: list[Event] = []
        if not self.events:
            self.succeed(self._build_value())
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _build_value(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._fired if ev._ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._satisfied():
            self.succeed(self._build_value())


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self.events)


class AnyOf(Condition):
    """Fires as soon as any sub-event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class Environment:
    """The simulation clock and event queue.

    All events and processes belong to exactly one environment.  Time is a
    float in *seconds* throughout :mod:`repro`.

    Scheduling order is the total order ``(time, priority, eid)`` where
    ``eid`` is a monotone insertion counter.  The implementation is a
    *slotted/heap hybrid*: events scheduled with zero delay — the vast
    majority in protocol-heavy runs (event triggers, resource grants,
    process starts and terminations) — go to per-priority FIFO buckets
    at the current instant instead of the heap, turning their
    ``O(log n)`` pushes and pops into ``O(1)`` deque operations.  Only
    genuine *future* events (timeouts) pay for the heap.  The pop side
    always takes the global minimum across buckets and heap, so the
    observable order is bit-identical to a single heap keyed by
    ``(time, priority, eid)``.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        # One FIFO bucket per priority level for zero-delay events; all
        # entries in a bucket share time == self._now (the clock cannot
        # advance while any bucket is non-empty, since a bucket entry is
        # always <= any heap entry at a later time).
        self._buckets: tuple[deque, ...] = (deque(), deque(), deque())
        self._eid_n = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                 delay: float = 0.0) -> None:
        """Schedule ``event``'s callbacks to run after ``delay``.

        Low-level entry point for callback-driven components that need
        an event to fire without carrying a value (e.g. the network's
        message carries); most code should use :meth:`Event.succeed` /
        :meth:`Event.fail` or :meth:`timeout` instead.
        """
        self._schedule(event, priority, delay)

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if delay < 0:
            raise ScheduleInPastError(self._now, self._now + delay)
        event._scheduled = True
        self._eid_n = eid = self._eid_n + 1
        if delay == 0.0 and priority < 3:
            self._buckets[priority].append((self._now, priority, eid, event))
        else:
            heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        b0, b1, b2 = self._buckets
        if b0 or b1 or b2:
            return self._now  # bucket entries fire at the current instant
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advancing the clock)."""
        # Among buckets the winner is the head of the lowest-priority-index
        # non-empty deque (all bucket entries share time == now, and each
        # deque is FIFO in eid); that candidate still has to beat the heap
        # top, which may hold an earlier (time, priority, eid) entry.
        entry = bucket = None
        for dq in self._buckets:
            if dq:
                entry = dq[0]
                bucket = dq
                break
        queue = self._queue
        if entry is None:
            if not queue:
                raise SimulationError("step() on an empty schedule")
            entry = heappop(queue)
        elif queue and queue[0] < entry:
            entry = heappop(queue)
        else:
            bucket.popleft()
        when, _prio, _eid, event = entry
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # event was already processed (should not happen)
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a time is reached, or an event fires.

        Returns the value of ``until`` when it is an event; otherwise None.
        """
        queue = self._queue
        b0, b1, b2 = self._buckets
        step = self.step
        if until is None:
            while queue or b0 or b1 or b2:
                step()
            return None
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                if not (queue or b0 or b1 or b2):
                    raise SimulationError(
                        "schedule drained before the awaited event fired")
                step()
            if not stop._ok:
                raise stop._value
            return stop._value
        horizon = float(until)
        if horizon < self._now:
            raise ScheduleInPastError(self._now, horizon)
        # Bucket entries are always at self._now <= horizon inside this
        # loop, so only the heap top needs the horizon comparison.
        while (b0 or b1 or b2) or (queue and queue[0][0] <= horizon):
            step()
        self._now = max(self._now, horizon)
        return None
