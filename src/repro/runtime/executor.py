"""The run-time executor: DLB_init / scatter / run / gather in one call.

``run_loop`` executes one load-balanced loop on a simulated network of
workstations under a chosen strategy; ``run_application`` executes a
whole application (loops plus sequential stages such as TRFD's
transpose) on a single simulation environment, so external load evolves
continuously across stages.

After every loop the executor verifies the fundamental DLB invariant:
**every iteration executed exactly once** — redistribution must neither
lose nor duplicate work.  The invariant is *also* enforced under fault
injection: pass a :class:`~repro.faults.FaultPlan` and the executor
installs a :class:`~repro.faults.FaultController`, enables the hardened
protocol, and — after the surviving processes finish — runs a salvage
pass that executes any orphaned iterations on the lowest-numbered
survivor, so the loop degrades gracefully instead of losing work.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Union

from ..apps.workload import ApplicationSpec, LoopSpec, SequentialStage
from ..core.strategies.base import StrategySpec
from ..core.strategies.registry import get_strategy
from ..faults.controller import FaultController
from ..faults.plan import FaultPlan
from ..machine.cluster import ClusterSpec
from ..machine.workstation import Workstation
from ..message.messages import DataMsg, Tag
from ..message.pvm import VirtualMachine
from ..network.graph import build_network
from ..obs.trace import NULL_RECORDER
from ..simulation import Environment, SimulationError
from .assignment import (
    equal_block_partition,
    merge_ranges,
    proportional_block_partition,
)
from .balancer import CentralBalancer
from .node import NodeRuntime
from .options import RunOptions
from .session import LoopSession
from .stats import (
    AppRunStats,
    LoopRunStats,
    StageRunStats,
    environment_fingerprint,
)

__all__ = ["run_loop", "run_application", "CoverageError"]

StrategyLike = Union[str, StrategySpec]


class CoverageError(AssertionError):
    """Iterations were lost or duplicated during redistribution."""


def _resolve(strategy: StrategyLike) -> StrategySpec:
    if isinstance(strategy, StrategySpec):
        return strategy
    return get_strategy(strategy)


def _verify_coverage(session: LoopSession) -> None:
    all_ranges = [r for ranges in session.stats.executed_by_node.values()
                  for r in ranges]
    try:
        merged = merge_ranges(all_ranges)
    except ValueError as exc:
        raise CoverageError(f"duplicated iterations: {exc}") from exc
    expected = [(0, session.loop.n_iterations)]
    if merged != expected:
        raise CoverageError(
            f"lost iterations: executed {merged}, expected {expected}")


def _salvage(session: LoopSession, controller: FaultController) -> None:
    """Execute every orphaned iteration on the lowest-id survivor.

    This is the last line of the graceful-degradation guarantee: after
    the protocol-level reclaim/redistribute machinery has done what it
    can, any iteration still unexecuted (stranded parcels, unconsumed
    WORK in dead mailboxes, late reclaims) is run — and charged its
    simulated compute time — on one surviving workstation, so
    :func:`_verify_coverage` holds for every plan with a survivor.
    """
    orphans = controller.sweep_orphans()
    if not orphans:
        return
    ranges = merge_ranges(orphans)
    survivors = controller.survivors()
    if not survivors:  # unreachable: FaultPlan.validate_for guarantees one
        raise SimulationError("no survivor left to salvage orphaned work")
    node = survivors[0]
    env = session.env
    table = session.table
    work = sum(table.range_work(s, e) for s, e in ranges)
    count = sum(e - s for s, e in ranges)

    def runner():
        ws = session.stations[node]
        t_end = ws.time_to_complete(env.now, work)
        yield env.timeout(t_end - env.now)
        session.record_executed(node, ranges)

    env.run(env.process(runner(), name=f"salvage{node}"))
    controller.salvaged_iterations += count
    session.recorder.event("salvage", track=f"node{node}",
                           iterations=count, work=work)


def _copy_fault_stats(session: LoopSession,
                      controller: FaultController) -> None:
    stats = session.stats
    stats.crashed_nodes = tuple(sorted(controller.crashed))
    stats.fenced_nodes = tuple(sorted(controller.fenced))
    stats.declared_dead = tuple(sorted(controller.declared))
    stats.dropped_messages = controller.dropped_messages
    stats.delayed_messages = controller.delayed_messages
    stats.fault_retries = controller.retries
    stats.reclaimed_iterations = controller.reclaimed_iterations
    stats.salvaged_iterations = controller.salvaged_iterations


def _scatter(session: LoopSession):
    """Initial distribution of array blocks from the master (optional)."""
    vm = session.vm
    loop = session.loop
    deliveries = []
    for node in range(1, session.n):
        count = session.nodes[node].assignment.count
        nbytes = count * loop.input_bytes + loop.replicated_bytes
        ev = yield from vm.send(DataMsg(src=0, dst=node, label="scatter",
                                        data_bytes=nbytes))
        deliveries.append(ev)
    if deliveries:
        yield session.env.all_of(deliveries)


def _gather(session: LoopSession):
    """Final collection of results at the master (optional)."""
    vm = session.vm
    loop = session.loop
    env = session.env

    def sender(node: int):
        count = session.stats.executed_count(node)
        ev = yield from vm.send(DataMsg(src=node, dst=0, label="gather",
                                        data_bytes=count * loop.result_bytes))
        yield ev

    procs = [env.process(sender(node), name=f"gather{node}")
             for node in range(1, session.n)]
    if procs:
        yield env.all_of(procs)


def run_loop_stage(env: Environment, vm: VirtualMachine,
                   stations: list[Workstation], loop: LoopSpec,
                   strategy: StrategyLike,
                   options: Optional[RunOptions] = None,
                   selector: Optional[Callable] = None,
                   fault_plan: Optional[FaultPlan] = None) -> LoopRunStats:
    """Run one loop on an existing environment (advanced entry point)."""
    options = options or RunOptions()
    spec = _resolve(strategy)
    if spec.is_dlb and spec.code != "NONE" and len(stations) < 2:
        raise ValueError("dynamic load balancing needs at least 2 processors")
    if fault_plan is not None and fault_plan.empty:
        fault_plan = None
    if fault_plan is not None:
        if spec.code == "WS":
            raise ValueError(
                "fault injection is not supported for the work-stealing "
                "baseline (no timeout/reclaim protocol)")
        if not options.fault_tolerance.enabled:
            options = options.but(fault_tolerance=replace(
                options.fault_tolerance, enabled=True))
    recorder = options.recorder or NULL_RECORDER
    if recorder.enabled:
        # The simulator's time domain is virtual seconds.  Binding the
        # clock (and hooking the network) is the *only* run-path change
        # tracing makes on this backend: every recording site is a pure
        # function call inside an existing callback, so traced runs stay
        # bit-identical to untraced ones (the seed oracles check this).
        recorder.set_clock(lambda: env.now)
        vm.network.recorder = recorder
    session = LoopSession(env, vm, stations, loop, spec, options,
                          selector=selector)
    controller: Optional[FaultController] = None
    if fault_plan is not None:
        controller = FaultController(session, fault_plan)
        session.controller = controller
        controller.install()
    msg_before = dict(vm.sent_by_tag)
    net_before = (vm.network.stats.messages, vm.network.stats.bytes)
    session.stats.start_time = env.now

    if options.include_staging:
        staging = env.process(_scatter_then_run(session), name="master-stage")
    else:
        staging = None
        _spawn_nodes(session)

    if session.centralized and spec.is_dlb:
        lb = env.process(CentralBalancer(session).run(), name="balancer")
    else:
        lb = None

    # Run until every node process has finished.
    procs = [session.nodes[i].proc for i in range(session.n)] if staging is None \
        else []
    if staging is not None:
        env.run(staging)
        procs = [session.nodes[i].proc for i in range(session.n)]
    for proc in procs:
        if proc.is_alive:
            env.run(proc)
    if lb is not None and lb.is_alive:
        env.run(lb)

    if controller is not None:
        _salvage(session, controller)
        _copy_fault_stats(session, controller)
        controller.uninstall()

    if options.include_staging:
        gather = env.process(_gather(session), name="master-gather")
        env.run(gather)

    session.stats.end_time = env.now
    session.stats.node_finish_times = {
        i: session.nodes[i].finish_time for i in range(session.n)}
    session.stats.messages_by_tag = {
        t.value: vm.sent_by_tag.get(t, 0) - msg_before.get(t, 0) for t in Tag}
    session.stats.network_messages = vm.network.stats.messages - net_before[0]
    session.stats.network_bytes = vm.network.stats.bytes - net_before[1]
    session.stats.environment = environment_fingerprint()

    # Detach mailbox hooks so a later stage can re-register.
    for i in range(session.n):
        vm.inbox[i].notify = None
    _verify_coverage(session)
    return session.stats


def _build_vm(env: Environment, n: int, options: RunOptions) -> VirtualMachine:
    """A virtual machine on the run's network graph.

    ``topology=None`` takes the original shared-bus construction path
    untouched (bit-identity with the seed); any explicit topology —
    including ``"bus"`` — goes through :func:`build_network`.
    """
    if options.topology is None:
        return VirtualMachine(env, n, options.network)
    network = build_network(env, options.topology, n, options.network)
    return VirtualMachine(env, n, options.network, network=network)


def _initial_partition(session: LoopSession):
    """The compiler's initial distribution (equal or speed-weighted)."""
    if session.options.initial_partition == "speed":
        return proportional_block_partition(
            session.loop.n_iterations,
            [ws.speed for ws in session.stations])
    return equal_block_partition(session.loop.n_iterations, session.n)


def _node_class(session: LoopSession):
    if session.strategy.code == "WS":
        from .stealing import StealingNodeRuntime
        return StealingNodeRuntime
    return NodeRuntime


def _spawn_nodes(session: LoopSession) -> None:
    parts = _initial_partition(session)
    cls = _node_class(session)
    for i in range(session.n):
        node = cls(session, i, parts[i])
        node.proc = session.env.process(node.run(), name=f"node{i}")


def _scatter_then_run(session: LoopSession):
    """With staging on, nodes start only after their block arrives."""
    # Create node runtimes first so assignments are known for sizing.
    parts = _initial_partition(session)
    cls = _node_class(session)
    nodes = [cls(session, i, parts[i]) for i in range(session.n)]
    yield from _scatter(session)
    for node in nodes:
        node.proc = session.env.process(node.run(), name=f"node{node.me}")


def run_loop(loop: LoopSpec, cluster: ClusterSpec, strategy: StrategyLike,
             options: Optional[RunOptions] = None,
             selector: Optional[Callable] = None,
             fault_plan: Optional[FaultPlan] = None,
             backend: Optional[object] = None) -> LoopRunStats:
    """Run a single loop on a fresh cluster.

    Parameters
    ----------
    loop:
        The workload (e.g. from :func:`repro.apps.mxm.mxm_loop`).
    cluster:
        The cluster description; its seed fixes the load realization
        (simulation backend only).
    strategy:
        A :class:`StrategySpec` or a name/code ("GDDLB", "LD", "NONE",
        "CUSTOM", ...).
    options:
        Run options (policy thresholds, network parameters, K, ...).
    selector:
        Strategy selector for the customized scheme; defaults to the
        model-based selector when strategy is "CUSTOM" and none given.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` to inject (crashes,
        slowdowns, message drops/delays).  Supplying one automatically
        enables the hardened fault-tolerant protocol.
    backend:
        ``None``/``"sim"`` for the discrete-event simulation (default),
        ``"thread"`` for real threads in wall-clock time, or any
        :class:`~repro.backend.base.ExecutionBackend` instance.
    """
    if backend is not None and backend != "sim":
        from ..backend.base import get_backend
        return get_backend(backend).run_loop(
            loop, cluster, strategy, options, selector,
            fault_plan=fault_plan)
    options = options or RunOptions()
    spec = _resolve(strategy)
    if spec.code == "CUSTOM" and selector is None:
        from ..core.decision import model_based_selector
        selector = model_based_selector
    env = Environment()
    stations = cluster.build()
    vm = _build_vm(env, cluster.n_processors, options)
    return run_loop_stage(env, vm, stations, loop, spec, options, selector,
                          fault_plan=fault_plan)


def run_application(app: ApplicationSpec, cluster: ClusterSpec,
                    strategy: StrategyLike,
                    options: Optional[RunOptions] = None,
                    selector: Optional[Callable] = None,
                    fault_plan: Optional[FaultPlan] = None) -> AppRunStats:
    """Run a full application (loops + sequential stages) end to end.

    A ``fault_plan`` applies to the *first* loop stage only: each stage
    builds a fresh session, and replaying the same crash schedule
    against later stages would implicitly revive dead processors.
    """
    options = options or RunOptions()
    spec = _resolve(strategy)
    if spec.code == "CUSTOM" and selector is None:
        from ..core.decision import model_based_selector
        selector = model_based_selector
    env = Environment()
    stations = cluster.build()
    vm = _build_vm(env, cluster.n_processors, options)
    stats = AppRunStats(app_name=app.name, strategy=spec.name,
                        n_processors=cluster.n_processors)
    pending_plan = fault_plan
    for stage in app.stages:
        if isinstance(stage, LoopSpec):
            stats.stages.append(run_loop_stage(
                env, vm, stations, stage, spec, options, selector,
                fault_plan=pending_plan))
            pending_plan = None
        elif isinstance(stage, SequentialStage):
            stats.stages.append(_run_sequential(env, vm, stations, stage,
                                                options))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown stage type {type(stage)!r}")
    return stats


def _run_sequential(env: Environment, vm: VirtualMachine,
                    stations: list[Workstation], stage: SequentialStage,
                    options: RunOptions) -> StageRunStats:
    """A master-only stage: optional gather, compute, optional scatter."""
    start = env.now
    master = stations[0]
    n = len(stations)

    def runner():
        if options.include_staging and stage.gather_bytes and n > 1:
            share = stage.gather_bytes // max(n - 1, 1)

            def sender(node: int):
                ev = yield from vm.send(DataMsg(src=node, dst=0,
                                                label=f"{stage.name}-gather",
                                                data_bytes=share))
                yield ev

            procs = [env.process(sender(i), name=f"stage-g{i}")
                     for i in range(1, n)]
            yield env.all_of(procs)
        if stage.compute_seconds > 0:
            t_end = master.time_to_complete(env.now, stage.compute_seconds)
            yield env.timeout(t_end - env.now)
        if options.include_staging and stage.scatter_bytes and n > 1:
            share = stage.scatter_bytes // max(n - 1, 1)
            deliveries = []
            for node in range(1, n):
                ev = yield from vm.send(DataMsg(src=0, dst=node,
                                                label=f"{stage.name}-scatter",
                                                data_bytes=share))
                deliveries.append(ev)
            yield env.all_of(deliveries)

    proc = env.process(runner(), name=f"stage:{stage.name}")
    env.run(proc)
    return StageRunStats(stage_name=stage.name, start_time=start,
                         end_time=env.now)
