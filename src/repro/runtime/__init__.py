"""DLB run-time system (S5): executor, node protocol, central balancer."""

from .assignment import (
    Assignment,
    equal_block_partition,
    merge_ranges,
    proportional_block_partition,
)
from .arrays import DlbArray
from .balancer import CentralBalancer
from .executor import CoverageError, run_application, run_loop, run_loop_stage
from .node import NodeRuntime
from .options import RunOptions
from .session import LoopSession
from .stealing import StealingNodeRuntime
from .tracing import (
    UtilizationReport,
    render_gantt,
    render_sync_timeline,
    utilization_report,
)
from .stats import AppRunStats, LoopRunStats, StageRunStats, SyncRecord

__all__ = [
    "AppRunStats",
    "Assignment",
    "CentralBalancer",
    "CoverageError",
    "DlbArray",
    "LoopRunStats",
    "LoopSession",
    "NodeRuntime",
    "RunOptions",
    "StageRunStats",
    "StealingNodeRuntime",
    "SyncRecord",
    "UtilizationReport",
    "equal_block_partition",
    "merge_ranges",
    "proportional_block_partition",
    "run_application",
    "run_loop",
    "run_loop_stage",
    "render_gantt",
    "render_sync_timeline",
    "utilization_report",
]
